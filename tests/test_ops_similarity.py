"""Trajectory similarity measures and k-similar search."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import JustEngine
from repro.errors import ExecutionError
from repro.ops.analysis.similarity import (
    envelope_lower_bound,
    frechet_distance,
    hausdorff_distance,
    k_similar_trajectories,
)
from repro.trajectory import STSeries, Trajectory


def line_traj(tid, y, n=10, reverse=False, x0=116.0):
    xs = range(n)
    if reverse:
        xs = reversed(list(xs))
    points = [(x0 + x * 0.01, y, i * 10.0)
              for i, x in enumerate(xs)]
    return Trajectory(tid, "o", STSeries(points))


class TestHausdorff:
    def test_identical_is_zero(self):
        a = line_traj("a", 39.9)
        assert hausdorff_distance(a, a) == 0.0

    def test_parallel_lines(self):
        a = line_traj("a", 39.9)
        b = line_traj("b", 39.95)
        assert hausdorff_distance(a, b) == pytest.approx(0.05)

    def test_symmetry(self):
        a = line_traj("a", 39.9, n=5)
        b = line_traj("b", 39.93, n=12)
        assert hausdorff_distance(a, b) == \
            pytest.approx(hausdorff_distance(b, a))

    def test_order_insensitive(self):
        a = line_traj("a", 39.9)
        b = line_traj("b", 39.9, reverse=True)
        assert hausdorff_distance(a, b) == 0.0


class TestFrechet:
    def test_identical_is_zero(self):
        a = line_traj("a", 39.9)
        assert frechet_distance(a, a) == 0.0

    def test_parallel_lines(self):
        a = line_traj("a", 39.9)
        b = line_traj("b", 39.95)
        assert frechet_distance(a, b) == pytest.approx(0.05)

    def test_order_sensitive(self):
        """Fréchet punishes reversed traversal; Hausdorff does not."""
        a = line_traj("a", 39.9)
        b = line_traj("b", 39.9, reverse=True)
        assert hausdorff_distance(a, b) == 0.0
        # The leash must span the full line at the crossover.
        assert frechet_distance(a, b) == pytest.approx(0.09)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_frechet_upper_bounds_hausdorff(self, seed):
        rng = random.Random(seed)

        def random_traj(tid):
            points = []
            x, y = 116.0 + rng.random() * 0.1, 39.9 + rng.random() * 0.1
            for i in range(rng.randint(2, 15)):
                x += rng.uniform(-0.01, 0.01)
                y += rng.uniform(-0.01, 0.01)
                points.append((x, y, i * 10.0))
            return Trajectory(tid, "o", STSeries(points))

        a, b = random_traj("a"), random_traj("b")
        assert frechet_distance(a, b) >= \
            hausdorff_distance(a, b) - 1e-12


class TestLowerBound:
    def test_disjoint_mbrs(self):
        a = line_traj("a", 39.9)
        b = line_traj("b", 39.9, x0=117.0)
        bound = envelope_lower_bound(a, b)
        assert bound > 0.0
        assert bound <= hausdorff_distance(a, b) + 1e-12
        assert bound <= frechet_distance(a, b) + 1e-12

    def test_overlapping_mbrs_bound_zero(self):
        a = Trajectory("a", "o", STSeries(
            [(116.0, 39.9, 0.0), (116.1, 40.0, 10.0)]))
        b = Trajectory("b", "o", STSeries(
            [(116.05, 39.95, 0.0), (116.15, 40.05, 10.0)]))
        assert envelope_lower_bound(a, b) == 0.0


class TestKSimilarSearch:
    @pytest.fixture
    def fleet(self):
        engine = JustEngine()
        table = engine.create_plugin_table("fleet", "trajectory")
        trajs = [line_traj(f"t{i}", 39.9 + i * 0.01) for i in range(12)]
        # A far-away cluster that must be pruned.
        trajs += [line_traj(f"far{i}", 41.0 + i * 0.01, x0=118.0)
                  for i in range(5)]
        table.insert_trajectories(trajs)
        return table

    def test_finds_nearest_lines(self, fleet):
        query = line_traj("q", 39.9)
        results = k_similar_trajectories(fleet, query, 3,
                                         search_margin_deg=0.2)
        tids = [row["tid"] for row, _d in results]
        assert tids == ["t0", "t1", "t2"]
        distances = [d for _r, d in results]
        assert distances == sorted(distances)
        assert distances[0] == pytest.approx(0.0)

    def test_excludes_query_itself(self, fleet):
        stored = fleet.get("t5")["item"]
        results = k_similar_trajectories(fleet, stored, 2,
                                         search_margin_deg=0.2)
        assert all(row["tid"] != "t5" for row, _d in results)

    def test_frechet_measure(self, fleet):
        query = line_traj("q", 39.9)
        results = k_similar_trajectories(fleet, query, 2,
                                         measure="frechet",
                                         search_margin_deg=0.2)
        assert [row["tid"] for row, _d in results] == ["t0", "t1"]

    def test_unknown_measure(self, fleet):
        with pytest.raises(ExecutionError):
            k_similar_trajectories(fleet, line_traj("q", 39.9), 2,
                                   measure="cosine")

    def test_invalid_k(self, fleet):
        with pytest.raises(ExecutionError):
            k_similar_trajectories(fleet, line_traj("q", 39.9), 0)

    def test_matches_brute_force(self, fleet):
        # 39.932 keeps all candidate distances distinct (no ties).
        query = line_traj("q", 39.932)
        results = k_similar_trajectories(fleet, query, 5,
                                         search_margin_deg=2.0)
        rows = fleet.full_scan()
        brute = sorted(
            ((row, hausdorff_distance(query, row["item"]))
             for row in rows),
            key=lambda pair: pair[1])[:5]
        assert [r["tid"] for r, _d in results] == \
            [r["tid"] for r, _d in brute]
        assert [d for _r, d in results] == \
            pytest.approx([d for _r, d in brute])
