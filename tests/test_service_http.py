"""The HTTP/JSON transport layer."""

import json

import pytest

from repro import Envelope, Point, STSeries, Trajectory
from repro.service.http import (
    JustHttpClient,
    JustHttpServer,
    decode_row,
    decode_value,
    encode_row,
    encode_value,
)

from conftest import T0


class TestWireEncoding:
    def test_scalars_pass_through(self):
        for value in (None, True, 7, 2.5, "text"):
            assert encode_value(value) == value
            assert decode_value(encode_value(value)) == value

    def test_geometry_roundtrip(self):
        point = Point(116.397, 39.908)
        encoded = encode_value(point)
        assert encoded["@type"] == "wkt"
        assert decode_value(encoded) == point

    def test_envelope_roundtrip(self):
        env = Envelope(1, 2, 3, 4)
        assert decode_value(encode_value(env)) == env

    def test_series_and_trajectory_roundtrip(self):
        series = STSeries([(116.0, 39.9, 0.0), (116.01, 39.91, 30.0)])
        assert decode_value(encode_value(series)) == series
        trajectory = Trajectory("t1", "o1", series)
        decoded = decode_value(encode_value(trajectory))
        assert decoded.tid == "t1" and len(decoded.points) == 2

    def test_rows_are_json_safe(self):
        row = {"fid": 1, "geom": Point(1, 2),
               "gps": STSeries([(0, 0, 1.0)])}
        text = json.dumps(encode_row(row))
        decoded = decode_row(json.loads(text))
        assert decoded["geom"] == Point(1, 2)
        assert len(decoded["gps"]) == 1


@pytest.fixture
def http():
    return JustHttpServer(page_rows=10)


class TestServerRouting:
    def test_connect_execute_disconnect(self, http):
        session = http.handle({"path": "/connect",
                               "user": "alice"})["session"]
        response = http.handle({"path": "/execute", "session": session,
                                "sql": "SHOW TABLES"})
        assert response["rows"] == []
        http.handle({"path": "/disconnect", "session": session})

    def test_engine_error_becomes_response(self, http):
        session = http.handle({"path": "/connect",
                               "user": "alice"})["session"]
        response = http.handle({"path": "/execute", "session": session,
                                "sql": "SELECT * FROM ghost"})
        assert "error" in response
        assert response["kind"] == "AnalysisError"

    def test_unknown_path(self, http):
        assert "error" in http.handle({"path": "/nope"})

    def test_unknown_session(self, http):
        response = http.handle({"path": "/execute", "session": "ghost",
                                "sql": "SHOW TABLES"})
        assert response["kind"] == "SessionError"

    def test_responses_always_json_safe(self, http):
        session = http.handle({"path": "/connect",
                               "user": "alice"})["session"]
        http.handle({"path": "/execute", "session": session,
                     "sql": "CREATE TABLE t (fid integer:primary key, "
                            "geom point)"})
        http.handle({"path": "/execute", "session": session,
                     "sql": "INSERT INTO t VALUES (1, "
                            "st_makePoint(116.3, 39.9))"})
        response = http.handle({"path": "/execute", "session": session,
                                "sql": "SELECT * FROM t"})
        json.dumps(response)  # must not raise
        assert response["rows"][0]["geom"]["@type"] == "wkt"


class TestHttpClient:
    def test_paper_snippet_over_http(self, http):
        with JustHttpClient(http, "alice") as client:
            client.execute_query(
                "CREATE TABLE poi (fid integer:primary key, name string, "
                "time date, geom point)")
            client.execute_query(
                f"INSERT INTO poi VALUES (1, 'a', {T0}, "
                f"st_makePoint(116.3, 39.9))")
            rs = client.execute_query("SELECT name, geom FROM poi")
            rows = list(rs)
            assert rows[0]["name"] == "a"
            assert rows[0]["geom"] == Point(116.3, 39.9)
            assert rs.sim_ms > 0

    def test_chunked_fetch(self, http):
        with JustHttpClient(http, "bob") as client:
            client.execute_query(
                "CREATE TABLE n (fid integer:primary key, name string)")
            for start in range(0, 45, 15):
                values = ", ".join(f"({i}, 'r{i}')"
                                   for i in range(start, start + 15))
                client.execute_query(
                    f"INSERT INTO n (fid, name) VALUES {values}")
            rs = client.execute_query("SELECT fid FROM n")
            assert rs.total_rows == 45
            fetched = sorted(row["fid"] for row in rs)
            assert fetched == list(range(45))
            # A fully drained handle is gone server-side.
            assert not http._handles

    def test_remote_error_raised_locally(self, http):
        from repro.errors import JustError
        with JustHttpClient(http, "carol") as client:
            with pytest.raises(JustError):
                client.execute_query("SELECT * FROM missing")

    def test_reconnect_after_session_timeout(self, http):
        client = JustHttpClient(http, "dave")
        # Invalidate the session server-side.
        http.server.sessions._sessions.clear()
        rs = client.execute_query("SHOW TABLES")
        assert list(rs) == []
