"""Index strategies: keys, ranges, recall, and the paper's key layouts."""

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.curves import (
    AttributeStrategy,
    IndexedRecord,
    STQuery,
    TimePeriod,
    XZ2Strategy,
    XZ2TStrategy,
    XZ3Strategy,
    Z2Strategy,
    Z2TStrategy,
    Z3Strategy,
    strategy_from_name,
)
from repro.curves.strategies import shard_of
from repro.errors import IndexError_
from repro.geometry import Envelope, LineString, Point


def point_record(fid, lng, lat, t=None):
    return IndexedRecord(fid, Point(lng, lat), t, t)


def covered_by(strategy, record, query) -> bool:
    key = strategy.key(record)
    return any(kr.start <= key <= kr.end
               for kr in strategy.ranges(query))


class TestKeyLayout:
    def test_z2t_key_is_shard_period_z_fid(self):
        strategy = Z2TStrategy(period=TimePeriod.DAY, num_shards=4)
        record = point_record("42", 116.4, 39.9, t=86400.0 * 10 + 5)
        key = strategy.key(record)
        assert key[0] == shard_of("42", 4)
        period = struct.unpack(">I", key[1:5])[0] - (1 << 31)
        assert period == 10
        assert key.endswith(b"\x0042")

    def test_keys_sort_by_period_within_shard(self):
        strategy = Z2TStrategy(period=TimePeriod.DAY, num_shards=1)
        early = strategy.key(point_record("a", 0, 0, t=0.0))
        later = strategy.key(point_record("a", 0, 0, t=86400.0 * 100))
        assert early < later

    def test_key_depends_only_on_record(self):
        # The update-enabled property: a record's key never depends on
        # other records.
        strategy = Z2TStrategy()
        r = point_record("7", 116.0, 39.8, t=1000.0)
        assert strategy.key(r) == strategy.key(r)

    def test_shard_spread(self):
        strategy = Z2Strategy(num_shards=8)
        shards = {strategy.key(point_record(str(i), 0, 0))[0]
                  for i in range(200)}
        assert len(shards) == 8


class TestSupports:
    def test_z2_supports_spatial_only(self):
        q_s = STQuery(envelope=Envelope(0, 0, 1, 1))
        q_st = STQuery(Envelope(0, 0, 1, 1), 0.0, 10.0)
        assert Z2Strategy().supports(q_s)
        assert Z2Strategy().supports(q_st)  # spatial part serves it
        assert not Z2TStrategy().supports(q_s)
        assert Z2TStrategy().supports(q_st)

    def test_ranges_reject_unsupported(self):
        with pytest.raises(IndexError_):
            Z2TStrategy().ranges(STQuery(envelope=Envelope(0, 0, 1, 1)))

    def test_point_strategies_reject_lines(self):
        line = LineString([(0, 0), (1, 1)])
        record = IndexedRecord("x", line, 0.0, 10.0)
        with pytest.raises(IndexError_):
            Z2Strategy().key(record)
        with pytest.raises(IndexError_):
            Z3Strategy().key(record)

    def test_temporal_strategies_require_time(self):
        with pytest.raises(IndexError_):
            Z2TStrategy().key(point_record("x", 0, 0, t=None))


class TestRecall:
    """Every matching record's key must fall in some query range."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_z2t_full_recall(self, seed):
        rng = random.Random(seed)
        strategy = Z2TStrategy(period=TimePeriod.DAY)
        query = STQuery(Envelope(116.1, 39.8, 116.3, 40.0),
                        86400.0, 86400.0 * 3)
        for i in range(50):
            lng = 116.0 + rng.random() * 0.5
            lat = 39.7 + rng.random() * 0.4
            t = rng.random() * 86400.0 * 5
            record = point_record(str(i), lng, lat, t)
            matches = (query.envelope.contains_point(lng, lat)
                       and query.t_min <= t <= query.t_max)
            if matches:
                assert covered_by(strategy, record, query)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_z3_full_recall(self, seed):
        rng = random.Random(seed)
        strategy = Z3Strategy(period=TimePeriod.DAY)
        query = STQuery(Envelope(116.1, 39.8, 116.3, 40.0),
                        10_000.0, 200_000.0)
        for i in range(50):
            lng = 116.0 + rng.random() * 0.5
            lat = 39.7 + rng.random() * 0.4
            t = rng.random() * 86400.0 * 4
            record = point_record(str(i), lng, lat, t)
            if (query.envelope.contains_point(lng, lat)
                    and query.t_min <= t <= query.t_max):
                assert covered_by(strategy, record, query)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_xz2t_full_recall_for_lines(self, seed):
        rng = random.Random(seed)
        strategy = XZ2TStrategy(period=TimePeriod.DAY)
        query = STQuery(Envelope(116.1, 39.8, 116.3, 40.0),
                        86400.0, 86400.0 * 3)
        for i in range(30):
            x = 116.0 + rng.random() * 0.5
            y = 39.7 + rng.random() * 0.4
            line = LineString([(x, y), (x + 0.01, y + 0.01)])
            t0 = rng.random() * 86400.0 * 4
            record = IndexedRecord(str(i), line, t0, t0 + 600.0)
            overlaps = (line.envelope.intersects(query.envelope)
                        and t0 <= query.t_max
                        and t0 + 600.0 >= query.t_min)
            if overlaps:
                assert covered_by(strategy, record, query)

    def test_xz3_lookback_catches_spanning_objects(self):
        strategy = XZ3Strategy(period=TimePeriod.DAY,
                               lookback_periods=1)
        line = LineString([(116.1, 39.9), (116.2, 39.95)])
        # Starts late on day 0, extends into day 1.
        record = IndexedRecord("span", line, 86000.0, 90000.0)
        query = STQuery(Envelope(116.0, 39.8, 116.3, 40.0),
                        87000.0, 95000.0)  # only day 1
        assert covered_by(strategy, record, query)


class TestZ2TRangeEfficiency:
    def test_z2t_scans_fewer_keys_than_z3_for_urban_query(self):
        """The motivating observation of Section IV-B: for a small
        spatial window over a long intra-day time range, Z3's ranges
        cover vastly more key space than Z2T's."""
        z2t = Z2TStrategy(period=TimePeriod.DAY, num_shards=1)
        z3 = Z3Strategy(period=TimePeriod.DAY, num_shards=1)
        # 1km x 1km window, 01:00..13:00 on one day.
        query = STQuery(Envelope(116.30, 39.90, 116.31, 39.91),
                        3600.0, 13 * 3600.0)

        def key_space(strategy):
            total = 0
            for kr in strategy.ranges(query):
                z_lo = int.from_bytes(kr.start[5:13], "big")
                z_hi = int.from_bytes(kr.end[5:13], "big")
                total += z_hi - z_lo + 1
            return total

        assert key_space(z2t) * 100 < key_space(z3)


class TestAttributeStrategy:
    def test_equality_ranges_cover_key(self):
        strategy = AttributeStrategy("name", num_shards=4)
        key = strategy.key_for_value("42", "alice")
        ranges = strategy.ranges_for_value("alice")
        assert any(kr.start <= key <= kr.end for kr in ranges)
        other = strategy.ranges_for_value("bob")
        assert not any(kr.start <= key <= kr.end for kr in other)

    def test_numeric_order_preserved(self):
        encode = AttributeStrategy.encode_value
        values = [-1e9, -2.5, -1, 0, 0.5, 1, 3.14, 1e9]
        encoded = [encode(v) for v in values]
        assert encoded == sorted(encoded)

    def test_between_ranges(self):
        strategy = AttributeStrategy("amount", num_shards=2)
        key = strategy.key_for_value("9", 50.0)
        ranges = strategy.ranges_for_between(10.0, 100.0)
        assert any(kr.start <= key <= kr.end for kr in ranges)
        outside = strategy.key_for_value("9", 150.0)
        assert not any(kr.start <= outside <= kr.end for kr in ranges)


class TestFactory:
    def test_names(self):
        assert strategy_from_name("z2").name == "z2"
        assert strategy_from_name("xz2t").name == "xz2t"
        assert strategy_from_name("z3:year").period is TimePeriod.YEAR

    def test_unknown_name(self):
        with pytest.raises(IndexError_):
            strategy_from_name("btree")

    def test_shard_bounds(self):
        with pytest.raises(IndexError_):
            Z2Strategy(num_shards=0)
        with pytest.raises(IndexError_):
            Z2Strategy(num_shards=256)
