"""Envelope predicates and measures."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import Envelope

coords = st.floats(-180, 180, allow_nan=False)
lats = st.floats(-90, 90, allow_nan=False)


def env(a=0.0, b=0.0, c=10.0, d=10.0):
    return Envelope(a, b, c, d)


class TestConstruction:
    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            Envelope(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(GeometryError):
            Envelope(0.0, 1.0, 1.0, 0.0)

    def test_point_envelope_has_zero_area(self):
        e = Envelope.of_point(3.0, 4.0)
        assert e.area == 0.0
        assert e.contains_point(3.0, 4.0)

    def test_world_contains_everything(self):
        world = Envelope.world()
        assert world.contains(env())
        assert world.contains_point(-180.0, -90.0)

    def test_union_all(self):
        e = Envelope.union_all([env(0, 0, 1, 1), env(5, 5, 6, 7)])
        assert e.as_tuple() == (0, 0, 6, 7)

    def test_union_all_empty_raises(self):
        with pytest.raises(GeometryError):
            Envelope.union_all([])


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        e = env()
        assert e.contains_point(0.0, 0.0)
        assert e.contains_point(10.0, 10.0)
        assert not e.contains_point(10.0001, 5.0)

    def test_contains_envelope(self):
        assert env().contains(env(1, 1, 9, 9))
        assert not env().contains(env(1, 1, 11, 9))
        assert env().contains(env())  # itself

    def test_intersects_touching_edges(self):
        assert env(0, 0, 1, 1).intersects(env(1, 0, 2, 1))
        assert not env(0, 0, 1, 1).intersects(env(1.001, 0, 2, 1))

    def test_intersection(self):
        shared = env(0, 0, 5, 5).intersection(env(3, 3, 8, 8))
        assert shared.as_tuple() == (3, 3, 5, 5)
        assert env(0, 0, 1, 1).intersection(env(2, 2, 3, 3)) is None

    def test_expand(self):
        assert env(0, 0, 1, 1).expand(env(5, -2, 6, 0)).as_tuple() == \
            (0, -2, 6, 1)


class TestMeasures:
    def test_width_height_area_center(self):
        e = env(0, 0, 4, 2)
        assert (e.width, e.height, e.area) == (4, 2, 8)
        assert e.center == (2, 1)

    def test_min_distance_inside_is_zero(self):
        assert env().min_distance_to_point(5, 5) == 0.0

    def test_min_distance_outside(self):
        assert env().min_distance_to_point(13, 14) == 5.0  # 3-4-5

    def test_quadrants_partition(self):
        quadrants = env().quadrants()
        assert len(quadrants) == 4
        assert Envelope.union_all(list(quadrants)).as_tuple() == \
            env().as_tuple()
        assert sum(q.area for q in quadrants) == pytest.approx(env().area)

    def test_buffer(self):
        assert env().buffer(1, 2).as_tuple() == (-1, -2, 11, 12)


@given(x1=coords, y1=lats, x2=coords, y2=lats, px=coords, py=lats)
def test_contains_point_consistent_with_distance(x1, y1, x2, y2, px, py):
    e = Envelope(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
    inside = e.contains_point(px, py)
    distance = e.min_distance_to_point(px, py)
    assert inside == (distance == 0.0)


@given(x1=coords, y1=lats, x2=coords, y2=lats)
def test_intersection_is_commutative_and_contained(x1, y1, x2, y2):
    a = Envelope(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
    b = Envelope(-10, -10, 20, 20)
    ab = a.intersection(b)
    ba = b.intersection(a)
    assert (ab is None) == (ba is None)
    if ab is not None:
        assert ab.as_tuple() == ba.as_tuple()
        assert a.contains(ab) and b.contains(ab)
