"""The JustQL shell."""

import io

import pytest

from repro.cli import Shell, format_result, main, split_statements
from repro.sql.result import ResultSet


class TestSplitStatements:
    def test_basic_split(self):
        assert split_statements("A; B ;C") == ["A", "B", "C"]

    def test_quotes_protect_semicolons(self):
        assert split_statements("SELECT 'a;b' FROM t; NEXT") == \
            ["SELECT 'a;b' FROM t", "NEXT"]

    def test_trailing_without_semicolon(self):
        assert split_statements("ONLY ONE") == ["ONLY ONE"]

    def test_empty(self):
        assert split_statements(" ;  ; ") == []


class TestFormatResult:
    def test_status_message(self):
        assert format_result(ResultSet.status("table t created")) == \
            "table t created"

    def test_empty_rows(self):
        assert format_result(ResultSet.from_rows([], ["a"])) == "(0 rows)"

    def test_table_alignment(self):
        rs = ResultSet.from_rows(
            [{"fid": 1, "name": "alpha"}, {"fid": 22, "name": "b"}])
        text = format_result(rs)
        lines = text.splitlines()
        assert lines[0].startswith("fid")
        assert "alpha" in text
        assert "(2 rows" in lines[-1]

    def test_null_and_truncation(self):
        rs = ResultSet.from_rows([{"x": None, "y": "A" * 100}])
        text = format_result(rs)
        assert "NULL" in text
        assert "…" in text

    def test_row_cap(self):
        rs = ResultSet.from_rows([{"i": i} for i in range(80)])
        text = format_result(rs, max_rows=10)
        assert "showing first 10" in text


class TestShell:
    def run(self, *statements):
        out = io.StringIO()
        shell = Shell(out=out)
        codes = [shell.execute(s) for s in statements]
        return codes, out.getvalue()

    def test_ddl_dml_select_flow(self):
        codes, output = self.run(
            "CREATE TABLE t (fid integer:primary key, name string, "
            "geom point)",
            "INSERT INTO t VALUES (1, 'x', st_makePoint(116.3, 39.9))",
            "SELECT fid, name FROM t",
        )
        assert codes == [True, True, True]
        assert "table t created" in output
        assert "x" in output

    def test_error_reported_not_raised(self):
        codes, output = self.run("SELECT * FROM ghost")
        assert codes == [False]
        assert "error:" in output

    def test_run_script(self):
        out = io.StringIO()
        shell = Shell(out=out)
        failures = shell.run_script(
            "CREATE TABLE t (fid integer:primary key, geom point);"
            "SHOW TABLES;")
        assert failures == 0
        assert "t" in out.getvalue()


class TestMain:
    def test_one_shot_statement(self):
        out = io.StringIO()
        code = main(["SHOW TABLES"], out=out)
        assert code == 0
        assert "(0 rows)" in out.getvalue()

    def test_one_shot_failure_code(self):
        out = io.StringIO()
        assert main(["SELECT * FROM nope"], out=out) == 1

    def test_script_file(self, tmp_path):
        script = tmp_path / "setup.sql"
        script.write_text(
            "CREATE TABLE t (fid integer:primary key, geom point);\n"
            "INSERT INTO t VALUES (1, st_makePoint(1, 2));\n"
            "SELECT count(*) FROM t;\n")
        out = io.StringIO()
        assert main(["--script", str(script)], out=out) == 0
        assert "1" in out.getvalue()

    def test_faults_subcommand(self):
        out = io.StringIO()
        code = main(["faults", "--keys", "400", "--kill-after", "250",
                     "--policy", "sync"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "crash after 250/400 writes" in text
        assert "sync" in text
        # SYNC must report zero lost acknowledged writes.
        row = next(line for line in text.splitlines()
                   if line.strip().startswith("sync"))
        assert row.split("|")[2].strip() == "0"

    def test_metrics_subcommand(self):
        out = io.StringIO()
        code = main(["metrics", "--rows", "400", "--repeat", "2"],
                    out=out)
        text = out.getvalue()
        assert code == 0
        assert "EXPLAIN ANALYZE" in text
        assert "RegionScan[" in text
        assert "kvstore.cache_hit_ratio" in text
        assert "server.statement_sim_ms_p95" in text
        assert "slow-query log" in text

    def test_faults_all_policies(self):
        out = io.StringIO()
        assert main(["faults", "--keys", "300", "--kill-after", "200"],
                    out=out) == 0
        text = out.getvalue()
        for policy in ("sync", "periodic", "async"):
            assert policy in text

    def test_interactive_loop(self, monkeypatch):
        out = io.StringIO()
        stdin = io.StringIO("SHOW TABLES;\nexit;\n")
        shell = Shell(out=out)
        shell.interact(stdin=stdin)
        text = out.getvalue()
        assert "justql>" in text
        assert "(0 rows)" in text
        assert "bye" in text
