"""SSTable blocks, charging, and lookups."""

from repro.kvstore.blockcache import BlockCache
from repro.kvstore.iostats import IOStats
from repro.kvstore.sstable import SSTable


def make_sstable(n=100, value_size=100, block_bytes=1024, stats=None):
    stats = stats if stats is not None else IOStats()
    entries = [(f"k{i:05d}".encode(), b"v" * value_size)
               for i in range(n)]
    return SSTable(entries, stats, block_bytes), stats


def test_write_charged_once():
    sstable, stats = make_sstable()
    assert stats.disk_bytes_written == sstable.total_bytes
    assert sstable.total_bytes > 0


def test_charge_write_flag():
    stats = IOStats()
    SSTable([(b"a", b"1")], stats, charge_write=False)
    assert stats.disk_bytes_written == 0


def test_scan_returns_half_open_range():
    sstable, _ = make_sstable(50)
    got = [k for k, _v in sstable.scan(b"k00010", b"k00020")]
    assert got == [f"k{i:05d}".encode() for i in range(10, 20)]


def test_scan_charges_only_touched_blocks():
    sstable, stats = make_sstable(100, value_size=100, block_bytes=1024)
    before = stats.disk_bytes_read
    list(sstable.scan(b"k00000", b"k00005"))
    delta = stats.disk_bytes_read - before
    assert 0 < delta < sstable.total_bytes


def test_full_scan_charges_everything():
    sstable, stats = make_sstable()
    before = stats.disk_bytes_read
    list(sstable.scan(b"", b"\xff" * 8))
    assert stats.disk_bytes_read - before == sstable.total_bytes


def test_block_cache_absorbs_repeat_reads():
    sstable, stats = make_sstable()
    cache = BlockCache(10 ** 6)
    list(sstable.scan(b"k00000", b"k00005", cache))
    disk_after_first = stats.disk_bytes_read
    list(sstable.scan(b"k00000", b"k00005", cache))
    assert stats.disk_bytes_read == disk_after_first
    assert stats.cache_hits > 0


def test_get_found_and_missing():
    sstable, _ = make_sstable(10)
    assert sstable.get(b"k00003") == (True, b"v" * 100)
    assert sstable.get(b"k99999") == (False, None)
    assert sstable.get(b"k000035") == (False, None)  # between keys


def test_first_last_keys():
    sstable, _ = make_sstable(10)
    assert sstable.first_key == b"k00000"
    assert sstable.last_key == b"k00009"


def test_tombstones_preserved():
    stats = IOStats()
    sstable = SSTable([(b"a", None), (b"b", b"1")], stats)
    assert sstable.get(b"a") == (True, None)
