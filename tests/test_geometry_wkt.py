"""WKT round-tripping."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import LineString, Point, Polygon, from_wkt, to_wkt

lngs = st.floats(-180, 180, allow_nan=False, allow_infinity=False)
lats = st.floats(-90, 90, allow_nan=False, allow_infinity=False)


def test_point_roundtrip():
    p = Point(-73.97, 40.78)
    assert from_wkt(to_wkt(p)) == p


def test_point_parse_formats():
    assert from_wkt("POINT (1 2)") == Point(1, 2)
    assert from_wkt("point(1.5 -2.25)") == Point(1.5, -2.25)
    assert from_wkt("  POINT ( -1e1 2.0 )  ") == Point(-10, 2)


def test_linestring_roundtrip():
    line = LineString([(0, 0), (1.25, 2.5), (-3, 4)])
    assert from_wkt(to_wkt(line)) == line


def test_polygon_roundtrip():
    poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
    parsed = from_wkt(to_wkt(poly))
    assert parsed == poly


def test_malformed_wkt_raises():
    for bad in ("POINT 1 2", "LINESTRING ()", "CIRCLE (0 0 1)",
                "POINT (1)", ""):
        with pytest.raises(GeometryError):
            from_wkt(bad)


def test_unknown_geometry_type_raises():
    class Fake:
        pass
    with pytest.raises(GeometryError):
        to_wkt(Fake())


@given(lng=lngs, lat=lats)
def test_point_roundtrip_precision(lng, lat):
    p = Point(lng, lat)
    q = from_wkt(to_wkt(p))
    assert q.lng == pytest.approx(lng, abs=1e-8)
    assert q.lat == pytest.approx(lat, abs=1e-8)


@given(coords=st.lists(st.tuples(lngs, lats), min_size=2, max_size=8))
def test_linestring_roundtrip_precision(coords):
    line = LineString(coords)
    parsed = from_wkt(to_wkt(line))
    assert len(parsed) == len(line)
    for (x1, y1), (x2, y2) in zip(parsed.coords, line.coords):
        assert x1 == pytest.approx(x2, abs=1e-8)
        assert y1 == pytest.approx(y2, abs=1e-8)
