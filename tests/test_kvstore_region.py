"""Region internals: routing, flush/compaction, merge correctness."""

from repro.kvstore.iostats import IOStats
from repro.kvstore.region import Region


def make_region(**kwargs):
    defaults = dict(start_key=b"", end_key=None, stats=IOStats(),
                    flush_bytes=1024, block_bytes=256)
    defaults.update(kwargs)
    return Region(**defaults)


class TestRouting:
    def test_owns_unbounded(self):
        region = make_region()
        assert region.owns(b"")
        assert region.owns(b"\xff\xff")

    def test_owns_bounded(self):
        region = make_region(start_key=b"m", end_key=b"t")
        assert not region.owns(b"a")
        assert region.owns(b"m")
        assert region.owns(b"s\xff")
        assert not region.owns(b"t")  # end exclusive

    def test_overlaps(self):
        # overlaps() takes a half-open [start, stop) request range.
        region = make_region(start_key=b"m", end_key=b"t")
        assert region.overlaps(b"a", b"m\x00")  # includes start key
        assert region.overlaps(b"p", b"z")
        assert not region.overlaps(b"a", b"m")  # stops short of start
        assert not region.overlaps(b"t", b"z")  # starts at excl end
        assert not region.overlaps(b"a", b"l")


class TestFlushCompact:
    def test_auto_flush_on_threshold(self):
        region = make_region(flush_bytes=256)
        for i in range(50):
            region.put(f"k{i:03d}".encode(), b"v" * 20)
        assert len(region.sstables) >= 1

    def test_compaction_merges_runs(self):
        region = make_region()
        for generation in range(10):
            region.put(b"key", f"gen{generation}".encode())
            region.flush()
        region.compact()
        assert len(region.sstables) == 1
        assert region.get(b"key", None) == b"gen9"

    def test_compaction_drops_tombstones(self):
        region = make_region()
        region.put(b"a", b"1")
        region.flush()
        region.put(b"a", None)
        region.flush()
        region.compact()
        assert region.get(b"a", None) is None
        assert list(region.scan(b"", b"\xff", None)) == []
        assert len(region.sstables) == 1

    def test_scan_merges_memstore_over_sstables(self):
        region = make_region()
        region.put(b"a", b"old")
        region.flush()
        region.put(b"a", b"new")       # memstore shadows the run
        region.put(b"b", b"only-mem")
        got = dict(region.scan(b"", b"\xff", None))
        assert got == {b"a": b"new", b"b": b"only-mem"}

    def test_scan_respects_region_bounds(self):
        region = make_region(start_key=b"c", end_key=b"f")
        for key in (b"c", b"d", b"e"):
            region.put(key, key)
        got = [k for k, _v in region.scan(b"", b"\xff", None)]
        assert got == [b"c", b"d", b"e"]

    def test_all_entries_for_split(self):
        region = make_region()
        region.put(b"a", b"1")
        region.flush()
        region.put(b"b", b"2")
        region.put(b"a", None)  # deleted
        assert region.all_entries() == [(b"b", b"2")]


class TestScanBounds:
    def test_stop_is_exclusive(self):
        region = make_region()
        for key in (b"a", b"b", b"c"):
            region.put(key, key)
        got = [k for k, _v in region.scan(b"a", b"c", None)]
        assert got == [b"a", b"b"]

    def test_region_end_key_caps_scan(self):
        region = make_region(start_key=b"", end_key=b"c")
        region.put(b"a", b"1")
        region.put(b"b", b"2")
        # Keys at/above the region's end key belong to the next region.
        got = [k for k, _v in region.scan(b"", b"\xff", None)]
        assert got == [b"a", b"b"]
