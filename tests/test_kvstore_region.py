"""Region internals: routing, flush/compaction, merge correctness."""

from repro.kvstore.iostats import IOStats
from repro.kvstore.region import Region, _predecessor


def make_region(**kwargs):
    defaults = dict(start_key=b"", end_key=None, stats=IOStats(),
                    flush_bytes=1024, block_bytes=256)
    defaults.update(kwargs)
    return Region(**defaults)


class TestRouting:
    def test_owns_unbounded(self):
        region = make_region()
        assert region.owns(b"")
        assert region.owns(b"\xff\xff")

    def test_owns_bounded(self):
        region = make_region(start_key=b"m", end_key=b"t")
        assert not region.owns(b"a")
        assert region.owns(b"m")
        assert region.owns(b"s\xff")
        assert not region.owns(b"t")  # end exclusive

    def test_overlaps(self):
        region = make_region(start_key=b"m", end_key=b"t")
        assert region.overlaps(b"a", b"m")      # touches start
        assert region.overlaps(b"p", b"z")
        assert not region.overlaps(b"t", b"z")  # starts at excl end
        assert not region.overlaps(b"a", b"l")


class TestFlushCompact:
    def test_auto_flush_on_threshold(self):
        region = make_region(flush_bytes=256)
        for i in range(50):
            region.put(f"k{i:03d}".encode(), b"v" * 20)
        assert len(region.sstables) >= 1

    def test_compaction_merges_runs(self):
        region = make_region()
        for generation in range(10):
            region.put(b"key", f"gen{generation}".encode())
            region.flush()
        region.compact()
        assert len(region.sstables) == 1
        assert region.get(b"key", None) == b"gen9"

    def test_compaction_drops_tombstones(self):
        region = make_region()
        region.put(b"a", b"1")
        region.flush()
        region.put(b"a", None)
        region.flush()
        region.compact()
        assert region.get(b"a", None) is None
        assert list(region.scan(b"", b"\xff", None)) == []
        assert len(region.sstables) == 1

    def test_scan_merges_memstore_over_sstables(self):
        region = make_region()
        region.put(b"a", b"old")
        region.flush()
        region.put(b"a", b"new")       # memstore shadows the run
        region.put(b"b", b"only-mem")
        got = dict(region.scan(b"", b"\xff", None))
        assert got == {b"a": b"new", b"b": b"only-mem"}

    def test_scan_respects_region_bounds(self):
        region = make_region(start_key=b"c", end_key=b"f")
        for key in (b"c", b"d", b"e"):
            region.put(key, key)
        got = [k for k, _v in region.scan(b"", b"\xff", None)]
        assert got == [b"c", b"d", b"e"]

    def test_all_entries_for_split(self):
        region = make_region()
        region.put(b"a", b"1")
        region.flush()
        region.put(b"b", b"2")
        region.put(b"a", None)  # deleted
        assert region.all_entries() == [(b"b", b"2")]


class TestPredecessor:
    def test_simple(self):
        assert _predecessor(b"b") < b"b"
        assert _predecessor(b"b") > b"a\xf0"

    def test_zero_byte(self):
        assert _predecessor(b"a\x00") == b"a"

    def test_empty(self):
        assert _predecessor(b"") == b""

    def test_ordering_property(self):
        for key in (b"abc", b"a\x00b", b"\x01", b"zz\xff"):
            predecessor = _predecessor(key)
            assert predecessor < key
