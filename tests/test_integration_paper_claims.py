"""Integration tests pinning the paper's qualitative claims.

Each test corresponds to a sentence in the paper; together they are the
executable summary of Sections IV-VIII.
"""

import pytest

from repro import (
    Envelope,
    JustEngine,
    Point,
    Schema,
    STQuery,
    TimePeriod,
)
from repro.curves.strategies import (
    IndexedRecord,
    XZ2TStrategy,
    XZ3Strategy,
    Z2TStrategy,
    Z3Strategy,
)
from repro.geometry import LineString

from conftest import POI_SCHEMA_FIELDS, T0, make_poi_rows


class TestSectionIVB_Z2TMotivation:
    """'The spatial filtering is invalidated' — Figure 4a's key range."""

    def test_z3_key_space_explodes_for_intra_day_query(self):
        z2t = Z2TStrategy(period=TimePeriod.DAY, num_shards=1)
        z3 = Z3Strategy(period=TimePeriod.DAY, num_shards=1)
        # The paper's example: 1km x 1km, 01:00..13:00 within one day.
        query = STQuery(Envelope(116.30, 39.90, 116.31, 39.91),
                        3600.0, 13 * 3600.0)

        def covered_key_space(strategy):
            total = 0
            for kr in strategy.ranges(query):
                lo = int.from_bytes(kr.start[5:13], "big")
                hi = int.from_bytes(kr.end[5:13], "big")
                total += hi - lo + 1
            return total

        # Z2T covers orders of magnitude less key space.
        assert covered_key_space(z2t) * 1000 < covered_key_space(z3)

    def test_xz3_loses_spatial_filtering(self):
        xz2t = XZ2TStrategy(period=TimePeriod.DAY, num_shards=1)
        xz3 = XZ3Strategy(period=TimePeriod.DAY, num_shards=1)
        query = STQuery(Envelope(116.30, 39.90, 116.33, 39.93),
                        3600.0, 13 * 3600.0)
        # XZ3's covering ranges span a larger share of its key space
        # than XZ2T's do of its own.
        def share(strategy, max_code):
            covered = 0
            for kr in strategy.ranges(query):
                lo = int.from_bytes(kr.start[5:13], "big")
                hi = int.from_bytes(kr.end[5:13], "big")
                covered += hi - lo + 1
            return covered / max_code

        assert share(xz2t, xz2t.curve.max_code()) * 10 < \
            share(xz3, xz3.curve.max_code())


class TestSectionIVD_Compression:
    """'Compression ... only suitable for big fields.'"""

    def test_trajectory_table_shrinks(self, small_trajs):
        compressed = JustEngine(compression_enabled=True)
        plain = JustEngine(compression_enabled=False)
        for engine in (compressed, plain):
            table = engine.create_plugin_table("traj", "trajectory")
            table.insert_trajectories(small_trajs)
            table.flush()
        assert compressed.table("traj").storage_bytes() < \
            0.8 * plain.table("traj").storage_bytes()

    def test_query_results_identical_with_and_without(self, small_trajs):
        env = Envelope(116.0, 39.6, 116.8, 40.2)
        t_lo = min(t.start_time for t in small_trajs)
        results = []
        for compression in (True, False):
            engine = JustEngine(compression_enabled=compression)
            table = engine.create_plugin_table("traj", "trajectory")
            table.insert_trajectories(small_trajs)
            rows = engine.st_range_query("traj", env, t_lo,
                                         t_lo + 5 * 86400).rows
            results.append(sorted(r["tid"] for r in rows))
        assert results[0] == results[1]


class TestSectionIII_UpdateEnabled:
    """'JUST supports new data insertions or historical data updates'
    without index reconstruction."""

    def test_keys_are_independent_of_other_records(self):
        strategy = Z2TStrategy()
        record = IndexedRecord("r1", Point(116.4, 39.9), T0, T0)
        key_alone = strategy.key(record)
        # Insert unrelated records; the key must not change.
        for i in range(100):
            strategy.key(IndexedRecord(str(i), Point(116.0, 39.8),
                                       T0 + i, T0 + i))
        assert strategy.key(record) == key_alone

    def test_historical_insert_queryable(self, poi_engine):
        ancient = T0 - 86400 * 1000
        poi_engine.insert("poi", [{
            "fid": 77_001, "name": "ancient", "time": ancient,
            "geom": Point(116.2, 39.9)}])
        rows = poi_engine.st_range_query(
            "poi", Envelope(116.0, 39.8, 116.5, 40.1),
            ancient - 1, ancient + 1).rows
        assert [r["name"] for r in rows] == ["ancient"]


class TestSectionVIII_CacheElimination:
    """'HBase will cache results ... perform each query only once.'"""

    def test_repeat_query_hits_cache(self, poi_engine):
        table = poi_engine.table("poi")
        table.flush()
        env = Envelope(116.1, 39.85, 116.3, 40.0)
        poi_engine.spatial_range_query("poi", env)
        stats = poi_engine.store.stats
        before = stats.disk_bytes_read
        poi_engine.spatial_range_query("poi", env)
        assert stats.disk_bytes_read == before  # all blocks cached

    def test_clear_caches_restores_cold_reads(self, poi_engine):
        table = poi_engine.table("poi")
        table.flush()
        env = Envelope(116.1, 39.85, 116.3, 40.0)
        poi_engine.spatial_range_query("poi", env)
        poi_engine.store.clear_caches()
        before = poi_engine.store.stats.disk_bytes_read
        poi_engine.spatial_range_query("poi", env)
        assert poi_engine.store.stats.disk_bytes_read > before


class TestSectionVIIIF_Scalability:
    """'The efficiency of spatio-temporal query has nothing to do with
    the data size' — appending new periods leaves old periods' scans
    untouched."""

    def test_st_query_cost_flat_when_new_periods_appended(self):
        engine = JustEngine()
        engine.create_table("t", Schema(list(POI_SCHEMA_FIELDS)))
        base = make_poi_rows(400, seed=5)
        engine.insert("t", base)
        engine.table("t").flush()
        env = Envelope(116.0, 39.8, 116.5, 40.1)
        engine.store.clear_caches()
        before = engine.store.stats.snapshot()
        engine.st_range_query("t", env, T0, T0 + 3600)
        first = engine.store.stats.snapshot().delta(before)

        # Append the same volume again, 100 days later (new periods).
        later = [{**r, "fid": r["fid"] + 10_000,
                  "time": r["time"] + 100 * 86400} for r in base]
        engine.insert("t", later)
        engine.table("t").flush()
        engine.store.clear_caches()
        before = engine.store.stats.snapshot()
        engine.st_range_query("t", env, T0, T0 + 3600)
        second = engine.store.stats.snapshot().delta(before)

        # Same periods scanned, same bytes (up to region-split noise).
        assert second.disk_bytes_read <= first.disk_bytes_read * 1.6

    def test_spatial_query_cost_grows_with_data(self):
        engine = JustEngine()
        engine.create_table("t", Schema(list(POI_SCHEMA_FIELDS)))
        base = make_poi_rows(400, seed=5)
        engine.insert("t", base)
        engine.table("t").flush()
        env = Envelope(116.0, 39.8, 116.5, 40.1)
        engine.store.clear_caches()
        before = engine.store.stats.snapshot()
        engine.spatial_range_query("t", env)
        first = engine.store.stats.snapshot().delta(before)

        more = [{**r, "fid": r["fid"] + 10_000} for r in base]
        engine.insert("t", more)
        engine.table("t").flush()
        engine.store.clear_caches()
        before = engine.store.stats.snapshot()
        engine.spatial_range_query("t", env)
        second = engine.store.stats.snapshot().delta(before)
        assert second.result_bytes > 1.5 * first.result_bytes


class TestTableIII_StorageSettings:
    """Traj uses XZ2 + XZ2T on the MBR; Order uses Z2 + Z2T."""

    def test_default_settings_match_table3(self, small_trajs):
        engine = JustEngine()
        traj = engine.create_plugin_table("traj", "trajectory")
        assert set(traj.strategies) == {"xz2", "xz2t"}
        order = engine.create_table("orders", Schema(
            list(POI_SCHEMA_FIELDS)))
        assert set(order.strategies) == {"z2", "z2t"}
        # Z2T/XZ2T default period is a day (Section VIII-A).
        assert traj.strategies["xz2t"].period is TimePeriod.DAY
        assert order.strategies["z2t"].period is TimePeriod.DAY

    def test_trajectory_indexed_by_mbr_and_start_time(self, small_trajs):
        engine = JustEngine()
        table = engine.create_plugin_table("traj", "trajectory")
        trajectory = small_trajs[0]
        table.insert_trajectories([trajectory])
        row = table.get(trajectory.tid)
        geometry = table.record_geometry(row)
        assert isinstance(geometry, LineString)
        assert table.record_time_extent(row) == pytest.approx(
            (trajectory.start_time, trajectory.end_time))
