"""Continuous queries: watermarks, windows, views, geofence alerts."""

import pytest

from repro.core.schema import FieldType
from repro.datagen.transitgen import (
    TRANSIT_RT_CONFIG,
    TransitGenerator,
    generate_transit_feed,
)
from repro.errors import ExecutionError, TableExistsError
from repro.streaming import (
    Avg,
    Count,
    Max,
    Min,
    SlidingWindows,
    Sum,
    TumblingWindows,
    WatermarkTracker,
    WindowedAggregator,
    batch_aggregate,
    cell_envelope,
    curve_cell_key,
)


class TestWatermark:
    def test_trails_max_event_time(self):
        tracker = WatermarkTracker(max_delay_s=10.0)
        assert tracker.watermark is None
        tracker.observe(100.0)
        assert tracker.watermark == 90.0
        tracker.observe(95.0)  # out of order: frontier does not regress
        assert tracker.watermark == 90.0
        tracker.observe(120.0)
        assert tracker.watermark == 110.0

    def test_late_detection(self):
        tracker = WatermarkTracker(max_delay_s=5.0)
        tracker.observe(100.0)
        assert not tracker.is_late(96.0)
        assert tracker.is_late(94.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ExecutionError):
            WatermarkTracker(max_delay_s=-1.0)


class TestWindowAssigners:
    def test_tumbling(self):
        windows = TumblingWindows(60.0)
        assert windows.assign(0.0) == [(0.0, 60.0)]
        assert windows.assign(59.9) == [(0.0, 60.0)]
        assert windows.assign(60.0) == [(60.0, 120.0)]

    def test_sliding_overlap(self):
        windows = SlidingWindows(60.0, 20.0)
        assert windows.assign(65.0) == [(20.0, 80.0), (40.0, 100.0),
                                        (60.0, 120.0)]

    def test_invalid_sizes(self):
        with pytest.raises(ExecutionError):
            TumblingWindows(0.0)
        with pytest.raises(ExecutionError):
            SlidingWindows(60.0, 90.0)  # gaps


def _row(key, t, v):
    return {"k": key, "time": t, "v": v}


class TestWindowedAggregator:
    def _agg(self, windows=None):
        return WindowedAggregator(
            windows or TumblingWindows(60.0),
            {"n": Count(), "total": Sum("v"), "avg": Avg("v"),
             "lo": Min("v"), "hi": Max("v")},
            key_fields=("k",))

    def test_finalize_on_watermark_pass(self):
        agg = self._agg()
        agg.add(_row("a", 10.0, 1.0))
        agg.add(_row("a", 30.0, 3.0))
        assert agg.advance(59.0) == []        # window [0,60) still open
        rows = agg.advance(60.0)
        assert rows == [{"window_start": 0.0, "window_end": 60.0,
                         "k": "a", "n": 2, "total": 4.0, "avg": 2.0,
                         "lo": 1.0, "hi": 3.0}]
        assert agg.open_windows == 0
        assert agg.finalized_windows == 1

    def test_late_events_dropped_and_counted(self):
        agg = self._agg()
        agg.add(_row("a", 10.0, 1.0))
        agg.advance(60.0)
        agg.add(_row("a", 20.0, 9.0))  # behind the finalized window
        assert agg.late_dropped == 1
        assert agg.advance(120.0) == []  # nothing reopened

    def test_in_batch_disorder_is_not_late(self):
        """Events may arrive out of order within a batch: the loader
        buffers the whole batch before advancing, so only cross-batch
        delays beyond max_delay_s can drop events."""
        agg = self._agg()
        agg.add(_row("a", 70.0, 1.0))
        agg.add(_row("a", 10.0, 2.0))  # older, but window not finalized
        rows = agg.advance(60.0)
        assert rows[0]["n"] == 1 and rows[0]["total"] == 2.0
        assert agg.late_dropped == 0

    def test_flush_emits_everything(self):
        agg = self._agg()
        agg.add(_row("a", 10.0, 1.0))
        agg.add(_row("b", 70.0, 2.0))
        rows = agg.flush()
        assert [r["window_start"] for r in rows] == [0.0, 60.0]

    def test_sliding_counts_every_window(self):
        agg = WindowedAggregator(SlidingWindows(60.0, 30.0),
                                 {"n": Count()}, key_fields=())
        agg.add({"time": 65.0})
        rows = agg.flush()
        assert [(r["window_start"], r["n"]) for r in rows] \
            == [(30.0, 1), (60.0, 1)]

    def test_streamed_equals_batch(self):
        import random
        rng = random.Random(7)
        rows = [_row(rng.choice("ab"), rng.uniform(0, 600), i)
                for i in range(200)]
        shuffled = list(rows)
        rng.shuffle(shuffled)
        streamed = self._agg()
        out = []
        for start in range(0, len(shuffled), 25):
            batch = shuffled[start:start + 25]
            for row in batch:
                streamed.add(row)
            # Watermark covering full disorder: nothing goes late.
            out.extend(streamed.advance(
                max(r["time"] for r in shuffled[:start + 25]) - 600.0))
        out.extend(streamed.flush())
        batch_rows = batch_aggregate(
            shuffled, TumblingWindows(60.0),
            {"n": Count(), "total": Sum("v"), "avg": Avg("v"),
             "lo": Min("v"), "hi": Max("v")}, key_fields=("k",))
        assert streamed.late_dropped == 0
        assert out == batch_rows


class TestCurveCellKeys:
    def test_key_roundtrips_to_envelope(self):
        from repro.geometry.point import Point
        key = curve_cell_key("geom", bits=12)
        cell = key({"geom": Point(116.4, 39.9)})
        env = cell_envelope(cell, bits=12)
        assert env.min_lng <= 116.4 <= env.max_lng
        assert env.min_lat <= 39.9 <= env.max_lat

    def test_nearby_points_share_a_cell(self):
        from repro.geometry.point import Point
        key = curve_cell_key("geom", bits=8)
        assert key({"geom": Point(116.40, 39.90)}) \
            == key({"geom": Point(116.41, 39.91)})


class TestMaterializedViews:
    def _pipeline(self, engine):
        from repro.datagen.transitgen import TRANSIT_RT_SCHEMA
        engine.create_table("transit_rt", TRANSIT_RT_SCHEMA)
        engine.create_topic("rt")
        loader = engine.stream_load("rt", "transit_rt",
                                    TRANSIT_RT_CONFIG, batch_size=50,
                                    max_delay_s=120.0)
        agg = WindowedAggregator(TumblingWindows(900.0),
                                 {"arrivals": Count(),
                                  "avg_delay": Avg("delay")},
                                 key_fields=("route", "seq"))
        view = loader.materialize_window(
            "seg", agg, types={"arrivals": FieldType.LONG,
                               "avg_delay": FieldType.DOUBLE})
        return loader, view

    def test_view_is_catalog_registered_and_queryable(self, engine):
        loader, view = self._pipeline(engine)
        assert engine.catalog.exists("seg")
        assert engine.catalog.get("seg").kind == "view"
        # Not a table: SHOW TABLES skips it, SHOW VIEWS lists it.
        assert "seg" not in engine.table_names()
        assert "seg" in engine.view_names()
        engine.topic("rt").append_many(generate_transit_feed(
            num_routes=2, stops_per_route=5, trips_per_route=3))
        loader.drain()
        loader.finalize()
        rows = engine.sql("SELECT route, seq, arrivals FROM seg "
                          "ORDER BY route, seq, arrivals").rows
        assert rows  # finalized windows are live in SQL
        assert view.row_count == len(
            engine.sql("SELECT * FROM seg").rows)
        desc = engine.sql("DESC seg").rows
        assert {r["field"] for r in desc} >= {"window_start", "route",
                                              "arrivals"}

    def test_view_refreshes_incrementally(self, engine):
        loader, view = self._pipeline(engine)
        feed = generate_transit_feed(num_routes=2, stops_per_route=5,
                                     trips_per_route=4)
        topic = engine.topic("rt")
        counts = []
        for start in range(0, len(feed), 40):
            topic.append_many(feed[start:start + 40])
            loader.poll()
            counts.append(view.row_count)
        loader.finalize()
        counts.append(view.row_count)
        assert counts == sorted(counts)          # grow-only
        assert counts[-1] > counts[0]            # actually refreshed
        assert view.refresh_count >= 2           # incrementally

    def test_duplicate_view_name_rejected(self, engine):
        engine.create_materialized_view("mv", ["a"])
        with pytest.raises(TableExistsError):
            engine.create_materialized_view("mv", ["a"])
        with pytest.raises(TableExistsError):
            engine.create_view("mv", None)

    def test_drop_view_clears_catalog(self, engine):
        engine.create_materialized_view("mv", ["a"])
        engine.drop_view("mv")
        assert not engine.catalog.exists("mv")
        assert not engine.has_view("mv")

    def test_materialized_views_never_expire(self, engine):
        engine.create_materialized_view("mv", ["a"])
        assert engine.expire_views(max_idle_seconds=-1.0) == []
        assert engine.has_view("mv")

    def test_materialized_views_survive_session_death(self, engine):
        from repro.service.server import JustServer
        server = JustServer(engine)
        session_id = server.connect("u")
        engine.create_materialized_view("u__mv", ["a"], owner="u")
        server.disconnect(session_id)
        assert engine.has_view("u__mv")

    def test_sys_tables_lists_materialized_views(self, engine):
        engine.create_materialized_view("mv", ["a"])
        rows = [r for r in engine.sql("SELECT * FROM sys.tables").rows
                if r["name"] == "mv"]
        assert rows and rows[0]["kind"] == "materialized_view"


class TestGeofenceAlerts:
    def _setup(self, engine):
        from repro.geometry.polygon import Polygon
        fences = engine.create_plugin_table("zones", "geofence")
        fences.insert_rows([{
            "gid": "Z1", "name": "downtown", "category": "c",
            "valid_from": 0.0, "valid_to": 1e12,
            "area": Polygon([(116.0, 39.0), (117.0, 39.0),
                             (117.0, 40.0), (116.0, 40.0)]),
        }], engine.cluster.job())
        from repro.streaming import GeofenceAlerter
        return GeofenceAlerter(engine, "zones", key_field="fid")

    def _pair(self, fid, lng, lat, t, published_ms=None):
        from repro.geometry.point import Point
        event = {} if published_ms is None \
            else {"published_ms": published_ms}
        return (event, {"fid": fid, "geom": Point(lng, lat), "time": t})

    def test_enter_and_exit(self, engine):
        alerter = self._setup(engine)
        alerts = alerter.process([self._pair("v1", 116.5, 39.5, 100.0)])
        assert [(a.alert, a.gid, a.object_id) for a in alerts] \
            == [("enter", "Z1", "v1")]
        # Still inside: no repeat alert.
        assert alerter.process(
            [self._pair("v1", 116.6, 39.6, 200.0)]) == []
        alerts = alerter.process([self._pair("v1", 118.0, 39.5, 300.0)])
        assert [(a.alert, a.fence_name) for a in alerts] \
            == [("exit", "downtown")]
        assert alerter.total_by_kind == {"enter": 1, "exit": 1}

    def test_alerts_surface_in_sys_events(self, engine):
        alerter = self._setup(engine)
        alerter.process([self._pair("v1", 116.5, 39.5, 100.0)])
        rows = engine.sql("SELECT kind, table FROM sys.events "
                          "WHERE kind = 'geofence_alert'").rows
        assert rows == [{"kind": "geofence_alert", "table": "zones"}]

    def test_alerts_published_to_sink_topic(self, engine):
        alerter = self._setup(engine)
        alerter.sink = engine.create_topic("alerts")
        alerter.process([self._pair("v1", 116.5, 39.5, 100.0,
                                    published_ms=0.0)])
        events = engine.topic("alerts").read(0, 10)
        assert len(events) == 1 and events[0]["alert"] == "enter"
        assert events[0]["object_id"] == "v1"

    def test_latency_uses_published_stamp(self, engine):
        alerter = self._setup(engine)
        engine.events.advance(500.0)
        job = engine.cluster.job()
        alerts = alerter.process(
            [self._pair("v1", 116.5, 39.5, 100.0, published_ms=100.0)],
            job)
        assert alerts[0].latency_ms == pytest.approx(
            400.0 + job.elapsed_ms)

    def test_non_geofence_table_rejected(self, engine):
        from repro import Schema
        from conftest import POI_SCHEMA_FIELDS
        engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
        from repro.streaming import GeofenceAlerter
        with pytest.raises(ExecutionError):
            GeofenceAlerter(engine, "poi")


class TestTransitGenerator:
    def test_deterministic(self):
        assert generate_transit_feed(num_routes=2, stops_per_route=4,
                                     trips_per_route=2) \
            == generate_transit_feed(num_routes=2, stops_per_route=4,
                                     trips_per_route=2)

    def test_disorder_is_bounded(self):
        disorder = 120.0
        feed = generate_transit_feed(disorder_s=disorder)
        frontier = -float("inf")
        worst = 0.0
        for event in feed:
            frontier = max(frontier, event["arr_ts"])
            worst = max(worst, frontier - event["arr_ts"])
        assert worst <= disorder
        assert worst > 0.0  # the feed really is out of order

    def test_schedule_monotone_per_trip(self):
        generator = TransitGenerator(num_routes=2, stops_per_route=6)
        by_trip = {}
        for row in generator.schedule(trips_per_route=2):
            by_trip.setdefault(row["trip_id"], []).append(
                row["sched_arr"])
        for times in by_trip.values():
            assert times == sorted(times)

    def test_feed_maps_through_config(self):
        from repro.core.loader import apply_config
        event = generate_transit_feed(num_routes=1, stops_per_route=3,
                                      trips_per_route=1)[0]
        row = apply_config(event, TRANSIT_RT_CONFIG)
        assert row["fid"] == event["key"]
        assert row["time"] == event["arr_ts"]
        assert row["geom"].lng == event["lng"]


class TestServiceSurface:
    def test_streams_route_over_http(self, engine):
        from repro import Schema
        from conftest import POI_SCHEMA_FIELDS
        from repro.service.http import JustHttpServer
        from repro.service.server import JustServer
        http = JustHttpServer(JustServer(engine))
        engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
        topic = engine.create_topic("gps")
        topic.append_many(
            {"oid": str(i), "lng": 116.0, "lat": 39.9,
             "ts": int(1.5e12)} for i in range(3))
        engine.stream_load("gps", "poi", {
            "fid": "to_int(oid)", "name": "oid",
            "time": "long_to_date_ms(ts)",
            "geom": "lng_lat_to_point(lng, lat)"}).drain()
        snapshot = http.handle({"path": "/streams"})
        assert len(snapshot["streams"]) == 1
        row = snapshot["streams"][0]
        assert row["loader"] == "gps->poi"
        assert row["lag"] == 0 and row["loaded"] == 3


class TestDemo:
    def test_stream_demo_smoke(self):
        import io
        from repro.streaming.demo import main
        out = io.StringIO()
        assert main(["--quick"], out=out) == 0
        text = out.getvalue()
        assert "parity ok" in text
        assert "sys.streams" in text
