"""Meta-table (catalog) behaviour."""

import pytest

from repro.core.catalog import Catalog, TableMeta
from repro.core.schema import Field, FieldType, Schema
from repro.errors import TableExistsError, TableNotFoundError


def meta(name="t"):
    schema = Schema([Field("fid", FieldType.INTEGER, primary_key=True),
                     Field("geom", FieldType.POINT)])
    return TableMeta(name, "common", schema, ["z2"])


def test_create_get_drop():
    catalog = Catalog()
    catalog.create(meta("a"))
    assert catalog.get("a").kind == "common"
    dropped = catalog.drop("a")
    assert dropped.name == "a"
    assert not catalog.exists("a")


def test_duplicate_rejected():
    catalog = Catalog()
    catalog.create(meta("a"))
    with pytest.raises(TableExistsError):
        catalog.create(meta("a"))


def test_missing_raises():
    catalog = Catalog()
    with pytest.raises(TableNotFoundError):
        catalog.get("ghost")
    with pytest.raises(TableNotFoundError):
        catalog.drop("ghost")


def test_list_tables_creation_order():
    catalog = Catalog()
    for name in ("zebra", "alpha", "middle"):
        catalog.create(meta(name))
    assert [m.name for m in catalog.list_tables()] == \
        ["zebra", "alpha", "middle"]


def test_list_tables_prefix_filter():
    catalog = Catalog()
    catalog.create(meta("u1__t"))
    catalog.create(meta("u2__t"))
    assert [m.name for m in catalog.list_tables("u1__")] == ["u1__t"]


def test_describe_delegates_to_schema():
    catalog = Catalog()
    catalog.create(meta("a"))
    rows = catalog.describe("a")
    assert rows[0]["field"] == "fid"


def test_sequence_survives_drops():
    catalog = Catalog()
    catalog.create(meta("a"))
    catalog.drop("a")
    catalog.create(meta("b"))
    assert catalog.get("b").sequence == 2
