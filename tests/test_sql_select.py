"""End-to-end SELECT execution through the full SQL stack."""

import pytest

from repro.errors import AnalysisError
from repro.geometry import Point

from conftest import T0


class TestBasicSelect:
    def test_select_star(self, poi_engine):
        rs = poi_engine.sql("SELECT * FROM poi")
        assert len(rs) == 500
        assert rs.columns == ["fid", "name", "time", "geom"]

    def test_projection_and_alias(self, poi_engine):
        rs = poi_engine.sql("SELECT fid AS id, name FROM poi LIMIT 1")
        assert set(rs.rows[0]) == {"id", "name"}

    def test_where_fid_equality_uses_get(self, poi_engine, poi_rows):
        rs = poi_engine.sql("SELECT name FROM poi WHERE fid = 42")
        assert rs.rows == [{"name": poi_rows[42]["name"]}]

    def test_arithmetic_projection(self, poi_engine):
        rs = poi_engine.sql("SELECT fid + 1 AS next FROM poi "
                            "WHERE fid = 0")
        assert rs.rows == [{"next": 1}]

    def test_unknown_column_rejected(self, poi_engine):
        with pytest.raises(AnalysisError):
            poi_engine.sql("SELECT ghost FROM poi")

    def test_unknown_table_rejected(self, poi_engine):
        with pytest.raises(AnalysisError):
            poi_engine.sql("SELECT * FROM nope")


class TestSpatialSelect:
    def test_spatial_range(self, poi_engine, poi_rows):
        rs = poi_engine.sql(
            "SELECT fid FROM poi WHERE geom WITHIN "
            "st_makeMBR(116.1, 39.85, 116.25, 39.95)")
        expected = {r["fid"] for r in poi_rows
                    if 116.1 <= r["geom"].lng <= 116.25
                    and 39.85 <= r["geom"].lat <= 39.95}
        assert {r["fid"] for r in rs.rows} == expected

    def test_st_range(self, poi_engine, poi_rows):
        t_lo, t_hi = T0, T0 + 86400
        rs = poi_engine.sql(
            f"SELECT fid FROM poi WHERE geom WITHIN "
            f"st_makeMBR(116.0, 39.8, 116.5, 40.1) "
            f"AND time BETWEEN {t_lo} AND {t_hi}")
        expected = {r["fid"] for r in poi_rows
                    if t_lo <= r["time"] <= t_hi}
        assert {r["fid"] for r in rs.rows} == expected

    def test_knn_via_sql(self, poi_engine, poi_rows):
        rs = poi_engine.sql(
            "SELECT fid, geom FROM poi WHERE geom IN "
            "st_KNN(st_makePoint(116.25, 39.9), 5)")
        ranked = sorted(poi_rows,
                        key=lambda r: ((r["geom"].lng - 116.25) ** 2
                                       + (r["geom"].lat - 39.9) ** 2))
        assert {r["fid"] for r in rs.rows} == \
            {r["fid"] for r in ranked[:5]}

    def test_residual_predicate_combined(self, poi_engine, poi_rows):
        rs = poi_engine.sql(
            "SELECT fid FROM poi WHERE geom WITHIN "
            "st_makeMBR(116.0, 39.8, 116.5, 40.1) AND name = 'poi3'")
        expected = {r["fid"] for r in poi_rows if r["name"] == "poi3"}
        assert {r["fid"] for r in rs.rows} == expected


class TestAggregation:
    def test_global_count(self, poi_engine):
        rs = poi_engine.sql("SELECT count(*) FROM poi")
        assert rs.rows == [{"count": 500}]

    def test_group_by_with_having_style_filtering(self, poi_engine):
        rs = poi_engine.sql(
            "SELECT name, count(*) AS cnt FROM poi GROUP BY name "
            "ORDER BY name")
        assert len(rs) == 10
        assert sum(r["cnt"] for r in rs.rows) == 500
        names = [r["name"] for r in rs.rows]
        assert names == sorted(names)

    def test_group_by_aggregates(self, poi_engine, poi_rows):
        rs = poi_engine.sql(
            "SELECT name, min(time) AS t0, max(time) AS t1, "
            "avg(fid) FROM poi GROUP BY name")
        row = next(r for r in rs.rows if r["name"] == "poi0")
        expected = [r for r in poi_rows if r["name"] == "poi0"]
        assert row["t0"] == min(r["time"] for r in expected)
        assert row["t1"] == max(r["time"] for r in expected)
        assert row["avg_fid"] == pytest.approx(
            sum(r["fid"] for r in expected) / len(expected))

    def test_non_grouped_column_rejected(self, poi_engine):
        with pytest.raises(AnalysisError):
            poi_engine.sql("SELECT name, time FROM poi GROUP BY name")

    def test_order_by_aggregate_alias(self, poi_engine):
        rs = poi_engine.sql(
            "SELECT name, count(*) AS cnt FROM poi GROUP BY name "
            "ORDER BY cnt DESC LIMIT 2")
        counts = [r["cnt"] for r in rs.rows]
        assert counts == sorted(counts, reverse=True)


class TestOrderingAndPaging:
    def test_order_by_unprojected_column(self, poi_engine, poi_rows):
        rs = poi_engine.sql(
            "SELECT name FROM poi ORDER BY time LIMIT 3")
        expected = [r["name"] for r in
                    sorted(poi_rows, key=lambda r: r["time"])[:3]]
        assert [r["name"] for r in rs.rows] == expected
        assert rs.columns == ["name"]

    def test_order_by_expression(self, poi_engine):
        rs = poi_engine.sql("SELECT fid FROM poi ORDER BY fid % 7, fid "
                            "LIMIT 5")
        assert all(r["fid"] % 7 == 0 for r in rs.rows)

    def test_distinct(self, poi_engine):
        rs = poi_engine.sql("SELECT DISTINCT name FROM poi")
        assert len(rs) == 10

    def test_limit_zero(self, poi_engine):
        assert len(poi_engine.sql("SELECT * FROM poi LIMIT 0")) == 0


class TestViews:
    def test_query_over_view(self, poi_engine):
        poi_engine.sql("CREATE VIEW recent AS SELECT fid, name, time "
                       f"FROM poi WHERE time BETWEEN {T0} AND {T0 + 86400}")
        rs = poi_engine.sql("SELECT count(*) FROM recent")
        rs2 = poi_engine.sql(
            f"SELECT count(*) FROM poi WHERE time BETWEEN {T0} "
            f"AND {T0 + 86400}")
        assert rs.rows == rs2.rows

    def test_view_filter_pushdown(self, poi_engine):
        poi_engine.sql("CREATE VIEW all_poi AS SELECT * FROM poi")
        rs = poi_engine.sql("SELECT name FROM all_poi WHERE fid = 7")
        assert len(rs) == 1

    def test_one_query_multiple_usages(self, poi_engine):
        """Views cache results: repeated use never rescans the store."""
        poi_engine.sql("CREATE VIEW v AS SELECT * FROM poi")
        before = poi_engine.store.stats.snapshot()
        poi_engine.sql("SELECT count(*) FROM v")
        poi_engine.sql("SELECT count(*) FROM v")
        delta = poi_engine.store.stats.snapshot().delta(before)
        assert delta.disk_bytes_read == 0
        assert delta.scans_started == 0


class TestAnalysisOperationsViaSQL:
    def make_traj_table(self, engine):
        from repro.trajectory import STSeries, Trajectory
        table = engine.create_plugin_table("trips", "trajectory")
        points1 = [(116.0 + i * 0.001, 39.9, T0 + i * 30.0)
                   for i in range(8)]
        # Big time gap for segmentation.
        points2 = [(116.1 + i * 0.001, 39.9, T0 + 90_000 + i * 30.0)
                   for i in range(8)]
        table.insert_trajectories([
            Trajectory("a", "o1", STSeries(points1 + points2))])
        return table

    def test_noise_filter_scalar(self, engine):
        self.make_traj_table(engine)
        rs = engine.sql("SELECT st_trajNoiseFilter(item) AS clean "
                        "FROM trips")
        assert len(rs) == 1
        assert rs.rows[0]["clean"].tid == "a"

    def test_segmentation_one_to_n(self, engine):
        self.make_traj_table(engine)
        rs = engine.sql("SELECT tid, st_trajSegmentation(item) AS seg "
                        "FROM trips")
        assert len(rs) == 2  # the gap splits one row into two
        assert {r["seg"].tid for r in rs.rows} == {"a#0", "a#1"}
        assert all(r["tid"] == "a" for r in rs.rows)

    def test_dbscan_n_to_m(self, poi_engine):
        rs = poi_engine.sql("SELECT st_DBSCAN(geom, 3, 0.08) FROM poi")
        assert len(rs) == 500
        assert "cluster" in rs.columns

    def test_coordinate_transform_projection(self, poi_engine):
        rs = poi_engine.sql(
            "SELECT st_WGS84ToGCJ02(geom) AS gcj FROM poi LIMIT 1")
        assert isinstance(rs.rows[0]["gcj"], Point)
