"""Property: a quorum-acked SYNC write survives any shipping losses.

The replication design note: under SYNC, a write is acknowledged only
once ``quorum`` replicas (primary included) hold it durably, and
failover promotes the *most-caught-up* follower — whose applied prefix
must therefore contain every acknowledged write, whatever combination
of torn primary log tails, delayed-write corruption, partitioned
followers, and lossy shipping links the fault plan throws at it.

Hypothesis drives the fault plan; each example ingests a seeded key
stream, crashes the victim with the drawn corruption, fails over, and
asserts byte-for-byte durability of every acknowledged write.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.errors import ReplicationQuorumError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LossyShipping,
    PartitionedFollower,
)
from repro.kvstore import KVStore, SyncPolicy

_SERVERS = 5


def _ship_fault(draw_server, kind, after, probability):
    if kind == "partition":
        return PartitionedFollower(draw_server, after_ships=after)
    return LossyShipping(draw_server, probability=max(probability, 0.01),
                         after_ships=after)


ship_faults = st.lists(
    st.builds(_ship_fault,
              draw_server=st.integers(0, _SERVERS - 1),
              kind=st.sampled_from(["partition", "lossy"]),
              after=st.integers(0, 40),
              probability=st.floats(0.01, 1.0)),
    max_size=4)


@settings(max_examples=40, deadline=None)
@given(faults=ship_faults,
       seed=st.integers(0, 2 ** 16),
       num_keys=st.integers(30, 90),
       kill_at=st.integers(5, 80),
       torn_tail=st.integers(0, 20),
       victim=st.integers(0, _SERVERS - 1))
def test_quorum_ack_implies_durability(faults, seed, num_keys, kill_at,
                                       torn_tail, victim):
    store = KVStore(num_servers=_SERVERS, wal_policy=SyncPolicy.SYNC,
                    replication_factor=3, flush_bytes=4 * 1024,
                    split_bytes=16 * 1024, block_bytes=512)
    FaultInjector(FaultPlan(faults, seed=seed)).attach(store)
    table = store.create_table("t", presplit=_SERVERS)

    rng = random.Random(seed)
    acked = {}
    crashed = False
    for i in range(num_keys):
        key = rng.getrandbits(64).to_bytes(8, "big")
        value = key.hex().encode()
        try:
            table.put(key, value)
        except ReplicationQuorumError:
            # Unacknowledged: the client never saw an ack, so the write
            # is indeterminate and carries no durability promise.
            continue
        acked[key] = value
        if not crashed and i + 1 >= min(kill_at, num_keys - 1):
            # Crash mid-stream with a torn/delayed-write tail: synced
            # primary WAL records vanish, so only the follower copies
            # the quorum acks paid for can cover them.
            store.crash_server(victim, lost_tail_records=torn_tail)
            crashed = True
    if not crashed:
        store.crash_server(victim, lost_tail_records=torn_tail)

    for key, value in acked.items():
        assert table.get(key) == value
