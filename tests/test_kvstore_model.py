"""Model-based testing: the KV store vs a plain dict reference model.

Random interleavings of put/delete/flush/compact/scan must behave exactly
like a sorted dict, across memstore/SSTable boundaries and region splits.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.kvstore import KVStore, ScanSpec

keys = st.binary(min_size=1, max_size=6)
values = st.binary(min_size=0, max_size=40)


class KVStoreMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        # Tiny thresholds force frequent flushes and region splits.
        self.store = KVStore(num_servers=3, flush_bytes=512,
                             split_bytes=2048, block_bytes=128)
        self.table = self.store.create_table("t")
        self.model: dict[bytes, bytes] = {}

    @rule(key=keys, value=values)
    def put(self, key, value):
        self.table.put(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        self.table.delete(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.table.flush()

    @rule()
    def compact(self):
        self.table.compact()

    @rule(key=keys)
    def get_matches_model(self, key):
        assert self.table.get(key) == self.model.get(key)

    @rule(lo=keys, hi=keys)
    def scan_matches_model(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        got = list(self.table.scan(ScanSpec(lo, hi)))
        expected = sorted((k, v) for k, v in self.model.items()
                          if lo <= k <= hi)
        assert got == expected

    @invariant()
    def full_scan_matches_model(self):
        got = list(self.table.scan(ScanSpec.full()))
        assert got == sorted(self.model.items())


TestKVStoreModel = KVStoreMachine.TestCase
TestKVStoreModel.settings = settings(max_examples=25,
                                     stateful_step_count=30,
                                     deadline=None)
