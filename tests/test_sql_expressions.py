"""Expression evaluation semantics (three-valued logic, functions)."""

import pytest

from repro.errors import ExecutionError
from repro.geometry import Envelope, Point
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    FuncCall,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.sql.expressions import (
    eval_expr,
    expr_name,
    join_conjuncts,
    referenced_columns,
    split_conjuncts,
)


def lit(v):
    return Literal(v)


class TestArithmetic:
    def test_basic_ops(self):
        assert eval_expr(BinaryOp("+", lit(2), lit(3)), {}) == 5
        assert eval_expr(BinaryOp("*", lit(52), lit(9)), {}) == 468
        assert eval_expr(BinaryOp("/", lit(7), lit(2)), {}) == 3.5
        assert eval_expr(BinaryOp("%", lit(7), lit(2)), {}) == 1

    def test_divide_by_zero_is_null(self):
        assert eval_expr(BinaryOp("/", lit(1), lit(0)), {}) is None

    def test_unary_minus(self):
        assert eval_expr(UnaryOp("-", lit(5)), {}) == -5


class TestNullSemantics:
    def test_null_propagates_through_comparison(self):
        assert eval_expr(BinaryOp("=", lit(None), lit(1)), {}) is None
        assert eval_expr(BinaryOp("<", Column("x"), lit(1)),
                         {"x": None}) is None

    def test_and_or_three_valued(self):
        null = lit(None)
        true, false = lit(True), lit(False)
        assert eval_expr(BinaryOp("and", null, false), {}) is False
        assert eval_expr(BinaryOp("and", null, true), {}) is None
        assert eval_expr(BinaryOp("or", null, true), {}) is True
        assert eval_expr(BinaryOp("or", null, false), {}) is None

    def test_is_null(self):
        assert eval_expr(IsNull(lit(None), negated=False), {}) is True
        assert eval_expr(IsNull(lit(1), negated=True), {}) is True

    def test_between_with_null(self):
        assert eval_expr(Between(lit(None), lit(1), lit(2)), {}) is None


class TestFunctions:
    def test_st_makembr(self):
        env = eval_expr(FuncCall("st_makembr",
                                 (lit(1), lit(2), lit(3), lit(4))), {})
        assert env == Envelope(1, 2, 3, 4)

    def test_within_operator(self):
        expr = BinaryOp("within", Column("geom"),
                        lit(Envelope(0, 0, 10, 10)))
        assert eval_expr(expr, {"geom": Point(5, 5)}) is True
        assert eval_expr(expr, {"geom": Point(50, 5)}) is False

    def test_like(self):
        expr = BinaryOp("like", Column("name"), lit("poi1%"))
        assert eval_expr(expr, {"name": "poi12"}) is True
        assert eval_expr(expr, {"name": "xpoi12"}) is False
        under = BinaryOp("like", Column("name"), lit("a_c"))
        assert eval_expr(under, {"name": "abc"}) is True

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            eval_expr(FuncCall("no_such_fn", ()), {})

    def test_knn_as_scalar_rejected(self):
        with pytest.raises(ExecutionError):
            eval_expr(FuncCall("st_knn", (lit(1), lit(2))), {})

    def test_unknown_column(self):
        with pytest.raises(ExecutionError):
            eval_expr(Column("ghost"), {"x": 1})

    def test_generic_scalars(self):
        assert eval_expr(FuncCall("upper", (lit("abc"),)), {}) == "ABC"
        assert eval_expr(FuncCall("coalesce",
                                  (lit(None), lit(7))), {}) == 7
        assert eval_expr(FuncCall("concat",
                                  (lit("a"), lit(1))), {}) == "a1"


class TestStructuralHelpers:
    def test_referenced_columns(self):
        expr = BinaryOp("and",
                        BinaryOp("=", Column("a"), lit(1)),
                        Between(Column("b"), Column("c"), lit(9)))
        assert referenced_columns(expr) == {"a", "b", "c"}

    def test_split_and_join_conjuncts(self):
        expr = BinaryOp("and",
                        BinaryOp("and", lit(True), lit(False)),
                        lit(None))
        parts = split_conjuncts(expr)
        assert len(parts) == 3
        rebuilt = join_conjuncts(parts)
        assert split_conjuncts(rebuilt) == parts
        assert join_conjuncts([]) is None
        assert split_conjuncts(None) == []

    def test_expr_name(self):
        assert expr_name(Column("x"), 0) == "x"
        assert expr_name(FuncCall("count", (Column("x"),)), 0) == \
            "count_x"
        from repro.sql.ast import Star
        assert expr_name(FuncCall("count", (Star(),)), 0) == "count"
        assert expr_name(BinaryOp("+", lit(1), lit(2)), 3) == "_col3"
