"""JustEngine facade: DDL, views, loading, query operations."""

import pytest

from repro import Envelope, FieldType, JustEngine, Point, Schema, Field
from repro.curves.timeperiod import TimePeriod
from repro.dataframe import DataFrame
from repro.errors import (
    ExecutionError,
    TableExistsError,
    TableNotFoundError,
)

from conftest import POI_SCHEMA_FIELDS, T0, make_poi_rows


class TestTableLifecycle:
    def test_create_drop(self, engine):
        engine.create_table("t", Schema(list(POI_SCHEMA_FIELDS)))
        assert engine.has_table("t")
        engine.drop_table("t")
        assert not engine.has_table("t")
        assert not engine.store.has_table("t__id")

    def test_duplicate_name_rejected(self, engine):
        engine.create_table("t", Schema(list(POI_SCHEMA_FIELDS)))
        with pytest.raises(TableExistsError):
            engine.create_table("t", Schema(list(POI_SCHEMA_FIELDS)))

    def test_view_table_name_collision(self, engine):
        engine.create_view("x", DataFrame.from_rows([{"a": 1}]))
        with pytest.raises(TableExistsError):
            engine.create_table("x", Schema(list(POI_SCHEMA_FIELDS)))

    def test_drop_missing(self, engine):
        with pytest.raises(TableNotFoundError):
            engine.drop_table("nope")


class TestIndexConfiguration:
    def test_point_with_time_gets_z2_z2t(self, engine):
        table = engine.create_table("t", Schema(list(POI_SCHEMA_FIELDS)))
        assert set(table.strategies) == {"z2", "z2t"}

    def test_point_without_time_gets_z2(self, engine):
        table = engine.create_table("t", Schema([
            Field("fid", FieldType.INTEGER, primary_key=True),
            Field("geom", FieldType.POINT),
        ]))
        assert set(table.strategies) == {"z2"}

    def test_polygon_gets_xz(self, engine):
        table = engine.create_table("t", Schema([
            Field("fid", FieldType.INTEGER, primary_key=True),
            Field("time", FieldType.DATE),
            Field("geom", FieldType.POLYGON),
        ]))
        assert set(table.strategies) == {"xz2", "xz2t"}

    def test_userdata_overrides_indexes(self, engine):
        table = engine.create_table(
            "t", Schema(list(POI_SCHEMA_FIELDS)),
            userdata={"geomesa.indices.enabled": "z3"})
        assert set(table.strategies) == {"z3"}

    def test_userdata_time_period(self, engine):
        table = engine.create_table(
            "t", Schema(list(POI_SCHEMA_FIELDS)),
            userdata={"just.time_period": "year"})
        assert table.strategies["z2t"].period is TimePeriod.YEAR

    def test_attribute_only_table(self, engine):
        table = engine.create_table("t", Schema([
            Field("fid", FieldType.INTEGER, primary_key=True),
            Field("name", FieldType.STRING),
        ]))
        assert table.strategies == {}
        engine.insert("t", [{"fid": 1, "name": "x"}])
        assert table.get("1")["name"] == "x"


class TestViews:
    def test_create_use_drop(self, engine):
        engine.create_view("v", DataFrame.from_rows([{"a": 1}, {"a": 2}]))
        assert engine.view("v").dataframe.count() == 2
        engine.drop_view("v")
        with pytest.raises(TableNotFoundError):
            engine.view("v")

    def test_expire_views(self, engine):
        engine.create_view("v", DataFrame.from_rows([{"a": 1}]))
        assert engine.expire_views(max_idle_seconds=-1.0) == ["v"]
        assert not engine.has_view("v")

    def test_store_view_infers_schema(self, poi_engine):
        poi_engine.create_view("v", DataFrame.from_rows(
            [{"name": "a", "score": 1.5}, {"name": "b", "score": 2.5}]))
        table = poi_engine.store_view_to_table("v", "scores")
        assert table.row_count == 2
        assert table.schema.primary_key.name == "fid"

    def test_store_view_time_column_becomes_date(self, engine):
        engine.create_view("v", DataFrame.from_rows(
            [{"id": 1, "time": T0, "geom": Point(116.0, 39.9)}]))
        table = engine.store_view_to_table("v", "stored")
        assert table.schema.field("time").ftype is FieldType.DATE
        assert set(table.strategies) == {"z2", "z2t"}


class TestQueries:
    def test_spatial_range(self, poi_engine, poi_rows):
        env = Envelope(116.1, 39.85, 116.3, 40.0)
        result = poi_engine.spatial_range_query("poi", env)
        expected = [r for r in poi_rows
                    if env.contains_point(r["geom"].lng, r["geom"].lat)]
        assert len(result.rows) == len(expected)
        assert result.sim_ms > 0

    def test_st_range(self, poi_engine, poi_rows):
        env = Envelope(116.0, 39.8, 116.5, 40.1)
        result = poi_engine.st_range_query("poi", env, T0, T0 + 86400)
        expected = [r for r in poi_rows if T0 <= r["time"] <= T0 + 86400]
        assert len(result.rows) == len(expected)

    def test_knn(self, poi_engine):
        result = poi_engine.knn("poi", 116.25, 39.9, 7)
        assert len(result.rows) == 7
        assert "areas_queried" in result.extra

    def test_query_result_dataframe(self, poi_engine):
        result = poi_engine.spatial_range_query(
            "poi", Envelope(116.0, 39.8, 116.5, 40.1))
        df = result.dataframe()
        assert df.count() == len(result.rows)


class TestLoad:
    def test_load_from_source_with_mapping(self, engine):
        engine.create_table("t", Schema(list(POI_SCHEMA_FIELDS)))
        engine.register_source("src", [
            {"oid": "1", "lng": "116.1", "lat": "39.9",
             "ts": str(int(T0 * 1000))},
            {"oid": "2", "lng": "116.2", "lat": "39.95",
             "ts": str(int((T0 + 60) * 1000))},
        ])
        result = engine.load("hive:src", "t", {
            "fid": "to_int(oid)",
            "name": "oid",
            "time": "long_to_date_ms(ts)",
            "geom": "lng_lat_to_point(lng, lat)",
        })
        assert result.extra["loaded"] == 2
        assert engine.table("t").get("1")["time"] == pytest.approx(T0)

    def test_load_filter_and_limit(self, engine):
        engine.create_table("t", Schema(list(POI_SCHEMA_FIELDS)))
        engine.register_source("src", [
            {"oid": str(i), "lng": "116.1", "lat": "39.9",
             "ts": "1500000000000"} for i in range(10)])
        result = engine.load(
            "hive:src", "t",
            {"fid": "to_int(oid)", "name": "oid",
             "time": "long_to_date_ms(ts)",
             "geom": "lng_lat_to_point(lng, lat)"},
            row_filter=lambda r: int(r["oid"]) % 2 == 0, limit=3)
        assert result.extra["loaded"] == 3

    def test_unknown_scheme(self, engine):
        engine.create_table("t", Schema(list(POI_SCHEMA_FIELDS)))
        with pytest.raises(ExecutionError):
            engine.load("ftp:somewhere", "t", {})


class TestUpdateEnabled:
    """The paper's headline property: inserts and historical updates
    without index reconstruction."""

    def test_incremental_insert_visible(self, poi_engine):
        env = Envelope(100.0, 9.9, 100.1, 10.1)
        assert len(poi_engine.spatial_range_query("poi", env).rows) == 0
        poi_engine.insert("poi", [{
            "fid": 9_001, "name": "late", "time": T0,
            "geom": Point(100.05, 10.0)}])
        assert len(poi_engine.spatial_range_query("poi", env).rows) == 1

    def test_historical_update(self, poi_engine):
        """Re-writing a record with an *older* timestamp works — the case
        ST-Hadoop cannot handle."""
        old_time = T0 - 86400 * 365
        poi_engine.insert("poi", [{
            "fid": 5, "name": "historical", "time": old_time,
            "geom": Point(116.2, 39.9)}])
        result = poi_engine.st_range_query(
            "poi", Envelope(116.0, 39.8, 116.5, 40.1),
            old_time - 10, old_time + 10)
        assert [r["name"] for r in result.rows] == ["historical"]
