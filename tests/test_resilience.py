"""Request resilience: deadlines, admission control, circuit breaking,
partial results, and their interplay with sessions and gray faults."""

import pytest

from repro.cluster.simclock import CostModel, SimJob
from repro.errors import (
    CircuitOpenError,
    JustError,
    QueryTimeoutError,
    RegionUnavailableError,
    ServerOverloadedError,
    SessionError,
    error_class_for,
    is_retryable,
    remote_error,
)
from repro.faults.resilience_demo import (
    SERVICE_COST_MODEL,
    WORKLOAD_USER,
    build_service,
    run_workload,
)
from repro.resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    RequestContext,
    backoff_ms,
)
from repro.service.client import JustClient
from repro.service.server import JustServer


QUERY = ("SELECT fid FROM events WHERE geom WITHIN "
         "st_makeMBR(116.05, 39.82, 116.45, 40.08)")


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-5)

    def test_charge_and_check(self):
        deadline = Deadline(100.0)
        deadline.charge(60.0)
        deadline.check()  # within budget
        assert deadline.remaining_ms == pytest.approx(40.0)
        deadline.charge(50.0)
        with pytest.raises(QueryTimeoutError) as info:
            deadline.check("region scan")
        assert info.value.budget_ms == 100.0
        assert info.value.consumed_ms == pytest.approx(110.0)
        assert info.value.overrun_ms == pytest.approx(10.0)
        assert "region scan" in str(info.value)

    def test_simjob_charges_consume_budget(self):
        """Every simulated charge flows into the bound deadline."""
        ctx = RequestContext(deadline=Deadline(50.0))
        job = SimJob(CostModel(), num_servers=5)
        ctx.bind(job)
        job.charge_fixed("driver", 30.0)
        with pytest.raises(QueryTimeoutError):
            job.charge_fixed("driver", 30.0)
        # Work done is accounted exactly: budget overrun by one charge.
        assert ctx.deadline.consumed_ms == pytest.approx(60.0)

    def test_bind_backcharges_accumulated_cost(self):
        job = SimJob(CostModel(), num_servers=5)
        job.charge_fixed("ingest", 80.0)
        ctx = RequestContext(deadline=Deadline(100.0))
        ctx.bind(job)
        assert ctx.deadline.consumed_ms == pytest.approx(80.0)


class TestBackoff:
    def test_unjittered_caps(self):
        assert backoff_ms(0, 10.0, 500.0) == 10.0
        assert backoff_ms(3, 10.0, 500.0) == 80.0
        assert backoff_ms(9, 10.0, 500.0) == 500.0  # capped

    def test_equal_jitter_bounds(self):
        import random
        rng = random.Random(42)
        for attempt in range(8):
            cap = min(500.0, 10.0 * 2 ** attempt)
            for _ in range(20):
                delay = backoff_ms(attempt, 10.0, 500.0, rng)
                assert cap / 2 <= delay < cap


class TestAdmissionController:
    def test_per_user_bound_sheds(self):
        control = AdmissionController(max_in_flight=10, max_per_user=2)
        control.acquire("alice")
        control.acquire("alice")
        with pytest.raises(ServerOverloadedError) as info:
            control.acquire("alice")
        assert "alice" in str(info.value)
        control.acquire("bob")  # other users unaffected
        control.release("alice")
        control.acquire("alice")  # capacity freed

    def test_global_bound_sheds_when_queue_full(self):
        control = AdmissionController(max_in_flight=1, max_per_user=5,
                                      max_queue=0)
        control.acquire("a")
        with pytest.raises(ServerOverloadedError):
            control.acquire("b")
        assert control.stats()["shed"] == 1

    def test_wait_timeout_sheds(self):
        control = AdmissionController(max_in_flight=1, max_queue=4,
                                      wait_timeout_s=0.0)
        control.acquire("a")
        # With a zero wait budget the queued statement gives up on its
        # first deadline check, without blocking the test.
        with pytest.raises(ServerOverloadedError) as info:
            control.acquire("b")
        assert "timed out" in str(info.value)

    def test_stats_counters(self):
        control = AdmissionController(max_in_flight=4)
        control.acquire("a")
        control.acquire("b")
        stats = control.stats()
        assert stats["in_flight"] == 2
        assert stats["admitted"] == 2
        assert stats["peak_in_flight"] == 2
        control.release("a")
        assert control.stats()["in_flight"] == 1


class TestCircuitBreaker:
    def make(self, **kwargs):
        now = [0.0]
        breaker = CircuitBreaker(clock=lambda: now[0], **kwargs)
        return breaker, now

    def test_opens_after_threshold(self):
        breaker, _now = self.make(failure_threshold=3)
        for _ in range(3):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as info:
            breaker.before_call()
        assert info.value.retry_after_s > 0
        assert breaker.fast_failures == 1

    def test_half_open_probe_closes_on_success(self):
        breaker, now = self.make(failure_threshold=1,
                                 reset_timeout_s=10.0)
        breaker.record_failure()
        assert breaker.state == "open"
        now[0] = 11.0
        breaker.before_call()  # admitted as the probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.before_call()  # flows freely again

    def test_half_open_probe_failure_reopens(self):
        breaker, now = self.make(failure_threshold=1,
                                 reset_timeout_s=10.0)
        breaker.record_failure()
        now[0] = 11.0
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # cooldown restarted at t=11

    def test_half_open_limits_probes(self):
        breaker, now = self.make(failure_threshold=1,
                                 reset_timeout_s=10.0,
                                 half_open_probes=1)
        breaker.record_failure()
        now[0] = 20.0
        breaker.before_call()
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # second concurrent probe refused


class TestTypedWireErrors:
    def test_error_class_for_known_kinds(self):
        assert error_class_for("QueryTimeoutError") is QueryTimeoutError
        assert error_class_for("RegionUnavailableError") \
            is RegionUnavailableError
        assert error_class_for("NoSuchError") is JustError

    def test_remote_error_reconstruction(self):
        exc = remote_error("ServerOverloadedError", "too busy")
        assert isinstance(exc, ServerOverloadedError)
        assert isinstance(exc, JustError)
        assert str(exc) == "too busy"
        assert is_retryable(exc)

    def test_is_retryable(self):
        assert is_retryable(RegionUnavailableError("t", 0, 0))
        assert is_retryable(ServerOverloadedError("global", 9, 8))
        assert not is_retryable(QueryTimeoutError(100.0, 120.0))
        assert not is_retryable(CircuitOpenError(1.0))


class TestDeadlineEndToEnd:
    """Acceptance: SlowServer + 100 ms deadline -> bounded timeout."""

    def test_slow_server_times_out_with_bounded_overrun(self):
        server = build_service("slow", latency_ms=30.0)
        sid = server.connect(WORKLOAD_USER)
        with pytest.raises(QueryTimeoutError) as info:
            server.execute(sid, QUERY, timeout_ms=100.0)
        exc = info.value
        assert exc.budget_ms == 100.0
        # Cooperative cancellation: the overrun is bounded by one
        # charge's granularity (one injected latency draw, here
        # latency_ms + jitter_ms < 50 sim-ms), never an unbounded stall.
        assert 0.0 < exc.overrun_ms < 50.0

    def test_without_deadline_statement_completes(self):
        server = build_service("slow", latency_ms=30.0)
        sid = server.connect(WORKLOAD_USER)
        result = server.execute(sid, QUERY)
        assert len(result) > 0
        assert result.sim_ms > 100.0  # absorbed the injected latency

    def test_server_default_timeout_applies(self):
        server = build_service("slow", latency_ms=30.0)
        server.default_timeout_ms = 100.0
        sid = server.connect(WORKLOAD_USER)
        with pytest.raises(QueryTimeoutError):
            server.execute(sid, QUERY)
        # An explicit client budget overrides the server default.
        assert len(server.execute(sid, QUERY, timeout_ms=1e9)) > 0


class TestPartialResults:
    """Acceptance: deferred failover window -> live rows + skip report."""

    def _crash_data_server(self, server):
        store = server.engine.store
        victims = set()
        for table in store.tables():
            table.flush()  # durable on disk, so failover loses nothing
            victims |= table.servers_used()
        victim = sorted(victims)[0]
        store.crash_server(victim, defer_failover=True)
        return victim

    def test_full_failure_without_partial_mode(self):
        server = build_service("none")
        sid = server.connect(WORKLOAD_USER)
        self._crash_data_server(server)
        with pytest.raises(RegionUnavailableError):
            server.execute(sid, QUERY)

    def test_partial_mode_returns_live_rows_and_report(self):
        server = build_service("none")
        sid = server.connect(WORKLOAD_USER)
        complete = {r["fid"] for r in server.execute(sid, QUERY).rows}
        victim = self._crash_data_server(server)

        result = server.execute(sid, QUERY, partial_results=True)
        assert result.is_partial
        partial = {r["fid"] for r in result.rows}
        assert partial < complete  # strictly fewer rows, all live
        for skip in result.skipped_regions:
            assert skip["server"] == victim
            assert "unavailable" in skip["reason"]
        # After failover completes, the same statement is whole again.
        server.engine.store.failover(victim)
        healed = server.execute(sid, QUERY, partial_results=True)
        assert not healed.is_partial
        assert {r["fid"] for r in healed.rows} == complete

    def test_partial_mode_skips_intermittent_errors(self):
        server = build_service("flaky", probability=1.0)
        sid = server.connect(WORKLOAD_USER)
        result = server.execute(sid, QUERY, partial_results=True)
        assert result.is_partial
        assert any("intermittent" in s["reason"]
                   for s in result.skipped_regions)


class TestAdmissionEndToEnd:
    def test_overload_sheds_and_is_retryable(self):
        server = build_service("none")
        server.admission = AdmissionController(max_in_flight=10,
                                               max_per_user=0)
        sid = server.connect(WORKLOAD_USER)
        with pytest.raises(ServerOverloadedError) as info:
            server.execute(sid, QUERY)
        assert is_retryable(info.value)
        assert server.admission_stats()["shed"] == 1

    def test_statements_release_capacity(self):
        server = build_service("none")
        sid = server.connect(WORKLOAD_USER)
        for _ in range(3):
            server.execute(sid, QUERY)
        stats = server.admission_stats()
        assert stats["in_flight"] == 0
        assert stats["admitted"] == 3

    def test_failed_statement_releases_capacity(self):
        server = build_service("slow")
        sid = server.connect(WORKLOAD_USER)
        with pytest.raises(QueryTimeoutError):
            server.execute(sid, QUERY, timeout_ms=50.0)
        assert server.admission_stats()["in_flight"] == 0


class TestClientResilience:
    def test_breaker_fails_fast_after_retry_storm(self):
        server = build_service("flaky")
        now = [0.0]
        client = JustClient(server, WORKLOAD_USER,
                            sleep=lambda _s: None,
                            breaker=CircuitBreaker(
                                failure_threshold=5,
                                reset_timeout_s=30.0,
                                clock=lambda: now[0]))
        with pytest.raises(RegionUnavailableError):
            client.execute_query(QUERY)
        assert client.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.execute_query(QUERY)
        # The fast failure never reached the server's admission control.
        before = server.admission_stats()["admitted"]
        with pytest.raises(CircuitOpenError):
            client.execute_query(QUERY)
        assert server.admission_stats()["admitted"] == before

    def test_breaker_recovers_after_cooldown(self):
        server = build_service("none")
        now = [0.0]
        client = JustClient(server, WORKLOAD_USER,
                            sleep=lambda _s: None,
                            breaker=CircuitBreaker(
                                failure_threshold=1,
                                reset_timeout_s=10.0,
                                clock=lambda: now[0]))
        client.breaker.record_failure()  # trip it
        with pytest.raises(CircuitOpenError):
            client.execute_query(QUERY)
        now[0] = 11.0  # cooldown elapsed: half-open probe goes through
        assert len(client.execute_query(QUERY)) > 0
        assert client.breaker.state == "closed"

    def test_server_overload_retried_then_raised(self):
        server = build_service("none")
        server.admission = AdmissionController(max_in_flight=10,
                                               max_per_user=0)
        delays = []
        client = JustClient(server, WORKLOAD_USER, max_retries=2,
                            sleep=delays.append)
        with pytest.raises(ServerOverloadedError):
            client.execute_query(QUERY)
        assert len(delays) == 2  # backed off between attempts


class TestSessionExpiryInterplay:
    """Satellite: session lifecycle under the resilient client."""

    def test_expiry_mid_sequence_drops_views_and_reconnects(self):
        server = JustServer(session_timeout_s=10.0)
        client = JustClient(server, "alice")
        client.execute_query("CREATE TABLE t (fid integer:primary key, "
                             "name string, geom point)")
        client.execute_query("CREATE VIEW v AS SELECT fid FROM t")
        assert server.engine.has_view("alice__v")
        # The session goes stale while the client still holds it; the
        # next statement reconnects, and expiry has dropped the views.
        server.sessions._sessions[client.session_id].touch(now=-1e9)
        rs = client.execute_query("SHOW VIEWS")
        assert rs.rows == []
        assert not server.engine.has_view("alice__v")
        assert client.reconnects == 1

    def test_reconnect_preserves_namespace_isolation(self):
        server = JustServer(session_timeout_s=10.0)
        alice = JustClient(server, "alice")
        bob = JustClient(server, "bob")
        alice.execute_query("CREATE TABLE t (fid integer:primary key, "
                            "geom point)")
        bob.execute_query("CREATE TABLE t (fid integer:primary key, "
                          "geom point)")
        server.sessions._sessions[alice.session_id].touch(now=-1e9)
        # After the transparent reconnect alice still sees only hers.
        assert alice.execute_query("SHOW TABLES").rows == \
            [{"table": "t"}]
        assert server.user_tables("alice") == ["t"]
        assert server.user_tables("bob") == ["t"]

    def test_breaker_state_survives_reconnect(self):
        server = JustServer(session_timeout_s=10.0)
        now = [0.0]
        client = JustClient(server, "alice", sleep=lambda _s: None,
                            breaker=CircuitBreaker(
                                failure_threshold=1,
                                reset_timeout_s=30.0,
                                clock=lambda: now[0]))
        client.breaker.record_failure()  # tripped before the expiry
        server.sessions._sessions[client.session_id].touch(now=-1e9)
        # The breaker gates the call before any reconnect happens: a
        # sick backend is not probed just because the session expired.
        with pytest.raises(CircuitOpenError):
            client.execute_query("SHOW TABLES")
        assert client.reconnects == 0
        now[0] = 31.0
        assert client.execute_query("SHOW TABLES").rows == []
        assert client.reconnects == 1

    def test_session_error_retry_budget_is_bounded(self):
        class AlwaysExpired:
            def __init__(self):
                self.connects = 0

            def connect(self, user):
                self.connects += 1
                return f"s{self.connects}"

            def execute(self, session_id, statement):
                raise SessionError("expired")

        server = AlwaysExpired()
        client = JustClient(server, "alice", max_retries=3,
                            sleep=lambda _s: None)
        with pytest.raises(SessionError):
            client.execute_query("SHOW TABLES")
        # initial connect + one reconnect per retry slot, then raise.
        assert server.connects == 4


class TestWorkloadHarness:
    def test_workload_is_deterministic(self):
        first = run_workload(build_service("flaky"), "partial",
                             queries=8)
        second = run_workload(build_service("flaky"), "partial",
                              queries=8)
        assert first.latencies_ms == second.latencies_ms
        assert first.regions_skipped == second.regions_skipped

    def test_service_cost_model_keeps_budgets_meaningful(self):
        assert SERVICE_COST_MODEL.query_overhead_ms < 100.0
