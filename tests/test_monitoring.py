"""SLO burn-rate alerting and the end-to-end monitoring pipeline.

Unit coverage of the objective math and the pending → firing → resolved
state machine on synthetic histories, then the full stack: a monitored
service under a :class:`~repro.faults.plan.SlowServer` gray failure
must page within the run, visibly in ``sys.alerts`` and ``sys.events``
through plain JustQL, and the scraped subsystem series must answer
windowed rate queries through ``sys.metrics_history``.
"""

import pytest

from repro import Schema
from repro.core.engine import JustEngine
from repro.kvstore.wal import SyncPolicy
from repro.observability.events import EventLog
from repro.observability.history import MetricsHistory
from repro.observability.metrics import MetricsRegistry
from repro.observability.slo import (
    AvailabilityObjective,
    BurnWindow,
    LatencyObjective,
    SloManager,
    default_windows,
)
from repro.observability.dash import (
    build_dash_service,
    inject_slow_server,
    workload_queries,
)
from repro.service.client import JustClient
from repro.service.http import JustHttpServer

from conftest import POI_SCHEMA_FIELDS, T0


# -- burn windows -------------------------------------------------------------

class TestBurnWindows:
    def test_default_windows_keep_sre_ratios(self):
        page, ticket = default_windows(base_ms=60_000.0)
        assert (page.severity, ticket.severity) == ("page", "ticket")
        assert page.long_ms / page.short_ms == pytest.approx(12.0)
        assert page.factor == 14.4
        assert ticket.long_ms == 6 * page.long_ms
        assert ticket.factor == 6.0
        # Page reacts faster than ticket on both axes.
        assert page.for_ms < ticket.for_ms
        assert page.short_ms < ticket.short_ms


# -- objectives ---------------------------------------------------------------

def _record_counters(history, ts, **values):
    for name, value in values.items():
        history.record(name.replace("__", "."), "counter", ts, value)


class TestObjectives:
    def test_target_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            AvailabilityObjective(name="bad", target=1.0)
        with pytest.raises(ValueError):
            AvailabilityObjective(name="bad", target=0.0)

    def test_budget_window_defaults_to_4x_longest(self):
        objective = AvailabilityObjective(
            name="a", target=0.99,
            windows=(BurnWindow("page", 1_000.0, 100.0, 10.0),))
        assert objective.budget_window_ms == 4_000.0
        assert objective.budget == pytest.approx(0.01)

    def test_availability_bad_fraction(self):
        history = MetricsHistory()
        _record_counters(history, 0.0, ok=0.0, err=0.0)
        _record_counters(history, 1_000.0, ok=90.0, err=10.0)
        objective = AvailabilityObjective(
            name="a", target=0.9, total_series=("ok", "err"),
            bad_series=("err",))
        assert objective.bad_fraction(history, 0.0, 1_000.0) == \
            pytest.approx(0.1)
        assert objective.burn_rate(history, 0.0, 1_000.0) == \
            pytest.approx(1.0)

    def test_availability_none_without_traffic(self):
        objective = AvailabilityObjective(
            name="a", target=0.9, total_series=("ok",),
            bad_series=("err",))
        assert objective.bad_fraction(MetricsHistory(), 0.0, 1_000.0) \
            is None

    def test_latency_bad_fraction_is_exact_from_buckets(self):
        history = MetricsHistory()
        _record_counters(history, 0.0, lat_count=0.0,
                         lat_bucket_le_100=0.0)
        _record_counters(history, 1_000.0, lat_count=10.0,
                         lat_bucket_le_100=7.0)
        objective = LatencyObjective(name="lat", target=0.9,
                                     metric="lat", threshold_ms=100.0)
        assert objective.bad_fraction(history, 0.0, 1_000.0) == \
            pytest.approx(0.3)

    def test_latency_exemplar_names_a_slow_trace(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(100.0,))
        histogram.observe(5.0, exemplar="fast-trace")
        histogram.observe(900.0, exemplar="slow-trace")
        objective = LatencyObjective(name="lat", target=0.9,
                                     metric="lat", threshold_ms=100.0)
        assert objective.exemplar(registry) == "slow-trace"


# -- the alert state machine --------------------------------------------------

def _manager(registry=None):
    history = MetricsHistory()
    events = EventLog()
    manager = SloManager(history, events, registry)
    objective = AvailabilityObjective(
        name="avail", target=0.9,
        windows=(BurnWindow("page", long_ms=1_000.0, short_ms=100.0,
                            factor=2.0, for_ms=50.0),),
        total_series=("total",), bad_series=("bad",))
    manager.add(objective)
    return history, events, manager


class TestAlertFsm:
    def test_pending_then_firing_then_resolved(self):
        history, events, manager = _manager()
        alert = manager.alert("avail", "page")

        _record_counters(history, 100.0, total=10.0, bad=0.0)
        manager.evaluate(100.0)
        assert alert.state == "ok"

        # Half the traffic goes bad: burn 5x against a 2x factor.
        _record_counters(history, 200.0, total=20.0, bad=5.0)
        manager.evaluate(200.0)
        assert alert.state == "pending"
        assert events.total_by_kind.get("slo_burn") == 1

        # Still burning past the dwell -> page.
        _record_counters(history, 260.0, total=30.0, bad=10.0)
        manager.evaluate(260.0)
        assert alert.state == "firing"
        assert alert.times_fired == 1
        assert events.total_by_kind.get("alert") == 1

        # Recovery: plenty of good traffic drains both windows.
        _record_counters(history, 400.0, total=130.0, bad=10.0)
        manager.evaluate(400.0)
        assert alert.state == "resolved"
        fired, resolved = events.events(kind="alert")
        assert fired.state == "firing"
        assert resolved.state == "resolved"

    def test_blip_in_pending_returns_to_ok_without_alerting(self):
        history, events, manager = _manager()
        alert = manager.alert("avail", "page")
        _record_counters(history, 100.0, total=10.0, bad=0.0)
        manager.evaluate(100.0)
        _record_counters(history, 110.0, total=12.0, bad=2.0)
        manager.evaluate(110.0)
        assert alert.state == "pending"
        # The burn stops inside the dwell: no page, back to ok.
        _record_counters(history, 140.0, total=40.0, bad=2.0)
        manager.evaluate(140.0)
        assert alert.state == "ok"
        assert events.total_by_kind.get("alert") is None

    def test_burn_gauges_are_mirrored_into_registry(self):
        registry = MetricsRegistry()
        history, events, manager = _manager(registry)
        _record_counters(history, 100.0, total=10.0, bad=0.0)
        _record_counters(history, 200.0, total=20.0, bad=5.0)
        manager.evaluate(200.0)
        assert registry.gauge("slo.burn_rate", slo="avail",
                              severity="page").value == pytest.approx(
            5.0)
        assert registry.gauge("slo.budget_remaining",
                              slo="avail").value < 1.0

    def test_rows_expose_worst_state_and_budget(self):
        history, events, manager = _manager()
        _record_counters(history, 100.0, total=10.0, bad=0.0)
        _record_counters(history, 200.0, total=20.0, bad=5.0)
        manager.evaluate(200.0)
        (row,) = manager.rows(200.0)
        assert row["slo"] == "avail"
        assert row["state"] == "pending"
        assert row["budget_remaining"] < 1.0
        (alert_row,) = manager.alert_rows()
        assert alert_row["severity"] == "page"
        assert alert_row["state"] == "pending"


# -- end to end: gray failure pages through sys.* -----------------------------

ORDER_CONFIG = {
    "fid": "to_int(oid)",
    "name": "oid",
    "time": "long_to_date_ms(ts)",
    "geom": "lng_lat_to_point(lng, lat)",
}


def _order_event(i):
    return {"oid": str(i), "lng": 116.0 + (i % 50) * 0.01, "lat": 39.9,
            "ts": int((T0 + i) * 1000)}


class TestMonitoredService:
    def test_slow_server_pages_within_the_run(self):
        server = build_dash_service(rows=200, seed=11)
        client = JustClient(server, "ops")
        queries = workload_queries(11)
        for sql in queries:
            client.execute_query(sql)
        inject_slow_server(server, latency_ms=40.0, seed=11)
        alert = server.engine.monitor.slos.alert("statement-latency",
                                                 "page")
        for _ in range(20):
            for sql in queries:
                client.execute_query(sql)
            if alert.state == "firing":
                break
        assert alert.state == "firing"
        # Visible through plain JustQL, with the exemplar trace id.
        rows = client.execute_query(
            "SELECT slo, severity, state, trace_id FROM sys.alerts "
            "WHERE state = 'firing'").rows
        firing = {(r["slo"], r["severity"]) for r in rows}
        assert ("statement-latency", "page") in firing
        assert all(slo == "statement-latency" for slo, _ in firing)
        assert rows[0]["trace_id"]
        # The event feed shows the escalation: burn warning, then page.
        kinds = [e.kind for e in server.events.events()
                 if e.kind in ("slo_burn", "alert")]
        assert "slo_burn" in kinds and "alert" in kinds
        assert kinds.index("slo_burn") < kinds.index("alert")
        # The gray failure stays gray: availability never trips.
        slo_rows = client.execute_query(
            "SELECT slo, state FROM sys.slos").rows
        states = {r["slo"]: r["state"] for r in slo_rows}
        assert states["statement-availability"] == "ok"
        client.close()

    def test_streaming_series_answer_windowed_rates(self):
        engine = JustEngine()
        engine.enable_monitoring(interval_ms=1.0)
        engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
        topic = engine.create_topic("gps")
        topic.append_many(_order_event(i) for i in range(30))
        loader = engine.stream_load("gps", "poi", ORDER_CONFIG,
                                    batch_size=10)
        engine.monitor.tick()
        while loader.lag:
            stats = loader.poll()
            engine.events.advance(stats["sim_ms"])
            engine.monitor.tick()
        key = f"streaming.rows_loaded{{loader={loader.name}}}"
        now_ms = engine.events.now_ms
        assert engine.monitor.history.rate(key, now_ms, now_ms) > 0
        result = engine.sql(
            f"SELECT ts_ms, rate_per_s FROM sys.metrics_history "
            f"WHERE name = '{key}' AND tier = 0 ORDER BY ts_ms")
        rates = [r["rate_per_s"] for r in result.rows
                 if r["rate_per_s"] is not None]
        assert rates and all(rate > 0 for rate in rates)

    def test_replication_series_are_scraped(self):
        engine = JustEngine(wal_policy=SyncPolicy.SYNC,
                            replication_factor=3)
        engine.enable_monitoring(interval_ms=1.0)
        engine.sql("CREATE TABLE t (fid integer:primary key, "
                   "geom point)")
        engine.sql("INSERT INTO t VALUES (1, st_makePoint(1.0, 2.0))")
        engine.sql("INSERT INTO t VALUES (2, st_makePoint(3.0, 4.0))")
        engine.monitor.tick()
        series = engine.monitor.history.get("replication.records_shipped")
        assert series is not None
        assert series.tier_points(0)[-1][1] > 0
        result = engine.sql(
            "SELECT value FROM sys.metrics_history "
            "WHERE name = 'replication.records_shipped'")
        assert result.rows and result.rows[-1]["value"] > 0

    def test_balancer_series_are_scraped(self):
        engine = JustEngine()
        engine.enable_balancer()
        engine.enable_monitoring(interval_ms=1.0)
        engine.sql("CREATE TABLE t (fid integer:primary key, "
                   "geom point)")
        engine.sql("INSERT INTO t VALUES (1, st_makePoint(1.0, 2.0))")
        engine.balancer.tick()
        engine.monitor.tick()
        series = engine.monitor.history.get("balancer.runs")
        assert series is not None
        assert series.tier_points(0)[-1][1] >= 1

    def test_http_monitoring_routes(self):
        server = build_dash_service(rows=100, seed=3)
        client = JustClient(server, "ops")
        for sql in workload_queries(3, count=4):
            client.execute_query(sql)
        transport = JustHttpServer(server)
        history = transport.handle({"path": "/metrics/history",
                                    "name": "monitor.scrapes"})
        assert history["enabled"] is True
        assert history["rows"]
        assert all(r["name"] == "monitor.scrapes"
                   for r in history["rows"])
        slos = transport.handle({"path": "/slos"})
        assert slos["enabled"] is True
        assert {s["slo"] for s in slos["slos"]} == \
            {"statement-availability", "statement-latency"}
        assert len(slos["alerts"]) == 4
        # Monitoring off: both routes degrade to {"enabled": False}.
        off = JustHttpServer()
        assert off.handle({"path": "/metrics/history"}) == \
            {"enabled": False}
        assert off.handle({"path": "/slos"}) == {"enabled": False}
        client.close()

    def test_slow_queries_carry_trace_ids(self):
        server = build_dash_service(rows=150, seed=5)
        server.slow_query_log.threshold_ms = 0.0
        client = JustClient(server, "ops")
        (sql,) = workload_queries(5, count=1)
        client.execute_query(sql)
        rows = client.execute_query(
            "SELECT trace_id, sim_ms FROM sys.slow_queries").rows
        assert rows and all(r["trace_id"] for r in rows)
        client.close()
