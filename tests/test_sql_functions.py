"""The st_* function registry."""

import pytest

from repro.errors import ExecutionError
from repro.geometry import Envelope, LineString, Point
from repro.sql.functions import (
    AGGREGATE_FUNCTIONS,
    NM_FUNCTIONS,
    SCALAR_FUNCTIONS,
    SET_FUNCTIONS,
    lookup_scalar,
    make_map_matching_function,
)
from repro.trajectory import STSeries, Trajectory


class TestScalars:
    def test_st_makembr(self):
        assert SCALAR_FUNCTIONS["st_makembr"](1, 2, 3, 4) == \
            Envelope(1, 2, 3, 4)

    def test_st_makepoint_and_accessors(self):
        point = SCALAR_FUNCTIONS["st_makepoint"](116.3, 39.9)
        assert SCALAR_FUNCTIONS["st_x"](point) == 116.3
        assert SCALAR_FUNCTIONS["st_y"](point) == 39.9
        assert SCALAR_FUNCTIONS["st_x"](None) is None

    def test_st_within_semantics(self):
        env = Envelope(0, 0, 10, 10)
        within = SCALAR_FUNCTIONS["st_within"]
        assert within(Point(5, 5), env)
        assert not within(Point(11, 5), env)
        inside_line = LineString([(1, 1), (2, 2)])
        crossing_line = LineString([(5, 5), (15, 15)])
        assert within(inside_line, env)
        assert not within(crossing_line, env)  # WITHIN = containment
        assert SCALAR_FUNCTIONS["st_intersects"](crossing_line, env)

    def test_st_within_requires_mbr(self):
        with pytest.raises(ExecutionError):
            SCALAR_FUNCTIONS["st_within"](Point(0, 0), "not an mbr")

    def test_distances(self):
        a, b = Point(0, 0), Point(3, 4)
        assert SCALAR_FUNCTIONS["st_distance"](a, b) == 5.0
        assert SCALAR_FUNCTIONS["st_distance_m"](a, b) > 500_000

    def test_coordinate_pairs_accepted(self):
        assert SCALAR_FUNCTIONS["st_distance"](Point(0, 0),
                                               Point(3, 4)) == 5.0

    def test_wkt_roundtrip_functions(self):
        text = SCALAR_FUNCTIONS["st_astext"](Point(1, 2))
        assert SCALAR_FUNCTIONS["st_geomfromtext"](text) == Point(1, 2)

    def test_trajectory_scalars(self):
        trajectory = Trajectory("t", "o", STSeries(
            [(116.0, 39.9, 0.0), (116.001, 39.9, 60.0)]))
        assert SCALAR_FUNCTIONS["st_trajduration_s"](trajectory) == 60.0
        assert SCALAR_FUNCTIONS["st_trajlength_m"](trajectory) > 50.0

    def test_transform_functions_present(self):
        for name in ("st_wgs84togcj02", "st_gcj02towgs84",
                     "st_gcj02tobd09", "st_bd09togcj02"):
            point = SCALAR_FUNCTIONS[name](116.4, 39.9)
            assert isinstance(point, Point)


class TestRegistryShape:
    def test_set_functions(self):
        assert "st_trajsegmentation" in SET_FUNCTIONS
        assert "st_trajstaypoint" in SET_FUNCTIONS

    def test_nm_functions(self):
        assert "st_dbscan" in NM_FUNCTIONS

    def test_aggregates(self):
        assert set(AGGREGATE_FUNCTIONS) == {
            "count", "sum", "avg", "min", "max", "collect_list"}

    def test_lookup_errors(self):
        with pytest.raises(ExecutionError):
            lookup_scalar("st_knn")       # planner-only
        with pytest.raises(ExecutionError):
            lookup_scalar("nonsense")

    def test_map_matching_binding(self):
        from repro.roadnetwork import RoadNetwork
        network = RoadNetwork.grid(116.0, 39.8, 3, 3, 400)
        matcher = make_map_matching_function(network)
        trajectory = Trajectory("t", "o", STSeries(
            [(116.0, 39.8, 0.0), (116.001, 39.8001, 30.0)]))
        assert isinstance(matcher(trajectory), list)
