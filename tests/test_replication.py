"""Region replication: placement, quorum writes, failover, reads."""

import random

import pytest

from repro.balancer import Balancer
from repro.balancer.planner import MoveAction, plan_moves
from repro.balancer.policy import BalancerPolicy, server_loads
from repro.errors import (
    RETRYABLE_ERRORS,
    RegionUnavailableError,
    ReplicationQuorumError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    IntermittentError,
    KillServer,
    LossyShipping,
    PartitionedFollower,
    SlowServer,
)
from repro.kvstore import KVStore, SyncPolicy
from repro.replication import LIVE, REBUILDING, TORN
from repro.resilience import Deadline, RequestContext


def replicated_store(factor=3, num_servers=5, **kwargs):
    defaults = dict(num_servers=num_servers,
                    wal_policy=SyncPolicy.SYNC,
                    replication_factor=factor,
                    flush_bytes=4 * 1024, split_bytes=16 * 1024,
                    block_bytes=512)
    defaults.update(kwargs)
    return KVStore(**defaults)


def spread_keys(n, seed=0):
    """Keys whose first byte is uniform, so presplit regions all load."""
    rng = random.Random(seed)
    return [rng.getrandbits(64).to_bytes(8, "big") for _ in range(n)]


class TestPlacement:
    def test_requires_wal_and_sane_factor(self):
        with pytest.raises(ValueError):
            KVStore(num_servers=3, replication_factor=3)  # no WAL
        with pytest.raises(ValueError):
            replicated_store(factor=1).enable_replication(factor=1)

    def test_followers_land_on_distinct_servers(self):
        store = replicated_store()
        table = store.create_table("t", presplit=5)
        for region in table.regions():
            servers = store.replica_servers(region)
            assert region.server in servers
            assert len(servers) == 3  # primary + 2 followers, no dupes

    def test_factor_capped_by_alive_servers(self):
        store = replicated_store(factor=3, num_servers=3)
        table = store.create_table("t")
        region = table.regions()[0]
        followers = store.replication.followers(region.region_id)
        assert {f.server for f in followers} \
            == set(range(3)) - {region.server}

    def test_planner_skips_replica_destinations(self):
        # Three servers at rf=3: every server hosts a copy of every
        # region, so no move destination can satisfy anti-affinity and
        # the planner must come up empty however imbalanced the load.
        store = replicated_store(factor=3, num_servers=3)
        table = store.create_table("t", presplit=3)
        for key in spread_keys(300):
            table.put(key, b"v" * 64)
        now_ms = store.events.now_ms
        policy = BalancerPolicy(imbalance_ratio=1.0, min_move_rate=0.0)
        moves = plan_moves(store, policy,
                           server_loads(store, now_ms), now_ms)
        assert moves == []

    def test_planner_honours_anti_affinity_with_room(self):
        store = replicated_store(factor=2, num_servers=5)
        table = store.create_table("t", presplit=5)
        for key in spread_keys(500):
            table.put(key, b"v" * 64)
        now_ms = store.events.now_ms
        policy = BalancerPolicy(imbalance_ratio=1.0, min_move_rate=0.0)
        for action in plan_moves(store, policy,
                                 server_loads(store, now_ms), now_ms):
            assert action.dest not in store.replica_servers(action.region)


class TestQuorumWrites:
    def test_sync_write_ships_to_quorum(self):
        store = replicated_store()
        table = store.create_table("t")
        table.put(b"k", b"v")
        manager = store.replication
        region = table.regions()[0]
        applied = sorted(f.applied_seqno
                         for f in manager.followers(region.region_id))
        # quorum=2: one eager follower acked, the other ships lazily.
        assert applied == [0, 1]
        assert manager.records_shipped == 1
        assert table.get(b"k") == b"v"

    def test_lazy_followers_heal_on_tick(self):
        store = replicated_store()
        table = store.create_table("t")
        for i in range(10):
            table.put(b"k%d" % i, b"v")
        manager = store.replication
        region = table.regions()[0]
        assert max(f.lag_records
                   for f in manager.followers(region.region_id)) > 0
        manager.tick()
        for follower in manager.followers(region.region_id):
            assert follower.lag_records == 0
            assert follower.applied_seqno == region.max_seqno

    def test_quorum_failure_raises_before_memstore_apply(self):
        store = replicated_store(factor=3, num_servers=3)
        table = store.create_table("t")
        table.put(b"k0", b"v")
        region = table.regions()[0]
        followers = store.replication.follower_servers(region.region_id)
        plan = FaultPlan([PartitionedFollower(s) for s in followers],
                         seed=1)
        FaultInjector(plan).attach(store)
        before = region.max_seqno
        appended = store.wal_for(region.server).appended_seqno
        with pytest.raises(ReplicationQuorumError):
            table.put(b"k1", b"v")
        # The write is a ghost: in the primary WAL, not in the memstore.
        assert table.get(b"k1") is None
        assert region.max_seqno == before
        assert store.wal_for(region.server).appended_seqno == appended + 1
        assert store.replication.quorum_failures == 1

    def test_quorum_error_is_retryable(self):
        assert "ReplicationQuorumError" in RETRYABLE_ERRORS
        err = ReplicationQuorumError("t", 0, 1, acks=1, required=2)
        assert isinstance(err, RegionUnavailableError)

    def test_periodic_policy_never_blocks_on_quorum(self):
        store = replicated_store(wal_policy=SyncPolicy.PERIODIC,
                                 num_servers=3)
        table = store.create_table("t")
        region = table.regions()[0]
        followers = store.replication.follower_servers(region.region_id)
        plan = FaultPlan([PartitionedFollower(s) for s in followers],
                         seed=1)
        FaultInjector(plan).attach(store)
        table.put(b"k", b"v")  # lazy shipping: no quorum, no error
        assert table.get(b"k") == b"v"
        assert store.replication.quorum_failures == 0


class TestFailover:
    def ingest(self, store, n=300, seed=0):
        table = store.create_table("t", presplit=store.num_servers)
        acked = {}
        for key in spread_keys(n, seed=seed):
            value = key.hex().encode()
            table.put(key, value)
            acked[key] = value
        return table, acked

    def test_promote_loses_nothing_and_beats_replay(self):
        replay = replicated_store(factor=1)
        rt, racked = self.ingest(replay)
        replay_report = replay.crash_server(0)

        store = replicated_store(factor=3)
        table, acked = self.ingest(store)
        report = store.crash_server(0)
        assert report.promoted_regions > 0
        assert all(table.get(k) == v for k, v in acked.items())
        assert all(rt.get(k) == v for k, v in racked.items())
        assert report.recovery_ms < replay_report.recovery_ms

    def test_chained_failures_lose_no_acked_writes(self):
        # Satellite: kill the primary, promote, kill the promoted
        # server too — acked SYNC writes must survive both hops.
        store = replicated_store(factor=3)
        table, acked = self.ingest(store, n=200)
        region = table.regions()[0]
        first = region.server
        store.crash_server(first)
        assert region.server != first
        promoted = region.server
        watermark = region.max_seqno
        # The promoted primary's watermark covers every acked write it
        # serves, and new writes advance it monotonically.
        for follower in store.replication.followers(region.region_id):
            assert follower.applied_seqno <= watermark
        store.crash_server(promoted)
        assert region.server not in (first, promoted)
        assert region.max_seqno >= 0
        assert all(table.get(k) == v for k, v in acked.items())
        # The store stays writable at quorum after both failovers.
        table.put(b"after-chain", b"v")
        assert table.get(b"after-chain") == b"v"
        assert region.max_seqno > 0
        assert store.replication.promotions >= 2

    def test_torn_primary_tail_is_covered_by_followers(self):
        # SYNC + torn tail would lose acked writes without replication;
        # the quorum copies on followers must cover the loss.
        store = replicated_store(factor=3)
        table, acked = self.ingest(store, n=150)
        victim = table.regions()[0].server
        store.crash_server(victim, lost_tail_records=25)
        assert all(table.get(k) == v for k, v in acked.items())

    def test_failover_restores_quorum_for_writes(self):
        store = replicated_store(factor=3, num_servers=3)
        table, acked = self.ingest(store, n=100)
        region = table.regions()[0]
        store.crash_server(region.server)
        # Immediately after promotion (no chore tick yet) a SYNC write
        # still finds a quorum of live followers.
        table.put(b"post", b"v")
        assert table.get(b"post") == b"v"

    def test_anti_entropy_heals_after_failover(self):
        store = replicated_store(factor=3)
        table, acked = self.ingest(store, n=100)
        store.crash_server(0)
        manager = store.replication
        manager.tick()
        for region in table.regions():
            followers = manager.followers(region.region_id)
            assert len(followers) == 2
            for follower in followers:
                assert follower.state == LIVE
                assert follower.lag_records == 0
                assert follower.server != region.server
                assert follower.server not in store.dead_servers

    def test_dead_server_cache_is_evicted_on_failover(self):
        # Satellite regression: failover must invalidate the dead
        # server's block-cache entries eagerly, replicated or not.
        for factor in (1, 3):
            store = replicated_store(factor=factor)
            table = store.create_table("t", presplit=5)
            acked = {}
            for key in spread_keys(200):
                value = key.hex().encode() * 16  # big enough to flush
                table.put(key, value)
                acked[key] = value
            store.clear_caches()
            for key in acked:
                table.get(key)  # repopulate block caches from disk
            victim = table.regions()[0].server
            assert store.cache_for(victim).used_bytes > 0
            store.crash_server(victim, defer_failover=True)
            store.failover(victim)
            assert store.cache_for(victim).used_bytes == 0

    def test_lag_alert_event_for_partitioned_follower(self):
        store = replicated_store(factor=3)
        manager = store.replication
        manager.lag_alert_records = 5
        table = store.create_table("t")
        region = table.regions()[0]
        lazy = store.replication.followers(region.region_id)[-1].server
        FaultInjector(FaultPlan([PartitionedFollower(lazy)],
                                seed=0)).attach(store)
        for i in range(20):
            table.put(b"k%d" % i, b"v")
        manager.tick()
        assert manager.lag_alerts > 0
        assert store.events.total_by_kind.get("replica_lag", 0) > 0


class TestReplicaReads:
    def build(self, read_mode, faults=(), n=120):
        store = replicated_store(read_mode=read_mode)
        table = store.create_table("t", presplit=5)
        keys = spread_keys(n)
        for key in keys:
            table.put(key, key.hex().encode())
        store.replication.tick()  # followers fully caught up
        if faults:
            FaultInjector(FaultPlan(list(faults), seed=0)).attach(store)
        return store, table, keys

    def test_follower_mode_serves_from_followers(self):
        store, table, keys = self.build("follower")
        for key in keys[:20]:
            assert table.get(key) == key.hex().encode()
        assert store.replication.follower_reads == 20

    def test_offline_primary_degrades_to_follower_serving(self):
        store, table, keys = self.build("follower")
        region = table._region_for(keys[0])
        store.crash_server(region.server, defer_failover=True)
        assert table.get(keys[0]) == keys[0].hex().encode()

    def test_primary_mode_raises_when_primary_offline(self):
        store, table, keys = self.build("primary")
        region = table._region_for(keys[0])
        store.crash_server(region.server, defer_failover=True)
        with pytest.raises(RegionUnavailableError):
            table.get(keys[0])

    def test_flapping_follower_falls_back_to_primary(self):
        store, table, keys = self.build("follower")
        region = table._region_for(keys[0])
        faults = [IntermittentError(s, probability=1.0)
                  for s in store.replication.follower_servers(
                      region.region_id)]
        FaultInjector(FaultPlan(faults, seed=0)).attach(store)
        # Only this region's followers flap; its healthy primary keeps
        # serving rather than surfacing the follower error.
        for key in (k for k in keys
                    if table._region_for(k) is region):
            assert table.get(key) == key.hex().encode()
        assert store.replication.follower_reads == 0

    def test_hedged_reads_cut_latency_under_slow_primary(self):
        store, table, keys = self.build(
            "hedged", faults=[SlowServer(0, latency_ms=50.0)])
        slow_keys = [k for k in keys
                     if table._region_for(k).server == 0][:10]
        assert slow_keys, "no region landed on the slow server"
        for key in slow_keys:
            ctx = RequestContext(deadline=Deadline(10_000.0))
            assert table.get(key, ctx=ctx) == key.hex().encode()
            # The hedge raced a healthy follower: the request paid the
            # hedge delay + follower read, never the 50ms stall.
            assert ctx.deadline.consumed_ms < 50.0
        manager = store.replication
        assert manager.hedged_reads >= 10
        assert manager.hedge_wins >= 10

    def test_hedged_read_stays_on_fast_primary(self):
        store, table, keys = self.build("hedged")
        for key in keys[:10]:
            assert table.get(key) == key.hex().encode()
        assert store.replication.hedged_reads == 0

    def test_per_request_read_mode_override(self):
        store, table, keys = self.build("primary")
        ctx = RequestContext(read_mode="follower")
        assert table.get(keys[0], ctx=ctx) == keys[0].hex().encode()
        assert store.replication.follower_reads == 1

    def test_scan_serves_follower_when_primary_offline(self):
        store, table, keys = self.build("follower")
        region = table.regions()[0]
        store.crash_server(region.server, defer_failover=True)
        from repro.kvstore.store import ScanSpec
        rows = dict(table.scan(ScanSpec.full()))
        assert rows == {k: k.hex().encode() for k in keys}


class TestMoveAndBalance:
    def test_move_swaps_colliding_follower_to_source(self):
        store = replicated_store()
        table = store.create_table("t")
        for i in range(20):
            table.put(b"k%02d" % i, b"v" * 64)
        region = table.regions()[0]
        source = region.server
        dest = store.replication.follower_servers(region.region_id)[0]
        store.move_region(region, dest)
        assert region.server == dest
        servers = store.replica_servers(region)
        assert len(servers) == 3 and source in servers
        store.replication.tick()
        store.events.advance(10_000.0)  # past the move reopen window
        assert all(table.get(b"k%02d" % i) == b"v" * 64
                   for i in range(20))

    def test_executor_skips_unplaceable_destination(self):
        # Satellite: a destination can crash between planning and
        # acting; the executor must skip (and record) it, not raise.
        store = replicated_store(factor=1)
        table = store.create_table("t", presplit=5)
        for key in spread_keys(100):
            table.put(key, b"v")
        balancer = Balancer(store)
        region = table.regions()[0]
        dest = next(s for s in range(store.num_servers)
                    if s != region.server)
        plan = [MoveAction(table="t", region=region,
                           source=region.server, dest=dest,
                           reason="test")]
        store.crash_server(dest, defer_failover=True)
        moved = balancer.apply_moves(1, 0.0, plan)
        assert moved == 0
        row = balancer.history_rows()[-1]
        assert row["action"] == "skip_move"
        assert row["dest_server"] == dest
        assert "stopped being placeable" in row["reason"]


class TestSurface:
    def test_sys_replication_rows_and_snapshot(self):
        store = replicated_store()
        table = store.create_table("t")
        table.put(b"k", b"v")
        rows = store.replication.rows()
        roles = [r["role"] for r in rows]
        assert roles.count("primary") == 1
        assert roles.count("follower") == 2
        snapshot = store.replication.snapshot()
        assert snapshot["factor"] == 3
        assert snapshot["quorum"] == 2
        assert snapshot["records_shipped"] == 1

    def test_engine_sql_over_sys_replication(self):
        from repro.core.engine import JustEngine
        engine = JustEngine(wal_policy=SyncPolicy.SYNC,
                            replication_factor=3)
        engine.sql("CREATE TABLE t (fid integer:primary key, "
                   "geom point)")
        engine.sql("INSERT INTO t VALUES (1, st_makePoint(1.0, 2.0))")
        result = engine.sql("SELECT role, count(*) AS n "
                            "FROM sys.replication GROUP BY role")
        counts = {r["role"]: r["n"] for r in result.rows}
        assert counts["follower"] == 2 * counts["primary"]

    def test_http_replication_route(self):
        from repro.core.engine import JustEngine
        from repro.service.http import JustHttpServer
        from repro.service.server import JustServer
        engine = JustEngine(wal_policy=SyncPolicy.SYNC,
                            replication_factor=3)
        transport = JustHttpServer(JustServer(engine))
        response = transport.handle({"path": "/replication"})
        assert response["enabled"] is True
        assert response["factor"] == 3
        off = JustHttpServer(JustServer())
        assert off.handle({"path": "/replication"}) \
            == {"enabled": False}
