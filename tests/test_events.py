"""The structured cluster event log: typed events, ring semantics,
simulated-clock stamping, and decayed hotness rates."""

import math

import pytest

from repro.errors import ServerOverloadedError
from repro.kvstore import KVStore, SyncPolicy
from repro.observability.events import (
    AdmissionShedEvent,
    BreakerTripEvent,
    CompactionEvent,
    DecayedRate,
    EventLog,
    FailoverEvent,
    FlushEvent,
    SessionExpiredEvent,
    SplitEvent,
)
from repro.resilience import AdmissionController, CircuitBreaker
from repro.service.server import JustServer


def small_store(**kwargs):
    defaults = dict(num_servers=3, flush_bytes=4 * 1024,
                    split_bytes=64 * 1024, block_bytes=1024)
    defaults.update(kwargs)
    return KVStore(**defaults)


# -- the ring -----------------------------------------------------------------

class TestEventLog:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_emit_stamps_seq_and_clock(self):
        log = EventLog()
        log.advance(120.5)
        event = log.emit(FlushEvent(table="t", region_id=3, server=1))
        assert event.seq == 1
        assert event.sim_ms == 120.5
        log.advance(10.0)
        assert log.emit(FlushEvent()).sim_ms == 130.5

    def test_advance_ignores_nonpositive(self):
        log = EventLog()
        log.advance(-5.0)
        log.advance(0.0)
        assert log.now_ms == 0.0

    def test_ring_drops_oldest_first(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit(FlushEvent(region_id=i))
        assert len(log) == 3
        assert [e.seq for e in log.events()] == [3, 4, 5]
        assert [e.region_id for e in log.events()] == [2, 3, 4]

    def test_totals_survive_eviction(self):
        log = EventLog(capacity=2)
        for _ in range(4):
            log.emit(FlushEvent())
        log.emit(CompactionEvent())
        assert log.total_emitted == 5
        assert log.total_by_kind == {"flush": 4, "compaction": 1}

    def test_kind_filter_and_limit(self):
        log = EventLog()
        log.emit(FlushEvent(region_id=1))
        log.emit(CompactionEvent(region_id=2))
        log.emit(FlushEvent(region_id=3))
        assert [e.region_id for e in log.events("flush")] == [1, 3]
        dumped = log.as_dicts(kind="flush", limit=1)
        assert [d["region_id"] for d in dumped] == [3]

    def test_row_projection_has_uniform_columns(self):
        log = EventLog()
        log.emit(FlushEvent(table="t", region_id=1, server=2,
                            bytes_flushed=100, entries=5))
        log.emit(BreakerTripEvent(consecutive_failures=4))
        rows = log.rows()
        assert set(rows[0]) == {"seq", "sim_ms", "kind", "table",
                                "region_id", "server", "detail"}
        assert rows[0]["detail"] == "bytes_flushed=100 entries=5"
        # Events without placement fields render them empty.
        assert rows[1]["table"] == ""
        assert rows[1]["region_id"] is None
        assert rows[1]["detail"] == "consecutive_failures=4"


class TestDecayedRate:
    def test_fresh_reads_have_positive_rate(self):
        rate = DecayedRate(tau_ms=30_000.0)
        rate.record(0.0)
        rate.record(0.0)
        assert rate.rate_per_s(0.0) == pytest.approx(2 / 30.0)

    def test_rate_decays_with_the_clock(self):
        rate = DecayedRate(tau_ms=1000.0)
        rate.record(0.0)
        fresh = rate.rate_per_s(0.0)
        later = rate.rate_per_s(5000.0)
        assert 0.0 < later < fresh
        assert later == pytest.approx(fresh * math.exp(-5.0))

    def test_stalled_clock_does_not_decay(self):
        rate = DecayedRate()
        rate.record(100.0)
        assert rate.rate_per_s(100.0) == rate.rate_per_s(100.0)

    def test_long_idle_gap_decays_to_zero(self):
        # The balancer reads these rates to find cold merge candidates:
        # after a long idle gap even a once-hot region must read ~0.
        rate = DecayedRate(tau_ms=30_000.0)
        for _ in range(100):
            rate.record(0.0)
        assert rate.rate_per_s(0.0) > 3.0
        assert rate.rate_per_s(600_000.0) < 1e-6  # 20 tau later


# -- kvstore emission ---------------------------------------------------------

class TestKvstoreEvents:
    def test_flush_emits_typed_event(self):
        store = small_store()
        table = store.create_table("t")
        for i in range(20):
            table.put(f"{i:04d}".encode(), b"v" * 50)
        table.flush()
        flushes = store.events.events("flush")
        assert len(flushes) == 1
        event = flushes[0]
        assert isinstance(event, FlushEvent)
        assert event.table == "t"
        assert event.entries == 20
        assert event.bytes_flushed > 0
        assert event.server == table.regions()[0].server

    def test_flush_with_wal_checkpoints_in_order(self):
        store = small_store(wal_policy=SyncPolicy.SYNC)
        table = store.create_table("t")
        table.put(b"k", b"v")
        table.flush()
        kinds = [e.kind for e in store.events.events()]
        assert kinds == ["flush", "wal_checkpoint"]
        checkpoint = store.events.events("wal_checkpoint")[0]
        assert checkpoint.seqno > 0

    def test_compaction_event_reports_runs(self):
        store = small_store()
        table = store.create_table("t")
        for batch in range(3):
            for i in range(batch * 10, batch * 10 + 10):
                table.put(f"{i:04d}".encode(), b"v" * 50)
            table.flush()
        table.compact()
        compactions = store.events.events("compaction")
        assert len(compactions) == 1
        event = compactions[0]
        assert isinstance(event, CompactionEvent)
        assert event.runs == 3
        assert event.bytes_after > 0

    def test_split_event_names_daughters(self):
        store = small_store(split_bytes=8 * 1024)
        table = store.create_table("t")
        for i in range(2000):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        assert table.num_regions > 1
        splits = store.events.events("split")
        assert splits
        event = splits[0]
        assert isinstance(event, SplitEvent)
        assert event.left_region_id != event.right_region_id
        assert event.split_key  # hex of the midpoint key

    def test_failover_event_on_crash(self):
        store = small_store(wal_policy=SyncPolicy.SYNC)
        table = store.create_table("t")
        for i in range(50):
            table.put(f"{i:04d}".encode(), b"v" * 50)
        victim = table.regions()[0].server
        store.crash_server(victim)
        failovers = store.events.events("failover")
        assert len(failovers) == 1
        event = failovers[0]
        assert isinstance(event, FailoverEvent)
        assert event.server == victim
        assert event.regions_reassigned >= 1
        assert event.replayed_records > 0

    def test_lifecycle_orders_by_seq(self):
        store = small_store(wal_policy=SyncPolicy.SYNC,
                            split_bytes=16 * 1024)
        table = store.create_table("t")
        # Two flushed runs (under the split threshold), then a compact,
        # then enough load to split, then a crash: the event feed must
        # replay that exact story in seq order.
        for i in range(100):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        table.flush()
        table.compact()
        for i in range(100, 2000):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        assert table.num_regions > 1
        store.crash_server(table.regions()[0].server)
        events = store.events.events()
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        kinds = [e.kind for e in events]
        for earlier, later in (("flush", "compaction"),
                               ("compaction", "split"),
                               ("split", "failover")):
            assert kinds.index(earlier) < kinds.index(later)

    def test_region_hotness_counters(self):
        store = small_store()
        table = store.create_table("t")
        table.put(b"a", b"1")
        table.put(b"b", b"2")
        table.get(b"a")
        region = table.regions()[0]
        assert region.writes == 2
        assert region.reads == 1
        assert region.read_rate.rate_per_s(store.events.now_ms) > 0
        assert region.write_rate.rate_per_s(store.events.now_ms) > 0


# -- service-layer emission ----------------------------------------------------

class TestServiceEvents:
    def test_admission_shed_emits(self):
        control = AdmissionController(max_in_flight=10, max_per_user=1)
        log = EventLog()
        control.bind_events(log)
        control.acquire("alice")
        with pytest.raises(ServerOverloadedError):
            control.acquire("alice")
        sheds = log.events("admission_shed")
        assert len(sheds) == 1
        assert isinstance(sheds[0], AdmissionShedEvent)
        assert "alice" in sheds[0].scope

    def test_breaker_trip_emits(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=2,
                                 clock=lambda: now[0])
        log = EventLog()
        breaker.bind_events(log)
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure()
        trips = log.events("breaker_trip")
        assert len(trips) == 1
        assert isinstance(trips[0], BreakerTripEvent)
        assert trips[0].consecutive_failures == 2

    def test_statements_advance_the_clock(self):
        server = JustServer()
        session = server.connect("alice")
        server.execute(session,
                       "CREATE TABLE t (fid integer:primary key, "
                       "v double)")
        server.execute(session, "INSERT INTO t VALUES (1, 1.5)")
        assert server.events.now_ms > 0

    def test_session_expiry_emits(self):
        server = JustServer(session_timeout_s=0.0)
        server.connect("alice")
        fresh = server.connect("bob")
        # Any later statement first expires the stale sessions.
        with pytest.raises(Exception):
            server.execute(fresh, "SHOW TABLES")
        expired = server.events.events("session_expired")
        assert expired
        assert isinstance(expired[0], SessionExpiredEvent)
        assert {e.user for e in expired} >= {"alice"}
