"""In-memory spatial indexes vs brute force."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Envelope
from repro.spatial_index import GridIndex, KDTree, QuadTree, RTree


def random_points(n, seed=0):
    rng = random.Random(seed)
    return [(116.0 + rng.random(), 39.0 + rng.random(), i)
            for i in range(n)]


def random_boxes(n, seed=0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        lng = 116.0 + rng.random()
        lat = 39.0 + rng.random()
        out.append((Envelope(lng, lat, lng + rng.random() * 0.05,
                             lat + rng.random() * 0.05), i))
    return out


QUERY = Envelope(116.3, 39.3, 116.6, 39.6)


def brute_force_boxes(boxes, query):
    return {v for e, v in boxes if e.intersects(query)}


def brute_force_points(points, query):
    return {v for x, y, v in points if query.contains_point(x, y)}


class TestRTree:
    def test_range_matches_brute_force(self):
        boxes = random_boxes(500, seed=1)
        tree = RTree(boxes)
        assert set(tree.range_query(QUERY)) == \
            brute_force_boxes(boxes, QUERY)

    def test_empty_tree(self):
        tree = RTree([])
        assert tree.range_query(QUERY) == []
        assert tree.knn(0, 0, 5) == []

    def test_knn_matches_brute_force(self):
        boxes = random_boxes(300, seed=2)
        tree = RTree(boxes)
        got = tree.knn(116.5, 39.5, 10)
        ranked = sorted(
            boxes, key=lambda bv: bv[0].min_distance_to_point(116.5, 39.5))
        expected_d = [e.min_distance_to_point(116.5, 39.5)
                      for e, _v in ranked[:10]]
        # Values may tie; compare distances.
        got_d = sorted(
            next(e for e, v in boxes if v == value)
            .min_distance_to_point(116.5, 39.5) for value in got)
        assert got_d == pytest.approx(sorted(expected_d))

    def test_height_grows_logarithmically(self):
        small = RTree(random_boxes(10))
        large = RTree(random_boxes(2000))
        assert small.height <= large.height <= 4

    def test_memory_estimate_scales(self):
        assert RTree(random_boxes(1000)).memory_bytes() > \
            RTree(random_boxes(10)).memory_bytes()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_property_range_correct(self, seed):
        boxes = random_boxes(120, seed=seed)
        tree = RTree(boxes, node_capacity=4)
        assert set(tree.range_query(QUERY)) == \
            brute_force_boxes(boxes, QUERY)


class TestQuadTree:
    def make(self, points):
        tree = QuadTree(Envelope(116.0, 39.0, 117.01, 40.01),
                        leaf_capacity=16)
        for x, y, v in points:
            assert tree.insert(x, y, v)
        return tree

    def test_range_matches_brute_force(self):
        points = random_points(800, seed=3)
        tree = self.make(points)
        assert set(tree.range_query(QUERY)) == \
            brute_force_points(points, QUERY)

    def test_out_of_bounds_rejected(self):
        tree = QuadTree(Envelope(0, 0, 1, 1))
        assert not tree.insert(5.0, 5.0, "x")
        assert tree.size == 0

    def test_splitting_occurred(self):
        tree = self.make(random_points(800, seed=4))
        assert tree.node_count() > 1

    def test_max_depth_bounds_degeneracy(self):
        tree = QuadTree(Envelope(0, 0, 1, 1), leaf_capacity=1,
                        max_depth=3)
        for i in range(20):
            tree.insert(0.5, 0.5, i)  # identical points cannot split
        assert set(tree.range_query(Envelope(0.4, 0.4, 0.6, 0.6))) == \
            set(range(20))


class TestGridIndex:
    def test_range_matches_brute_force(self):
        boxes = random_boxes(400, seed=5)
        grid = GridIndex(Envelope(116.0, 39.0, 117.1, 40.1), 16, 16)
        for envelope, value in boxes:
            grid.insert(envelope, value)
        assert set(grid.range_query(QUERY)) == \
            brute_force_boxes(boxes, QUERY)

    def test_deduplication_across_cells(self):
        grid = GridIndex(Envelope(0, 0, 10, 10), 10, 10)
        wide = Envelope(1, 1, 9, 9)  # spans many cells
        grid.insert(wide, "wide")
        assert grid.range_query(Envelope(0, 0, 10, 10)) == ["wide"]

    def test_validation(self):
        with pytest.raises(ValueError):
            GridIndex(Envelope(0, 0, 1, 1), 0, 5)

    def test_occupied_cells(self):
        grid = GridIndex(Envelope(0, 0, 10, 10), 10, 10)
        grid.insert(Envelope.of_point(0.5, 0.5), "a")
        assert grid.occupied_cells() == 1


class TestKDTree:
    def test_range_matches_brute_force(self):
        points = random_points(600, seed=6)
        tree = KDTree(points)
        assert set(tree.range_query(QUERY)) == \
            brute_force_points(points, QUERY)

    def test_knn_matches_brute_force(self):
        points = random_points(400, seed=7)
        tree = KDTree(points)
        got = tree.knn(116.5, 39.5, 15)
        ranked = sorted(points, key=lambda p: (p[0] - 116.5) ** 2
                        + (p[1] - 39.5) ** 2)
        assert set(got) == {v for _x, _y, v in ranked[:15]}

    def test_knn_ordering(self):
        points = random_points(100, seed=8)
        tree = KDTree(points)
        got = tree.knn(116.5, 39.5, 10)
        by_value = {v: (x, y) for x, y, v in points}
        distances = [((by_value[v][0] - 116.5) ** 2
                      + (by_value[v][1] - 39.5) ** 2) for v in got]
        assert distances == sorted(distances)

    def test_empty(self):
        tree = KDTree([])
        assert tree.range_query(QUERY) == []
        assert tree.knn(0, 0, 3) == []
