"""JustQL parser: statements and expression grammar."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    Aliased,
    Between,
    BinaryOp,
    Column,
    CreateTableStmt,
    CreateViewStmt,
    DescStmt,
    DropStmt,
    FuncCall,
    InFunc,
    InsertStmt,
    LoadStmt,
    Literal,
    SelectStmt,
    ShowStmt,
    Star,
    StoreViewStmt,
    SubquerySource,
    TableSource,
)
from repro.sql.parser import parse_statement


class TestSelect:
    def test_minimal(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, SelectStmt)
        assert [c.name for c in stmt.projections] == ["a", "b"]
        assert stmt.source.name == "t"

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.projections[0], Star)

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t")
        assert stmt.projections[0] == Aliased(Column("a"), "x")
        assert stmt.projections[1] == Aliased(Column("b"), "y")

    def test_subquery_source(self):
        stmt = parse_statement("SELECT a FROM (SELECT * FROM t) sub")
        assert isinstance(stmt.source, SubquerySource)
        assert stmt.source.alias == "sub"

    def test_where_within_and_between(self):
        stmt = parse_statement(
            "SELECT * FROM t WHERE geom WITHIN st_makeMBR(1,2,3,4) "
            "AND time BETWEEN 10 AND 20")
        where = stmt.where
        assert isinstance(where, BinaryOp) and where.op == "and"
        assert isinstance(where.left, BinaryOp)
        assert where.left.op == "within"
        assert isinstance(where.right, Between)

    def test_in_knn(self):
        stmt = parse_statement(
            "SELECT * FROM t WHERE geom IN st_KNN(st_makePoint(1,2), 5)")
        assert isinstance(stmt.where, InFunc)
        assert stmt.where.func.name == "st_knn"

    def test_group_order_limit(self):
        stmt = parse_statement(
            "SELECT name, count(*) FROM t GROUP BY name "
            "ORDER BY name DESC LIMIT 10")
        assert stmt.group_by == [Column("name")]
        assert stmt.order_by == [(Column("name"), False)]
        assert stmt.limit == 10

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_operator_precedence(self):
        stmt = parse_statement("SELECT a FROM t WHERE x = 1 + 2 * 3")
        comparison = stmt.where
        assert comparison.op == "="
        addition = comparison.right
        assert addition.op == "+"
        assert addition.right.op == "*"

    def test_parenthesized_or(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3")
        assert stmt.where.op == "and"
        assert stmt.where.left.op == "or"

    def test_is_null(self):
        stmt = parse_statement("SELECT a FROM t WHERE x IS NOT NULL")
        assert stmt.where.negated

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t garbage !")

    def test_count_star(self):
        stmt = parse_statement("SELECT count(*) FROM t")
        call = stmt.projections[0]
        assert isinstance(call, FuncCall) and call.is_star_count


class TestCreate:
    def test_create_table_columns(self):
        stmt = parse_statement(
            "CREATE TABLE poi (fid integer:primary key, name string, "
            "time date, geom point:srid=4326, "
            "gpsList st_series:compress=gzip|zip)")
        assert isinstance(stmt, CreateTableStmt)
        specs = dict(stmt.columns)
        assert specs["fid"] == "integer:primary key"
        assert specs["geom"] == "point:srid=4326"
        assert specs["gpsList"] == "st_series:compress=gzip|zip"

    def test_create_table_userdata(self):
        stmt = parse_statement(
            "CREATE TABLE t (fid integer:primary key, geom point) "
            "USERDATA {'geomesa.indices.enabled':'z3'}")
        assert stmt.userdata == {"geomesa.indices.enabled": "z3"}

    def test_create_plugin_table(self):
        stmt = parse_statement("CREATE TABLE trips AS trajectory")
        assert stmt.plugin == "trajectory"
        assert stmt.columns == []

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(stmt, CreateViewStmt)
        assert stmt.name == "v"
        assert isinstance(stmt.select, SelectStmt)

    def test_malformed_userdata(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t (a integer) "
                            "USERDATA {'unclosed': ")


class TestOtherStatements:
    def test_drop(self):
        assert parse_statement("DROP TABLE t") == DropStmt("table", "t")
        assert parse_statement("DROP VIEW v") == DropStmt("view", "v")

    def test_show(self):
        assert parse_statement("SHOW TABLES") == ShowStmt("tables")
        assert parse_statement("SHOW VIEWS") == ShowStmt("views")

    def test_desc(self):
        assert parse_statement("DESC TABLE t") == DescStmt("t")
        assert parse_statement("DESCRIBE v") == DescStmt("v")

    def test_store_view(self):
        stmt = parse_statement("STORE VIEW v TO TABLE t")
        assert stmt == StoreViewStmt("v", "t")

    def test_insert(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, InsertStmt)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2
        assert stmt.rows[0][0] == Literal(1)

    def test_insert_with_function_values(self):
        stmt = parse_statement(
            "INSERT INTO t VALUES (1, st_makePoint(116.3, 39.9))")
        assert isinstance(stmt.rows[0][1], FuncCall)

    def test_load(self):
        stmt = parse_statement(
            "LOAD hive:db.orders TO geomesa:t "
            "CONFIG {'fid': 'oid', 'geom': 'lng_lat_to_point(lng, lat)'} "
            "FILTER 'oid=\"10\" limit 5'")
        assert isinstance(stmt, LoadStmt)
        assert stmt.source == "hive:db.orders"
        assert stmt.table == "t"
        assert stmt.config["fid"] == "oid"
        assert stmt.filter_text == 'oid="10" limit 5'

    def test_load_without_filter(self):
        stmt = parse_statement(
            "LOAD file:data.csv TO geomesa:t CONFIG {'fid': 'id'}")
        assert stmt.filter_text is None

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse_statement("UPDATE t SET a = 1")

    def test_semicolon_tolerated(self):
        assert isinstance(parse_statement("SHOW TABLES;"),
                          ShowStmt)
