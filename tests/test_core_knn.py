"""k-NN query (Algorithm 1) vs brute force."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.knn import knn_query
from repro.curves import STQuery
from repro.errors import ExecutionError
from repro.geometry import Envelope

from conftest import make_poi_rows


def brute_force(rows, lng, lat, k):
    ranked = sorted(rows, key=lambda r: ((r["geom"].lng - lng) ** 2
                                         + (r["geom"].lat - lat) ** 2))
    return [r["fid"] for r in ranked[:k]]


class TestKNN:
    def test_matches_brute_force(self, poi_engine, poi_rows):
        table = poi_engine.table("poi")
        result = knn_query(table, 116.25, 39.9, 10)
        assert {r["fid"] for r in result.rows} == \
            set(brute_force(poi_rows, 116.25, 39.9, 10))

    def test_distances_sorted(self, poi_engine):
        table = poi_engine.table("poi")
        result = knn_query(table, 116.25, 39.9, 25)
        assert result.distances == sorted(result.distances)

    def test_k_larger_than_dataset(self, poi_engine):
        table = poi_engine.table("poi")
        result = knn_query(table, 116.25, 39.9, 10_000)
        assert len(result.rows) == 500

    def test_query_point_outside_data(self, poi_engine, poi_rows):
        table = poi_engine.table("poi")
        result = knn_query(table, 116.9, 40.3, 5)
        assert {r["fid"] for r in result.rows} == \
            set(brute_force(poi_rows, 116.9, 40.3, 5))

    def test_pruning_happens(self, poi_engine):
        table = poi_engine.table("poi")
        result = knn_query(table, 116.25, 39.9, 5)
        assert result.areas_pruned > 0

    def test_invalid_k(self, poi_engine):
        with pytest.raises(ExecutionError):
            knn_query(poi_engine.table("poi"), 116.25, 39.9, 0)

    def test_explicit_search_area(self, poi_engine, poi_rows):
        table = poi_engine.table("poi")
        area = Envelope(116.0, 39.8, 116.5, 40.1)
        result = knn_query(table, 116.25, 39.9, 3, search_area=area)
        assert {r["fid"] for r in result.rows} == \
            set(brute_force(poi_rows, 116.25, 39.9, 3))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), k=st.integers(1, 30))
    def test_property_matches_brute_force(self, poi_engine_factory,
                                          seed, k):
        engine, rows = poi_engine_factory
        rng = random.Random(seed)
        lng = 116.0 + rng.random() * 0.5
        lat = 39.8 + rng.random() * 0.3
        table = engine.table("poi")
        result = knn_query(table, lng, lat, k)
        expected = brute_force(rows, lng, lat, k)
        # Sets compare (ties at equal distance may reorder).
        got_d = result.distances
        exp_d = sorted(((r["geom"].lng - lng) ** 2
                        + (r["geom"].lat - lat) ** 2) ** 0.5
                       for r in rows)[:k]
        assert got_d == pytest.approx(exp_d)
        del expected


@pytest.fixture(scope="module")
def poi_engine_factory():
    from repro import JustEngine, Schema
    from conftest import POI_SCHEMA_FIELDS
    engine = JustEngine()
    rows = make_poi_rows(300, seed=23)
    engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
    engine.insert("poi", rows)
    return engine, rows
