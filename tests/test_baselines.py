"""Baseline systems: correctness, capabilities, cost shapes, OOM."""

import pytest

from repro.baselines import (
    FEATURE_MATRIX,
    GeoSpark,
    LocationSpark,
    Simba,
    SpatialHadoop,
    SpatialSpark,
    STHadoop,
    feature_table,
)
from repro.baselines.base import (
    Item,
    items_from_orders,
    items_from_trajectories,
)
from repro.baselines.registry import features_of
from repro.cluster import Cluster
from repro.errors import (
    SimulatedOutOfMemoryError,
    UnsupportedOperationError,
)
from repro.geometry import Envelope

ALL_SYSTEMS = (Simba, GeoSpark, SpatialSpark, LocationSpark,
               SpatialHadoop, STHadoop)

QUERY = Envelope(116.2, 39.8, 116.4, 40.0)


def big_cluster():
    return Cluster(memory_budget_bytes=10 ** 13)


@pytest.fixture(scope="module")
def order_items(small_orders):
    return items_from_orders(small_orders)


@pytest.fixture(scope="module")
def traj_items(small_trajs):
    return items_from_trajectories(small_trajs)


class TestCorrectness:
    @pytest.mark.parametrize("cls", ALL_SYSTEMS)
    def test_spatial_range_exact(self, cls, order_items):
        system = cls(big_cluster())
        system.load(order_items)
        expected = {i.fid for i in order_items
                    if i.envelope.intersects(QUERY)}
        got = {i.fid for i in system.spatial_range_query(QUERY).items}
        assert got == expected

    @pytest.mark.parametrize("cls", ALL_SYSTEMS)
    def test_trajectory_mbr_range(self, cls, traj_items):
        system = cls(big_cluster())
        system.load(traj_items)
        expected = {i.fid for i in traj_items
                    if i.envelope.intersects(QUERY)}
        got = {i.fid for i in system.spatial_range_query(QUERY).items}
        assert got == expected

    @pytest.mark.parametrize("cls", [c for c in ALL_SYSTEMS
                                     if c.supports_knn])
    def test_knn_distances(self, cls, order_items):
        system = cls(big_cluster())
        system.load(order_items)
        k = 20
        got = system.knn(116.3, 39.9, k).items
        assert len(got) == k
        ranked = sorted(order_items, key=lambda i: i.envelope
                        .min_distance_to_point(116.3, 39.9))
        expected_d = [i.envelope.min_distance_to_point(116.3, 39.9)
                      for i in ranked[:k]]
        got_d = [i.envelope.min_distance_to_point(116.3, 39.9)
                 for i in got]
        assert got_d == pytest.approx(expected_d)

    def test_st_hadoop_temporal_filter(self, order_items):
        system = STHadoop(big_cluster())
        system.load(order_items)
        t_lo = min(i.t_min for i in order_items)
        t_hi = t_lo + 86400 * 7
        got = {i.fid for i in
               system.st_range_query(QUERY, t_lo, t_hi).items}
        expected = {i.fid for i in order_items
                    if i.envelope.intersects(QUERY)
                    and i.t_max >= t_lo and i.t_min <= t_hi}
        assert got == expected


class TestCapabilities:
    def test_spatialspark_no_knn(self, order_items):
        system = SpatialSpark(big_cluster())
        system.load(order_items)
        with pytest.raises(UnsupportedOperationError):
            system.knn(116.3, 39.9, 5)

    @pytest.mark.parametrize("cls", [Simba, GeoSpark, SpatialSpark,
                                     LocationSpark, SpatialHadoop])
    def test_no_st_support(self, cls, order_items):
        system = cls(big_cluster())
        system.load(order_items)
        with pytest.raises(UnsupportedOperationError):
            system.st_range_query(QUERY, 0.0, 1.0)

    def test_st_hadoop_historical_append_rejected(self, traj_items):
        system = STHadoop(big_cluster())
        system.load(traj_items)
        historical = Item("old", traj_items[0].envelope,
                          traj_items[0].t_min - 86400 * 900,
                          traj_items[0].t_min - 86400 * 900, 64)
        with pytest.raises(UnsupportedOperationError):
            system.append_future([historical])

    def test_st_hadoop_future_append_accepted(self, traj_items):
        system = STHadoop(big_cluster())
        system.load(traj_items)
        future = Item("new", traj_items[0].envelope,
                      max(i.t_max for i in traj_items) + 86400 * 10,
                      max(i.t_max for i in traj_items) + 86400 * 10, 64)
        system.append_future([future])
        assert any(i.fid == "new" for i in system.items)


class TestCostShapes:
    def test_hadoop_queries_dominated_by_job_launch(self, order_items):
        hadoop = SpatialHadoop(big_cluster())
        hadoop.load(order_items)
        spark = Simba(big_cluster())
        spark.load(order_items)
        assert hadoop.spatial_range_query(QUERY).sim_ms > \
            10 * spark.spatial_range_query(QUERY).sim_ms

    def test_hadoop_indexing_much_slower(self, order_items):
        hadoop_job = SpatialHadoop(big_cluster()).load(order_items)
        spark_job = Simba(big_cluster()).load(order_items)
        assert hadoop_job.elapsed_ms > 5 * spark_job.elapsed_ms

    def test_geospark_visits_all_partitions(self, order_items):
        geospark = GeoSpark(big_cluster())
        geospark.load(order_items)
        tiny = Envelope(116.30, 39.90, 116.301, 39.901)
        assert len(geospark._candidate_partitions(tiny,
                                                  geospark.cluster.job())) \
            == len(geospark.partitions)
        simba = Simba(big_cluster())
        simba.load(order_items)
        assert len(simba._candidate_partitions(tiny,
                                               simba.cluster.job())) < \
            len(simba.partitions)


class TestMemoryBudget:
    """The OOM crossovers of Section VIII (Figures 10d/11b/13b)."""

    def budget_for(self, traj_items):
        return int(0.9 * sum(i.raw_bytes for i in traj_items))

    def fraction(self, traj_items, percent):
        count = int(len(traj_items) * percent / 100)
        return traj_items[:count]

    @pytest.mark.parametrize("cls,percent,expect_oom", [
        (LocationSpark, 20, True),
        (Simba, 20, False),
        (Simba, 40, True),
        (SpatialSpark, 80, False),
        (SpatialSpark, 100, True),
        (GeoSpark, 100, False),
    ])
    def test_paper_oom_points(self, traj_items, cls, percent, expect_oom):
        cluster = Cluster(memory_budget_bytes=self.budget_for(traj_items))
        system = cls(cluster)
        subset = self.fraction(traj_items, percent)
        if expect_oom:
            with pytest.raises(SimulatedOutOfMemoryError):
                system.load(subset)
        else:
            system.load(subset)
            assert system.loaded

    def test_hadoop_never_ooms(self, traj_items):
        cluster = Cluster(memory_budget_bytes=1)  # essentially no memory
        system = SpatialHadoop(cluster)
        system.load(traj_items)  # disk-based: fine
        assert system.loaded

    def test_unload_releases_memory(self, traj_items):
        cluster = Cluster(memory_budget_bytes=self.budget_for(traj_items))
        system = GeoSpark(cluster)
        system.load(traj_items)
        system.unload()
        assert cluster.memory_in_use == 0


class TestRegistry:
    def test_twelve_systems(self):
        assert len(FEATURE_MATRIX) == 12
        assert [f.name for f in FEATURE_MATRIX][0] == "JUST"

    def test_feature_rows(self):
        rows = feature_table()
        just = rows[0]
        assert just["data_update"] == "Yes"
        assert just["s_or_st"] == "S/ST"
        sthadoop = features_of("st-hadoop")
        assert sthadoop.data_update == "Limited"

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            features_of("Oracle")
