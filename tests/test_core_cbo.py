"""Cost-based planning and adaptive execution (Section IX, #3 and #4)."""

import pytest

from repro import Envelope, JustEngine, Point, Schema, STQuery
from repro.core.query import (
    choose_strategy_cost_based,
    estimate_scan_cost_ms,
)

from conftest import POI_SCHEMA_FIELDS, T0, make_poi_rows


def build_engine(**kwargs) -> JustEngine:
    engine = JustEngine(**kwargs)
    engine.create_table(
        "poi", Schema(list(POI_SCHEMA_FIELDS)),
        userdata={"geomesa.indices.enabled": "z2,z2t,z3"})
    engine.insert("poi", make_poi_rows(400, seed=31))
    engine.table("poi").flush()
    return engine


WINDOW = Envelope(116.1, 39.85, 116.2, 39.95)


class TestSelectivityEstimates:
    def test_smaller_window_smaller_estimate(self):
        engine = build_engine()
        table = engine.table("poi")
        strategy = table.strategies["z2"]
        small = strategy.estimate_selectivity(
            STQuery(envelope=Envelope(116.1, 39.85, 116.11, 39.86)))
        large = strategy.estimate_selectivity(
            STQuery(envelope=Envelope(116.0, 39.8, 116.5, 40.1)))
        assert small < large <= 1.0

    def test_unsupported_query_is_full_scan(self):
        engine = build_engine()
        strategy = engine.table("poi").strategies["z2t"]
        assert strategy.estimate_selectivity(
            STQuery(envelope=WINDOW)) == 1.0


class TestCostBasedChoice:
    def test_z3_always_costed_worse_than_z2t(self):
        # The estimator must reflect Section IV-B: the interleaved curve
        # over-scans, so at calibrated data volumes Z3 never wins.
        from repro.cluster import CostModel
        model = CostModel(work_scale=20_000.0)
        engine = build_engine(cost_model=model)
        table = engine.table("poi")
        query = STQuery(WINDOW, T0, T0 + 86400)
        cost_z2t = estimate_scan_cost_ms(table, "z2t", query, model)
        cost_z3 = estimate_scan_cost_ms(table, "z3", query, model)
        assert cost_z2t < cost_z3
        name, _q = choose_strategy_cost_based(table, query, model)
        assert name != "z3"

    def test_byte_dominated_regime_picks_z2t(self):
        # With per-range seek costs removed (SSD-class storage), scan
        # volume decides and Z2T wins outright.
        from repro.cluster import CostModel
        model = CostModel(work_scale=20_000.0, seek_ms=0.0)
        engine = build_engine(cost_model=model)
        table = engine.table("poi")
        query = STQuery(WINDOW, T0, T0 + 86400)
        name, _q = choose_strategy_cost_based(table, query, model)
        assert name == "z2t"

    def test_unsupported_strategy_costs_infinite(self):
        engine = build_engine()
        table = engine.table("poi")
        spatial_only = STQuery(envelope=WINDOW)
        assert estimate_scan_cost_ms(table, "z2t", spatial_only,
                                     engine.cluster.model) == float("inf")

    def test_fallback_to_rules_when_nothing_supports(self):
        engine = JustEngine()
        engine.create_table("t", Schema(list(POI_SCHEMA_FIELDS)),
                            userdata={"geomesa.indices.enabled": "z2t"})
        engine.insert("t", make_poi_rows(50, seed=1))
        table = engine.table("t")
        # Spatial-only query, only a temporal index: the rule-based path
        # widens with the observed time extent.
        name, query = choose_strategy_cost_based(
            table, STQuery(envelope=WINDOW), engine.cluster.model)
        assert name == "z2t"
        assert query.has_temporal

    def test_engine_flag_produces_same_results(self):
        rows = make_poi_rows(400, seed=31)
        results = []
        for cbo in (False, True):
            engine = JustEngine(cost_based_planner=cbo)
            engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
            engine.insert("poi", rows)
            got = engine.st_range_query("poi", WINDOW, T0,
                                        T0 + 86400).rows
            results.append(sorted(r["fid"] for r in got))
        assert results[0] == results[1]


class TestAnalyzeChangesPlans:
    def test_measured_extent_flips_the_index_choice(self):
        from repro.cluster import CostModel
        model = CostModel(work_scale=20_000.0, seek_ms=0.0)
        engine = JustEngine(cost_model=model)
        engine.create_table(
            "poi", Schema(list(POI_SCHEMA_FIELDS)),
            userdata={"geomesa.indices.enabled": "z2,z2t"})
        engine.insert("poi", make_poi_rows(400, seed=31))
        table = engine.table("poi")
        # A since-deleted outlier poisoned the grow-only inline extent:
        # the table believes it spans ~1000 days when the live data
        # spans five.
        engine.insert("poi", [{"fid": 9999, "name": "ghost",
                               "time": T0 + 1000 * 86400,
                               "geom": Point(116.3, 39.9)}])
        table.delete("9999")
        table.flush()
        query = STQuery(WINDOW, T0, T0 + 5 * 86400)
        # Against the poisoned inline extent the query looks like a tiny
        # temporal slice, so the temporal index wins...
        before, _q = choose_strategy_cost_based(table, query, model)
        assert before == "z2t"
        stats, _job = engine.analyze_table("poi")
        # ...but measured stats see the true five-day extent, the slice
        # covers everything, and the spatial index takes over.
        assert stats.time_extent is not None
        assert (stats.time_extent[1] - stats.time_extent[0]
                < table.time_extent[1] - table.time_extent[0])
        after, _q = choose_strategy_cost_based(table, query, model)
        assert after == "z2"

    def test_analyze_counts_live_rows_only(self):
        engine = build_engine()
        engine.table("poi").delete("7")
        stats, _job = engine.analyze_table("poi")
        assert stats.row_count == 399
        assert sum(d.entries for d in stats.distribution) == 399


class TestAdaptiveExecution:
    def test_small_query_takes_local_path(self):
        engine = build_engine(adaptive_execution=True,
                              oltp_threshold_bytes=1 << 30)
        result = engine.spatial_range_query(
            "poi", Envelope(116.1, 39.85, 116.101, 39.851))
        assert "driver_local" in result.breakdown
        assert "driver" not in result.breakdown

    def test_large_query_takes_distributed_path(self):
        engine = build_engine(adaptive_execution=True,
                              oltp_threshold_bytes=0)
        result = engine.spatial_range_query(
            "poi", Envelope(116.0, 39.8, 116.5, 40.1))
        assert "driver" in result.breakdown

    def test_adaptive_is_cheaper_for_point_lookups(self):
        adaptive = build_engine(adaptive_execution=True,
                                oltp_threshold_bytes=1 << 30)
        classic = build_engine(adaptive_execution=False)
        tiny = Envelope(116.1, 39.85, 116.1001, 39.8501)
        fast = adaptive.spatial_range_query("poi", tiny).sim_ms
        slow = classic.spatial_range_query("poi", tiny).sim_ms
        assert fast < slow

    def test_results_identical(self):
        rows = make_poi_rows(400, seed=31)
        results = []
        for adaptive in (False, True):
            engine = JustEngine(adaptive_execution=adaptive)
            engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
            engine.insert("poi", rows)
            got = engine.st_range_query("poi", WINDOW, T0,
                                        T0 + 86400).rows
            results.append(sorted(r["fid"] for r in got))
        assert results[0] == results[1]
