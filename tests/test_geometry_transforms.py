"""Coordinate transform properties."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    bd09_to_gcj02,
    gcj02_to_bd09,
    gcj02_to_wgs84,
    haversine_distance_m,
    wgs84_to_gcj02,
)

# Coordinates inside mainland China where GCJ02 applies.
china_lngs = st.floats(75.0, 130.0)
china_lats = st.floats(20.0, 50.0)


def test_beijing_offset_is_hundreds_of_meters():
    lng, lat = 116.397, 39.908  # Tiananmen
    glng, glat = wgs84_to_gcj02(lng, lat)
    shift = haversine_distance_m(lng, lat, glng, glat)
    assert 100.0 < shift < 1000.0


def test_out_of_china_is_identity():
    assert wgs84_to_gcj02(-73.97, 40.78) == (-73.97, 40.78)
    assert gcj02_to_wgs84(-73.97, 40.78) == (-73.97, 40.78)


@given(lng=china_lngs, lat=china_lats)
def test_gcj02_roundtrip_within_meters(lng, lat):
    glng, glat = wgs84_to_gcj02(lng, lat)
    back_lng, back_lat = gcj02_to_wgs84(glng, glat)
    assert haversine_distance_m(lng, lat, back_lng, back_lat) < 5.0


@given(lng=china_lngs, lat=china_lats)
def test_bd09_roundtrip_within_meters(lng, lat):
    blng, blat = gcj02_to_bd09(lng, lat)
    back_lng, back_lat = bd09_to_gcj02(blng, blat)
    assert haversine_distance_m(lng, lat, back_lng, back_lat) < 2.0


def test_bd09_offset_direction():
    blng, blat = gcj02_to_bd09(116.4, 39.9)
    assert blng > 116.4 and blat > 39.9  # Baidu shifts north-east
