"""Z-order curve bit manipulation and locality properties."""

import pytest
from hypothesis import given, strategies as st

from repro.curves.zorder import (
    Dimension,
    Z2Curve,
    Z3Curve,
    combine2,
    combine3,
    deinterleave2,
    deinterleave3,
    interleave2,
    interleave3,
    split2,
    split3,
)

u31 = st.integers(0, (1 << 31) - 1)
u21 = st.integers(0, (1 << 21) - 1)
lngs = st.floats(-180, 180, allow_nan=False)
lats = st.floats(-90, 90, allow_nan=False)


class TestBitInterleaving:
    @given(x=u31)
    def test_split2_roundtrip(self, x):
        assert combine2(split2(x)) == x

    @given(x=u21)
    def test_split3_roundtrip(self, x):
        assert combine3(split3(x)) == x

    @given(x=u31, y=u31)
    def test_interleave2_roundtrip(self, x, y):
        assert deinterleave2(interleave2(x, y)) == (x, y)

    @given(x=u21, y=u21, z=u21)
    def test_interleave3_roundtrip(self, x, y, z):
        assert deinterleave3(interleave3(x, y, z)) == (x, y, z)

    def test_interleave2_bit_layout(self):
        # x bits land on even positions, y on odd.
        assert interleave2(0b1, 0b0) == 0b01
        assert interleave2(0b0, 0b1) == 0b10
        assert interleave2(0b11, 0b00) == 0b0101

    @given(x=u31, y=u31)
    def test_z_value_fits_62_bits(self, x, y):
        assert interleave2(x, y) < (1 << 62)

    @given(x=u21, y=u21, z=u21)
    def test_z3_value_fits_63_bits(self, x, y, z):
        assert interleave3(x, y, z) < (1 << 63)


class TestDimension:
    def test_normalize_bounds(self):
        dim = Dimension(0.0, 10.0, 4)
        assert dim.normalize(-1.0) == 0
        assert dim.normalize(0.0) == 0
        assert dim.normalize(10.0) == dim.max_index
        assert dim.normalize(11.0) == dim.max_index

    def test_normalize_monotone(self):
        dim = Dimension(-180.0, 180.0, 31)
        values = [-180.0, -30.5, 0.0, 1e-9, 120.0, 180.0]
        indexes = [dim.normalize(v) for v in values]
        assert indexes == sorted(indexes)

    def test_denormalize_contains_value(self):
        dim = Dimension(-180.0, 180.0, 16)
        for value in (-179.9, -1.0, 0.0, 55.5, 179.9):
            lo, hi = dim.denormalize(dim.normalize(value))
            assert lo <= value < hi + 1e-9


class TestZ2Curve:
    @given(lng=lngs, lat=lats)
    def test_invert_is_cell_corner(self, lng, lat):
        curve = Z2Curve()
        z = curve.index(lng, lat)
        corner_lng, corner_lat = curve.invert(z)
        cell_w = 360.0 / (1 << 31)
        cell_h = 180.0 / (1 << 31)
        # 1e-6 degree slack: float64 rounding in normalize() can move a
        # coordinate across a cell boundary thinner than its own ULP.
        assert corner_lng - 1e-6 <= lng <= corner_lng + 2 * cell_w + 1e-6
        assert corner_lat - 1e-6 <= lat <= corner_lat + 2 * cell_h + 1e-6

    def test_locality_same_cell(self):
        curve = Z2Curve()
        # Two points ~1cm apart should share a long z prefix.
        z1 = curve.index(116.400000, 39.900000)
        z2 = curve.index(116.4000001, 39.9000001)
        assert abs(z1 - z2) < (1 << 12)

    def test_cell_of(self):
        curve = Z2Curve()
        from repro.geometry import Envelope
        x0, y0, x1, y1 = curve.cell_of(Envelope(-10, -10, 10, 10))
        assert x0 <= x1 and y0 <= y1
        assert x0 == curve.lng_dim.normalize(-10)


class TestZ3Curve:
    @given(lng=lngs, lat=lats, t=st.floats(0, 1, exclude_max=True))
    def test_invert_cell_contains_input(self, lng, lat, t):
        curve = Z3Curve()
        z = curve.index(lng, lat, t)
        clng, clat, ct = curve.invert(z)
        assert clng <= lng + 360.0 / (1 << 21)
        assert clat <= lat + 180.0 / (1 << 21)
        assert ct <= t + 1.0 / (1 << 21) + 1e-12

    def test_time_fraction_clamped(self):
        curve = Z3Curve()
        assert curve.index(0, 0, -0.5) == curve.index(0, 0, 0.0)
        z_max = curve.index(0, 0, 2.0)
        assert z_max == curve.index(0, 0, 1.0)
