"""MemStore behaviour: ordering, tombstones, size accounting."""

from repro.kvstore.memstore import MemStore


def test_put_get():
    ms = MemStore()
    ms.put(b"b", b"2")
    ms.put(b"a", b"1")
    assert ms.get(b"a") == (True, b"1")
    assert ms.get(b"missing") == (False, None)


def test_overwrite_updates_size():
    ms = MemStore()
    ms.put(b"k", b"xx")
    first = ms.size_bytes
    ms.put(b"k", b"xxxx")
    assert ms.size_bytes == first + 2
    assert len(ms) == 1


def test_tombstone_found():
    ms = MemStore()
    ms.put(b"k", b"v")
    ms.put(b"k", None)
    assert ms.get(b"k") == (True, None)


def test_scan_sorted_inclusive():
    ms = MemStore()
    for key in (b"d", b"a", b"c", b"b", b"e"):
        ms.put(key, key.upper())
    got = list(ms.scan(b"b", b"d"))
    assert got == [(b"b", b"B"), (b"c", b"C"), (b"d", b"D")]


def test_scan_empty_range():
    ms = MemStore()
    ms.put(b"a", b"1")
    assert list(ms.scan(b"x", b"z")) == []


def test_items_sorted():
    ms = MemStore()
    for key in (b"z", b"m", b"a"):
        ms.put(key, b"v")
    assert [k for k, _v in ms.items_sorted()] == [b"a", b"m", b"z"]


def test_clear():
    ms = MemStore()
    ms.put(b"a", b"1")
    ms.clear()
    assert len(ms) == 0
    assert ms.size_bytes == 0
