"""MemStore behaviour: ordering, tombstones, size accounting."""

from hypothesis import given
from hypothesis import strategies as st

from repro.kvstore.memstore import MemStore


def test_put_get():
    ms = MemStore()
    ms.put(b"b", b"2")
    ms.put(b"a", b"1")
    assert ms.get(b"a") == (True, b"1")
    assert ms.get(b"missing") == (False, None)


def test_overwrite_updates_size():
    ms = MemStore()
    ms.put(b"k", b"xx")
    first = ms.size_bytes
    ms.put(b"k", b"xxxx")
    assert ms.size_bytes == first + 2
    assert len(ms) == 1


def test_tombstone_found():
    ms = MemStore()
    ms.put(b"k", b"v")
    ms.put(b"k", None)
    assert ms.get(b"k") == (True, None)


def test_scan_sorted_half_open():
    ms = MemStore()
    for key in (b"d", b"a", b"c", b"b", b"e"):
        ms.put(key, key.upper())
    got = list(ms.scan(b"b", b"d"))
    assert got == [(b"b", b"B"), (b"c", b"C")]
    assert list(ms.scan(b"b", b"d\x00")) == \
        [(b"b", b"B"), (b"c", b"C"), (b"d", b"D")]


def test_scan_empty_range():
    ms = MemStore()
    ms.put(b"a", b"1")
    assert list(ms.scan(b"x", b"z")) == []


def test_items_sorted():
    ms = MemStore()
    for key in (b"z", b"m", b"a"):
        ms.put(key, b"v")
    assert [k for k, _v in ms.items_sorted()] == [b"a", b"m", b"z"]


def test_clear():
    ms = MemStore()
    ms.put(b"a", b"1")
    ms.clear()
    assert len(ms) == 0
    assert ms.size_bytes == 0


def _ground_truth_size(ms: MemStore) -> int:
    """Recompute size_bytes from scratch: keys plus live value bytes
    (a tombstone contributes only its key)."""
    return sum(len(k) + (len(v) if v is not None else 0)
               for k, v in ms.items_sorted())


_ops = st.lists(
    st.tuples(st.binary(min_size=1, max_size=4),
              st.one_of(st.none(), st.binary(max_size=12))),
    max_size=60)


@given(_ops)
def test_size_accounting_matches_ground_truth(ops):
    """Property audit of incremental size accounting.

    Random interleavings of puts, overwrites, and tombstones — including
    put -> delete -> put sequences on the same key — must keep the
    incrementally-maintained ``size_bytes`` equal to a recomputation
    from the live contents after every single operation.
    """
    ms = MemStore()
    for key, value in ops:
        ms.put(key, value)
        assert ms.size_bytes == _ground_truth_size(ms)
    assert ms.size_bytes == _ground_truth_size(ms)


def test_put_delete_put_size_sequence():
    # The tombstone overwrite sequence called out in the audit: the
    # tombstone drops the value's bytes but keeps charging the key, and
    # re-putting restores exactly the new value's bytes.
    ms = MemStore()
    ms.put(b"key", b"0123456789")
    assert ms.size_bytes == 3 + 10
    ms.put(b"key", None)
    assert ms.size_bytes == 3
    ms.put(b"key", b"xy")
    assert ms.size_bytes == 3 + 2
    assert len(ms) == 1
