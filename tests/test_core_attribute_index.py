"""Secondary attribute indexes (the Figure 1 'Attribute Indexing' box)."""

import pytest

from repro import JustEngine, Schema
from repro.datagen import generate_traj_dataset
from repro.errors import SchemaError

from conftest import POI_SCHEMA_FIELDS, make_poi_rows


@pytest.fixture
def attr_engine():
    engine = JustEngine()
    engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)),
                        userdata={"just.attribute.indices": "name"})
    engine.insert("poi", make_poi_rows(300, seed=13))
    return engine


class TestAttributeIndexMaintenance:
    def test_equality_lookup(self, attr_engine):
        table = attr_engine.table("poi")
        rows = table.attribute_query("name", "poi4")
        assert rows
        assert all(r["name"] == "poi4" for r in rows)
        assert len(rows) == sum(1 for r in make_poi_rows(300, seed=13)
                                if r["name"] == "poi4")

    def test_missing_index_rejected(self, attr_engine):
        with pytest.raises(SchemaError):
            attr_engine.table("poi").attribute_query("time", 0.0)

    def test_unknown_field_rejected(self):
        engine = JustEngine()
        with pytest.raises(SchemaError):
            engine.create_table(
                "t", Schema(list(POI_SCHEMA_FIELDS)),
                userdata={"just.attribute.indices": "ghost"})

    def test_update_moves_index_entry(self, attr_engine):
        table = attr_engine.table("poi")
        row = dict(table.get("7"))
        row["name"] = "renamed"
        table.insert_rows([row])
        assert not any(r["fid"] == 7
                       for r in table.attribute_query("name", "poi7"))
        assert [r["fid"] for r in
                table.attribute_query("name", "renamed")] == [7]

    def test_delete_removes_index_entry(self, attr_engine):
        table = attr_engine.table("poi")
        victim = table.attribute_query("name", "poi2")[0]["fid"]
        table.delete(str(victim))
        assert not any(r["fid"] == victim
                       for r in table.attribute_query("name", "poi2"))

    def test_range_query_numeric(self):
        engine = JustEngine()
        from repro.core.schema import Field, FieldType
        engine.create_table("t", Schema([
            Field("fid", FieldType.INTEGER, primary_key=True),
            Field("score", FieldType.DOUBLE),
        ]), userdata={"just.attribute.indices": "score"})
        engine.table("t").insert_rows(
            [{"fid": i, "score": float(i)} for i in range(50)])
        rows = engine.table("t").attribute_range_query("score", 10.0,
                                                       19.5)
        assert sorted(r["fid"] for r in rows) == list(range(10, 20))


class TestTrajMesaIdQuery:
    def test_trajectories_of(self):
        engine = JustEngine()
        table = engine.create_plugin_table("fleet", "trajectory")
        trajs = generate_traj_dataset(30, 40, seed=3)
        table.insert_trajectories(trajs)
        oid = trajs[5].oid
        got = table.trajectories_of(oid)
        expected = sorted(t.tid for t in trajs if t.oid == oid)
        assert sorted(r["tid"] for r in got) == expected
        assert all(r["item"].oid == oid for r in got)

    def test_sql_uses_attribute_index(self):
        engine = JustEngine()
        table = engine.create_plugin_table("fleet", "trajectory")
        trajs = generate_traj_dataset(30, 40, seed=3)
        table.insert_trajectories(trajs)
        table.flush()
        oid = trajs[0].oid
        engine.store.clear_caches()
        before = engine.store.stats.snapshot()
        rs = engine.sql(f"SELECT tid FROM fleet WHERE oid = '{oid}'")
        delta = engine.store.stats.snapshot().delta(before)
        expected = sorted(t.tid for t in trajs if t.oid == oid)
        assert sorted(r["tid"] for r in rs.rows) == expected
        # Far fewer bytes than the table's total: the index scan, not a
        # full scan, served the query.
        assert delta.disk_bytes_read < table.storage_bytes() / 3

    def test_attr_combined_with_st_predicate_still_correct(self):
        engine = JustEngine()
        table = engine.create_plugin_table("fleet", "trajectory")
        trajs = generate_traj_dataset(30, 40, seed=3)
        table.insert_trajectories(trajs)
        oid = trajs[0].oid
        t0 = min(t.start_time for t in trajs)
        rs = engine.sql(
            f"SELECT tid FROM fleet WHERE oid = '{oid}' AND "
            f"start_time BETWEEN {t0} AND {t0 + 86400 * 40}")
        expected = sorted(t.tid for t in trajs if t.oid == oid)
        assert sorted(r["tid"] for r in rs.rows) == expected
