"""The queryable ``sys.*`` system catalog: JustQL over live cluster
state, in-process and over the HTTP transport."""

import pytest

from repro.errors import ExecutionError
from repro.service.http import JustHttpClient, JustHttpServer
from repro.service.server import JustServer
from tests.conftest import T0, make_poi_rows

ROWS = 200


@pytest.fixture
def served():
    """A server with a populated, flushed ``poi`` table owned by the
    ``alice`` session — so reads hit SSTables and the event feed has
    flush entries."""
    server = JustServer()
    session = server.connect("alice")
    server.execute(session,
                   "CREATE TABLE poi (fid integer:primary key, "
                   "name string, time date, geom point)")
    values = ", ".join(
        f"({r['fid']}, '{r['name']}', {r['time']:.0f}, "
        f"st_makePoint({r['geom'].lng:.6f}, {r['geom'].lat:.6f}))"
        for r in make_poi_rows(ROWS, seed=11))
    server.execute(session, f"INSERT INTO poi VALUES {values}")
    server.engine.table("alice__poi").flush()
    server._test_session = session
    return server


@pytest.fixture
def session(served):
    return served._test_session


def run(served, session, sql):
    return served.execute(session, sql)


class TestSysRegions:
    def test_acceptance_query_orders_hot_regions(self, served, session):
        # Reads first, so decayed rates are non-zero.
        run(served, session,
            f"SELECT * FROM poi WHERE time BETWEEN {T0} AND {T0 + 86400}")
        rows = run(served, session,
                   "SELECT * FROM sys.regions WHERE read_rate > 0 "
                   "ORDER BY read_rate DESC").rows
        assert rows
        rates = [r["read_rate"] for r in rows]
        assert rates == sorted(rates, reverse=True)
        assert all("poi" in r["table"] for r in rows)
        assert all(r["reads"] >= 0 and r["writes"] >= 0 for r in rows)

    def test_regions_cover_every_physical_table(self, served, session):
        rows = run(served, session, "SELECT * FROM sys.regions").rows
        tables = {r["table"] for r in rows}
        # id table plus index tables all report their regions.
        assert any(t.startswith("alice__poi") for t in tables)
        assert all(r["server"] >= 0 for r in rows)


class TestSysEvents:
    def test_group_by_kind(self, served, session):
        rows = run(served, session,
                   "SELECT kind, count(*) AS cnt FROM sys.events "
                   "GROUP BY kind").rows
        by_kind = {r["kind"]: r["cnt"] for r in rows}
        assert by_kind.get("flush", 0) > 0
        # The SQL view agrees with the log itself (ring still unfull).
        assert sum(by_kind.values()) == len(served.events)

    def test_where_and_limit(self, served, session):
        rows = run(served, session,
                   "SELECT seq, kind FROM sys.events "
                   "WHERE kind = 'flush' ORDER BY seq LIMIT 3").rows
        assert 0 < len(rows) <= 3
        assert all(r["kind"] == "flush" for r in rows)


class TestSysCatalogTables:
    def test_sys_tables_reports_user_tables(self, served, session):
        rows = run(served, session, "SELECT * FROM sys.tables").rows
        poi = next(r for r in rows if r["name"] == "alice__poi")
        assert poi["row_count"] == ROWS
        assert poi["regions"] >= 1
        assert poi["storage_bytes"] > 0
        assert poi["analyzed_rows"] is None

    def test_sys_metrics_exposes_counters(self, served, session):
        run(served, session, "SELECT fid FROM poi LIMIT 1")
        rows = run(served, session,
                   "SELECT name, kind, value FROM sys.metrics").rows
        names = {r["name"] for r in rows}
        assert any(n.startswith("server.statements") for n in names)
        assert all(r["kind"] in ("counter", "gauge", "histogram")
                   for r in rows)

    def test_sys_sessions_sees_live_sessions(self, served, session):
        served.connect("bob")
        rows = run(served, session,
                   "SELECT user FROM sys.sessions ORDER BY user").rows
        assert {"alice", "bob"} <= {r["user"] for r in rows}

    def test_show_tables_hides_system_tables(self, served, session):
        rows = run(served, session, "SHOW TABLES").rows
        assert rows == [{"table": "poi"}]

    def test_desc_sys_table(self, served, session):
        rows = run(served, session, "DESC sys.events").rows
        assert [r["field"] for r in rows] == \
            ["seq", "sim_ms", "kind", "table", "region_id", "server",
             "detail"]

    def test_explain_shows_system_scan(self, served, session):
        rows = run(served, session,
                   "EXPLAIN SELECT * FROM sys.regions").rows
        assert any("SystemScan[sys.regions]" in r["plan"] for r in rows)


class TestAnalyzeStatement:
    def test_analyze_snapshots_stats(self, served, session):
        result = run(served, session, "ANALYZE TABLE poi")
        assert f"{ROWS} rows" in result.message
        rows = run(served, session,
                   "SELECT analyzed_rows FROM sys.tables "
                   "WHERE name = 'alice__poi'").rows
        assert rows == [{"analyzed_rows": ROWS}]

    def test_analyze_rejects_system_tables(self, served, session):
        with pytest.raises(ExecutionError):
            run(served, session, "ANALYZE TABLE sys.events")

    def test_writes_to_system_tables_fail(self, served, session):
        with pytest.raises(Exception):
            run(served, session,
                "INSERT INTO sys.events VALUES (1, 0.0, 'x', 't', "
                "1, 1, 'd')")


class TestOverHttp:
    def test_count_events_round_trip(self, served, session):
        http = JustHttpServer(served)
        client = JustHttpClient(http, "carol")
        result = client.execute_query(
            "SELECT count(*) AS cnt FROM sys.events")
        rows = list(result)
        assert rows and rows[0]["cnt"] > 0
        client.close()

    def test_events_route(self, served, session):
        http = JustHttpServer(served)
        response = http.handle({"path": "/events", "limit": 5})
        assert "events" in response and "total_by_kind" in response
        assert len(response["events"]) <= 5
        assert response["total_by_kind"].get("flush", 0) > 0

    def test_events_route_kind_filter(self, served, session):
        http = JustHttpServer(served)
        response = http.handle({"path": "/events", "kind": "flush"})
        assert response["events"]
        assert all(e["kind"] == "flush" for e in response["events"])

    def test_regions_route(self, served, session):
        http = JustHttpServer(served)
        response = http.handle({"path": "/regions"})
        assert response["regions"]
        row = response["regions"][0]
        assert {"table", "region_id", "server", "read_rate"} <= set(row)
