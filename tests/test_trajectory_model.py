"""Trajectory value objects."""

import pytest

from repro.errors import SchemaError
from repro.trajectory import GPSPoint, STSeries, Trajectory, TSeries


class TestGPSPoint:
    def test_distance_and_speed(self):
        a = GPSPoint(116.0, 39.9, 0.0)
        b = GPSPoint(116.001, 39.9, 10.0)
        assert a.distance_m(b) == pytest.approx(85.4, rel=0.05)
        assert a.speed_to_mps(b) == pytest.approx(a.distance_m(b) / 10.0)

    def test_zero_dt_speed(self):
        a = GPSPoint(116.0, 39.9, 0.0)
        assert a.speed_to_mps(GPSPoint(116.0, 39.9, 0.0)) == 0.0
        assert a.speed_to_mps(GPSPoint(116.1, 39.9, 0.0)) == float("inf")


class TestSTSeries:
    def test_time_monotonicity_enforced(self):
        with pytest.raises(SchemaError):
            STSeries([(0, 0, 10.0), (0, 0, 5.0)])

    def test_envelope_and_extent(self):
        series = STSeries([(116.0, 39.9, 0.0), (116.2, 39.8, 60.0)])
        assert series.envelope.as_tuple() == (116.0, 39.8, 116.2, 39.9)
        assert series.time_extent == (0.0, 60.0)

    def test_empty_series_has_no_envelope(self):
        with pytest.raises(SchemaError):
            STSeries([]).envelope

    def test_as_linestring(self):
        series = STSeries([(0, 0, 0.0), (1, 1, 1.0)])
        assert len(series.as_linestring()) == 2
        with pytest.raises(SchemaError):
            STSeries([(0, 0, 0.0)]).as_linestring()

    def test_length_m(self):
        series = STSeries([(116.0, 39.9, 0.0), (116.001, 39.9, 10.0),
                           (116.002, 39.9, 20.0)])
        assert series.length_m() == pytest.approx(170.8, rel=0.05)

    def test_accepts_gpspoints_and_tuples(self):
        assert STSeries([GPSPoint(0, 0, 1.0)]) == STSeries([(0, 0, 1.0)])


class TestTSeries:
    def test_ordering_enforced(self):
        with pytest.raises(SchemaError):
            TSeries([(2.0, 1.0), (1.0, 2.0)])

    def test_equality(self):
        assert TSeries([(1.0, 2.0)]) == TSeries([(1, 2)])


class TestTrajectory:
    def make(self):
        return Trajectory("t1", "o1", STSeries(
            [(116.0 + i * 0.001, 39.9, i * 30.0) for i in range(10)]))

    def test_accessors(self):
        t = self.make()
        assert t.start_time == 0.0 and t.end_time == 270.0
        assert t.duration_s() == 270.0
        assert t.start_point.lng == 116.0
        assert t.end_point.lng == pytest.approx(116.009)

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Trajectory("t", "o", STSeries([]))

    def test_series_coercion(self):
        t = Trajectory("t", "o", [(0, 0, 1.0), (1, 1, 2.0)])
        assert isinstance(t.series, STSeries)

    def test_subtrajectory(self):
        t = self.make()
        sub = t.subtrajectory(2, 5)
        assert len(sub.points) == 3
        assert sub.tid.startswith("t1#")
        assert sub.oid == "o1"
        assert sub.start_time == 60.0
