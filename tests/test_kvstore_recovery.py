"""Crash recovery: failover, WAL replay, and durability guarantees.

The acceptance property: under the SYNC policy, a region-server crash
mid-ingest loses **zero** acknowledged writes — every key whose ``put``
returned before the crash is readable after failover + replay.
"""

import random

import pytest

from repro.errors import RegionUnavailableError
from repro.faults import CorruptionMode, FaultInjector, FaultPlan
from repro.kvstore import KVStore, ScanSpec, SyncPolicy
from repro.kvstore.wal import WALRecord


def durable_store(policy=SyncPolicy.SYNC, num_servers=4, **kwargs):
    defaults = dict(num_servers=num_servers, wal_policy=policy,
                    flush_bytes=4 * 1024, split_bytes=16 * 1024,
                    block_bytes=512)
    defaults.update(kwargs)
    return KVStore(**defaults)


def ingest(table, count, seed=0, value_bytes=40):
    """Random-keyed ingest; returns the acknowledged (key, value) pairs."""
    rng = random.Random(seed)
    acked = []
    for _ in range(count):
        key = f"k{rng.getrandbits(48):012x}".encode()
        value = rng.randbytes(value_bytes)
        table.put(key, value)
        acked.append((key, value))
    return acked


class TestSyncDurability:
    def test_sync_crash_loses_zero_acknowledged_writes(self):
        store = durable_store(SyncPolicy.SYNC)
        table = store.create_table("t")
        plan = FaultPlan.kill_after(0, 700)
        FaultInjector(plan).attach(store)
        acked = ingest(table, 1200)
        assert store.last_recovery is not None  # the crash fired
        for key, value in acked:
            assert table.get(key) == value
        assert store.last_recovery.discarded_records == 0

    def test_sync_crash_every_server_in_turn(self):
        # Chained failures: crash three of four servers one at a time.
        store = durable_store(SyncPolicy.SYNC)
        table = store.create_table("t")
        acked = ingest(table, 600)
        for victim in (0, 1, 2):
            store.crash_server(victim)
            for key, value in acked:
                assert table.get(key) == value
        assert [r.server for r in store.recovery_log] == [0, 1, 2]

    def test_chained_failover_flush_then_crash_loses_zero_writes(self):
        # Regression: rehoming a region kept the dead server's max_seqno.
        # Seqnos are per-server, so the first post-failover flush would
        # checkpoint the destination WAL above seqnos it had not issued
        # yet; every later append was then truncated as already-flushed
        # and a second crash lost SYNC-acked writes.
        store = durable_store(SyncPolicy.SYNC, split_bytes=1 << 30)
        table = store.create_table("t")
        acked = ingest(table, 300)  # flush-heavy: high seqnos on server 0
        store.crash_server(table.regions()[0].server)
        acked += ingest(table, 80, seed=1)
        table.flush()  # checkpoint the destination WAL post-failover
        acked += ingest(table, 10, seed=2)  # SYNC-acked, unflushed
        store.crash_server(table.regions()[0].server)
        lost = [k for k, v in acked if table.get(k) != v]
        assert lost == []

    def test_scan_complete_after_failover(self):
        store = durable_store(SyncPolicy.SYNC)
        table = store.create_table("t")
        acked = dict(ingest(table, 800))
        store.crash_server(1)
        got = dict(table.scan(ScanSpec.full()))
        assert got == acked


class TestAsyncLossWindow:
    def test_async_may_lose_only_the_unsynced_tail(self):
        store = durable_store(SyncPolicy.ASYNC)
        table = store.create_table("t")
        acked = ingest(table, 1000)
        store.sync_wals()  # barrier: everything so far is durable
        tail = ingest(table, 50, seed=99)
        store.crash_server(0)
        lost = [k for k, v in acked if table.get(k) != v]
        assert lost == []  # synced prefix survives
        tail_lost = sum(1 for k, v in tail if table.get(k) != v)
        assert tail_lost <= len(tail)  # only the unsynced tail is at risk

    def test_async_loses_more_than_sync(self):
        losses = {}
        for policy in (SyncPolicy.SYNC, SyncPolicy.ASYNC):
            store = durable_store(policy)
            table = store.create_table("t")
            acked = ingest(table, 1200)
            store.crash_server(0)
            losses[policy] = sum(1 for k, v in acked
                                 if table.get(k) != v)
        assert losses[SyncPolicy.SYNC] == 0
        assert losses[SyncPolicy.ASYNC] >= losses[SyncPolicy.SYNC]


class TestFailoverMechanics:
    def test_regions_reassigned_to_survivors(self):
        store = durable_store(SyncPolicy.SYNC)
        table = store.create_table("t")
        ingest(table, 1500)
        assert 0 in table.servers_used()
        report = store.crash_server(0) or store.last_recovery
        assert 0 not in table.servers_used()
        assert report.regions_reassigned > 0
        assert all(s != 0 for s in report.reassignments.values())

    def test_dead_server_excluded_from_placement(self):
        store = durable_store(SyncPolicy.SYNC)
        store.create_table("t")
        store.crash_server(0)
        picks = {store.next_server() for _ in range(20)}
        assert 0 not in picks
        assert picks <= set(store.alive_servers)

    def test_block_cache_invalidated_on_crash(self):
        store = durable_store(SyncPolicy.SYNC)
        table = store.create_table("t")
        ingest(table, 500)
        list(table.scan(ScanSpec.full()))  # warm the caches
        victim = 0
        assert store.cache_for(victim).used_bytes >= 0
        store.crash_server(victim)
        assert store.cache_for(victim).used_bytes == 0
        assert len(store.cache_for(victim)) == 0

    def test_report_records_replay_volume(self):
        store = durable_store(SyncPolicy.SYNC)
        table = store.create_table("t")
        ingest(table, 1000)
        report = None
        store.crash_server(0)
        report = store.last_recovery
        assert report.replayed_bytes >= 0
        assert report.recovery_ms > 0
        assert store.stats.wal_bytes_replayed == report.replayed_bytes

    def test_cannot_crash_last_server(self):
        store = durable_store(SyncPolicy.SYNC, num_servers=2)
        store.crash_server(0)
        with pytest.raises(ValueError):
            store.crash_server(1)

    def test_cannot_crash_twice(self):
        store = durable_store(SyncPolicy.SYNC)
        store.crash_server(0)
        with pytest.raises(ValueError):
            store.crash_server(0)

    def test_replay_splits_overgrown_region(self):
        # Replay bypasses KVTable._mutate's split check, so recovery
        # re-checks region sizes itself instead of leaving an overgrown
        # region to sit until the next regular mutation.
        store = durable_store(SyncPolicy.SYNC, split_bytes=4 * 1024)
        table = store.create_table("t")
        table.put(b"seed", b"v")
        region = table.regions()[0]
        victim = region.server
        store.crash_server(victim, defer_failover=True)
        records, discarded = store._pending_crashes[victim]
        extra = [WALRecord(i + 1, "t", region.region_id,
                           f"k{i:04d}".encode(), b"x" * 100)
                 for i in range(80)]  # ~8 KiB, past the 4 KiB threshold
        store._pending_crashes[victim] = (list(records) + extra, discarded)
        store.failover(victim)
        assert table.num_regions > 1
        assert table.get(b"k0000") == b"x" * 100
        assert table.get(b"k0079") == b"x" * 100

    def test_recovery_without_wal_loses_memstores(self):
        store = KVStore(num_servers=3, flush_bytes=1 << 30)  # never flush
        table = store.create_table("t")
        table.put(b"k", b"v")
        store.crash_server(0)
        assert table.get(b"k") is None
        assert store.last_recovery.discarded_records == 1


class TestDeferredFailover:
    def test_regions_unavailable_until_failover(self):
        store = durable_store(SyncPolicy.SYNC)
        table = store.create_table("t")
        acked = ingest(table, 300)
        store.crash_server(0, defer_failover=True)
        with pytest.raises(RegionUnavailableError):
            table.get(acked[0][0])
        with pytest.raises(RegionUnavailableError):
            table.put(acked[0][0], b"new")
        report = store.failover(0)
        assert report.server == 0
        assert table.get(acked[0][0]) == acked[0][1]

    def test_unavailable_error_carries_context(self):
        store = durable_store(SyncPolicy.SYNC)
        table = store.create_table("t")
        table.put(b"k", b"v")
        store.crash_server(0, defer_failover=True)
        with pytest.raises(RegionUnavailableError) as exc:
            table.get(b"k")
        assert exc.value.server == 0
        assert exc.value.table == "t"
        store.failover(0)


class TestCorruption:
    def test_torn_tail_reported_as_discarded(self):
        store = durable_store(SyncPolicy.SYNC)
        table = store.create_table("t")
        ingest(table, 400)
        store.crash_server(0, lost_tail_records=1)
        assert store.last_recovery.discarded_records <= 1

    def test_injected_corruption_modes(self):
        for mode, bound in ((CorruptionMode.TORN_TAIL, 1),
                            (CorruptionMode.DELAYED_WRITE, 4)):
            store = durable_store(SyncPolicy.SYNC)
            table = store.create_table("t")
            plan = FaultPlan.kill_after(0, 300, corruption=mode)
            FaultInjector(plan).attach(store)
            acked = ingest(table, 400)
            lost = sum(1 for k, v in acked if table.get(k) != v)
            assert lost <= bound
