"""Cost model and cluster memory budget."""

import pytest

from repro.cluster import Cluster, CostModel, SimJob
from repro.errors import SimulatedOutOfMemoryError
from repro.kvstore.iostats import IOSnapshot

_MB = 1024 * 1024


class TestCostModel:
    def test_disk_read_rate(self):
        model = CostModel(disk_read_mb_s=100.0)
        assert model.disk_read_ms(100 * _MB) == pytest.approx(1000.0)

    def test_memory_faster_than_disk(self):
        model = CostModel()
        nbytes = 64 * _MB
        assert model.memory_scan_ms(nbytes) < model.disk_read_ms(nbytes)


class TestSimJob:
    def test_fixed_charges_accumulate(self):
        job = SimJob(CostModel())
        job.charge_fixed("a", 100.0)
        job.charge_fixed("a", 50.0)
        job.charge_fixed("b", 25.0)
        assert job.elapsed_ms == 175.0
        assert job.breakdown == {"a": 150.0, "b": 25.0}

    def test_store_scan_uses_straggler_server(self):
        model = CostModel(disk_read_mb_s=100.0, seek_ms=0.0,
                          network_mb_s=1e9)
        job = SimJob(model, num_servers=2)
        delta = IOSnapshot(disk_bytes_read=30 * _MB,
                           per_server_read={0: 10 * _MB, 1: 20 * _MB})
        job.charge_store_scan(delta, num_ranges=0)
        # 20 MB on the slowest server at 100 MB/s = 200 ms.
        assert job.elapsed_ms == pytest.approx(200.0)

    def test_seeks_divided_across_servers(self):
        model = CostModel(seek_ms=2.0)
        job = SimJob(model, num_servers=4)
        job.charge_store_scan(IOSnapshot(), num_ranges=8)
        assert job.breakdown["seek"] == pytest.approx(4.0)  # ceil(8/4)*2

    def test_parallel_cpu(self):
        model = CostModel(cpu_us_per_record=10.0)
        job = SimJob(model, num_servers=5)
        job.charge_cpu_records(5000)
        assert job.breakdown["cpu"] == pytest.approx(10.0)
        job2 = SimJob(model, num_servers=5)
        job2.charge_cpu_records(5000, parallel=False)
        assert job2.breakdown["cpu"] == pytest.approx(50.0)


class TestClusterMemory:
    def test_reserve_within_budget(self):
        cluster = Cluster(memory_budget_bytes=1000)
        cluster.reserve_memory("a", 600)
        cluster.reserve_memory("b", 300)
        assert cluster.memory_in_use == 900

    def test_oom_over_budget(self):
        cluster = Cluster(memory_budget_bytes=1000)
        cluster.reserve_memory("a", 600)
        with pytest.raises(SimulatedOutOfMemoryError) as exc:
            cluster.reserve_memory("b", 500)
        assert exc.value.system == "b"
        assert exc.value.budget_bytes == 1000

    def test_rereserve_replaces_not_adds(self):
        cluster = Cluster(memory_budget_bytes=1000)
        cluster.reserve_memory("a", 600)
        cluster.reserve_memory("a", 700)  # replaces the old claim
        assert cluster.memory_in_use == 700

    def test_release(self):
        cluster = Cluster(memory_budget_bytes=1000)
        cluster.reserve_memory("a", 600)
        cluster.release_memory("a")
        cluster.reserve_memory("b", 1000)
        assert cluster.memory_in_use == 1000
