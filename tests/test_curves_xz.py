"""XZ-ordering: sequence codes, query coverage, resolution behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.xz import XZ2Curve, XZ3Curve
from repro.errors import IndexError_
from repro.geometry import Envelope

lngs = st.floats(-179.9, 179.9, allow_nan=False)
lats = st.floats(-89.9, 89.9, allow_nan=False)
spans = st.floats(0.0, 5.0, allow_nan=False)


def small_envelope(lng, lat, w, h):
    return Envelope(lng, lat, min(180.0, lng + w), min(90.0, lat + h))


class TestXZ2Codes:
    def test_code_bounds(self):
        curve = XZ2Curve(g=6)
        env = Envelope(0, 0, 0.001, 0.001)
        code = curve.index(env)
        assert 0 <= code <= curve.max_code()

    def test_max_code_formula(self):
        curve = XZ2Curve(g=3)
        # (4^(g+1) - 1) / 3 - 1
        assert curve.max_code() == (4 ** 4 - 1) // 3 - 1

    def test_point_like_objects_get_max_depth(self):
        curve = XZ2Curve(g=8)
        tiny = Envelope.of_point(10.0, 10.0)
        huge = Envelope(-170, -80, 170, 80)
        assert curve.index(tiny) > curve.index(huge)

    def test_deterministic(self):
        curve = XZ2Curve()
        env = Envelope(116.0, 39.8, 116.1, 39.9)
        assert curve.index(env) == curve.index(env)

    def test_invalid_resolution(self):
        with pytest.raises(IndexError_):
            XZ2Curve(g=0)

    def test_distinct_quadrants_distinct_codes(self):
        curve = XZ2Curve(g=10)
        nw = Envelope(-100, 40, -99.9, 40.1)
        se = Envelope(100, -40, 100.1, -39.9)
        assert curve.index(nw) != curve.index(se)


class TestXZ2QueryRanges:
    @given(lng=lngs, lat=lats, w=spans, h=spans)
    @settings(max_examples=60)
    def test_intersecting_element_is_covered(self, lng, lat, w, h):
        curve = XZ2Curve(g=8)
        element = small_envelope(lng, lat, w, h)
        code = curve.index(element)
        # Any query that intersects the element must produce ranges
        # covering the element's code.
        query = element.buffer(0.01, 0.01)
        ranges = curve.ranges(query, max_ranges=512)
        assert any(lo <= code <= hi for lo, hi in ranges)

    def test_disjoint_far_query_excludes_small_element(self):
        curve = XZ2Curve(g=10)
        element = Envelope(100.0, 40.0, 100.001, 40.001)
        code = curve.index(element)
        query = Envelope(-100.0, -40.0, -99.0, -39.0)
        ranges = curve.ranges(query, max_ranges=100_000)
        assert not any(lo <= code <= hi for lo, hi in ranges)

    def test_budget_respected(self):
        curve = XZ2Curve(g=12)
        query = Envelope(116.0, 39.8, 116.4, 40.0)
        ranges = curve.ranges(query, max_ranges=32)
        assert len(ranges) <= 32

    def test_world_query_is_single_range(self):
        curve = XZ2Curve(g=6)
        ranges = curve.ranges(Envelope.world())
        assert ranges == [(0, curve.max_code())]


class TestXZ3:
    def test_code_bounds(self):
        curve = XZ3Curve(g=5)
        env = Envelope(10, 10, 10.01, 10.01)
        code = curve.index(env, 0.2, 0.3)
        assert 0 <= code <= curve.max_code()
        assert curve.max_code() == (8 ** 6 - 1) // 7 - 1

    @given(lng=lngs, lat=lats, w=spans, h=spans,
           t0=st.floats(0, 0.9), dt=st.floats(0, 0.1))
    @settings(max_examples=60)
    def test_st_element_covered_by_intersecting_query(self, lng, lat, w,
                                                      h, t0, dt):
        curve = XZ3Curve(g=6)
        element = small_envelope(lng, lat, w, h)
        code = curve.index(element, t0, min(1.0, t0 + dt))
        query = element.buffer(0.01, 0.01)
        ranges = curve.ranges(query, max(0.0, t0 - 0.01),
                              min(1.0, t0 + dt + 0.01), max_ranges=512)
        assert any(lo <= code <= hi for lo, hi in ranges)

    def test_temporal_separation(self):
        curve = XZ3Curve(g=8)
        element = Envelope(10, 10, 10.001, 10.001)
        morning = curve.index(element, 0.05, 0.06)
        evening_query = curve.ranges(element.buffer(0.01, 0.01),
                                     0.8, 0.9, max_ranges=100_000)
        assert not any(lo <= morning <= hi for lo, hi in evening_query)

    def test_inverted_bounds_raise(self):
        curve = XZ3Curve(g=4)
        with pytest.raises(IndexError_):
            curve._index_normalized([0.5, 0.5, 0.5], [0.4, 0.6, 0.6])
