"""Road network graph, map matching, and map recovery."""

import random

import pytest

from repro.geometry.distance import METERS_PER_DEGREE
from repro.ops import MapMatcher, map_match
from repro.roadnetwork import RoadNetwork, recover_map
from repro.roadnetwork.recovery import classify_mode
from repro.trajectory import STSeries, Trajectory


@pytest.fixture(scope="module")
def grid_net():
    return RoadNetwork.grid(116.0, 39.8, 5, 5, spacing_m=400)


class TestRoadNetwork:
    def test_grid_shape(self, grid_net):
        assert grid_net.num_nodes == 25
        # 2 directions * (20 horizontal + 20 vertical)
        assert grid_net.num_segments == 80

    def test_candidates_near_segment(self, grid_net):
        step = 400 / METERS_PER_DEGREE
        # Slightly north of the first horizontal segment's midpoint.
        found = grid_net.candidates(116.0 + step / 2, 39.8 + 1e-5,
                                    radius_m=30)
        assert found
        assert found[0].segment.segment_id.split(":")[0] == "h0_0"
        assert found[0].distance_m < 5.0

    def test_candidates_empty_far_away(self, grid_net):
        assert grid_net.candidates(120.0, 45.0, radius_m=50) == []

    def test_route_length(self, grid_net):
        # Two grid steps apart: 800 m along the grid.
        d = grid_net.route_length_m("n0_0", "n0_2")
        assert d == pytest.approx(800.0, rel=0.01)
        assert grid_net.route_length_m("n0_0", "n0_0") == 0.0

    def test_route_unreachable(self):
        net = RoadNetwork()
        net.add_node("a", 0.0, 0.0)
        net.add_node("b", 1.0, 1.0)
        assert net.route_length_m("a", "b") == float("inf")

    def test_segment_lookup(self, grid_net):
        segment = grid_net.segment("h0_0")
        assert segment.length_m == pytest.approx(400.0, rel=0.01)
        with pytest.raises(Exception):
            grid_net.segment("nope")


class TestMapMatching:
    def path_along_row(self, grid_net, noise=0.00003, seed=9):
        rng = random.Random(seed)
        step = 400 / METERS_PER_DEGREE
        points = []
        for i in range(12):
            lng = 116.0 + i * step / 3 + rng.gauss(0, noise)
            lat = 39.8 + rng.gauss(0, noise)
            points.append((lng, lat, 1000.0 + i * 30.0))
        return Trajectory("t", "o", STSeries(points))

    def test_matches_row_segments(self, grid_net):
        matched = map_match(self.path_along_row(grid_net), grid_net)
        assert len(matched) == 12
        row_segments = {f"h0_{c}" for c in range(4)} | \
                       {f"h0_{c}:rev" for c in range(4)}
        on_row = [m for m in matched if m.segment_id in row_segments]
        assert len(on_row) >= 9  # intersections may snap to verticals

    def test_matched_points_are_close(self, grid_net):
        matched = map_match(self.path_along_row(grid_net), grid_net)
        assert all(m.distance_m < 50.0 for m in matched)

    def test_no_candidates_yields_empty(self, grid_net):
        far = Trajectory("t", "o", STSeries([(130.0, 50.0, 0.0),
                                             (130.1, 50.0, 60.0)]))
        assert map_match(far, grid_net) == []

    def test_matcher_reuse(self, grid_net):
        matcher = MapMatcher(grid_net)
        t = self.path_along_row(grid_net)
        assert len(matcher.match(t)) == len(matcher.match(t))

    def test_unmatchable_samples_skipped(self, grid_net):
        points = [(116.0, 39.8, 0.0),
                  (130.0, 50.0, 30.0),    # far off the map
                  (116.004, 39.8, 60.0)]
        matched = map_match(Trajectory("t", "o", STSeries(points)),
                            grid_net)
        assert len(matched) == 2


class TestRecovery:
    def test_mode_thresholds(self):
        assert classify_mode(1.0) == "walking"
        assert classify_mode(5.0) == "riding"
        assert classify_mode(15.0) == "driving"

    def test_recovers_straight_road(self):
        rng = random.Random(2)
        trajs = []
        for i in range(6):
            points = [(116.0 + j * 0.0004 + rng.gauss(0, 3e-5),
                       39.9 + rng.gauss(0, 3e-5),
                       j * 20.0) for j in range(40)]
            trajs.append(Trajectory(f"t{i}", f"o{i}", STSeries(points)))
        network, segments = recover_map(trajs, cell_m=60, min_support=4)
        assert len(segments) >= 10
        # The recovered road should span roughly the travelled extent.
        lngs = [s.start[0] for s in segments] + [s.end[0]
                                                 for s in segments]
        assert max(lngs) - min(lngs) > 0.01

    def test_single_trajectory_insufficient_support(self):
        points = [(116.0 + j * 0.0004, 39.9, j * 20.0) for j in range(40)]
        _, segments = recover_map(
            [Trajectory("t", "o", STSeries(points))],
            cell_m=60, min_support=3)
        assert segments == []

    def test_speed_classifies_mode(self):
        # Walking-speed track (~1.2 m/s).
        trajs = []
        for i in range(4):
            points = [(116.0 + j * 1e-5, 39.9, j * 1.0)
                      for j in range(200)]
            trajs.append(Trajectory(f"w{i}", f"o{i}", STSeries(points)))
        _, segments = recover_map(trajs, cell_m=40, min_support=3)
        assert segments
        assert all(s.mode == "walking" for s in segments)
