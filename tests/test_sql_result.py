"""ResultSet cursor semantics and chunked transport."""

from repro.cluster import CostModel, SimJob
from repro.dataframe import DataFrame
from repro.sql.result import CHUNK_FETCH_MS, ResultSet


def job():
    return SimJob(CostModel())


def test_cursor_walks_all_rows():
    rs = ResultSet.from_rows([{"a": i} for i in range(5)])
    seen = []
    while rs.has_next():
        seen.append(rs.next()["a"])
    assert seen == [0, 1, 2, 3, 4]
    assert not rs.has_next()


def test_next_after_exhaustion_raises():
    rs = ResultSet.from_rows([])
    import pytest
    with pytest.raises(StopIteration):
        rs.next()


def test_iteration_protocol():
    rs = ResultSet.from_rows([{"a": 1}, {"a": 2}])
    assert [r["a"] for r in rs] == [1, 2]
    assert len(rs) == 2


def test_iteration_drives_the_cursor():
    # Mixing next() with iteration must never replay consumed rows:
    # the result set has one cursor position, like the paper's SDK.
    rs = ResultSet.from_rows([{"a": i} for i in range(6)])
    assert rs.next()["a"] == 0
    assert rs.next()["a"] == 1
    rest = [r["a"] for r in rs]
    assert rest == [2, 3, 4, 5]
    assert not rs.has_next()
    # And the other way round: a partial iteration advances next() too.
    rs = ResultSet.from_rows([{"a": i} for i in range(4)])
    for row in rs:
        if row["a"] == 1:
            break
    assert rs.next()["a"] == 2


def test_iteration_crosses_chunk_boundaries():
    rs = ResultSet(["a"], [[{"a": 0}], [{"a": 1}, {"a": 2}]])
    assert rs.next()["a"] == 0
    assert [r["a"] for r in rs] == [1, 2]


def test_small_result_single_chunk():
    df = DataFrame.from_rows([{"a": i} for i in range(10)])
    rs = ResultSet.from_dataframe(df, job())
    assert rs.num_chunks == 1


def test_large_result_multi_chunk_charges_fetches():
    df = DataFrame.from_rows([{"a": i} for i in range(25)])
    j = job()
    rs = ResultSet.from_dataframe(df, j, direct_rows=10, chunk_rows=10)
    assert rs.num_chunks == 3
    assert j.breakdown["chunk_fetch"] == CHUNK_FETCH_MS * 2
    # Cursor is seamless across chunks (partition order, like Spark).
    seen = []
    while rs.has_next():
        seen.append(rs.next()["a"])
    assert sorted(seen) == list(range(25))


def test_status_result():
    rs = ResultSet.status("table created")
    assert rs.message == "table created"
    assert rs.rows == [{"status": "table created"}]


def test_sim_ms_without_job():
    assert ResultSet.from_rows([]).sim_ms == 0.0


def test_columns_inferred():
    rs = ResultSet.from_rows([{"x": 1, "y": 2}])
    assert rs.columns == ["x", "y"]
