"""DataFrame engine: transformations, aggregates, joins, sorting."""

import pytest

from repro.dataframe import (
    DataFrame,
    agg_avg,
    agg_collect,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
)
from repro.errors import ExecutionError


def df_of(rows, **kwargs):
    return DataFrame.from_rows(rows, **kwargs)


def sample():
    return df_of([
        {"id": 1, "grp": "a", "v": 10},
        {"id": 2, "grp": "b", "v": 20},
        {"id": 3, "grp": "a", "v": 30},
        {"id": 4, "grp": "b", "v": None},
    ])


class TestBasics:
    def test_from_rows_infers_columns(self):
        df = sample()
        assert df.columns == ["id", "grp", "v"]
        assert df.count() == 4

    def test_partitioning(self):
        df = df_of([{"x": i} for i in range(10)], num_partitions=3)
        assert df.num_partitions == 3
        assert sorted(r["x"] for r in df.collect()) == list(range(10))

    def test_empty(self):
        df = DataFrame.empty(["a"])
        assert df.count() == 0
        assert df.first() is None

    def test_column_values(self):
        assert sample().column_values("v") == [10, 20, 30, None]


class TestRowOps:
    def test_select(self):
        df = sample().select(["id", "v"])
        assert df.columns == ["id", "v"]
        assert all(set(r) == {"id", "v"} for r in df.collect())

    def test_select_unknown_raises(self):
        with pytest.raises(ExecutionError):
            sample().select(["nope"])

    def test_where(self):
        df = sample().where(lambda r: (r["v"] or 0) > 15)
        assert sorted(r["id"] for r in df.collect()) == [2, 3]

    def test_with_column_add_and_replace(self):
        df = sample().with_column("double", lambda r: (r["v"] or 0) * 2)
        assert df.columns[-1] == "double"
        df2 = df.with_column("double", lambda r: 0)
        assert df2.columns == df.columns  # replaced, not appended

    def test_flat_map(self):
        df = df_of([{"n": 2}, {"n": 3}])
        out = df.flat_map(lambda r: [{"i": i} for i in range(r["n"])],
                          ["i"])
        assert out.count() == 5

    def test_map_partitions(self):
        df = df_of([{"x": i} for i in range(10)], num_partitions=2)
        out = df.map_partitions(lambda rows: rows[:1], ["x"])
        assert out.count() == 2


class TestGlobalOps:
    def test_distinct(self):
        df = df_of([{"a": 1}, {"a": 1}, {"a": 2}])
        assert df.distinct().count() == 2

    def test_order_by_multi_key(self):
        df = df_of([
            {"a": 1, "b": 2}, {"a": 2, "b": 1}, {"a": 1, "b": 1},
        ])
        out = df.order_by(["a", "b"]).collect()
        assert [(r["a"], r["b"]) for r in out] == [(1, 1), (1, 2), (2, 1)]

    def test_order_by_descending(self):
        out = sample().order_by(["id"], [False]).collect()
        assert [r["id"] for r in out] == [4, 3, 2, 1]

    def test_order_by_nulls_last(self):
        out = sample().order_by(["v"]).collect()
        assert out[-1]["v"] is None

    def test_limit(self):
        assert sample().limit(2).count() == 2
        assert sample().limit(100).count() == 4

    def test_union(self):
        df = sample()
        assert df.union(df).count() == 8

    def test_union_schema_mismatch(self):
        with pytest.raises(ExecutionError):
            sample().union(df_of([{"other": 1}]))

    def test_repartition(self):
        df = sample().repartition(2)
        assert df.num_partitions == 2
        assert df.count() == 4


class TestGroupBy:
    def test_count_sum_avg(self):
        out = sample().group_by(
            ["grp"], [agg_count(), agg_sum("v"), agg_avg("v")])
        by_grp = {r["grp"]: r for r in out.collect()}
        assert by_grp["a"]["count"] == 2
        assert by_grp["a"]["sum_v"] == 40
        assert by_grp["a"]["avg_v"] == 20
        # NULLs ignored by sum/avg but counted by count(*).
        assert by_grp["b"]["count"] == 2
        assert by_grp["b"]["sum_v"] == 20
        assert by_grp["b"]["avg_v"] == 20

    def test_min_max_ignore_nulls(self):
        out = sample().group_by(["grp"], [agg_min("v"), agg_max("v")])
        by_grp = {r["grp"]: r for r in out.collect()}
        assert (by_grp["b"]["min_v"], by_grp["b"]["max_v"]) == (20, 20)

    def test_collect_list(self):
        out = sample().group_by(["grp"], [agg_collect("id")])
        by_grp = {r["grp"]: r for r in out.collect()}
        assert by_grp["a"]["collect_id"] == [1, 3]

    def test_avg_of_all_null_group_is_none(self):
        df = df_of([{"g": "x", "v": None}])
        out = df.group_by(["g"], [agg_avg("v")]).collect()
        assert out[0]["avg_v"] is None

    def test_unknown_key_raises(self):
        with pytest.raises(ExecutionError):
            sample().group_by(["nope"], [agg_count()])


class TestJoin:
    def test_inner_join(self):
        left = df_of([{"k": 1, "a": "x"}, {"k": 2, "a": "y"}])
        right = df_of([{"k": 1, "b": "p"}, {"k": 3, "b": "q"}])
        out = left.join(right, ["k"]).collect()
        assert out == [{"k": 1, "a": "x", "b": "p"}]

    def test_left_join(self):
        left = df_of([{"k": 1, "a": "x"}, {"k": 2, "a": "y"}])
        right = df_of([{"k": 1, "b": "p"}])
        out = left.join(right, ["k"], how="left").collect()
        assert sorted(out, key=lambda r: r["k"]) == [
            {"k": 1, "a": "x", "b": "p"}, {"k": 2, "a": "y", "b": None}]

    def test_join_duplicates_expand(self):
        left = df_of([{"k": 1, "a": "x"}])
        right = df_of([{"k": 1, "b": "p"}, {"k": 1, "b": "q"}])
        assert left.join(right, ["k"]).count() == 2

    def test_bad_join_type(self):
        with pytest.raises(ExecutionError):
            df_of([{"k": 1}]).join(df_of([{"k": 1}]), ["k"], how="outer")


def test_estimated_bytes_scales_with_rows():
    small = df_of([{"s": "x" * 10}] * 10)
    big = df_of([{"s": "x" * 10}] * 1000)
    assert big.estimated_bytes() > small.estimated_bytes() * 50
