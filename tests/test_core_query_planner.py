"""Index selection for range queries."""

import pytest

from repro.core.query import choose_strategy
from repro.curves import STQuery
from repro.errors import ExecutionError
from repro.geometry import Envelope

from conftest import T0

ENV = Envelope(116.0, 39.8, 116.5, 40.1)


class FakeTable:
    def __init__(self, strategies, time_extent=None):
        self.name = "fake"
        self.strategies = dict.fromkeys(strategies)
        self.time_extent = time_extent


def test_st_query_prefers_z2t():
    name, query = choose_strategy(FakeTable(["z2", "z2t"]),
                                  STQuery(ENV, T0, T0 + 10))
    assert name == "z2t"
    assert query.has_temporal


def test_st_query_falls_back_to_z3():
    name, _query = choose_strategy(FakeTable(["z3"]),
                                   STQuery(ENV, T0, T0 + 10))
    assert name == "z3"


def test_st_query_with_spatial_only_index_drops_time():
    name, query = choose_strategy(FakeTable(["z2"]),
                                  STQuery(ENV, T0, T0 + 10))
    assert name == "z2"
    assert not query.has_temporal  # time filtered post-scan


def test_spatial_query_prefers_z2():
    name, _q = choose_strategy(FakeTable(["z2", "z2t"]),
                               STQuery(envelope=ENV))
    assert name == "z2"


def test_spatial_query_widens_temporal_index():
    table = FakeTable(["z2t"], time_extent=(T0, T0 + 100))
    name, query = choose_strategy(table, STQuery(envelope=ENV))
    assert name == "z2t"
    assert query.t_min == T0 and query.t_max == T0 + 100


def test_temporal_query_uses_world_envelope():
    name, query = choose_strategy(FakeTable(["z2t"]),
                                  STQuery(None, T0, T0 + 10))
    assert name == "z2t"
    assert query.envelope == Envelope.world()


def test_xz_variants_selected_for_plugin_tables():
    name, _q = choose_strategy(FakeTable(["xz2", "xz2t"]),
                               STQuery(ENV, T0, T0 + 10))
    assert name == "xz2t"


def test_period_suffixed_names_match():
    name, _q = choose_strategy(FakeTable(["z3:year"]),
                               STQuery(ENV, T0, T0 + 10))
    assert name == "z3:year"


def test_no_usable_index_raises():
    with pytest.raises(ExecutionError):
        choose_strategy(FakeTable([]), STQuery(envelope=ENV))
    with pytest.raises(ExecutionError):
        # Spatial-only query, temporal index, no time stats yet.
        choose_strategy(FakeTable(["z2t"]), STQuery(envelope=ENV))
