"""Common/plugin/view tables: inserts, updates, queries, storage."""

import pytest

from repro.core.plugins import TrajectoryPlugin
from repro.core.tables import ViewTable
from repro.curves import STQuery
from repro.dataframe import DataFrame
from repro.errors import SchemaError
from repro.geometry import Envelope, Point
from repro.trajectory import STSeries, Trajectory

from conftest import T0, make_poi_rows


class TestCommonTable:
    def test_insert_and_count(self, poi_engine):
        table = poi_engine.table("poi")
        assert table.row_count == 500

    def test_get_by_fid(self, poi_engine, poi_rows):
        table = poi_engine.table("poi")
        row = table.get("17")
        assert row["name"] == poi_rows[17]["name"]
        assert table.get("99999") is None

    def test_update_replaces_index_entries(self, poi_engine):
        table = poi_engine.table("poi")
        moved = {"fid": 3, "name": "moved", "time": T0,
                 "geom": Point(100.0, 10.0)}
        table.insert_rows([moved])
        assert table.row_count == 500  # update, not insert
        hits = table.query(
            STQuery(envelope=Envelope(99.9, 9.9, 100.1, 10.1)))
        assert [r["name"] for r in hits] == ["moved"]

    def test_delete(self, poi_engine):
        table = poi_engine.table("poi")
        assert table.delete("3")
        assert not table.delete("3")
        assert table.get("3") is None
        assert table.row_count == 499

    def test_spatial_query_exact(self, poi_engine, poi_rows):
        table = poi_engine.table("poi")
        env = Envelope(116.1, 39.85, 116.25, 39.95)
        got = {r["fid"] for r in table.query(STQuery(envelope=env))}
        expected = {r["fid"] for r in poi_rows
                    if env.contains_point(r["geom"].lng, r["geom"].lat)}
        assert got == expected

    def test_st_query_exact(self, poi_engine, poi_rows):
        table = poi_engine.table("poi")
        env = Envelope(116.0, 39.8, 116.5, 40.1)
        t_lo, t_hi = T0 + 86400, T0 + 2 * 86400
        got = {r["fid"] for r in table.query(STQuery(env, t_lo, t_hi))}
        expected = {r["fid"] for r in poi_rows
                    if t_lo <= r["time"] <= t_hi}
        assert got == expected

    def test_time_only_query_widens_envelope(self, poi_engine, poi_rows):
        table = poi_engine.table("poi")
        t_lo, t_hi = T0, T0 + 86400
        got = {r["fid"] for r in table.query(
            STQuery(None, t_lo, t_hi))}
        expected = {r["fid"] for r in poi_rows
                    if t_lo <= r["time"] <= t_hi}
        assert got == expected

    def test_stats_tracked(self, poi_engine, poi_rows):
        table = poi_engine.table("poi")
        assert table.time_extent[0] == min(r["time"] for r in poi_rows)
        assert table.data_envelope.contains_point(
            poi_rows[0]["geom"].lng, poi_rows[0]["geom"].lat)

    def test_full_scan(self, poi_engine):
        assert len(poi_engine.table("poi").full_scan()) == 500

    def test_storage_bytes_positive_after_flush(self, poi_engine):
        table = poi_engine.table("poi")
        table.flush()
        assert table.storage_bytes(include_memstore=False) > 0

    def test_missing_geometry_rejected(self, engine):
        from repro.core.schema import Field, FieldType, Schema
        engine.create_table("t", Schema([
            Field("fid", FieldType.INTEGER, primary_key=True),
            Field("geom", FieldType.POINT),
        ]))
        with pytest.raises(SchemaError):
            engine.table("t").insert_rows([{"fid": 1, "geom": None}])


class TestTrajectoryPlugin:
    def make_traj(self, tid="t1", n=20, lng0=116.2, t0=T0):
        points = [(lng0 + i * 0.001, 39.9 + i * 0.0005, t0 + i * 30.0)
                  for i in range(n)]
        return Trajectory(tid, "o1", STSeries(points))

    def test_insert_and_item(self, engine):
        table = engine.create_plugin_table("traj", "trajectory")
        table.insert_trajectories([self.make_traj()])
        row = table.get("t1")
        assert isinstance(row["item"], Trajectory)
        assert row["item"].tid == "t1"
        assert len(row["item"].points) == 20

    def test_st_query_matches_extent(self, engine):
        table = engine.create_plugin_table("traj", "trajectory")
        table.insert_trajectories([
            self.make_traj("early", t0=T0),
            self.make_traj("late", t0=T0 + 86400 * 3),
        ])
        hits = table.query(STQuery(Envelope(116.0, 39.8, 116.5, 40.0),
                                   T0 - 100, T0 + 3600))
        assert [r["tid"] for r in hits] == ["early"]

    def test_exact_line_filtering(self, engine):
        """The query envelope intersects the trajectory MBR but not the
        polyline itself: exact filtering must exclude it."""
        table = engine.create_plugin_table("traj", "trajectory")
        diagonal = Trajectory("diag", "o", STSeries(
            [(116.0, 39.8, T0), (116.2, 40.0, T0 + 600)]))
        table.insert_trajectories([diagonal])
        # A box in the MBR corner away from the diagonal.
        corner = Envelope(116.15, 39.8, 116.2, 39.85)
        assert table.query(STQuery(corner, T0, T0 + 600)) == []
        on_path = Envelope(116.09, 39.89, 116.11, 39.91)
        assert len(table.query(STQuery(on_path, T0, T0 + 600))) == 1

    def test_default_indexes(self, engine):
        table = engine.create_plugin_table("traj", "trajectory")
        assert set(table.strategies) == {"xz2", "xz2t"}

    def test_columns_include_item(self, engine):
        table = engine.create_plugin_table("traj", "trajectory")
        assert table.columns()[-1] == "item"


class TestViewTable:
    def test_touch_updates_recency(self):
        view = ViewTable("v", DataFrame.from_rows([{"a": 1}]))
        before = view.last_used_at
        view.touch()
        assert view.last_used_at >= before

    def test_describe(self):
        view = ViewTable("v", DataFrame.from_rows([{"a": 1, "b": 2}]))
        assert [r["field"] for r in view.describe()] == ["a", "b"]
