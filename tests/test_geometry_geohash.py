"""GeoHash encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import Envelope
from repro.geometry.distance import haversine_distance_m
from repro.geometry.geohash import (
    cover_envelope,
    decode,
    decode_envelope,
    encode,
    neighbors,
)

lngs = st.floats(-180, 180, allow_nan=False)
lats = st.floats(-90, 90, allow_nan=False)


class TestKnownValues:
    def test_reference_hashes(self):
        # Well-known reference values from the geohash literature.
        assert encode(-5.6, 42.6, 5) == "ezs42"
        assert encode(112.5584, 37.8324, 9) == "ww8p1r4t8"

    def test_decode_reference(self):
        lng, lat = decode("ezs42")
        assert lng == pytest.approx(-5.6, abs=0.05)
        assert lat == pytest.approx(42.6, abs=0.05)


class TestRoundtrip:
    @given(lng=lngs, lat=lats)
    def test_decode_cell_contains_point(self, lng, lat):
        cell = decode_envelope(encode(lng, lat, 7))
        assert cell.buffer(1e-9, 1e-9).contains_point(lng, lat)

    @given(lng=lngs, lat=lats, precision=st.integers(1, 9))
    def test_prefix_property(self, lng, lat, precision):
        # A longer geohash refines the shorter one.
        assert encode(lng, lat, precision) == \
            encode(lng, lat, 9)[:precision]

    def test_precision7_is_about_150m(self):
        cell = decode_envelope(encode(116.4, 39.9, 7))
        width_m = haversine_distance_m(cell.min_lng, cell.min_lat,
                                       cell.max_lng, cell.min_lat)
        height_m = haversine_distance_m(cell.min_lng, cell.min_lat,
                                        cell.min_lng, cell.max_lat)
        # The paper: "about 150m x 150m grids (GeoHash length 7)".
        assert 100 < width_m < 200
        assert 100 < height_m < 200


class TestValidation:
    def test_bad_precision(self):
        with pytest.raises(GeometryError):
            encode(0, 0, 0)
        with pytest.raises(GeometryError):
            encode(0, 0, 13)

    def test_bad_coordinate(self):
        with pytest.raises(GeometryError):
            encode(200, 0)

    def test_bad_characters(self):
        with pytest.raises(GeometryError):
            decode("ab!c")
        with pytest.raises(GeometryError):
            decode("")


class TestNeighborsAndCover:
    def test_neighbors_are_adjacent(self):
        center = encode(116.4, 39.9, 6)
        around = neighbors(center)
        assert 3 <= len(around) <= 8
        center_env = decode_envelope(center)
        for other in around:
            env = decode_envelope(other)
            assert env.buffer(1e-9, 1e-9).intersects(
                center_env.buffer(1e-9, 1e-9))

    def test_cover_envelope(self):
        env = Envelope(116.40, 39.90, 116.41, 39.91)
        cells = cover_envelope(env, precision=6)
        assert cells
        union = Envelope.union_all([decode_envelope(c) for c in cells])
        assert union.contains(env)

    def test_cover_cap(self):
        with pytest.raises(GeometryError):
            cover_envelope(Envelope(-10, -10, 10, 10), precision=8,
                           max_cells=16)
