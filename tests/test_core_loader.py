"""File loaders and LOAD field mapping."""

import pytest

from repro.core.loader import (
    SourceRegistry,
    apply_config,
    load_csv,
    load_file,
    load_geojson,
    load_gpx,
    load_kml,
)
from repro.errors import ExecutionError
from repro.geometry import LineString, Point, Polygon


class TestApplyConfig:
    def test_bare_column(self):
        out = apply_config({"a": "1"}, {"x": "a"})
        assert out == {"x": "1"}

    def test_transforms(self):
        row = {"lng": "116.3", "lat": "39.9", "ts": "1500000000000",
               "n": "7"}
        out = apply_config(row, {
            "geom": "lng_lat_to_point(lng, lat)",
            "time": "long_to_date_ms(ts)",
            "fid": "to_int(n)",
        })
        assert out["geom"] == Point(116.3, 39.9)
        assert out["time"] == 1_500_000_000.0
        assert out["fid"] == 7

    def test_wkt_transform(self):
        out = apply_config({"w": "POINT (1 2)"}, {"g": "wkt_to_geom(w)"})
        assert out["g"] == Point(1, 2)

    def test_unknown_transform(self):
        with pytest.raises(ExecutionError):
            apply_config({"a": 1}, {"x": "no_such(a)"})

    def test_missing_column(self):
        with pytest.raises(ExecutionError):
            apply_config({"a": 1}, {"x": "b"})
        with pytest.raises(ExecutionError):
            apply_config({"a": 1}, {"x": "to_int(b)"})


class TestFileLoaders:
    def test_csv(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,lng,lat\n1,116.3,39.9\n2,116.4,40.0\n")
        rows = load_csv(path)
        assert rows == [{"id": "1", "lng": "116.3", "lat": "39.9"},
                        {"id": "2", "lng": "116.4", "lat": "40.0"}]

    def test_geojson(self, tmp_path):
        path = tmp_path / "data.geojson"
        path.write_text("""{
          "type": "FeatureCollection",
          "features": [
            {"type": "Feature", "properties": {"name": "a"},
             "geometry": {"type": "Point", "coordinates": [116.3, 39.9]}},
            {"type": "Feature", "properties": {"name": "b"},
             "geometry": {"type": "LineString",
                          "coordinates": [[0, 0], [1, 1]]}},
            {"type": "Feature", "properties": {"name": "c"},
             "geometry": {"type": "Polygon",
                          "coordinates": [[[0,0],[1,0],[0,1],[0,0]]]}}
          ]}""")
        rows = load_geojson(path)
        assert rows[0]["geometry"] == Point(116.3, 39.9)
        assert isinstance(rows[1]["geometry"], LineString)
        assert isinstance(rows[2]["geometry"], Polygon)

    def test_geojson_requires_collection(self, tmp_path):
        path = tmp_path / "bad.geojson"
        path.write_text('{"type": "Feature"}')
        with pytest.raises(ExecutionError):
            load_geojson(path)

    def test_gpx(self, tmp_path):
        path = tmp_path / "track.gpx"
        path.write_text("""<?xml version="1.0"?>
<gpx xmlns="http://www.topografix.com/GPX/1/1">
 <trk><trkseg>
  <trkpt lon="116.30" lat="39.90">
    <time>2014-03-01T00:00:00Z</time></trkpt>
  <trkpt lon="116.31" lat="39.91">
    <time>2014-03-01T00:00:30Z</time></trkpt>
 </trkseg></trk>
</gpx>""")
        rows = load_gpx(path)
        assert len(rows) == 2
        assert rows[0]["lng"] == 116.30
        assert rows[1]["time"] - rows[0]["time"] == 30.0
        assert rows[0]["track"] == "1"

    def test_kml(self, tmp_path):
        path = tmp_path / "places.kml"
        path.write_text("""<?xml version="1.0"?>
<kml xmlns="http://www.opengis.net/kml/2.2"><Document>
 <Placemark><name>spot</name>
   <Point><coordinates>116.3,39.9,0</coordinates></Point>
 </Placemark>
 <Placemark><name>road</name>
   <LineString><coordinates>0,0 1,1 2,1</coordinates></LineString>
 </Placemark>
</Document></kml>""")
        rows = load_kml(path)
        assert rows[0] == {"name": "spot", "geometry": Point(116.3, 39.9)}
        assert isinstance(rows[1]["geometry"], LineString)

    def test_load_file_dispatch(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a\n1\n")
        assert load_file(path) == [{"a": "1"}]
        with pytest.raises(ExecutionError):
            load_file(tmp_path / "x.parquet")


class TestSourceRegistry:
    def test_register_and_read(self):
        registry = SourceRegistry()
        registry.register("src", [{"a": 1}])
        assert registry.rows("src") == [{"a": 1}]
        assert registry.names() == ["src"]

    def test_unknown_source(self):
        with pytest.raises(ExecutionError):
            SourceRegistry().rows("ghost")
