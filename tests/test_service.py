"""Service layer: sessions, namespaces, client SDK."""

import pytest

from repro.errors import SessionError
from repro.service import JustClient, JustServer, SessionManager


class TestSessionManager:
    def test_create_and_get(self):
        manager = SessionManager()
        session = manager.create("alice")
        assert manager.get(session.session_id).user == "alice"
        assert session.namespace == "alice__"

    def test_invalid_usernames(self):
        manager = SessionManager()
        with pytest.raises(SessionError):
            manager.create("")
        with pytest.raises(SessionError):
            manager.create("a__b")  # would break namespace parsing

    def test_unknown_session(self):
        with pytest.raises(SessionError):
            SessionManager().get("ghost")

    def test_timeout_expires_session(self):
        manager = SessionManager(timeout_s=10.0)
        session = manager.create("alice")
        session.touch(now=0.0)
        with pytest.raises(SessionError):
            manager.get(session.session_id, now=100.0)

    def test_activity_keeps_session_alive(self):
        manager = SessionManager(timeout_s=10.0)
        session = manager.create("alice")
        session.touch(now=0.0)
        manager.get(session.session_id, now=5.0)   # touches
        assert manager.get(session.session_id, now=14.0).user == "alice"

    def test_expire_idle_returns_expired(self):
        manager = SessionManager(timeout_s=10.0)
        a = manager.create("a")
        b = manager.create("b")
        a.touch(now=0.0)
        b.touch(now=95.0)
        expired = manager.expire_idle(now=100.0)
        assert [s.user for s in expired] == ["a"]
        assert [s.user for s in manager.active_sessions()] == ["b"]


class TestServer:
    def test_multi_user_isolation(self):
        server = JustServer()
        alice = server.connect("alice")
        bob = server.connect("bob")
        server.execute(alice, "CREATE TABLE t (fid integer:primary key, "
                              "geom point)")
        server.execute(bob, "CREATE TABLE t (fid integer:primary key, "
                            "geom point)")
        # Same visible name, different physical tables, no collision.
        assert server.execute(alice, "SHOW TABLES").rows == \
            [{"table": "t"}]
        assert server.user_tables("alice") == ["t"]
        assert server.user_tables("bob") == ["t"]

    def test_shared_engine_across_users(self):
        server = JustServer()
        a = server.connect("a")
        b = server.connect("b")
        server.execute(a, "CREATE TABLE x (fid integer:primary key, "
                          "geom point)")
        # b cannot see a's table.
        assert server.execute(b, "SHOW TABLES").rows == []

    def test_disconnect_drops_views(self):
        server = JustServer()
        sid = server.connect("alice")
        server.execute(sid, "CREATE TABLE t (fid integer:primary key, "
                            "name string, geom point)")
        server.engine.insert("alice__t", [])
        server.execute(sid, "CREATE VIEW v AS SELECT fid FROM t")
        assert server.engine.has_view("alice__v")
        server.disconnect(sid)
        assert not server.engine.has_view("alice__v")

    def test_stale_session_rejected(self):
        server = JustServer(session_timeout_s=10.0)
        sid = server.connect("alice")
        # Backdate the session far beyond the timeout.
        server.sessions._sessions[sid].last_active_at = -1e9
        with pytest.raises(SessionError):
            server.sessions.get(sid)


class TestClient:
    def test_paper_snippet_flow(self):
        server = JustServer()
        with JustClient(server, "alice") as client:
            client.execute_query(
                "CREATE TABLE poi (fid integer:primary key, name string, "
                "time date, geom point)")
            client.execute_query(
                "INSERT INTO poi VALUES (1, 'a', 0, "
                "st_makePoint(116.3, 39.9))")
            rs = client.execute_query("SELECT name FROM poi")
            rows = []
            while rs.has_next():
                rows.append(rs.next())
            assert rows == [{"name": "a"}]

    def test_camel_case_alias(self):
        server = JustServer()
        client = JustClient(server, "alice")
        assert client.executeQuery("SHOW TABLES").rows == []

    def test_reconnect_after_timeout(self):
        server = JustServer(session_timeout_s=10.0)
        client = JustClient(server, "alice")
        # Force the session stale.
        server.sessions.get(client.session_id).touch(now=-1e9)
        rs = client.execute_query("SHOW TABLES")
        assert rs.rows == []
