"""Distance function correctness."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.distance import (
    METERS_PER_DEGREE,
    euclidean_distance,
    haversine_distance_m,
    km_to_degrees,
    point_segment_distance,
)

lngs = st.floats(-180, 180, allow_nan=False)
lats = st.floats(-90, 90, allow_nan=False)


def test_euclidean_basics():
    assert euclidean_distance(0, 0, 3, 4) == 5.0
    assert euclidean_distance(1, 1, 1, 1) == 0.0


def test_haversine_equator_degree():
    d = haversine_distance_m(0, 0, 1, 0)
    assert d == pytest.approx(111_195, rel=0.01)


def test_haversine_latitude_shrinks_longitude():
    at_equator = haversine_distance_m(0, 0, 1, 0)
    at_60 = haversine_distance_m(0, 60, 1, 60)
    assert at_60 == pytest.approx(at_equator * math.cos(math.radians(60)),
                                  rel=0.01)


def test_point_segment_distance_projection():
    # Point above the middle of a horizontal segment.
    assert point_segment_distance(5, 3, 0, 0, 10, 0) == 3.0
    # Point beyond an endpoint: distance to the endpoint.
    assert point_segment_distance(-3, 4, 0, 0, 10, 0) == 5.0
    # Degenerate segment.
    assert point_segment_distance(3, 4, 0, 0, 0, 0) == 5.0


def test_km_to_degrees():
    assert km_to_degrees(111.32) == pytest.approx(1.0, rel=0.001)
    assert METERS_PER_DEGREE == pytest.approx(111_320.0)


@given(x1=lngs, y1=lats, x2=lngs, y2=lats)
def test_haversine_symmetry_and_nonnegativity(x1, y1, x2, y2):
    d1 = haversine_distance_m(x1, y1, x2, y2)
    d2 = haversine_distance_m(x2, y2, x1, y1)
    assert d1 == pytest.approx(d2, rel=1e-9, abs=1e-6)
    assert d1 >= 0.0


@given(x1=lngs, y1=lats, x2=lngs, y2=lats, x3=lngs, y3=lats)
def test_euclidean_triangle_inequality(x1, y1, x2, y2, x3, y3):
    ab = euclidean_distance(x1, y1, x2, y2)
    bc = euclidean_distance(x2, y2, x3, y3)
    ac = euclidean_distance(x1, y1, x3, y3)
    assert ac <= ab + bc + 1e-9
