"""Region/table/store behaviour: routing, splits, merge semantics."""

import pytest

from repro.errors import TableExistsError, TableNotFoundError
from repro.kvstore import KVStore, ScanSpec
from repro.kvstore.scan import prefix_successor


def small_store(**kwargs):
    defaults = dict(num_servers=3, flush_bytes=4 * 1024,
                    split_bytes=32 * 1024, block_bytes=1024)
    defaults.update(kwargs)
    return KVStore(**defaults)


class TestTableManagement:
    def test_create_get_drop(self):
        store = small_store()
        store.create_table("t")
        assert store.has_table("t")
        store.drop_table("t")
        assert not store.has_table("t")

    def test_duplicate_create_raises(self):
        store = small_store()
        store.create_table("t")
        with pytest.raises(TableExistsError):
            store.create_table("t")

    def test_missing_table_raises(self):
        store = small_store()
        with pytest.raises(TableNotFoundError):
            store.table("nope")
        with pytest.raises(TableNotFoundError):
            store.drop_table("nope")

    def test_table_names_sorted(self):
        store = small_store()
        for name in ("zeta", "alpha", "mid"):
            store.create_table(name)
        assert store.table_names() == ["alpha", "mid", "zeta"]


class TestReadWrite:
    def test_put_get_delete(self):
        table = small_store().create_table("t")
        table.put(b"k1", b"v1")
        assert table.get(b"k1") == b"v1"
        table.delete(b"k1")
        assert table.get(b"k1") is None

    def test_overwrite(self):
        table = small_store().create_table("t")
        table.put(b"k", b"old")
        table.put(b"k", b"new")
        assert table.get(b"k") == b"new"

    def test_scan_is_sorted_and_inclusive(self):
        table = small_store().create_table("t")
        import random
        keys = [f"{i:04d}".encode() for i in range(200)]
        shuffled = keys[:]
        random.Random(5).shuffle(shuffled)
        for key in shuffled:
            table.put(key, key)
        got = [k for k, _ in table.scan(ScanSpec(b"0050", b"0059"))]
        assert got == keys[50:60]

    def test_scan_limit(self):
        table = small_store().create_table("t")
        for i in range(50):
            table.put(f"{i:03d}".encode(), b"v")
        got = list(table.scan(ScanSpec(b"", b"\xff", limit=7)))
        assert len(got) == 7

    def test_deleted_keys_not_scanned(self):
        table = small_store().create_table("t")
        for i in range(20):
            table.put(f"{i:03d}".encode(), b"v")
        table.delete(b"010")
        table.flush()
        keys = [k for k, _ in table.scan(ScanSpec.full())]
        assert b"010" not in keys
        assert len(keys) == 19

    def test_delete_survives_flush_ordering(self):
        # Value flushed to an SSTable, tombstone in the memstore.
        table = small_store().create_table("t")
        table.put(b"k", b"v")
        table.flush()
        table.delete(b"k")
        assert table.get(b"k") is None
        assert [k for k, _ in table.scan(ScanSpec.full())] == []

    def test_update_across_runs_newest_wins(self):
        table = small_store().create_table("t")
        table.put(b"k", b"one")
        table.flush()
        table.put(b"k", b"two")
        table.flush()
        assert table.get(b"k") == b"two"
        values = [v for _, v in table.scan(ScanSpec.full())]
        assert values == [b"two"]


class TestPrefixScan:
    def test_prefix_successor_bound(self):
        assert prefix_successor(b"ab") == b"ac"
        assert prefix_successor(b"a\xff") == b"b"
        assert prefix_successor(b"a\xff\xff") == b"b"
        assert prefix_successor(b"\xff\xff") is None
        assert prefix_successor(b"") is None

    def test_prefix_includes_keys_longer_than_16_bytes_past_prefix(self):
        # Regression: the old end bound (prefix + b"\xff" * 16) silently
        # excluded keys extending more than 16 bytes past the prefix.
        table = small_store().create_table("t")
        long_key = b"p" + b"x" * 40
        table.put(long_key, b"deep")
        table.put(b"p", b"exact")
        table.put(b"p\xff" * 20, b"ff-heavy")
        got = dict(table.scan(ScanSpec.prefix(b"p")))
        assert got == {long_key: b"deep", b"p": b"exact",
                       b"p\xff" * 20: b"ff-heavy"}

    def test_prefix_excludes_successor_keys(self):
        table = small_store().create_table("t")
        table.put(b"pa", b"in")
        table.put(b"q", b"out")
        table.put(b"q" + b"\x00" * 30, b"out-too")
        got = [k for k, _ in table.scan(ScanSpec.prefix(b"p"))]
        assert got == [b"pa"]

    def test_all_ff_prefix_scans_to_table_end(self):
        table = small_store().create_table("t")
        table.put(b"\xff\xffz", b"v")
        table.put(b"a", b"other")
        got = [k for k, _ in table.scan(ScanSpec.prefix(b"\xff\xff"))]
        assert got == [b"\xff\xffz"]

    def test_unbounded_scans_have_no_key_length_ceiling(self):
        # Regression: successor-less prefixes fell back to a finite
        # b"\xff" * 32 bound, excluding matching keys longer than 32
        # bytes.  end=None is now a true "to the end of the table".
        table = small_store().create_table("t")
        beyond = b"\xff" * 40
        table.put(beyond, b"v")
        table.put(b"a", b"other")
        assert dict(table.scan(ScanSpec.prefix(b"\xff\xff")))[beyond] == b"v"
        assert dict(table.scan(ScanSpec.prefix(b"")))[beyond] == b"v"
        assert dict(table.scan(ScanSpec.full()))[beyond] == b"v"


class TestRegionSplitting:
    def test_split_occurs_under_load(self):
        table = small_store().create_table("t")
        payload = b"x" * 200
        for i in range(2000):
            table.put(f"{i:06d}".encode(), payload)
        assert table.num_regions > 1

    def test_data_survives_splits(self):
        table = small_store().create_table("t")
        payload = b"x" * 200
        for i in range(2000):
            table.put(f"{i:06d}".encode(), payload)
        assert table.get(b"000000") == payload
        assert table.get(b"001999") == payload
        keys = [k for k, _ in table.scan(ScanSpec.full())]
        assert len(keys) == 2000
        assert keys == sorted(keys)

    def test_regions_spread_over_servers(self):
        store = small_store()
        table = store.create_table("t")
        payload = b"x" * 200
        for i in range(4000):
            table.put(f"{i:06d}".encode(), payload)
        assert len(table.servers_used()) > 1

    def test_delete_then_split_keeps_deletes(self):
        # Tombstoned keys must not resurrect when the region splits:
        # the split merges runs and drops masked values and tombstones.
        table = small_store().create_table("t")
        payload = b"x" * 200
        for i in range(200):
            table.put(f"{i:06d}".encode(), payload)
        deleted = [f"{i:06d}".encode() for i in range(0, 200, 7)]
        for key in deleted:
            table.delete(key)
        for i in range(200, 2000):  # grow past the split threshold
            table.put(f"{i:06d}".encode(), payload)
        assert table.num_regions > 1
        for key in deleted:
            assert table.get(key) is None
        keys = set(k for k, _ in table.scan(ScanSpec.full()))
        assert keys.isdisjoint(deleted)
        assert len(keys) == 2000 - len(deleted)

    def test_scan_limit_crossing_split_boundary(self):
        table = small_store().create_table("t")
        payload = b"x" * 200
        for i in range(2000):
            table.put(f"{i:06d}".encode(), payload)
        assert table.num_regions > 1
        # A limit larger than the first region's share must continue
        # seamlessly into the next region, in key order.
        first_region_keys = len(list(
            table._regions[0].scan(b"", b"\xff" * 8, None)))
        limit = first_region_keys + 25
        got = [k for k, _ in table.scan(ScanSpec(limit=limit))]
        assert got == [f"{i:06d}".encode() for i in range(limit)]

    def test_split_on_single_server_store(self):
        # All regions inevitably share the one server; splitting must
        # still work and keep routing consistent.
        table = small_store(num_servers=1).create_table("t")
        payload = b"x" * 200
        for i in range(2000):
            table.put(f"{i:06d}".encode(), payload)
        assert table.num_regions > 1
        assert table.servers_used() == {0}
        assert table.get(b"001234") == payload

    def test_split_aborts_on_single_giant_key(self):
        # One key overwritten past the split threshold cannot split
        # (split_key would equal start_key); the store must not loop.
        store = small_store(split_bytes=2048, flush_bytes=512)
        table = store.create_table("t")
        for _ in range(50):
            table.put(b"only-key", b"x" * 400)
        assert table.num_regions == 1
        assert table.get(b"only-key") == b"x" * 400

    def test_compaction_reclaims_tombstones(self):
        table = small_store().create_table("t")
        for i in range(100):
            table.put(f"{i:03d}".encode(), b"v" * 50)
        table.flush()
        for i in range(100):
            table.delete(f"{i:03d}".encode())
        table.flush()
        table.compact()
        assert table.count() == 0
        assert table.disk_bytes == 0


class TestIOAccounting:
    def test_scan_records_result_bytes(self):
        store = small_store()
        table = store.create_table("t")
        table.put(b"abc", b"12345")
        before = store.stats.snapshot()
        list(table.scan(ScanSpec.full()))
        delta = store.stats.snapshot().delta(before)
        assert delta.result_bytes == len(b"abc") + len(b"12345")
        assert delta.scans_started == 1

    def test_flush_charges_disk_write(self):
        store = small_store()
        table = store.create_table("t")
        table.put(b"k", b"v" * 100)
        before = store.stats.disk_bytes_written
        table.flush()
        assert store.stats.disk_bytes_written > before

    def test_cache_cleared_between_queries(self):
        store = small_store()
        table = store.create_table("t")
        for i in range(500):
            table.put(f"{i:04d}".encode(), b"v" * 100)
        table.flush()
        list(table.scan(ScanSpec(b"0000", b"0100")))
        base = store.stats.disk_bytes_read
        list(table.scan(ScanSpec(b"0000", b"0100")))  # cache hit
        cached_delta = store.stats.disk_bytes_read - base
        store.clear_caches()
        base = store.stats.disk_bytes_read
        list(table.scan(ScanSpec(b"0000", b"0100")))  # cold again
        cold_delta = store.stats.disk_bytes_read - base
        assert cached_delta == 0
        assert cold_delta > 0
