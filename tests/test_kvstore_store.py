"""Region/table/store behaviour: routing, splits, merge semantics."""

import pytest

from repro.errors import TableExistsError, TableNotFoundError
from repro.kvstore import KVStore, ScanSpec


def small_store(**kwargs):
    defaults = dict(num_servers=3, flush_bytes=4 * 1024,
                    split_bytes=32 * 1024, block_bytes=1024)
    defaults.update(kwargs)
    return KVStore(**defaults)


class TestTableManagement:
    def test_create_get_drop(self):
        store = small_store()
        store.create_table("t")
        assert store.has_table("t")
        store.drop_table("t")
        assert not store.has_table("t")

    def test_duplicate_create_raises(self):
        store = small_store()
        store.create_table("t")
        with pytest.raises(TableExistsError):
            store.create_table("t")

    def test_missing_table_raises(self):
        store = small_store()
        with pytest.raises(TableNotFoundError):
            store.table("nope")
        with pytest.raises(TableNotFoundError):
            store.drop_table("nope")

    def test_table_names_sorted(self):
        store = small_store()
        for name in ("zeta", "alpha", "mid"):
            store.create_table(name)
        assert store.table_names() == ["alpha", "mid", "zeta"]


class TestReadWrite:
    def test_put_get_delete(self):
        table = small_store().create_table("t")
        table.put(b"k1", b"v1")
        assert table.get(b"k1") == b"v1"
        table.delete(b"k1")
        assert table.get(b"k1") is None

    def test_overwrite(self):
        table = small_store().create_table("t")
        table.put(b"k", b"old")
        table.put(b"k", b"new")
        assert table.get(b"k") == b"new"

    def test_scan_is_sorted_and_inclusive(self):
        table = small_store().create_table("t")
        import random
        keys = [f"{i:04d}".encode() for i in range(200)]
        shuffled = keys[:]
        random.Random(5).shuffle(shuffled)
        for key in shuffled:
            table.put(key, key)
        got = [k for k, _ in table.scan(ScanSpec(b"0050", b"0059"))]
        assert got == keys[50:60]

    def test_scan_limit(self):
        table = small_store().create_table("t")
        for i in range(50):
            table.put(f"{i:03d}".encode(), b"v")
        got = list(table.scan(ScanSpec(b"", b"\xff", limit=7)))
        assert len(got) == 7

    def test_deleted_keys_not_scanned(self):
        table = small_store().create_table("t")
        for i in range(20):
            table.put(f"{i:03d}".encode(), b"v")
        table.delete(b"010")
        table.flush()
        keys = [k for k, _ in table.scan(ScanSpec.full())]
        assert b"010" not in keys
        assert len(keys) == 19

    def test_delete_survives_flush_ordering(self):
        # Value flushed to an SSTable, tombstone in the memstore.
        table = small_store().create_table("t")
        table.put(b"k", b"v")
        table.flush()
        table.delete(b"k")
        assert table.get(b"k") is None
        assert [k for k, _ in table.scan(ScanSpec.full())] == []

    def test_update_across_runs_newest_wins(self):
        table = small_store().create_table("t")
        table.put(b"k", b"one")
        table.flush()
        table.put(b"k", b"two")
        table.flush()
        assert table.get(b"k") == b"two"
        values = [v for _, v in table.scan(ScanSpec.full())]
        assert values == [b"two"]


class TestRegionSplitting:
    def test_split_occurs_under_load(self):
        table = small_store().create_table("t")
        payload = b"x" * 200
        for i in range(2000):
            table.put(f"{i:06d}".encode(), payload)
        assert table.num_regions > 1

    def test_data_survives_splits(self):
        table = small_store().create_table("t")
        payload = b"x" * 200
        for i in range(2000):
            table.put(f"{i:06d}".encode(), payload)
        assert table.get(b"000000") == payload
        assert table.get(b"001999") == payload
        keys = [k for k, _ in table.scan(ScanSpec.full())]
        assert len(keys) == 2000
        assert keys == sorted(keys)

    def test_regions_spread_over_servers(self):
        store = small_store()
        table = store.create_table("t")
        payload = b"x" * 200
        for i in range(4000):
            table.put(f"{i:06d}".encode(), payload)
        assert len(table.servers_used()) > 1

    def test_compaction_reclaims_tombstones(self):
        table = small_store().create_table("t")
        for i in range(100):
            table.put(f"{i:03d}".encode(), b"v" * 50)
        table.flush()
        for i in range(100):
            table.delete(f"{i:03d}".encode())
        table.flush()
        table.compact()
        assert table.count() == 0
        assert table.disk_bytes == 0


class TestIOAccounting:
    def test_scan_records_result_bytes(self):
        store = small_store()
        table = store.create_table("t")
        table.put(b"abc", b"12345")
        before = store.stats.snapshot()
        list(table.scan(ScanSpec.full()))
        delta = store.stats.snapshot().delta(before)
        assert delta.result_bytes == len(b"abc") + len(b"12345")
        assert delta.scans_started == 1

    def test_flush_charges_disk_write(self):
        store = small_store()
        table = store.create_table("t")
        table.put(b"k", b"v" * 100)
        before = store.stats.disk_bytes_written
        table.flush()
        assert store.stats.disk_bytes_written > before

    def test_cache_cleared_between_queries(self):
        store = small_store()
        table = store.create_table("t")
        for i in range(500):
            table.put(f"{i:04d}".encode(), b"v" * 100)
        table.flush()
        list(table.scan(ScanSpec(b"0000", b"0100")))
        base = store.stats.disk_bytes_read
        list(table.scan(ScanSpec(b"0000", b"0100")))  # cache hit
        cached_delta = store.stats.disk_bytes_read - base
        store.clear_caches()
        base = store.stats.disk_bytes_read
        list(table.scan(ScanSpec(b"0000", b"0100")))  # cold again
        cold_delta = store.stats.disk_bytes_read - base
        assert cached_delta == 0
        assert cold_delta > 0
