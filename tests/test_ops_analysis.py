"""1-1, 1-N and N-M analysis operations."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, haversine_distance_m
from repro.ops import (
    dbscan,
    st_gcj02_to_wgs84,
    st_wgs84_to_gcj02,
    traj_noise_filter,
    traj_segment,
    traj_stay_points,
)
from repro.ops.analysis.dbscan import NOISE, cluster_centroids
from repro.trajectory import STSeries, Trajectory


def make_traj(points, tid="t", oid="o"):
    return Trajectory(tid, oid, STSeries(points))


class TestTransforms:
    def test_roundtrip_beijing(self):
        p = Point(116.397, 39.908)
        there = st_wgs84_to_gcj02(p)
        back = st_gcj02_to_wgs84(there)
        assert haversine_distance_m(p.lng, p.lat, back.lng, back.lat) < 5.0

    def test_time_preserved(self):
        p = Point(116.4, 39.9, time=123.0)
        assert st_wgs84_to_gcj02(p).time == 123.0


class TestNoiseFilter:
    def test_removes_single_jump(self):
        points = [(116.0, 39.9, 0.0), (116.001, 39.9, 30.0),
                  (116.5, 39.9, 60.0),        # 43 km in 30 s: noise
                  (116.002, 39.9, 90.0)]
        cleaned = traj_noise_filter(make_traj(points))
        assert len(cleaned.points) == 3
        assert all(abs(p.lng - 116.0) < 0.01 for p in cleaned.points)

    def test_keeps_clean_trajectory(self):
        points = [(116.0 + i * 0.0001, 39.9, i * 30.0) for i in range(20)]
        cleaned = traj_noise_filter(make_traj(points))
        assert len(cleaned.points) == 20

    def test_reanchors_after_streak(self):
        # The vehicle genuinely teleports (data gap): after the streak
        # limit the filter accepts the new location.
        points = [(116.0, 39.9, i * 10.0) for i in range(3)]
        points += [(117.0 + i * 1e-7, 39.9, 30.0 + i * 10.0)
                   for i in range(10)]
        cleaned = traj_noise_filter(make_traj(sorted(points,
                                                     key=lambda p: p[2])))
        assert any(p.lng > 116.9 for p in cleaned.points)

    def test_single_point(self):
        cleaned = traj_noise_filter(make_traj([(116.0, 39.9, 0.0)]))
        assert len(cleaned.points) == 1


class TestSegmentation:
    def test_time_gap_split(self):
        points = ([(116.0, 39.9, i * 10.0) for i in range(5)]
                  + [(116.0, 39.9, 10_000.0 + i * 10.0)
                     for i in range(5)])
        segments = traj_segment(make_traj(points))
        assert len(segments) == 2
        assert all(len(s.points) == 5 for s in segments)

    def test_distance_gap_split(self):
        points = [(116.0, 39.9, 0.0), (116.001, 39.9, 30.0),
                  (116.2, 39.9, 60.0), (116.201, 39.9, 90.0)]
        segments = traj_segment(make_traj(points),
                                max_distance_gap_m=1000.0)
        assert len(segments) == 2

    def test_short_segments_dropped(self):
        points = [(116.0, 39.9, 0.0),
                  (116.0, 39.9, 10_000.0),
                  (116.0, 39.9, 20_000.0)]
        segments = traj_segment(make_traj(points), min_points=2)
        assert segments == []

    def test_ids_are_ordered(self):
        points = ([(116.0, 39.9, i * 10.0) for i in range(3)]
                  + [(116.0, 39.9, 9_000.0 + i * 10.0) for i in range(3)])
        segments = traj_segment(make_traj(points, tid="T"))
        assert [s.tid for s in segments] == ["T#0", "T#1"]

    @settings(max_examples=20)
    @given(gap_count=st.integers(0, 5))
    def test_segment_count_matches_gaps(self, gap_count):
        points = []
        t = 0.0
        for g in range(gap_count + 1):
            for i in range(3):
                points.append((116.0, 39.9, t))
                t += 10.0
            t += 10_000.0  # gap
        segments = traj_segment(make_traj(points))
        assert len(segments) == gap_count + 1


class TestStayPoints:
    def test_detects_single_stay(self):
        stay = [(116.1, 39.9, i * 120.0) for i in range(15)]
        move = [(116.1 + i * 0.01, 39.9, 1800.0 + i * 60.0)
                for i in range(1, 8)]
        stays = traj_stay_points(make_traj(stay + move))
        assert len(stays) == 1
        assert stays[0].duration_s >= 20 * 60.0
        assert stays[0].num_points == 15
        assert stays[0].lng == pytest.approx(116.1, abs=1e-6)

    def test_moving_trajectory_has_no_stays(self):
        move = [(116.0 + i * 0.01, 39.9, i * 60.0) for i in range(30)]
        assert traj_stay_points(make_traj(move)) == []

    def test_brief_pause_not_a_stay(self):
        pause = [(116.1, 39.9, i * 60.0) for i in range(5)]  # 5 minutes
        move = [(116.1 + i * 0.01, 39.9, 300.0 + i * 60.0)
                for i in range(1, 8)]
        assert traj_stay_points(make_traj(pause + move)) == []

    def test_two_separate_stays(self):
        stay1 = [(116.1, 39.9, i * 120.0) for i in range(15)]
        move = [(116.1 + i * 0.02, 39.9, 1800.0 + i * 60.0)
                for i in range(1, 6)]
        stay2 = [(116.3, 39.95, 2200.0 + i * 120.0) for i in range(15)]
        stays = traj_stay_points(make_traj(stay1 + move + stay2))
        assert len(stays) == 2
        assert stays[0].leave_time <= stays[1].arrive_time


class TestDBSCAN:
    def test_two_gaussian_clusters(self):
        rng = random.Random(4)
        a = [(116.0 + rng.gauss(0, 0.002), 39.8 + rng.gauss(0, 0.002))
             for _ in range(60)]
        b = [(116.3 + rng.gauss(0, 0.002), 40.0 + rng.gauss(0, 0.002))
             for _ in range(60)]
        labels = dbscan(a + b, min_pts=5, radius=0.01)
        assert len({l for l in labels if l != NOISE}) == 2
        assert len(set(labels[:60])) == 1  # cluster a is coherent

    def test_isolated_points_are_noise(self):
        points = [(0.0, 0.0), (10.0, 10.0), (20.0, 20.0)]
        assert dbscan(points, min_pts=2, radius=0.1) == [NOISE] * 3

    def test_min_pts_one_makes_everything_core(self):
        labels = dbscan([(0.0, 0.0), (50.0, 50.0)], min_pts=1, radius=1.0)
        assert labels == [0, 1]

    def test_border_points_join_cluster(self):
        # A dense core plus one point on the rim.
        core = [(0.0, 0.0), (0.01, 0.0), (0.0, 0.01), (0.01, 0.01)]
        border = [(0.05, 0.0)]
        labels = dbscan(core + border, min_pts=4, radius=0.05)
        assert labels[-1] == labels[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            dbscan([(0, 0)], min_pts=0, radius=1.0)
        with pytest.raises(ValueError):
            dbscan([(0, 0)], min_pts=1, radius=0.0)

    def test_centroids(self):
        points = [(0.0, 0.0), (2.0, 2.0), (100.0, 100.0)]
        labels = [0, 0, NOISE]
        centroids = cluster_centroids(points, labels)
        assert centroids == {0: (1.0, 1.0)}

    def test_empty_input(self):
        assert dbscan([], min_pts=3, radius=1.0) == []

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_labels_partition_input(self, seed):
        rng = random.Random(seed)
        points = [(rng.uniform(0, 1), rng.uniform(0, 1))
                  for _ in range(100)]
        labels = dbscan(points, min_pts=4, radius=0.08)
        assert len(labels) == 100
        clusters = {l for l in labels if l != NOISE}
        assert clusters == set(range(len(clusters)))
