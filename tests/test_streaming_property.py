"""Property tests: stream/batch parity and at-least-once delivery.

The two acceptance properties of the streaming layer:

1. For *any* out-of-order event stream whose disorder is bounded by the
   watermark delay, the finalized watermarked window aggregates exactly
   equal a cold batch recomputation over the same events — no late
   drops, no double counting, identical float accumulation order.

2. A quorum failure injected mid-drain loses zero acked events: the
   offset only commits after a successful insert, and idempotent
   upserts absorb redelivery of torn batches.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import Schema  # noqa: E402
from repro.core.engine import JustEngine  # noqa: E402
from repro.core.tables import CommonTable  # noqa: E402
from repro.errors import ReplicationQuorumError  # noqa: E402
from repro.streaming import (  # noqa: E402
    Avg,
    Count,
    Max,
    Min,
    SlidingWindows,
    Sum,
    TumblingWindows,
    WindowedAggregator,
    batch_aggregate,
)

from conftest import POI_SCHEMA_FIELDS, T0  # noqa: E402


def _aggs():
    return {"n": Count(), "total": Sum("v"), "avg": Avg("v"),
            "lo": Min("v"), "hi": Max("v")}


events_strategy = st.lists(
    st.tuples(st.sampled_from("abc"),                    # key
              st.floats(min_value=0.0, max_value=500.0,  # event time
                        allow_nan=False, width=32),
              st.integers(min_value=-100, max_value=100)),  # value
    min_size=1, max_size=120)


windows_strategy = st.one_of(
    st.sampled_from([30.0, 60.0, 97.0]).map(TumblingWindows),
    st.sampled_from([(60.0, 20.0), (90.0, 45.0)]).map(
        lambda p: SlidingWindows(*p)))


@given(events=events_strategy, windows=windows_strategy,
       batch_size=st.integers(min_value=1, max_value=40),
       data=st.data())
@settings(max_examples=60, deadline=None)
def test_streamed_windows_equal_batch_recompute(events, windows,
                                                batch_size, data):
    """Random disorder + adequate watermark => exact stream/batch parity.

    The watermark delay is set to the stream's actual disorder bound, so
    no event may legally be dropped; finalized rows plus the end-of-
    stream flush must equal the batch recompute *exactly* (same floats).
    """
    rows = [{"k": k, "time": t, "v": v} for k, t, v in events]
    # The disorder actually present in this shuffle order:
    frontier, disorder = -float("inf"), 0.0
    for row in rows:
        frontier = max(frontier, row["time"])
        disorder = max(disorder, frontier - row["time"])

    streamed = WindowedAggregator(windows, _aggs(), key_fields=("k",))
    out = []
    frontier = -float("inf")
    for start in range(0, len(rows), batch_size):
        batch = rows[start:start + batch_size]
        for row in batch:
            streamed.add(row)
        frontier = max(frontier, *(r["time"] for r in batch))
        # Sometimes lag the watermark further behind: finalization
        # timing must never change the result, only its latency.
        extra = data.draw(st.floats(min_value=0.0, max_value=50.0,
                                    allow_nan=False))
        out.extend(streamed.advance(frontier - disorder - extra))
    out.extend(streamed.flush())

    assert streamed.late_dropped == 0
    assert out == batch_aggregate(rows, windows, _aggs(),
                                  key_fields=("k",))


@given(events=events_strategy)
@settings(max_examples=40, deadline=None)
def test_late_events_only_ever_drop_rows_never_corrupt(events):
    """With a zero-delay watermark, late drops are counted, and the
    surviving output still equals a batch recompute over the events
    that were actually accepted."""
    rows = [{"k": k, "time": t, "v": v} for k, t, v in events]
    streamed = WindowedAggregator(TumblingWindows(60.0), _aggs(),
                                  key_fields=("k",))
    out, accepted = [], []
    for row in rows:
        before = streamed.late_dropped
        streamed.add(row)
        if streamed.late_dropped == before:
            accepted.append(row)
        out.extend(streamed.advance(row["time"]))
    out.extend(streamed.flush())
    assert len(accepted) + streamed.late_dropped == len(rows)
    assert out == batch_aggregate(accepted, TumblingWindows(60.0),
                                  _aggs(), key_fields=("k",))


CONFIG = {"fid": "to_int(oid)", "name": "oid",
          "time": "long_to_date_ms(ts)",
          "geom": "lng_lat_to_point(lng, lat)"}


@given(total=st.integers(min_value=1, max_value=60),
       batch_size=st.integers(min_value=1, max_value=20),
       failures=st.sets(st.integers(min_value=1, max_value=12),
                        max_size=4),
       torn=st.integers(min_value=0, max_value=5))
@settings(max_examples=25, deadline=None)
def test_injected_quorum_failures_lose_zero_acked_events(
        total, batch_size, failures, torn):
    """Whatever insert calls fail (even tearing a batch partway), every
    event is eventually loaded exactly once."""
    engine = JustEngine()
    engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
    topic = engine.create_topic("gps")
    topic.append_many(
        {"oid": str(i), "lng": 116.0 + (i % 50) * 0.01, "lat": 39.9,
         "ts": int((T0 + i) * 1000)} for i in range(total))
    loader = engine.stream_load("gps", "poi", CONFIG,
                                batch_size=batch_size)

    real = CommonTable.insert_rows
    calls = {"n": 0}

    def flaky(table_self, rows, job=None):
        calls["n"] += 1
        if calls["n"] in failures:
            if torn:
                real(table_self, rows[:torn], job)
            raise ReplicationQuorumError("poi", 0, 0, acks=1,
                                         required=2)
        return real(table_self, rows, job)

    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(CommonTable, "insert_rows", flaky)
        while loader.lag > 0:
            try:
                loader.poll()
            except ReplicationQuorumError:
                continue  # retry: the batch was not acked

    assert loader.offset == total
    assert engine.table("poi").row_count == total
    fids = sorted(r["fid"] for r in engine.sql("SELECT fid FROM poi").rows)
    assert fids == list(range(total))
