"""Query-range decomposition: coverage, precision, budget behaviour."""

from hypothesis import given, settings, strategies as st

from repro.curves.zorder import interleave2, interleave3
from repro.curves.zranges import _merge_ranges, z2_ranges, z3_ranges

BITS2 = 8   # small bit widths keep exhaustive checks cheap
cell8 = st.integers(0, (1 << BITS2) - 1)


def covered(ranges, z):
    return any(lo <= z <= hi for lo, hi in ranges)


class TestMerge:
    def test_merge_adjacent(self):
        assert _merge_ranges([(0, 3), (4, 9)]) == [(0, 9)]

    def test_merge_overlapping(self):
        assert _merge_ranges([(0, 5), (3, 9), (20, 30)]) == \
            [(0, 9), (20, 30)]

    def test_merge_empty(self):
        assert _merge_ranges([]) == []

    def test_merge_unsorted_input(self):
        assert _merge_ranges([(10, 12), (0, 2)]) == [(0, 2), (10, 12)]


class TestZ2Ranges:
    @given(x1=cell8, y1=cell8, x2=cell8, y2=cell8)
    @settings(max_examples=50)
    def test_every_cell_in_box_is_covered(self, x1, y1, x2, y2):
        x_lo, x_hi = sorted((x1, x2))
        y_lo, y_hi = sorted((y1, y2))
        ranges = z2_ranges(x_lo, y_lo, x_hi, y_hi, bits=BITS2)
        # Exhaustively verify a sample of inner cells.
        xs = {x_lo, x_hi, (x_lo + x_hi) // 2}
        ys = {y_lo, y_hi, (y_lo + y_hi) // 2}
        for x in xs:
            for y in ys:
                assert covered(ranges, interleave2(x, y))

    @given(x1=cell8, y1=cell8, x2=cell8, y2=cell8)
    @settings(max_examples=30)
    def test_outside_corner_cells_not_covered_when_tight(self, x1, y1,
                                                         x2, y2):
        x_lo, x_hi = sorted((x1, x2))
        y_lo, y_hi = sorted((y1, y2))
        ranges = z2_ranges(x_lo, y_lo, x_hi, y_hi, bits=BITS2,
                           max_ranges=100_000)
        # With an unconstrained budget the decomposition is exact:
        # cells just outside the box must not be covered.
        if x_lo > 0:
            assert not covered(ranges, interleave2(x_lo - 1, y_lo))
        if y_hi < (1 << BITS2) - 1:
            assert not covered(ranges, interleave2(x_lo, y_hi + 1))

    def test_full_domain_is_single_range(self):
        top = (1 << BITS2) - 1
        ranges = z2_ranges(0, 0, top, top, bits=BITS2)
        assert ranges == [(0, (1 << (2 * BITS2)) - 1)]

    def test_single_cell(self):
        ranges = z2_ranges(5, 9, 5, 9, bits=BITS2)
        z = interleave2(5, 9)
        assert ranges == [(z, z)]

    def test_budget_caps_range_count(self):
        top = (1 << 16) - 1
        ranges = z2_ranges(1, 1, top - 1, top - 1, bits=16, max_ranges=16)
        assert len(ranges) <= 16

    def test_budget_still_covers(self):
        # Tight budget must over-approximate, never under-approximate.
        ranges = z2_ranges(10, 20, 200, 220, bits=BITS2, max_ranges=4)
        for x in (10, 100, 200):
            for y in (20, 120, 220):
                assert covered(ranges, interleave2(x, y))

    def test_more_budget_less_coverage(self):
        span = sum(hi - lo + 1 for lo, hi in
                   z2_ranges(3, 3, 200, 200, bits=BITS2, max_ranges=4))
        tight = sum(hi - lo + 1 for lo, hi in
                    z2_ranges(3, 3, 200, 200, bits=BITS2, max_ranges=256))
        assert tight <= span


class TestZ3Ranges:
    def test_cube_coverage(self):
        ranges = z3_ranges(1, 2, 3, 6, 7, 8, bits=6)
        for x in (1, 4, 6):
            for y in (2, 5, 7):
                for t in (3, 5, 8):
                    assert covered(ranges, interleave3(x, y, t))

    def test_exact_when_unbudgeted(self):
        ranges = z3_ranges(2, 2, 2, 3, 3, 3, bits=4, max_ranges=100_000)
        assert not covered(ranges, interleave3(1, 2, 2))
        assert not covered(ranges, interleave3(2, 4, 2))
        assert covered(ranges, interleave3(3, 3, 3))

    def test_time_slab_produces_many_ranges(self):
        # A thin spatial box over a wide time slab fragments into many
        # ranges in Z3 — the phenomenon motivating Z2T (Section IV-B).
        top = (1 << 6) - 1
        ranges = z3_ranges(10, 10, 0, 11, 11, top, bits=6,
                           max_ranges=10_000)
        assert len(ranges) > 8
