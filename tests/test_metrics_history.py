"""Metrics history: tiered retention, window functions, the scraper.

The hypothesis properties pin the two load-bearing guarantees: tier
selection never changes a query's answer relative to recomputing it
from the raw sample stream, and counter resets (failover, restart)
never produce negative rates.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.events import EventLog
from repro.observability.history import (
    DEFAULT_TIERS,
    MetricsHistory,
    MetricsScraper,
    Series,
    WINDOW_FUNCS,
    increase,
    rate_per_s,
    suffixed_key,
)
from repro.observability.metrics import MetricsRegistry


# -- window functions ---------------------------------------------------------

class TestWindowFunctions:
    def test_increase_is_plain_delta_without_resets(self):
        points = [(0.0, 10.0), (1.0, 14.0), (2.0, 20.0)]
        assert increase(points) == 10.0

    def test_increase_counts_post_reset_value_as_growth(self):
        # 10 -> 14 (+4), restart, 3 (+3 from zero): total 7, never -11.
        points = [(0.0, 10.0), (1.0, 14.0), (2.0, 3.0)]
        assert increase(points) == 7.0

    def test_rate_per_s_uses_elapsed_time(self):
        points = [(0.0, 0.0), (2_000.0, 10.0)]
        assert rate_per_s(points) == pytest.approx(5.0)

    def test_rate_degenerate_windows_are_zero(self):
        assert rate_per_s([]) == 0.0
        assert rate_per_s([(5.0, 3.0)]) == 0.0
        assert rate_per_s([(5.0, 3.0), (5.0, 9.0)]) == 0.0

    def test_suffixed_key_inserts_before_labels(self):
        assert suffixed_key("h", "count") == "h_count"
        assert suffixed_key("h{op=scan}", "count") == "h_count{op=scan}"


# -- tiered series ------------------------------------------------------------

class TestSeries:
    def test_tier_strides_partition_the_stream(self):
        series = Series("s", "counter",
                        tiers=((1, 512), (8, 512), (64, 512)))
        for i in range(100):
            series.record(float(i), float(i))
        assert len(series.tier_points(0)) == 100
        assert [ts for ts, _ in series.tier_points(1)] == \
            [float(i) for i in range(0, 100, 8)]
        assert [ts for ts, _ in series.tier_points(2)] == [0.0, 64.0]

    def test_rings_are_bounded(self):
        series = Series("s", "gauge", tiers=((1, 16), (4, 16)))
        for i in range(1000):
            series.record(float(i), 1.0)
        assert len(series.tier_points(0)) == 16
        assert len(series.tier_points(1)) == 16

    def test_points_prefers_finest_covering_tier(self):
        series = Series("s", "counter", tiers=((1, 8), (4, 64)))
        for i in range(64):
            series.record(float(i), float(i))
        # Recent window: tier 0 still covers it -> every point.
        recent = series.points(start_ms=58.0, end_ms=63.0)
        assert [ts for ts, _ in recent] == [58.0, 59.0, 60.0,
                                            61.0, 62.0, 63.0]
        # Old window: evicted from tier 0, served at stride-4.
        old = series.points(start_ms=8.0, end_ms=20.0)
        assert [ts for ts, _ in old] == [8.0, 12.0, 16.0, 20.0]

    def test_baseline_prepends_sample_entering_the_window(self):
        series = Series("s", "counter")
        series.record(0.0, 100.0)
        series.record(1_000.0, 160.0)
        # Window holds one sample; the baseline makes the delta exact.
        assert series.points(500.0, 1_000.0) == [(1_000.0, 160.0)]
        assert series.points(500.0, 1_000.0, baseline=True) == \
            [(0.0, 100.0), (1_000.0, 160.0)]

    def test_history_short_window_increase_sees_growth(self):
        history = MetricsHistory()
        history.record("c", "counter", 0.0, 0.0)
        history.record("c", "counter", 5_000.0, 40.0)
        # 100 ms window holds a single scrape, but the counter grew.
        assert history.increase("c", 100.0, 5_000.0) == 40.0


# -- hypothesis properties ----------------------------------------------------

def _monotone_counter(deltas):
    total, points = 0.0, []
    for i, delta in enumerate(deltas):
        total += delta
        points.append((float(i * 10), total))
    return points


def _select_points(raw, tiers, start_ms, end_ms, baseline):
    """Oracle: recompute tier selection from the raw sample stream."""
    rings = []
    for stride, capacity in tiers:
        ring = [p for i, p in enumerate(raw) if i % stride == 0]
        rings.append(ring[-capacity:])
    chosen = None
    for ring in rings:
        if not ring:
            continue
        if ring[0][0] <= start_ms:
            chosen = ring
            break
        if chosen is None or ring[0][0] < chosen[0][0]:
            chosen = ring
    if chosen is None:
        return []
    selected = [p for p in chosen if start_ms <= p[0] <= end_ms]
    if baseline:
        before = [p for p in chosen if p[0] < start_ms]
        if before:
            selected.insert(0, before[-1])
    return selected


@settings(max_examples=60, deadline=None)
@given(
    deltas=st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=2,
                    max_size=120),
    func=st.sampled_from(sorted(WINDOW_FUNCS)),
    window=st.floats(min_value=10.0, max_value=2_000.0),
)
def test_downsampled_query_equals_raw_recompute(deltas, func, window):
    """Tiering is transparent: the tiered store answers every window
    query exactly as recomputing the same selection from the raw
    stream would — including windows old enough to fall off tier 0."""
    tiers = ((1, 16), (4, 32), (16, 64))
    raw = _monotone_counter(deltas)
    history = MetricsHistory(tiers)
    for ts, value in raw:
        history.record("c", "counter", ts, value)
    now_ms = raw[-1][0]
    expected = WINDOW_FUNCS[func](_select_points(
        raw, tiers, now_ms - window, now_ms,
        baseline=func in ("increase", "rate")))
    assert history.query(func, "c", window, now_ms) == \
        pytest.approx(expected)


@settings(max_examples=60, deadline=None)
@given(
    segments=st.lists(
        st.lists(st.floats(min_value=0.0, max_value=50.0,
                           allow_nan=False), min_size=1, max_size=20),
        min_size=1, max_size=5),
    window=st.floats(min_value=10.0, max_value=5_000.0),
)
def test_rate_never_negative_across_counter_resets(segments, window):
    """Each segment is one process lifetime; every boundary is a
    restart that resets the counter to zero.  No window may ever
    report negative growth."""
    history = MetricsHistory()
    ts = 0.0
    for segment in segments:
        total = 0.0
        for delta in segment:
            total += delta
            ts += 25.0
            history.record("c", "counter", ts, total)
    for now_ms in (ts, ts / 2, window):
        assert history.increase("c", window, now_ms) >= 0.0
        assert history.rate("c", window, now_ms) >= 0.0


# -- the scraper chore --------------------------------------------------------

def _scraper(interval_ms=250.0, charge_clock=True):
    registry = MetricsRegistry()
    events = EventLog()
    history = MetricsHistory(DEFAULT_TIERS)
    return registry, events, MetricsScraper(
        registry, events, history, interval_ms=interval_ms,
        charge_clock=charge_clock)


class TestMetricsScraper:
    def test_maybe_tick_is_interval_gated(self):
        registry, events, scraper = _scraper(interval_ms=100.0)
        registry.counter("c").inc()
        assert scraper.maybe_tick()
        assert not scraper.maybe_tick()  # clock has not moved
        events.advance(99.0)
        assert not scraper.maybe_tick()
        events.advance(2.0)
        assert scraper.maybe_tick()
        assert scraper.scrapes == 2

    def test_counters_and_gauges_recorded_with_kind(self):
        registry, events, scraper = _scraper()
        registry.counter("reqs").inc(3)
        registry.gauge("depth").set(7.0)
        scraper.tick()
        assert scraper.history.get("reqs").kind == "counter"
        assert scraper.history.get("depth").kind == "gauge"
        assert scraper.history.get("reqs").tier_points(0)[-1][1] == 3

    def test_histogram_explodes_into_exact_series(self):
        registry, events, scraper = _scraper()
        histogram = registry.histogram("lat", buckets=(10.0, 100.0))
        for value in (5.0, 50.0, 500.0):
            histogram.observe(value)
        scraper.tick()
        history = scraper.history
        assert history.get("lat_count").tier_points(0)[-1][1] == 3
        assert history.get("lat_sum").tier_points(0)[-1][1] == 555.0
        assert history.get("lat_bucket_le_10").tier_points(0)[-1][1] == 1
        assert history.get("lat_bucket_le_100").tier_points(0)[-1][1] == 2
        assert history.get("lat_p95") is not None

    def test_scrape_charges_the_shared_clock(self):
        registry, events, scraper = _scraper()
        registry.counter("c").inc()
        before = events.now_ms
        scraper.tick()
        assert events.now_ms > before
        assert scraper.total_scrape_ms == pytest.approx(
            events.now_ms - before)

    def test_uncharged_scraper_leaves_clock_alone(self):
        registry, events, scraper = _scraper(charge_clock=False)
        registry.counter("c").inc()
        scraper.tick()
        assert events.now_ms == 0.0
        assert scraper.total_scrape_ms > 0.0

    def test_scraper_reports_itself(self):
        registry, events, scraper = _scraper()
        registry.counter("c").inc()
        scraper.tick()
        assert registry.counter("monitor.scrapes").value == 1
        assert registry.gauge("monitor.series").value >= 1


# -- sys.metrics_history rows -------------------------------------------------

class TestHistoryRows:
    def test_rows_carry_adjacent_rate(self):
        history = MetricsHistory()
        history.record("c", "counter", 0.0, 0.0)
        history.record("c", "counter", 2_000.0, 10.0)
        rows = [r for r in history.rows("c") if r["tier"] == 0]
        assert rows[0]["rate_per_s"] is None
        assert rows[1]["rate_per_s"] == pytest.approx(5.0)

    def test_gauge_rows_have_no_rate(self):
        history = MetricsHistory()
        history.record("g", "gauge", 0.0, 1.0)
        history.record("g", "gauge", 1_000.0, 2.0)
        assert all(r["rate_per_s"] is None for r in history.rows("g"))

    def test_rows_filter_by_name_and_start(self):
        history = MetricsHistory()
        for ts in (0.0, 1_000.0, 2_000.0):
            history.record("a", "gauge", ts, ts)
            history.record("b", "gauge", ts, ts)
        rows = history.rows("a", start_ms=1_000.0)
        assert {r["name"] for r in rows} == {"a"}
        assert all(r["ts_ms"] >= 1_000.0 for r in rows)
