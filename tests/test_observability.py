"""Query observability: metrics registry, trace profiles, EXPLAIN ANALYZE,
slow-query log, cache lifecycle, and streaming-scan cancellation."""

import json

import pytest

from repro.errors import QueryTimeoutError
from repro.kvstore import KVStore, ScanSpec
from repro.kvstore.iostats import IOStats
from repro.kvstore.region import Region
from repro.observability.metrics import Counter, Histogram, MetricsRegistry
from repro.observability.profile import QueryProfile, analyze_rows
from repro.observability.slowlog import SlowQueryLog
from repro.resilience import Deadline, RequestContext
from repro.service.http import JustHttpServer
from repro.service.server import JustServer

from conftest import T0


# -- metrics registry ---------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        registry.counter("requests").inc(4)
        assert registry.counter("requests").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_labels_key_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("statements", status="ok").inc(3)
        registry.counter("statements", status="error").inc()
        snap = registry.snapshot()
        assert snap["statements{status=ok}"] == 3
        assert snap["statements{status=error}"] == 1

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("m", b="2", a="1").inc()
        registry.counter("m", a="1", b="2").inc()
        assert registry.counter("m", a="1", b="2").value == 2

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("in_flight")
        gauge.add(2)
        gauge.add(-1)
        assert gauge.value == 1
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_snapshot_is_json_safe_and_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.5)
        registry.counter("c").inc()
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert list(snap) == sorted(snap)

    def test_render_text_lines(self):
        registry = MetricsRegistry()
        registry.counter("kvstore.blocks_read").inc(6)
        text = registry.render_text()
        assert "kvstore.blocks_read 6" in text

    def test_histogram_suffix_attaches_before_labels(self):
        registry = MetricsRegistry()
        registry.histogram("scan_ms", op="scan").observe(4.0)
        lines = registry.render_text().splitlines()
        # Prometheus parsers only accept name-suffix-then-braces.
        assert "scan_ms_count{op=scan} 1" in lines
        assert "scan_ms_p95{op=scan} 4.0" in lines
        assert not any("}_p" in line or "}_c" in line for line in lines)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = registry.render_text()
        assert 'c{path=a\\"b\\\\c\\nd} 1' in text


class TestHistogramQuantiles:
    def test_exact_nearest_rank(self):
        h = Histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.count == 100
        assert h.sum == pytest.approx(5050.0)
        assert h.quantile(0.50) == 50.0
        assert h.quantile(0.95) == 95.0
        assert h.quantile(0.99) == 99.0
        assert h.p50 == 50.0 and h.p95 == 95.0 and h.p99 == 99.0

    def test_order_independent(self):
        h = Histogram("lat")
        for v in (9.0, 1.0, 5.0, 3.0, 7.0):
            h.observe(v)
        assert h.quantile(0.5) == 5.0
        assert h.quantile(1.0) == 9.0
        assert h.quantile(0.0) == 1.0

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.count == 0
        assert h.quantile(0.5) == 0.0

    def test_count_and_sum_survive_decimation(self):
        h = Histogram("lat", max_samples=64)
        n = 64 * 2 + 7
        for v in range(n):
            h.observe(float(v))
        # The sample buffer decimates, the exact aggregates don't.
        assert h.count == n
        assert h.sum == pytest.approx(sum(range(n)))
        assert 0.0 <= h.quantile(0.5) <= float(n - 1)
        assert h.quantile(1.0) == float(n - 1)

    def test_quantiles_track_a_shifting_distribution(self):
        h = Histogram("lat", max_samples=64)
        for _ in range(100):
            h.observe(10.0)
        assert h.p50 == 10.0
        for _ in range(300):
            h.observe(1000.0)
        assert h.count == 400
        assert h.sum == pytest.approx(100 * 10.0 + 300 * 1000.0)
        # Stride-based retention keeps admitting fresh samples after
        # the buffer overflows, so quantiles follow the new regime
        # (a "keep the first half" decimation would pin them at 10.0)
        assert h.p50 == 1000.0
        assert h.p95 == 1000.0
        # ... while the old regime stays visible at the low tail.
        assert h.quantile(0.0) == 10.0


# -- trace profiles -----------------------------------------------------------

class TestQueryProfile:
    def test_span_nesting(self):
        profile = QueryProfile(statement="SELECT 1", user="alice")
        with profile.span("Project", kind="operator"):
            with profile.span("Scan", kind="operator"):
                profile.add_event("RegionScan[r0]", kind="region_scan",
                                  rows=3)
            assert profile.current.name == "Project"
        depths = {span.name: depth for depth, span in profile.root.walk()}
        assert depths["statement"] == 0
        assert depths["Project"] == 1
        assert depths["Scan"] == 2
        assert depths["RegionScan[r0]"] == 3

    def test_add_event_does_not_push(self):
        profile = QueryProfile()
        with profile.span("op", kind="operator"):
            profile.add_event("leaf")
            assert profile.current.name == "op"
        assert profile.current is profile.root

    def test_span_pops_on_error(self):
        profile = QueryProfile()
        with pytest.raises(RuntimeError):
            with profile.span("op"):
                raise RuntimeError("boom")
        assert profile.current is profile.root

    def test_finish_seals_root(self):
        profile = QueryProfile(statement="q")
        profile.finish(123.4, rows=7)
        assert profile.sim_ms == 123.4
        assert profile.root.attrs["rows"] == 7

    def test_cache_hit_rate(self):
        profile = QueryProfile()
        span = profile.add_event("s", blocks_read=1, cache_hits=3)
        assert span.cache_hit_rate == pytest.approx(0.75)
        untouched = profile.add_event("t")
        assert untouched.cache_hit_rate is None

    def test_analyze_rows_filters_and_indents(self):
        profile = QueryProfile()
        with profile.span("Project", kind="operator", rows_out=5):
            profile.add_event("internal", kind="event")  # not reported
            with profile.span("Scan", kind="operator", rows_out=9):
                profile.add_event("RegionScan[r1]", kind="region_scan",
                                  rows=9, blocks_read=2, cache_hits=2)
        rows = analyze_rows(profile)
        assert [r["operator"] for r in rows] == \
            ["Project", "  Scan", "    RegionScan[r1]"]
        assert rows[2]["cache_hit_rate"] == pytest.approx(0.5)

    def test_as_dict_json_safe(self):
        profile = QueryProfile(statement="q", user="u")
        with profile.span("op", kind="operator"):
            pass
        profile.finish(1.0)
        dumped = profile.as_dict()
        assert json.loads(json.dumps(dumped)) == dumped


class TestSlowQueryLog:
    def test_threshold_and_ring(self):
        log = SlowQueryLog(threshold_ms=100.0, capacity=2)
        assert log.observe("fast", "u", 99.9) is None
        for i in range(3):
            assert log.observe(f"slow{i}", "u", 150.0 + i) is not None
        assert log.total_logged == 3
        assert [e.statement for e in log.entries()] == ["slow1", "slow2"]

    def test_disabled_log(self):
        log = SlowQueryLog(threshold_ms=None)
        assert not log.enabled
        assert log.observe("q", "u", 1e9) is None


# -- EXPLAIN ANALYZE (acceptance) --------------------------------------------

ST_QUERY = ("SELECT fid FROM poi WHERE geom WITHIN "
            "st_makeMBR(116.1, 39.85, 116.25, 39.95) "
            f"AND time BETWEEN {T0} AND {T0 + 86400}")


class TestExplainAnalyze:
    def test_plain_explain_still_returns_plan_text(self, poi_engine):
        rs = poi_engine.sql("EXPLAIN " + ST_QUERY)
        assert rs.columns == ["plan"]
        assert any("Scan" in r["plan"] for r in rs.rows)

    def test_every_operator_reports_counters(self, poi_engine):
        poi_engine.table("poi").flush()  # read path must touch blocks
        rs = poi_engine.sql("EXPLAIN ANALYZE " + ST_QUERY)
        assert rs.columns == ["operator", "rows", "batches",
                              "blocks_read", "cache_hits",
                              "cache_hit_rate", "sim_ms"]
        rows = rs.rows
        assert len(rows) >= 2  # at least Project + Scan
        names = [r["operator"] for r in rows]
        assert any("Project" in n for n in names)
        assert any("Scan[" in n for n in names)
        assert any("RegionScan[" in n for n in names)
        for r in rows:
            assert isinstance(r["rows"], int)
            assert isinstance(r["batches"], int)
            assert isinstance(r["blocks_read"], int)
            assert isinstance(r["cache_hits"], int)
            assert isinstance(r["sim_ms"], float)
        top = rows[0]
        assert top["sim_ms"] > 0
        # The vectorized scan reports how many source batches it pulled.
        scan = next(r for r in rows if "Scan[" in r["operator"])
        assert scan["batches"] > 0
        # The flushed table forces real block I/O somewhere in the tree.
        assert sum(r["blocks_read"] + r["cache_hits"] for r in rows) > 0

    def test_matches_plain_select_rows(self, poi_engine):
        expected = len(poi_engine.sql(ST_QUERY))
        rs = poi_engine.sql("EXPLAIN ANALYZE " + ST_QUERY)
        assert rs.rows[0]["rows"] == expected

    def test_second_run_hits_cache(self, poi_engine):
        poi_engine.table("poi").flush()
        poi_engine.sql("EXPLAIN ANALYZE " + ST_QUERY)  # warm the cache
        rs = poi_engine.sql("EXPLAIN ANALYZE " + ST_QUERY)
        assert sum(r["cache_hits"] for r in rs.rows) > 0


# -- service-layer observability ---------------------------------------------

def _run_workload(server, statements, user="alice"):
    session = server.connect(user)
    for statement in statements:
        server.execute(session, statement)


WORKLOAD = [
    "CREATE TABLE t (fid integer:primary key, v double)",
    "INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5)",
    "SELECT fid FROM t WHERE v > 2.0",
]


class TestServerObservability:
    def test_statement_metrics(self):
        server = JustServer()
        _run_workload(server, WORKLOAD)
        snap = server.metrics_snapshot()
        assert snap["server.statements{status=ok}"] == 3
        assert snap["server.statement_sim_ms"]["count"] == 3
        assert "kvstore.cache_hit_ratio" in snap
        assert snap["admission.admitted"] == 3

    def test_error_statements_counted(self):
        server = JustServer()
        session = server.connect("alice")
        with pytest.raises(Exception):
            server.execute(session, "SELECT nope FROM missing")
        assert server.metrics_snapshot()[
            "server.statements{status=error}"] == 1

    def test_profiles_recorded_per_statement(self):
        server = JustServer()
        _run_workload(server, WORKLOAD)
        profiles = server.recent_profiles()
        assert len(profiles) == 3
        select = profiles[-1]
        assert select.statement == WORKLOAD[-1]
        assert select.user == "alice"
        assert select.sim_ms > 0
        assert select.operator_spans()  # SELECT traced its operators

    def test_slow_query_log_captures_trace(self):
        server = JustServer(slow_query_ms=0.001)
        _run_workload(server, WORKLOAD)
        entries = server.slow_queries()
        assert entries  # everything is over a ~0 threshold
        assert entries[-1]["statement"] == WORKLOAD[-1]
        assert entries[-1]["profile"]["trace"]["name"] == "statement"
        assert entries[-1]["breakdown"]  # job cost attribution rode along

    def test_slow_query_log_disabled(self):
        server = JustServer(slow_query_ms=None)
        _run_workload(server, WORKLOAD)
        assert server.slow_queries() == []

    def test_http_metrics_endpoint(self):
        http = JustHttpServer(JustServer(slow_query_ms=0.001))
        session = http.handle({"path": "/connect", "user": "bob"})["session"]
        for statement in WORKLOAD:
            http.handle({"path": "/execute", "session": session,
                         "sql": statement})
        response = http.handle({"path": "/metrics"})
        assert response["metrics"]["server.statements{status=ok}"] == 3
        assert response["slow_queries"]
        assert json.loads(json.dumps(response)) == response

    def test_http_profile_endpoint(self):
        http = JustHttpServer(JustServer())
        session = http.handle({"path": "/connect", "user": "bob"})["session"]
        for statement in WORKLOAD:
            http.handle({"path": "/execute", "session": session,
                         "sql": statement})
        response = http.handle({"path": "/profile", "limit": 2})
        assert len(response["profiles"]) == 2
        assert response["profiles"][-1]["trace"]["name"] == "statement"


# -- block-cache lifecycle (leak regression) ---------------------------------

def small_store(**kwargs):
    defaults = dict(num_servers=3, flush_bytes=4 * 1024,
                    split_bytes=64 * 1024, block_bytes=1024)
    defaults.update(kwargs)
    return KVStore(**defaults)


def _cached_sstable_ids(store):
    ids = set()
    for server in range(store.num_servers):
        for key in store.cache_for(server)._entries:
            ids.add(key[1])
    return ids


def _live_sstable_ids(table):
    return {sstable.sstable_id
            for region in table._regions
            for sstable in region.sstables}


class TestBlockCacheLifecycle:
    def test_compaction_evicts_dead_sstable_blocks(self):
        store = small_store()
        table = store.create_table("t")
        for i in range(200):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        table.flush()
        list(table.scan(ScanSpec.full()))  # populate the cache
        for i in range(200, 400):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        table.flush()
        list(table.scan(ScanSpec.full()))
        assert _cached_sstable_ids(store)
        table.compact()
        # No dead SSTable may keep blocks cached after compaction.
        assert _cached_sstable_ids(store) <= _live_sstable_ids(table)

    def test_used_bytes_only_counts_live_sstables(self):
        store = small_store()
        table = store.create_table("t")
        for i in range(300):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        table.flush()
        list(table.scan(ScanSpec.full()))
        table.compact()
        list(table.scan(ScanSpec.full()))  # re-cache the live run
        live_bytes = sum(region.disk_bytes for region in table._regions)
        used = sum(store.cache_for(s).used_bytes
                   for s in range(store.num_servers))
        assert 0 < used <= live_bytes

    def test_hit_ratio_correct_across_flush_compact_cycle(self):
        store = small_store()
        table = store.create_table("t")
        for i in range(300):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        table.flush()
        list(table.scan(ScanSpec.full()))  # cold: disk reads
        list(table.scan(ScanSpec.full()))  # warm: cache hits
        warm_hits = store.stats.cache_hits
        assert warm_hits > 0
        for i in range(300, 500):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        table.flush()
        table.compact()
        before = store.stats.snapshot()
        list(table.scan(ScanSpec.full()))  # compacted run is cold again
        delta = store.stats.snapshot().delta(before)
        assert delta.blocks_read > 0
        assert delta.cache_hits == 0  # stale blocks cannot fake hits
        before = store.stats.snapshot()
        list(table.scan(ScanSpec.full()))
        delta = store.stats.snapshot().delta(before)
        assert delta.blocks_read == 0
        assert delta.cache_hits > 0

    def test_split_evicts_parent_blocks(self):
        store = small_store(split_bytes=8 * 1024)
        table = store.create_table("t")
        for i in range(100):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        table.flush()
        list(table.scan(ScanSpec.full()))
        for i in range(100, 2000):  # push past the split threshold
            table.put(f"{i:04d}".encode(), b"v" * 60)
        assert table.num_regions > 1
        assert _cached_sstable_ids(store) <= _live_sstable_ids(table)

    def test_failover_leaves_no_stale_cached_blocks(self):
        store = small_store(wal_policy="sync")
        table = store.create_table("t")
        for i in range(300):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        table.flush()
        list(table.scan(ScanSpec.full()))  # cache blocks on the host
        victim = table.regions()[0].server
        store.crash_server(victim)
        # The dead server's cache was cleared and the survivors hold no
        # blocks for regions they just inherited cold.
        assert _cached_sstable_ids(store) <= _live_sstable_ids(table)
        assert store.cache_for(victim).used_bytes == 0
        # The rehomed region still reads correctly (cold, then cached).
        assert len(list(table.scan(ScanSpec.full()))) == 300

    def test_drop_table_releases_cache(self):
        store = small_store()
        table = store.create_table("t")
        for i in range(200):
            table.put(f"{i:04d}".encode(), b"v" * 60)
        table.flush()
        list(table.scan(ScanSpec.full()))
        store.drop_table("t")
        assert not _cached_sstable_ids(store)


# -- streaming scan: cancellation and precedence ------------------------------

def make_region(**kwargs):
    defaults = dict(start_key=b"", end_key=None, stats=IOStats(),
                    flush_bytes=1 << 30, block_bytes=256)
    defaults.update(kwargs)
    return Region(**defaults)


class TestStreamingScan:
    def test_deadline_aborts_mid_merge(self):
        region = make_region()
        for i in range(2000):
            region.put(f"{i:05d}".encode(), b"v" * 40)
        region.flush()
        deadline = Deadline(1.0)
        deadline.charge(2.0)  # pre-expired: the first check trips
        ctx = RequestContext(deadline=deadline)
        stats = region._stats
        consumed = []
        with pytest.raises(QueryTimeoutError):
            for key, _value in region.scan(b"", None, None, ctx=ctx):
                consumed.append(key)
        # The merge really was abandoned partway: at most one
        # cancellation window of rows came out, and the lazy block
        # charging stopped with it.
        assert len(consumed) <= Region.CANCEL_CHECK_ROWS
        assert stats.blocks_read < region.sstables[0].num_blocks

    def test_merge_is_streaming_not_materialized(self):
        region = make_region()
        for i in range(2000):
            region.put(f"{i:05d}".encode(), b"v" * 40)
        region.flush()
        stats = region._stats
        iterator = region.scan(b"", None, None)
        for _ in range(10):
            next(iterator)
        iterator.close()
        # An early stop must not have paid for the whole run.
        assert stats.blocks_read < region.sstables[0].num_blocks

    def test_newest_wins_across_runs_and_memstore(self):
        region = make_region()
        region.put(b"a", b"old")
        region.put(b"b", b"keep")
        region.flush()
        region.put(b"a", b"mid")
        region.put(b"c", b"dead")
        region.flush()
        region.put(b"a", b"new")   # memstore beats both runs
        region.put(b"c", None)     # memstore tombstone masks the run
        rows = dict(region.scan(b"", None, None))
        assert rows == {b"a": b"new", b"b": b"keep"}

    def test_tombstone_in_newer_run_masks_older(self):
        region = make_region()
        region.put(b"x", b"v1")
        region.flush()
        region.put(b"x", None)
        region.flush()
        assert list(region.scan(b"", None, None)) == []


# -- histogram buckets and exemplars ------------------------------------------

class TestHistogramBuckets:
    def test_bucket_counts_are_cumulative(self):
        h = Histogram("lat", buckets=(10.0, 100.0, 1000.0))
        for v in (5.0, 7.0, 50.0, 500.0, 5000.0):
            h.observe(v)
        assert h.bucket_counts() == [(10.0, 2), (100.0, 3),
                                     (1000.0, 4)]
        assert h.count == 5  # the +Inf bucket is the exact count

    def test_boundary_lands_in_its_le_bucket(self):
        h = Histogram("lat", buckets=(10.0,))
        h.observe(10.0)  # le means <=
        assert h.bucket_counts() == [(10.0, 1)]

    def test_unbucketed_histogram_has_no_bucket_series(self):
        h = Histogram("lat")
        h.observe(1.0)
        assert h.bucket_counts() == []
        assert "buckets" not in h.as_dict()

    def test_as_dict_exposes_buckets_by_bound(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        h.observe(5.0)
        assert h.as_dict()["buckets"] == {"10": 1, "100": 1}

    def test_exemplar_above_names_the_latest_offender(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        h.observe(5.0, exemplar="fast")
        h.observe(50.0, exemplar="slow-1")
        h.observe(5000.0, exemplar="very-slow")
        h.observe(60.0, exemplar="slow-2")
        assert h.exemplar_above(10.0) == "slow-2"
        assert h.exemplar_above(100.0) == "very-slow"
        assert h.last_exemplar == "slow-2"

    def test_exemplar_above_without_offenders(self):
        h = Histogram("lat", buckets=(10.0,))
        h.observe(5.0, exemplar="fast")
        assert h.exemplar_above(10.0) is None

    def test_quantile_view_sorts_once_until_dirty(self, monkeypatch):
        import repro.observability.metrics as metrics_mod
        calls = []
        builtin_sorted = sorted

        def counting_sorted(*args, **kwargs):
            calls.append(1)
            return builtin_sorted(*args, **kwargs)

        monkeypatch.setattr(metrics_mod, "sorted", counting_sorted,
                            raising=False)
        h = metrics_mod.Histogram("lat")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        h.as_dict()  # p50 + p95 + p99: one sort, cached view reused
        assert len(calls) == 1
        h.quantile(0.5)
        assert len(calls) == 1
        h.observe(9.0)  # new sample dirties the cache
        h.quantile(0.5)
        assert len(calls) == 2


# -- Prometheus exposition round-trip -----------------------------------------

def parse_prometheus_text(text):
    """Minimal Prometheus text-format parser: types, helps, samples."""
    types, helps, samples = {}, {}, {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            name, kind = line[len("# TYPE "):].rsplit(" ", 1)
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            name, help_text = line[len("# HELP "):].split(" ", 1)
            helps[name] = help_text.replace("\\n", "\n") \
                .replace("\\\\", "\\")
            continue
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return types, helps, samples


class TestPrometheusExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.describe("reqs", "requests served")
        registry.counter("reqs", status="ok").inc(3)
        registry.gauge("depth").set(2.5)
        registry.histogram("lat", buckets=(10.0, 100.0),
                           op="scan").observe(50.0)
        return registry

    def test_every_base_name_gets_one_type_line(self):
        types, helps, samples = parse_prometheus_text(
            self._registry().render_text())
        assert types == {"reqs": "counter", "depth": "gauge",
                         "lat": "histogram"}
        assert helps == {"reqs": "requests served"}

    def test_samples_round_trip(self):
        types, helps, samples = parse_prometheus_text(
            self._registry().render_text())
        assert samples["reqs{status=ok}"] == 3
        assert samples["depth"] == 2.5
        assert samples["lat_count{op=scan}"] == 1
        assert samples["lat_bucket{op=scan,le=10}"] == 0
        assert samples["lat_bucket{op=scan,le=100}"] == 1
        assert samples["lat_bucket{op=scan,le=+Inf}"] == 1

    def test_buckets_are_monotone_and_capped_by_count(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        _, _, samples = parse_prometheus_text(registry.render_text())
        bounds = ["1", "10", "100", "+Inf"]
        counts = [samples[f"lat_bucket{{le={b}}}"] for b in bounds]
        assert counts == sorted(counts)
        assert counts[-1] == samples["lat_count"]

    def test_help_escapes_newlines(self):
        registry = MetricsRegistry()
        registry.describe("m", "line one\nline two")
        registry.counter("m").inc()
        text = registry.render_text()
        assert "# HELP m line one\\nline two" in text
        _, helps, _ = parse_prometheus_text(text)
        assert helps["m"] == "line one\nline two"

    def test_every_line_parses(self):
        # No stray stat suffixes after label braces, no unparsable rows.
        text = self._registry().render_text()
        types, helps, samples = parse_prometheus_text(text)
        assert len(samples) == 2 + 6 + 3  # scalars + hist stats + buckets
        assert not any("}_p" in line or "}_c" in line
                       for line in text.splitlines())


# -- OTel-shaped trace identity -----------------------------------------------

class TestTraceIds:
    def test_profiles_get_unique_trace_ids(self):
        a, b = QueryProfile("SELECT 1", "u"), QueryProfile("SELECT 2", "u")
        assert len(a.trace_id) == 32 and len(b.trace_id) == 32
        assert a.trace_id != b.trace_id

    def test_spans_chain_parent_ids(self):
        profile = QueryProfile("q", "u")
        root = profile.root
        assert root.parent_id == ""
        with profile.span("scan") as scan:
            assert scan.parent_id == root.span_id
            with profile.span("filter") as child:
                assert child.parent_id == scan.span_id
        assert len(root.span_id) == 16

    def test_as_dict_carries_ids(self):
        profile = QueryProfile("q", "u")
        with profile.span("scan"):
            pass
        profile.finish(1.0)
        data = profile.as_dict()
        assert data["trace_id"] == profile.trace_id
        assert data["trace"]["span_id"]
        child = data["trace"]["children"][0]
        assert child["parent_id"] == data["trace"]["span_id"]

    def test_slow_log_entries_link_back_to_the_trace(self):
        server = JustServer(slow_query_ms=0.001)
        _run_workload(server, WORKLOAD)
        entries = server.slow_queries()
        profiles = {p.trace_id for p in server.recent_profiles()}
        assert entries
        for entry in entries:
            assert entry["trace_id"] in profiles

    def test_statement_histogram_keeps_a_slow_exemplar(self):
        server = JustServer()
        _run_workload(server, WORKLOAD)
        histogram = server.metrics._metrics["server.statement_sim_ms"]
        assert histogram.last_exemplar in \
            {p.trace_id for p in server.recent_profiles()}
