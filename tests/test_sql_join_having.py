"""JOIN, HAVING and EXPLAIN through the SQL front end."""

import pytest

from repro import Point
from repro.errors import AnalysisError

from conftest import T0


@pytest.fixture
def joined_engine(engine):
    engine.sql("CREATE TABLE poi (fid integer:primary key, name string, "
               "time date, geom point)")
    engine.sql("CREATE TABLE cats (cid string:primary key, label string)")
    engine.insert("poi", [
        {"fid": i, "name": f"poi{i % 3}", "time": T0 + i,
         "geom": Point(116.0 + i * 0.01, 39.9)} for i in range(9)])
    engine.insert("cats", [
        {"cid": f"poi{i}", "label": f"Category {i}"} for i in range(2)])
    return engine


class TestJoin:
    def test_inner_join(self, joined_engine):
        rs = joined_engine.sql(
            "SELECT fid, name, label FROM poi JOIN cats ON name = cid "
            "ORDER BY fid")
        # poi2 rows have no category: 6 of 9 rows survive.
        assert len(rs) == 6
        assert rs.rows[0]["label"] == "Category 0"

    def test_left_join_keeps_unmatched(self, joined_engine):
        rs = joined_engine.sql(
            "SELECT fid, label FROM poi LEFT JOIN cats ON name = cid "
            "ORDER BY fid")
        assert len(rs) == 9
        labels = [r["label"] for r in rs.rows]
        assert labels.count(None) == 3

    def test_join_with_where_pushdown(self, joined_engine):
        rs = joined_engine.sql(
            "SELECT fid FROM poi JOIN cats ON name = cid "
            "WHERE fid < 3 AND label = 'Category 1' ORDER BY fid")
        assert [r["fid"] for r in rs.rows] == [1]

    def test_join_subquery_source(self, joined_engine):
        rs = joined_engine.sql(
            "SELECT fid, label FROM poi JOIN "
            "(SELECT cid, label FROM cats WHERE label LIKE '%0') c "
            "ON name = cid")
        assert {r["label"] for r in rs.rows} == {"Category 0"}

    def test_join_then_aggregate(self, joined_engine):
        rs = joined_engine.sql(
            "SELECT label, count(*) AS cnt FROM poi JOIN cats "
            "ON name = cid GROUP BY label ORDER BY label")
        assert rs.rows == [{"label": "Category 0", "cnt": 3},
                           {"label": "Category 1", "cnt": 3}]

    def test_unknown_join_column(self, joined_engine):
        with pytest.raises(AnalysisError):
            joined_engine.sql(
                "SELECT fid FROM poi JOIN cats ON ghost = cid")

    def test_join_on_view(self, joined_engine):
        joined_engine.sql("CREATE VIEW vcats AS SELECT * FROM cats")
        rs = joined_engine.sql(
            "SELECT fid FROM poi JOIN vcats ON name = cid")
        assert len(rs) == 6


class TestHaving:
    def test_having_filters_groups(self, joined_engine):
        rs = joined_engine.sql(
            "SELECT name, count(*) AS cnt FROM poi GROUP BY name "
            "HAVING cnt > 2 ORDER BY name")
        assert all(r["cnt"] == 3 for r in rs.rows)
        rs = joined_engine.sql(
            "SELECT name, count(*) AS cnt FROM poi GROUP BY name "
            "HAVING cnt > 5")
        assert len(rs) == 0

    def test_having_on_aggregate_expression(self, joined_engine):
        rs = joined_engine.sql(
            "SELECT name, max(fid) AS top FROM poi GROUP BY name "
            "HAVING top >= 8")
        assert [r["name"] for r in rs.rows] == ["poi2"]

    def test_having_unknown_column(self, joined_engine):
        with pytest.raises(AnalysisError):
            joined_engine.sql(
                "SELECT name, count(*) AS cnt FROM poi GROUP BY name "
                "HAVING ghost > 1")


class TestExplain:
    def test_explain_returns_plan_rows(self, joined_engine):
        rs = joined_engine.sql(
            "EXPLAIN SELECT name FROM poi WHERE fid = 2 * 3")
        text = "\n".join(r["plan"] for r in rs.rows)
        assert "Scan[poi]" in text
        assert "Project[name]" in text

    def test_explain_shows_join(self, joined_engine):
        rs = joined_engine.sql(
            "EXPLAIN SELECT fid FROM poi JOIN cats ON name = cid")
        text = "\n".join(r["plan"] for r in rs.rows)
        assert "Join[inner on name = cid]" in text
