"""JustQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)[:-1]]


def test_keywords_case_insensitive():
    assert kinds("SELECT select SeLeCt") == [
        ("keyword", "SELECT"), ("keyword", "select"),
        ("keyword", "SeLeCt")]


def test_identifiers():
    assert kinds("st_makeMBR poi_2 _x") == [
        ("ident", "st_makeMBR"), ("ident", "poi_2"), ("ident", "_x")]


def test_numbers():
    assert kinds("1 2.5 .5 1e3 2.5E-2") == [
        ("number", "1"), ("number", "2.5"), ("number", ".5"),
        ("number", "1e3"), ("number", "2.5E-2")]


def test_strings_and_escapes():
    assert kinds("'hello' \"world\" 'it''s'") == [
        ("string", "hello"), ("string", "world"), ("string", "it's")]


def test_unterminated_string():
    with pytest.raises(ParseError):
        tokenize("SELECT 'oops")


def test_symbols():
    assert [t.text for t in tokenize("<= >= != <> :: ( ) , = | *")[:-1]] \
        == ["<=", ">=", "!=", "<>", "::", "(", ")", ",", "=", "|", "*"]


def test_comments_skipped():
    tokens = kinds("SELECT 1 -- trailing comment\n, 2")
    assert tokens == [("keyword", "SELECT"), ("number", "1"),
                      ("symbol", ","), ("number", "2")]


def test_unexpected_character():
    with pytest.raises(ParseError):
        tokenize("SELECT @")


def test_positions_recorded():
    tokens = tokenize("SELECT a")
    assert tokens[0].position == 0
    assert tokens[1].position == 7


def test_end_token():
    assert tokenize("x")[-1].kind == "end"
