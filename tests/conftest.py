"""Shared fixtures: a small engine and deterministic datasets."""

from __future__ import annotations

import random

import pytest

from repro import JustEngine, Point, Schema, Field, FieldType
from repro.datagen import generate_order_dataset, generate_traj_dataset

POI_SCHEMA_FIELDS = [
    Field("fid", FieldType.INTEGER, primary_key=True),
    Field("name", FieldType.STRING),
    Field("time", FieldType.DATE),
    Field("geom", FieldType.POINT),
]

#: Default spatio-temporal extent of the fixture points.
T0 = 1_500_000_000.0


def make_poi_rows(n: int = 500, seed: int = 11) -> list[dict]:
    rng = random.Random(seed)
    return [{
        "fid": i,
        "name": f"poi{i % 10}",
        "time": T0 + rng.random() * 86400 * 5,
        "geom": Point(116.0 + rng.random() * 0.5,
                      39.8 + rng.random() * 0.3),
    } for i in range(n)]


@pytest.fixture
def engine() -> JustEngine:
    return JustEngine()


@pytest.fixture
def poi_rows() -> list[dict]:
    return make_poi_rows()


@pytest.fixture
def poi_engine(engine, poi_rows) -> JustEngine:
    """An engine with a populated point table named ``poi``."""
    engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
    engine.insert("poi", poi_rows)
    return engine


@pytest.fixture(scope="session")
def small_orders() -> list[dict]:
    return generate_order_dataset(2_000, seed=7)


@pytest.fixture(scope="session")
def small_trajs():
    return generate_traj_dataset(40, 80, seed=7)
