"""Optimizer soundness: optimized plans return the same rows.

For a grid of generated SELECT statements, executing the *analyzed* plan
and the *optimized* plan must produce identical multisets of rows — the
optimizer may only change cost, never semantics.
"""

import pytest

from repro.sql.analyzer import analyze_select
from repro.sql.optimizer import optimize
from repro.sql.parser import parse_statement
from repro.sql.physical import execute_plan

from conftest import T0

STATEMENTS = [
    "SELECT * FROM poi",
    "SELECT name FROM poi WHERE fid = 52*9",
    "SELECT fid, name FROM poi WHERE fid < 100 AND name = 'poi3'",
    "SELECT name, geom FROM (SELECT * FROM poi) t "
    "WHERE geom WITHIN st_makeMBR(116.1, 39.85, 116.3, 40.0) "
    "ORDER BY time",
    f"SELECT fid FROM poi WHERE time BETWEEN {T0} AND {T0 + 86400} "
    f"ORDER BY fid DESC LIMIT 10",
    "SELECT alias FROM (SELECT name AS alias, fid FROM poi) t "
    "WHERE alias LIKE 'poi1%' AND fid > 50",
    "SELECT name, count(*) AS cnt FROM poi GROUP BY name ORDER BY name",
    "SELECT DISTINCT name FROM poi WHERE fid % 2 = 0",
    "SELECT upper(name) AS caps FROM poi LIMIT 7",
    "SELECT fid FROM (SELECT fid, name FROM poi WHERE fid < 200) t "
    "WHERE name != 'poi0'",
]


def canonical(rows):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items()))
        for row in rows)


@pytest.mark.parametrize("statement", STATEMENTS)
def test_optimized_plan_equivalent(poi_engine, statement):
    stmt = parse_statement(statement)
    analyzed = analyze_select(poi_engine, stmt)
    optimized = optimize(analyze_select(poi_engine, stmt))

    raw = execute_plan(analyzed, poi_engine,
                       poi_engine.cluster.job()).collect()
    opt = execute_plan(optimized, poi_engine,
                       poi_engine.cluster.job()).collect()

    if "LIMIT" in statement and "ORDER BY" not in statement:
        # Unordered LIMIT is nondeterministic by SQL semantics; compare
        # cardinality and schema only.
        assert len(raw) == len(opt)
        if raw:
            assert set(raw[0]) == set(opt[0])
    else:
        assert canonical(raw) == canonical(opt)


def test_optimizer_reduces_scanned_bytes():
    """Pushdown must translate into fewer bytes read from the store.

    Uses fine-grained blocks so the comparison reflects rows touched
    rather than block-size rounding.
    """
    from repro import JustEngine, Schema
    from conftest import POI_SCHEMA_FIELDS, make_poi_rows

    engine = JustEngine(block_bytes=128)
    engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
    engine.insert("poi", make_poi_rows(500))
    engine.table("poi").flush()
    statement = ("SELECT name FROM (SELECT * FROM poi) t WHERE "
                 "geom WITHIN st_makeMBR(116.1, 39.85, 116.15, 39.9)")
    stmt = parse_statement(statement)

    def scanned(plan_builder):
        engine.store.clear_caches()
        before = engine.store.stats.snapshot()
        execute_plan(plan_builder(), engine, engine.cluster.job())
        return engine.store.stats.snapshot().delta(
            before).disk_bytes_read

    unoptimized = scanned(lambda: analyze_select(engine, stmt))
    optimized = scanned(lambda: optimize(analyze_select(engine, stmt)))
    assert optimized < unoptimized
