"""The load balancer: policy aggregation, planning, and execution.

The acceptance property: a region the balancer has moved keeps serving
reads correctly even after its *new* server crashes and fails over —
placement changes must compose with crash recovery.
"""

import pytest

from repro import JustEngine
from repro.balancer import (
    Balancer,
    BalancerPolicy,
    imbalance,
    plan_merges,
    plan_moves,
    plan_splits,
    server_loads,
)
from repro.errors import RegionUnavailableError, SchemaError
from repro.kvstore import KVStore, ScanSpec, SyncPolicy
from repro.service.http import JustHttpServer
from repro.service.server import JustServer


def small_store(**kwargs):
    defaults = dict(num_servers=3, flush_bytes=4 * 1024,
                    split_bytes=64 * 1024 * 1024, block_bytes=1024)
    defaults.update(kwargs)
    return KVStore(**defaults)


def heat(region, writes, now_ms=0.0):
    """Give a region a write rate of ``writes / 30`` events/s."""
    for _ in range(writes):
        region.write_rate.record(now_ms)


# -- policy: per-server load aggregation --------------------------------------

class TestServerLoads:
    def test_every_placeable_server_gets_an_entry(self):
        store = small_store()
        store.create_table("t")
        loads = server_loads(store)
        assert set(loads) == set(store.placeable_servers)
        # The empty servers report zero load — they are the receivers.
        assert sum(load.regions for load in loads.values()) == 1

    def test_aggregates_counters_and_rates_per_server(self):
        store = small_store(num_servers=2)
        a = store.create_table("a")  # region on server 0
        b = store.create_table("b")  # region on server 1
        for i in range(50):
            a.put(f"k{i:04d}".encode(), b"v" * 20)
        for i in range(10):
            b.put(f"k{i:04d}".encode(), b"v" * 20)
        loads = server_loads(store)
        assert loads[0].writes == 50 and loads[1].writes == 10
        assert loads[0].bytes == a.total_bytes
        assert loads[0].write_rate > loads[1].write_rate > 0.0
        policy = BalancerPolicy(write_weight=1.0, read_weight=0.0)
        assert imbalance(loads, policy) > 1.5

    def test_recovering_servers_are_excluded(self):
        store = small_store()
        store.create_table("t")  # region on server 0
        store.recovering_servers.add(0)
        loads = server_loads(store)
        assert 0 not in loads
        assert sum(load.regions for load in loads.values()) == 0

    def test_idle_cluster_reports_balanced(self):
        store = small_store()
        store.create_table("t")
        assert imbalance(server_loads(store), BalancerPolicy()) == 1.0


class TestNextServerSkipsRecovering:
    def test_regression_recovering_server_not_a_placement_target(self):
        # Regression: next_server skipped dead servers but not
        # recovering ones, so a region could be placed on a
        # crashed-but-not-failed-over server and be born unavailable.
        store = small_store()
        store.recovering_servers.add(1)
        picks = {store.next_server() for _ in range(10)}
        assert 1 not in picks
        assert picks == {0, 2}


# -- planner ------------------------------------------------------------------

class TestPlanMoves:
    def test_moves_hot_regions_off_the_loaded_server(self):
        store = small_store(num_servers=2)
        hot = store.create_table("hot")       # server 0
        cold = store.create_table("cold")     # server 1
        warm = store.create_table("warm")     # server 0 again
        heat(hot.regions()[0], 300)           # 10/s
        heat(cold.regions()[0], 90)           # 3/s
        heat(warm.regions()[0], 60)           # 2/s
        policy = BalancerPolicy(imbalance_ratio=1.2)
        moves = plan_moves(store, policy, server_loads(store), 0.0)
        assert moves
        assert all(m.source == 0 and m.dest == 1 for m in moves)
        # The whole hotspot (rate >= the donor/receiver gap) stays put;
        # the warm region is what actually fixes the imbalance.
        assert moves[0].table == "warm"

    def test_balanced_cluster_plans_nothing(self):
        store = small_store(num_servers=2)
        heat(store.create_table("a").regions()[0], 100)
        heat(store.create_table("b").regions()[0], 100)
        moves = plan_moves(store, BalancerPolicy(),
                           server_loads(store), 0.0)
        assert moves == []

    def test_move_count_is_bounded(self):
        store = small_store(num_servers=2)
        for i in range(8):
            table = store.create_table(f"t{i}")
            region = table.regions()[0]
            region.server = 0  # pile everything onto one server
            heat(region, 30 * (i + 1))
        policy = BalancerPolicy(imbalance_ratio=1.05,
                                max_moves_per_run=3)
        moves = plan_moves(store, policy, server_loads(store), 0.0)
        assert 0 < len(moves) <= 3


class TestPlanSplits:
    def test_write_hot_regions_split_hottest_first(self):
        store = small_store()
        hot = store.create_table("hot")
        mild = store.create_table("mild")
        for i in range(80):
            hot.put(f"k{i:04d}".encode(), b"v" * 50)
            if i % 4 == 0:
                mild.put(f"k{i:04d}".encode(), b"v" * 50)
        policy = BalancerPolicy(split_write_rate=0.5,
                                split_min_bytes=256,
                                max_splits_per_run=1)
        splits = plan_splits(store, policy, 0.0)
        assert [s.table for s in splits] == ["hot"]

    def test_tiny_and_fragmented_tables_are_left_alone(self):
        store = small_store()
        table = store.create_table("t")
        heat(table.regions()[0], 1000)
        # Hot but tiny: splitting would produce noise regions.
        assert plan_splits(store, BalancerPolicy(
            split_write_rate=0.5), 0.0) == []
        for i in range(80):
            table.put(f"k{i:04d}".encode(), b"v" * 50)
        # Hot and big enough, but already at the fragmentation cap.
        assert plan_splits(store, BalancerPolicy(
            split_write_rate=0.5, split_min_bytes=256,
            split_max_regions=1), 0.0) == []


class TestPlanMerges:
    def test_cold_old_neighbours_merge_one_pair_per_table(self):
        store = small_store()
        store.create_table("t", presplit=4)
        store.events.advance(120_000)
        merges = plan_merges(store, BalancerPolicy(), store.events.now_ms)
        assert len(merges) == 1
        left, right = merges[0].left, merges[0].right
        assert left.end_key == right.start_key  # adjacent

    def test_young_regions_never_merge(self):
        # A freshly pre-split table is cold only because it has not
        # lived yet; merging it would undo the DDL's intent.
        store = small_store()
        store.create_table("t", presplit=4)
        assert plan_merges(store, BalancerPolicy(),
                           store.events.now_ms) == []

    def test_hot_regions_never_merge(self):
        store = small_store()
        table = store.create_table("t", presplit=2)
        store.events.advance(120_000)
        for region in table.regions():
            heat(region, 300, store.events.now_ms)
        assert plan_merges(store, BalancerPolicy(),
                           store.events.now_ms) == []


# -- the move primitive -------------------------------------------------------

class TestMoveRegion:
    def test_move_rehomes_checkpoints_and_resets_seqnos(self):
        store = small_store(num_servers=2,
                            wal_policy=SyncPolicy.SYNC)
        table = store.create_table("t")
        for i in range(60):
            table.put(f"k{i:04d}".encode(), b"v" * 30)
        region = table.regions()[0]
        source = region.server
        list(table.scan(ScanSpec.full()))  # warm the source cache
        assert store.cache_for(source).used_bytes >= 0

        store.move_region(region, dest=1 - source)

        assert region.server == 1 - source
        assert region.wal is store.wal_for(1 - source)
        # Everything was flushed and checkpointed: a later crash of the
        # source has nothing to replay for this region.
        assert store.wal_for(source).live_records == 0
        # Seqnos are per-server; the watermark resets like in failover.
        assert region.max_seqno == 0
        # The source cache holds no blocks of a region it no longer owns.
        assert store.cache_for(source).used_bytes == 0

    def test_region_unavailable_until_the_move_completes(self):
        store = small_store(num_servers=2)
        table = store.create_table("t")
        table.put(b"k", b"v")
        region = table.regions()[0]
        store.move_region(region, dest=1)
        assert region.unavailable_until_ms > store.events.now_ms
        with pytest.raises(RegionUnavailableError):
            table.get(b"k")
        with pytest.raises(RegionUnavailableError):
            table.put(b"k", b"w")
        store.events.advance(region.unavailable_until_ms
                             - store.events.now_ms)
        assert table.get(b"k") == b"v"

    def test_moved_region_survives_crash_of_its_new_server(self):
        # Acceptance: placement changes compose with crash recovery.
        store = small_store(num_servers=3,
                            wal_policy=SyncPolicy.SYNC)
        table = store.create_table("t")
        before = [(f"a{i:04d}".encode(), b"old" * 10)
                  for i in range(120)]
        for key, value in before:
            table.put(key, value)
        region = table.regions()[0]
        dest = (region.server + 1) % 3
        store.move_region(region, dest)
        store.events.advance(region.unavailable_until_ms
                             - store.events.now_ms)
        after = [(f"b{i:04d}".encode(), b"new" * 10)
                 for i in range(40)]
        for key, value in after:  # SYNC-acked on the new server's WAL
            table.put(key, value)

        store.crash_server(dest)

        assert all(s != dest for s in table.servers_used())
        for key, value in before + after:
            assert table.get(key) == value


# -- executor -----------------------------------------------------------------

def skewed_store():
    """Four single-region tables piled onto server 0 of two."""
    store = small_store(num_servers=2)
    for i, writes in enumerate((300, 90, 60, 30)):
        table = store.create_table(f"t{i}")
        region = table.regions()[0]
        region.server = 0
        heat(region, writes)
    return store


class TestBalancer:
    def test_tick_reduces_imbalance_and_records_history(self):
        store = skewed_store()
        balancer = Balancer(store, BalancerPolicy(imbalance_ratio=1.1))
        run = balancer.tick()
        assert balancer.moves > 0
        assert run.imbalance_after < run.imbalance_before
        rows = balancer.history_rows()
        assert rows and rows[0]["action"] == "move"
        assert {r["action"] for r in rows} <= {"move", "split", "merge"}
        kinds = {e.kind for e in store.events.events()}
        assert {"balancer_run", "region_move"} <= kinds

    def test_maybe_tick_respects_the_interval(self):
        store = skewed_store()
        balancer = Balancer(store, BalancerPolicy(
            interval_ms=1000.0, imbalance_ratio=1.1))
        assert balancer.maybe_tick() is not None
        assert balancer.maybe_tick() is None  # too soon
        store.events.advance(1000.0)
        assert balancer.maybe_tick() is not None
        assert balancer.runs == 2

    def test_load_split_then_merge_after_cooldown(self):
        store = small_store()
        table = store.create_table("t")
        for i in range(120):
            table.put(f"k{i:04d}".encode(), b"v" * 40)
        policy = BalancerPolicy(split_write_rate=0.5,
                                split_min_bytes=256,
                                merge_min_age_ms=10_000.0)
        balancer = Balancer(store, policy)
        balancer.tick()
        assert balancer.splits > 0
        assert table.num_regions > 1
        regions_after_split = table.num_regions
        store.events.advance(300_000)  # everything goes cold and ages
        balancer.tick()
        assert balancer.merges > 0
        assert table.num_regions < regions_after_split


# -- pre-splitting and key salting --------------------------------------------

class TestPresplitAndSalting:
    def test_presplit_creates_spread_regions(self):
        store = small_store()
        table = store.create_table("t", presplit=4)
        assert table.num_regions == 4
        assert len(table.servers_used()) == 3  # all servers covered

    def test_salted_table_roundtrips_point_ops(self):
        store = small_store()
        table = store.create_table("t", presplit=4, salt_buckets=4)
        rows = {f"k{i:05d}".encode(): f"v{i}".encode()
                for i in range(200)}
        for key, value in rows.items():
            table.put(key, value)
        for key, value in rows.items():
            assert table.get(key) == value
        table.delete(b"k00007")
        assert table.get(b"k00007") is None

    def test_salted_scan_merges_buckets_in_logical_order(self):
        store = small_store()
        table = store.create_table("t", presplit=4, salt_buckets=4)
        keys = [f"k{i:05d}".encode() for i in range(200)]
        for key in keys:
            table.put(key, b"v")
        got = [k for k, _ in table.scan(ScanSpec.full())]
        assert got == sorted(keys)  # salt bytes stripped, order restored
        ranged = [k for k, _ in
                  table.scan(ScanSpec.prefix(b"k001"), )]
        assert ranged == [k for k in sorted(keys)
                          if k.startswith(b"k001")]
        limited = [k for k, _ in table.scan(ScanSpec(limit=5))]
        assert limited == sorted(keys)[:5]

    def test_presplit_beyond_buckets_dedups_to_bucket_count(self):
        store = small_store()
        # A salt bucket is the finest pre-split grain: boundaries land
        # on bucket edges, so presplit=6 over 3 buckets gives 3 regions.
        table = store.create_table("t", presplit=6, salt_buckets=3)
        assert table.num_regions == 3


class TestWithClauseDdl:
    def test_with_options_presplit_the_storage_tables(self):
        engine = JustEngine()
        engine.sql("CREATE TABLE taxi (fid integer:primary key, "
                   "name string, time date, geom point) "
                   "WITH (presplit=6, salt_buckets=3)")
        # The id table pre-splits but never salts (random fids do not
        # cluster); the SFC index tables get both.
        assert engine.store.table("taxi__id").num_regions == 6
        index_regions = [t.num_regions for t in engine.store.tables()
                         if "__z" in t.name]
        assert index_regions and all(n == 3 for n in index_regions)

    def test_bad_placement_options_are_schema_errors(self):
        engine = JustEngine()
        with pytest.raises(SchemaError):
            engine.sql("CREATE TABLE t (fid integer:primary key) "
                       "WITH (presplit='many')")


# -- introspection and service wiring -----------------------------------------

class TestIntrospection:
    def test_sys_servers_one_row_per_server(self):
        engine = JustEngine()
        rows = list(engine.sql("SELECT server, state, regions "
                               "FROM sys.servers"))
        assert len(rows) == engine.store.num_servers
        assert {r["state"] for r in rows} == {"alive"}

    def test_sys_balancer_exposes_decision_history(self):
        engine = JustEngine()
        assert engine.system_rows("sys.balancer") == []
        balancer = engine.enable_balancer(
            BalancerPolicy(imbalance_ratio=1.1))
        for i, writes in enumerate((300, 60)):
            table = engine.store.create_table(f"raw{i}")
            region = table.regions()[0]
            region.server = 0
            heat(region, writes, engine.store.events.now_ms)
        balancer.tick()
        rows = engine.system_rows("sys.balancer")
        assert rows and rows[0]["action"] == "move"
        assert rows[0]["src_server"] != rows[0]["dest_server"]

    def test_http_balancer_route(self):
        http = JustHttpServer()
        assert http.handle({"path": "/balancer"})["enabled"] is False
        http.server.engine.enable_balancer()
        snapshot = http.handle({"path": "/balancer"})
        assert snapshot["enabled"] is True
        assert snapshot["runs"] == 0
        assert len(snapshot["servers"]) == \
            http.server.engine.store.num_servers

    def test_server_statements_drive_balancer_ticks(self):
        server = JustServer()
        server.engine.enable_balancer(BalancerPolicy(interval_ms=0.0))
        session = server.connect("ops")
        server.execute(session, "CREATE TABLE t "
                                "(fid integer:primary key, name string)")
        server.execute(session, "INSERT INTO t VALUES (1, 'a')")
        assert server.engine.balancer.runs > 0
