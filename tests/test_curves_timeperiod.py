"""Time-period binning (Equation 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.curves.timeperiod import (
    TimePeriod,
    period_bin,
    period_bins_covering,
    period_offset,
    period_start,
)

times = st.floats(-1e10, 4e9, allow_nan=False)
periods = st.sampled_from(list(TimePeriod))


def test_equation_one_examples():
    assert period_bin(0.0, TimePeriod.DAY) == 0
    assert period_bin(86399.9, TimePeriod.DAY) == 0
    assert period_bin(86400.0, TimePeriod.DAY) == 1
    assert period_bin(-1.0, TimePeriod.DAY) == -1  # pre-epoch data


def test_from_name():
    assert TimePeriod.from_name("day") is TimePeriod.DAY
    assert TimePeriod.from_name("CENTURY") is TimePeriod.CENTURY
    with pytest.raises(ValueError):
        TimePeriod.from_name("fortnight")


def test_period_lengths_ordered():
    lengths = [p.seconds for p in (TimePeriod.HOUR, TimePeriod.DAY,
                                   TimePeriod.WEEK, TimePeriod.MONTH,
                                   TimePeriod.YEAR, TimePeriod.DECADE,
                                   TimePeriod.CENTURY)]
    assert lengths == sorted(lengths)


@given(t=times, period=periods)
def test_offset_in_unit_interval(t, period):
    fraction = period_offset(t, period)
    assert 0.0 <= fraction < 1.0 + 1e-9


@given(t=times, period=periods)
def test_bin_start_consistency(t, period):
    bin_number = period_bin(t, period)
    start = period_start(bin_number, period)
    # Relative slack: float division at |t| ~ 1e10 loses absolute
    # precision comparable to a few microseconds per billion seconds.
    slack = max(1e-6, abs(t) * 1e-9)
    assert start - slack <= t < start + period.seconds + slack


def test_bins_covering():
    day = TimePeriod.DAY
    assert list(period_bins_covering(0.0, 86400.0 * 2.5, day)) == [0, 1, 2]
    assert list(period_bins_covering(100.0, 100.0, day)) == [0]
    with pytest.raises(ValueError):
        period_bins_covering(100.0, 0.0, day)


@given(t1=times, t2=times, period=periods)
def test_bins_covering_includes_endpoints(t1, t2, period):
    lo, hi = sorted((t1, t2))
    bins = period_bins_covering(lo, hi, period)
    assert period_bin(lo, period) == bins.start
    assert period_bin(hi, period) == bins.stop - 1
