"""Block cache LRU behaviour."""

from repro.kvstore.blockcache import BlockCache


def test_admit_and_contains():
    cache = BlockCache(1000)
    cache.admit(("a",), 100)
    assert cache.contains(("a",))
    assert not cache.contains(("b",))


def test_lru_eviction_order():
    cache = BlockCache(300)
    cache.admit(("a",), 100)
    cache.admit(("b",), 100)
    cache.admit(("c",), 100)
    cache.contains(("a",))      # refresh a
    cache.admit(("d",), 100)    # evicts b (least recently used)
    assert cache.contains(("a",))
    assert not cache.contains(("b",))
    assert cache.contains(("c",)) and cache.contains(("d",))


def test_oversized_block_rejected():
    cache = BlockCache(100)
    cache.admit(("big",), 200)
    assert not cache.contains(("big",))
    assert cache.used_bytes == 0


def test_zero_capacity_disables():
    cache = BlockCache(0)
    cache.admit(("a",), 10)
    assert not cache.contains(("a",))


def test_readmit_updates_size():
    cache = BlockCache(1000)
    cache.admit(("a",), 100)
    cache.admit(("a",), 300)
    assert cache.used_bytes == 300
    assert len(cache) == 1


def test_invalidate_prefix():
    cache = BlockCache(1000)
    cache.admit(("t1", 1), 100)
    cache.admit(("t1", 2), 100)
    cache.admit(("t2", 1), 100)
    cache.invalidate_prefix(("t1",))
    assert not cache.contains(("t1", 1))
    assert cache.contains(("t2", 1))
    assert cache.used_bytes == 100


def test_clear():
    cache = BlockCache(1000)
    cache.admit(("a",), 100)
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes == 0
