"""Point / LineString / Polygon behaviour."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Envelope, LineString, Point, Polygon


class TestPoint:
    def test_basic(self):
        p = Point(116.3, 39.9)
        assert p.is_point()
        assert p.envelope.as_tuple() == (116.3, 39.9, 116.3, 39.9)
        assert p.coords() == (116.3, 39.9)

    def test_bounds_validation(self):
        with pytest.raises(GeometryError):
            Point(181.0, 0.0)
        with pytest.raises(GeometryError):
            Point(0.0, -91.0)
        with pytest.raises(GeometryError):
            Point(float("nan"), 0.0)

    def test_intersects_envelope_is_containment(self):
        p = Point(5.0, 5.0)
        assert p.intersects_envelope(Envelope(0, 0, 10, 10))
        assert not p.intersects_envelope(Envelope(6, 6, 10, 10))

    def test_equality_and_hash(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))
        assert Point(1.0, 2.0) != Point(1.0, 2.5)


class TestLineString:
    def test_requires_two_points(self):
        with pytest.raises(GeometryError):
            LineString([(0.0, 0.0)])

    def test_envelope(self):
        line = LineString([(0, 0), (2, 5), (4, 1)])
        assert line.envelope.as_tuple() == (0, 0, 4, 5)
        assert not line.is_point()

    def test_length(self):
        line = LineString([(0, 0), (3, 4)])
        assert line.length_degrees() == pytest.approx(5.0)

    def test_exact_intersection_crossing(self):
        # Diagonal line whose envelope overlaps the box but whose
        # geometry passes outside it.
        line = LineString([(0, 10), (10, 0)])
        assert line.intersects_envelope(Envelope(4, 4, 6, 6))
        assert not line.intersects_envelope(Envelope(0, 0, 2, 2))

    def test_endpoint_inside_box(self):
        line = LineString([(5, 5), (20, 20)])
        assert line.intersects_envelope(Envelope(0, 0, 10, 10))

    def test_crossing_without_vertex_inside(self):
        line = LineString([(-5, 5), (15, 5)])
        assert line.intersects_envelope(Envelope(0, 0, 10, 10))


class TestPolygon:
    def test_requires_three_points(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_closed_ring_deduplicated(self):
        tri = Polygon([(0, 0), (4, 0), (0, 4), (0, 0)])
        assert len(tri.ring) == 3

    def test_area(self):
        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        assert tri.area_degrees() == pytest.approx(8.0)

    def test_contains_point(self):
        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        assert tri.contains_point(1.0, 1.0)
        assert not tri.contains_point(3.0, 3.0)
        assert tri.contains_point(0.0, 0.0)  # vertex counts as inside

    def test_intersects_envelope_box_inside_polygon(self):
        big = Polygon([(0, 0), (20, 0), (20, 20), (0, 20)])
        assert big.intersects_envelope(Envelope(5, 5, 6, 6))

    def test_intersects_envelope_polygon_inside_box(self):
        tri = Polygon([(1, 1), (2, 1), (1, 2)])
        assert tri.intersects_envelope(Envelope(0, 0, 10, 10))

    def test_disjoint(self):
        tri = Polygon([(0, 0), (1, 0), (0, 1)])
        assert not tri.intersects_envelope(Envelope(5, 5, 6, 6))

    def test_edge_crossing_only(self):
        # A thin triangle slicing through the box corner.
        tri = Polygon([(-1, 4), (6, 11), (-1, 11)])
        assert tri.intersects_envelope(Envelope(0, 0, 5, 10))
