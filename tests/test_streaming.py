"""Streaming ingestion (Section IX future work #1)."""

import pytest

from repro import Schema
from repro.errors import ExecutionError, TableExistsError
from repro.streaming import StreamLoader, StreamTopic

from conftest import POI_SCHEMA_FIELDS, T0


def order_event(i, t_offset=0.0):
    return {"oid": str(i), "lng": 116.0 + (i % 50) * 0.01, "lat": 39.9,
            "ts": int((T0 + t_offset + i) * 1000)}


CONFIG = {
    "fid": "to_int(oid)",
    "name": "oid",
    "time": "long_to_date_ms(ts)",
    "geom": "lng_lat_to_point(lng, lat)",
}


class TestStreamTopic:
    def test_append_and_read(self):
        topic = StreamTopic("t")
        assert topic.append({"a": 1}) == 0
        assert topic.append({"a": 2}) == 1
        assert topic.read(0, 10) == [{"a": 1}, {"a": 2}]
        assert topic.read(1, 1) == [{"a": 2}]
        assert topic.end_offset == 2

    def test_events_are_copied(self):
        topic = StreamTopic("t")
        event = {"a": 1}
        topic.append(event)
        event["a"] = 99
        assert topic.read(0, 1) == [{"a": 1}]

    def test_negative_offset(self):
        with pytest.raises(ExecutionError):
            StreamTopic("t").read(-1, 5)


class TestStreamLoader:
    def setup_engine(self, engine):
        engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
        topic = engine.create_topic("gps")
        return topic

    def test_micro_batches(self, engine):
        topic = self.setup_engine(engine)
        topic.append_many(order_event(i) for i in range(25))
        loader = engine.stream_load("gps", "poi", CONFIG, batch_size=10)
        assert loader.lag == 25
        stats = loader.poll()
        assert stats == pytest.approx(
            {"consumed": 10, "loaded": 10, "dropped": 0,
             "sim_ms": stats["sim_ms"]})
        assert loader.lag == 15
        totals = loader.drain()
        assert totals["loaded"] == 15
        assert engine.table("poi").row_count == 25

    def test_loaded_rows_are_queryable(self, engine):
        from repro.geometry import Envelope
        topic = self.setup_engine(engine)
        topic.append(order_event(3))
        engine.stream_load("gps", "poi", CONFIG).drain()
        rows = engine.st_range_query(
            "poi", Envelope(115.9, 39.8, 116.6, 40.0),
            T0, T0 + 100).rows
        assert len(rows) == 1

    def test_filter_drops_events(self, engine):
        topic = self.setup_engine(engine)
        topic.append_many(order_event(i) for i in range(10))
        loader = engine.stream_load(
            "gps", "poi", CONFIG,
            row_filter=lambda e: int(e["oid"]) % 2 == 0)
        totals = loader.drain()
        assert totals["loaded"] == 5 and totals["dropped"] == 5
        assert loader.total_dropped == 5

    def test_independent_consumers(self, engine):
        topic = self.setup_engine(engine)
        engine.create_table("poi2", Schema(list(POI_SCHEMA_FIELDS)))
        topic.append_many(order_event(i) for i in range(6))
        a = engine.stream_load("gps", "poi", CONFIG)
        b = engine.stream_load("gps", "poi2", CONFIG)
        a.drain()
        assert b.lag == 6  # b's offset is untouched
        b.drain()
        assert engine.table("poi2").row_count == 6

    def test_resume_after_new_events(self, engine):
        topic = self.setup_engine(engine)
        loader = engine.stream_load("gps", "poi", CONFIG)
        topic.append(order_event(1))
        loader.drain()
        topic.append(order_event(2))
        assert loader.lag == 1
        loader.drain()
        assert engine.table("poi").row_count == 2

    def test_streaming_historical_events_accepted(self, engine):
        """Unlike ST-Hadoop, late events for old periods just work."""
        topic = self.setup_engine(engine)
        topic.append(order_event(1, t_offset=-86400.0 * 365))
        engine.stream_load("gps", "poi", CONFIG).drain()
        assert engine.table("poi").row_count == 1

    def test_duplicate_topic_rejected(self, engine):
        engine.create_topic("gps")
        with pytest.raises(TableExistsError):
            engine.create_topic("gps")

    def test_loader_validates_table(self, engine):
        engine.create_topic("gps")
        from repro.errors import TableNotFoundError
        with pytest.raises(TableNotFoundError):
            engine.stream_load("gps", "missing", CONFIG)
