"""Streaming ingestion (Section IX future work #1)."""

import pytest

from repro import Schema
from repro.core.tables import CommonTable
from repro.errors import (
    ExecutionError,
    ReplicationQuorumError,
    TableExistsError,
)
from repro.streaming import StreamLoader, StreamTopic

from conftest import POI_SCHEMA_FIELDS, T0


def order_event(i, t_offset=0.0):
    return {"oid": str(i), "lng": 116.0 + (i % 50) * 0.01, "lat": 39.9,
            "ts": int((T0 + t_offset + i) * 1000)}


CONFIG = {
    "fid": "to_int(oid)",
    "name": "oid",
    "time": "long_to_date_ms(ts)",
    "geom": "lng_lat_to_point(lng, lat)",
}


class TestStreamTopic:
    def test_append_and_read(self):
        topic = StreamTopic("t")
        # Both append and append_many return the next end offset.
        assert topic.append({"a": 1}) == 1
        assert topic.append({"a": 2}) == 2
        assert topic.append_many([{"a": 3}, {"a": 4}]) == 4
        assert topic.read(0, 10) == [{"a": 1}, {"a": 2}, {"a": 3},
                                     {"a": 4}]
        assert topic.read(1, 1) == [{"a": 2}]
        assert topic.end_offset == 4

    def test_events_are_copied(self):
        topic = StreamTopic("t")
        event = {"a": 1}
        topic.append(event)
        event["a"] = 99
        assert topic.read(0, 1) == [{"a": 1}]

    def test_negative_offset(self):
        with pytest.raises(ExecutionError):
            StreamTopic("t").read(-1, 5)

    def test_nonpositive_max_events_rejected(self):
        topic = StreamTopic("t")
        topic.append({"a": 1})
        with pytest.raises(ExecutionError):
            topic.read(0, 0)
        with pytest.raises(ExecutionError):
            topic.read(0, -3)  # a negative slice must not return events


class TestStreamLoader:
    def setup_engine(self, engine):
        engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
        topic = engine.create_topic("gps")
        return topic

    def test_micro_batches(self, engine):
        topic = self.setup_engine(engine)
        topic.append_many(order_event(i) for i in range(25))
        loader = engine.stream_load("gps", "poi", CONFIG, batch_size=10)
        assert loader.lag == 25
        stats = loader.poll()
        assert (stats["consumed"], stats["loaded"], stats["dropped"]) \
            == (10, 10, 0)
        assert stats["sim_ms"] > 0
        assert loader.lag == 15
        totals = loader.drain()
        assert totals["loaded"] == 15
        assert engine.table("poi").row_count == 25

    def test_loaded_rows_are_queryable(self, engine):
        from repro.geometry import Envelope
        topic = self.setup_engine(engine)
        topic.append(order_event(3))
        engine.stream_load("gps", "poi", CONFIG).drain()
        rows = engine.st_range_query(
            "poi", Envelope(115.9, 39.8, 116.6, 40.0),
            T0, T0 + 100).rows
        assert len(rows) == 1

    def test_filter_drops_events(self, engine):
        topic = self.setup_engine(engine)
        topic.append_many(order_event(i) for i in range(10))
        loader = engine.stream_load(
            "gps", "poi", CONFIG,
            row_filter=lambda e: int(e["oid"]) % 2 == 0)
        totals = loader.drain()
        assert totals["loaded"] == 5 and totals["dropped"] == 5
        assert loader.total_dropped == 5

    def test_independent_consumers(self, engine):
        topic = self.setup_engine(engine)
        engine.create_table("poi2", Schema(list(POI_SCHEMA_FIELDS)))
        topic.append_many(order_event(i) for i in range(6))
        a = engine.stream_load("gps", "poi", CONFIG)
        b = engine.stream_load("gps", "poi2", CONFIG)
        a.drain()
        assert b.lag == 6  # b's offset is untouched
        b.drain()
        assert engine.table("poi2").row_count == 6

    def test_resume_after_new_events(self, engine):
        topic = self.setup_engine(engine)
        loader = engine.stream_load("gps", "poi", CONFIG)
        topic.append(order_event(1))
        loader.drain()
        topic.append(order_event(2))
        assert loader.lag == 1
        loader.drain()
        assert engine.table("poi").row_count == 2

    def test_streaming_historical_events_accepted(self, engine):
        """Unlike ST-Hadoop, late events for old periods just work."""
        topic = self.setup_engine(engine)
        topic.append(order_event(1, t_offset=-86400.0 * 365))
        engine.stream_load("gps", "poi", CONFIG).drain()
        assert engine.table("poi").row_count == 1

    def test_duplicate_topic_rejected(self, engine):
        engine.create_topic("gps")
        with pytest.raises(TableExistsError):
            engine.create_topic("gps")

    def test_loader_validates_table(self, engine):
        engine.create_topic("gps")
        from repro.errors import TableNotFoundError
        with pytest.raises(TableNotFoundError):
            engine.stream_load("gps", "missing", CONFIG)

    def test_loaders_listed_in_sys_streams(self, engine):
        topic = self.setup_engine(engine)
        topic.append_many(order_event(i) for i in range(5))
        loader = engine.stream_load("gps", "poi", CONFIG,
                                    name="gps-loader")
        rows = engine.sql("SELECT loader, lag, loaded "
                          "FROM sys.streams").rows
        assert rows == [{"loader": "gps-loader", "lag": 5, "loaded": 0}]
        loader.drain()
        rows = engine.sql("SELECT lag, loaded FROM sys.streams").rows
        assert rows == [{"lag": 0, "loaded": 5}]


class TestAtLeastOnce:
    """The headline bugfix: offsets commit only after the insert."""

    def setup_engine(self, engine):
        engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
        return engine.create_topic("gps")

    def _flaky_insert(self, monkeypatch, fail_on_call: int,
                      after_rows: int = 0):
        """Patch ``insert_rows`` to fail once, mid-drain.

        ``after_rows`` > 0 applies that many rows *before* raising —
        the torn-batch case re-delivery must repair idempotently.
        """
        real = CommonTable.insert_rows
        calls = {"n": 0}

        def flaky(table_self, rows, job=None):
            calls["n"] += 1
            if calls["n"] == fail_on_call:
                if after_rows:
                    real(table_self, rows[:after_rows], job)
                raise ReplicationQuorumError("poi", 0, 0, acks=1,
                                             required=2)
            return real(table_self, rows, job)

        monkeypatch.setattr(CommonTable, "insert_rows", flaky)
        return calls

    def test_offset_not_committed_on_failed_insert(self, engine,
                                                   monkeypatch):
        topic = self.setup_engine(engine)
        topic.append_many(order_event(i) for i in range(30))
        loader = engine.stream_load("gps", "poi", CONFIG, batch_size=10)
        self._flaky_insert(monkeypatch, fail_on_call=2)
        loader.poll()
        assert loader.offset == 10
        with pytest.raises(ReplicationQuorumError):
            loader.poll()
        # The failed batch was NOT acked: offset stays, lag stays.
        assert loader.offset == 10
        assert loader.lag == 20
        # Retry re-reads the same batch; nothing is lost.
        loader.drain()
        assert loader.offset == 30
        assert engine.table("poi").row_count == 30

    def test_torn_batch_repaired_by_redelivery(self, engine,
                                               monkeypatch):
        """A partial insert + retry must neither lose nor duplicate."""
        topic = self.setup_engine(engine)
        topic.append_many(order_event(i) for i in range(30))
        loader = engine.stream_load("gps", "poi", CONFIG, batch_size=10)
        self._flaky_insert(monkeypatch, fail_on_call=2, after_rows=4)
        loader.poll()
        with pytest.raises(ReplicationQuorumError):
            loader.poll()
        loader.drain()
        # Inserts are idempotent upserts by primary key: the 4 torn
        # rows were re-delivered, not doubled.
        assert engine.table("poi").row_count == 30
        fids = sorted(r["fid"] for r in
                      engine.sql("SELECT fid FROM poi").rows)
        assert fids == list(range(30))

    def test_empty_poll_is_free(self, engine):
        self.setup_engine(engine)
        loader = engine.stream_load("gps", "poi", CONFIG)
        stats = loader.poll()
        assert stats == {"consumed": 0, "loaded": 0, "dropped": 0,
                         "emitted": 0, "alerts": 0, "sim_ms": 0.0}

    def test_all_filtered_batch_charges_filter_only(self, engine):
        topic = self.setup_engine(engine)
        topic.append_many(order_event(i) for i in range(10))
        loader = engine.stream_load("gps", "poi", CONFIG,
                                    row_filter=lambda e: False)
        stats = loader.poll()
        assert stats["consumed"] == 10 and stats["loaded"] == 0
        assert engine.table("poi").row_count == 0
        # Filter CPU only — no insert, no disk write.  A real 10-row
        # insert under the same cost model is orders of magnitude more.
        from repro.core.loader import apply_config
        insert_job = engine.cluster.job()
        engine.table("poi").insert_rows(
            [apply_config(order_event(i), CONFIG) for i in range(10)],
            insert_job)
        assert stats["sim_ms"] < insert_job.elapsed_ms / 10
        assert stats["sim_ms"] < 0.01

    def test_restart_resume_at_saved_offset(self, engine):
        """Recreating a loader at a saved offset: no dups, no gaps."""
        topic = self.setup_engine(engine)
        topic.append_many(order_event(i) for i in range(25))
        loader = engine.stream_load("gps", "poi", CONFIG, batch_size=10)
        loader.poll()
        saved = loader.offset
        assert saved == 10
        # "Restart": a brand-new loader resuming from the checkpoint.
        resumed = engine.stream_load("gps", "poi", CONFIG,
                                     batch_size=10, start_offset=saved)
        resumed.drain()
        assert resumed.offset == 25
        assert engine.table("poi").row_count == 25
        fids = sorted(r["fid"] for r in
                      engine.sql("SELECT fid FROM poi").rows)
        assert fids == list(range(25))

    def test_negative_start_offset_rejected(self, engine):
        self.setup_engine(engine)
        with pytest.raises(ExecutionError):
            engine.stream_load("gps", "poi", CONFIG, start_offset=-1)
