"""Vectorized (batch-at-a-time) execution: RowBatch mechanics, the
column-wise expression evaluator, executor equivalence with the
row-at-a-time baseline, accounting exactness, and the scan-path
correctness fixes that rode along (pushed spatio-temporal conjuncts on
the point-get/kNN paths, point-get I/O charging, recursive container
sizing)."""

import random

import pytest
from hypothesis import given, settings, strategies as hyp

from repro import JustEngine, Point, Schema
from repro.dataframe import DataFrame, RowBatch, estimate_value_bytes
from repro.dataframe.batch import BatchBuilder, batches_from_rows
from repro.errors import ExecutionError, QueryTimeoutError
from repro.resilience import Deadline, RequestContext
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    FuncCall,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.sql.expressions import eval_expr
from repro.sql.vectorized import eval_expr_batch
from repro.trajectory import STSeries, Trajectory

from conftest import POI_SCHEMA_FIELDS, T0, make_poi_rows


# -- RowBatch mechanics -------------------------------------------------------

class TestRowBatch:
    def test_from_rows_pivots_and_round_trips(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2}, {"b": "z"}]
        batch = RowBatch.from_rows(rows, ["a", "b"])
        assert len(batch) == 3
        assert batch.column("a") == [1, 2, None]
        assert batch.column("b") == ["x", None, "z"]
        assert batch.to_rows() == [{"a": 1, "b": "x"},
                                   {"a": 2, "b": None},
                                   {"b": "z", "a": None}]

    def test_select_shares_column_lists(self):
        batch = RowBatch.from_rows([{"a": 1, "b": 2}], ["a", "b"])
        narrowed = batch.select(["a"])
        assert narrowed.column("a") is batch.column("a")
        assert narrowed.columns == ["a"]

    def test_select_missing_column_reads_none(self):
        batch = RowBatch.from_rows([{"a": 1}, {"a": 2}], ["a"])
        widened = batch.select(["a", "ghost"])
        assert widened.column("ghost") == [None, None]

    def test_filter_is_three_valued(self):
        batch = RowBatch.from_rows(
            [{"v": i} for i in range(4)], ["v"])
        kept = batch.filter([True, False, None, True])
        assert kept.column("v") == [0, 3]

    def test_filter_all_kept_returns_self(self):
        batch = RowBatch.from_rows([{"v": 1}], ["v"])
        assert batch.filter([True]) is batch

    def test_slice(self):
        batch = RowBatch.from_rows([{"v": i} for i in range(5)], ["v"])
        assert batch.slice(1, 3).column("v") == [1, 2]

    def test_builder_emits_full_batches(self):
        builder = BatchBuilder(["v"], batch_rows=2)
        assert builder.add({"v": 1}) is None
        full = builder.add({"v": 2})
        assert full is not None and full.column("v") == [1, 2]
        builder.add({"v": 3})
        tail = builder.take()
        assert tail.column("v") == [3]
        assert builder.take() is None

    def test_batches_from_rows_chunks(self):
        rows = [{"v": i} for i in range(5)]
        batches = list(batches_from_rows(rows, ["v"], batch_rows=2))
        assert [len(b) for b in batches] == [2, 2, 1]


# -- vectorized expression evaluation ----------------------------------------

def col(name):
    return Column(name)


def lit(value):
    return Literal(value)


EXPR_CASES = [
    BinaryOp("+", col("a"), col("b")),
    BinaryOp("/", col("a"), col("b")),      # div by 0 -> None per row
    BinaryOp("%", col("a"), col("b")),
    BinaryOp(">", col("a"), lit(2)),
    BinaryOp("=", col("s"), lit("x")),
    BinaryOp("like", col("s"), lit("x%")),
    BinaryOp("and", BinaryOp(">", col("a"), lit(0)),
             BinaryOp("<", col("b"), lit(3))),
    BinaryOp("or", IsNull(col("a"), negated=False),
             BinaryOp(">=", col("b"), lit(2))),
    Between(col("a"), lit(1), lit(3)),
    UnaryOp("-", col("a")),
    UnaryOp("not", BinaryOp(">", col("a"), lit(1))),
    IsNull(col("s"), negated=True),
    FuncCall("upper", [col("s")]),
    FuncCall("abs", [UnaryOp("-", col("a"))]),
]

MIXED_ROWS = [
    {"a": 1, "b": 2, "s": "x"},
    {"a": None, "b": 0, "s": "xyz"},
    {"a": 3, "b": None, "s": None},
    {"a": 0, "b": 1, "s": "y"},
    {"a": -2, "b": 3, "s": "x"},
]


class TestEvalExprBatch:
    @pytest.mark.parametrize("expr", EXPR_CASES,
                             ids=[repr(e)[:48] for e in EXPR_CASES])
    def test_matches_row_evaluator(self, expr):
        batch = RowBatch.from_rows(MIXED_ROWS, ["a", "b", "s"])
        assert eval_expr_batch(expr, batch, {}) == \
            [eval_expr(expr, row, {}) for row in MIXED_ROWS]

    def test_unknown_column_raises(self):
        batch = RowBatch.from_rows(MIXED_ROWS, ["a", "b", "s"])
        with pytest.raises(ExecutionError):
            eval_expr_batch(col("ghost"), batch, {})

    def test_literal_broadcasts(self):
        batch = RowBatch.from_rows(MIXED_ROWS, ["a", "b", "s"])
        assert eval_expr_batch(lit(7), batch, {}) == [7] * len(MIXED_ROWS)


# -- executor equivalence: vectorized vs row-at-a-time ------------------------

EQUIVALENCE_STATEMENTS = [
    "SELECT * FROM poi",
    "SELECT fid, name FROM poi WHERE geom WITHIN "
    "st_makeMBR(116.1, 39.85, 116.3, 40.0)",
    f"SELECT fid FROM poi WHERE time BETWEEN {T0} AND {T0 + 86400}",
    f"SELECT name FROM poi WHERE geom WITHIN "
    f"st_makeMBR(116.0, 39.8, 116.5, 40.1) AND time > {T0 + 43200} "
    f"AND name LIKE 'poi1%'",
    "SELECT fid * 2 AS dbl, upper(name) AS caps FROM poi WHERE fid < 50",
    "SELECT name, count(*) AS cnt FROM poi GROUP BY name ORDER BY name",
    "SELECT count(*) AS cnt, min(time) AS lo, max(time) AS hi FROM poi "
    "WHERE geom WITHIN st_makeMBR(116.0, 39.8, 116.3, 40.0)",
    "SELECT avg(fid) AS a FROM poi WHERE name = 'nope'",
    "SELECT fid FROM poi WHERE fid / 0 IS NULL",
    "SELECT DISTINCT name FROM poi WHERE fid % 3 = 0",
    "SELECT fid, name FROM poi ORDER BY fid DESC LIMIT 7",
]


def canonical(rows):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items()))
        for row in rows)


def _make_engine(vectorized: bool, rows=None, flush=True) -> JustEngine:
    engine = JustEngine(vectorized=vectorized)
    engine.create_table("poi", Schema(list(POI_SCHEMA_FIELDS)))
    engine.insert("poi", rows if rows is not None else make_poi_rows())
    if flush:
        engine.table("poi").flush()
    return engine


@pytest.fixture(scope="module")
def engine_pair():
    rows = make_poi_rows()
    return (_make_engine(True, rows), _make_engine(False, rows))


class TestExecutorEquivalence:
    @pytest.mark.parametrize("statement", EQUIVALENCE_STATEMENTS)
    def test_seeded_suite_agrees(self, engine_pair, statement):
        batched, rowwise = engine_pair
        got = batched.sql(statement).rows
        want = rowwise.sql(statement).rows
        if "LIMIT" in statement and "ORDER BY" not in statement:
            assert len(got) == len(want)
        else:
            assert canonical(got) == canonical(want)

    @settings(max_examples=25, deadline=None)
    @given(lng=hyp.floats(116.0, 116.45), lat=hyp.floats(39.8, 40.05),
           span=hyp.floats(0.01, 0.3), t_off=hyp.floats(0, 86400 * 5),
           fid_cut=hyp.integers(0, 500))
    def test_randomized_filter_projection_property(self, engine_pair,
                                                   lng, lat, span,
                                                   t_off, fid_cut):
        """Residual filter + projection parity on randomized predicates."""
        batched, rowwise = engine_pair
        statement = (
            f"SELECT fid, name FROM poi WHERE geom WITHIN "
            f"st_makeMBR({lng}, {lat}, {lng + span}, {lat + span}) "
            f"AND time < {T0 + t_off} AND fid >= {fid_cut}")
        assert canonical(batched.sql(statement).rows) == \
            canonical(rowwise.sql(statement).rows)

    def test_batched_scan_is_cheaper(self, engine_pair):
        """Same I/O, less CPU: the vectorized scan wins on CPU time."""
        batched, rowwise = engine_pair
        statement = ("SELECT fid FROM poi WHERE geom WITHIN "
                     "st_makeMBR(116.0, 39.8, 116.5, 40.1) "
                     "AND name LIKE 'poi%'")
        fast = batched.sql(statement).job
        slow = rowwise.sql(statement).job
        assert fast.breakdown["cpu"] < slow.breakdown["cpu"]
        # I/O accounting is identical under batching.
        assert fast.breakdown["disk_read"] == \
            pytest.approx(slow.breakdown["disk_read"])
        assert fast.breakdown["seek"] == pytest.approx(
            slow.breakdown["seek"])


# -- scan-path correctness fixes ----------------------------------------------

class TestPushedConjunctsOnPointPaths:
    """fid/kNN access must still honour consumed envelope/time conjuncts."""

    @pytest.fixture
    def engine(self):
        return _make_engine(True)

    def test_fid_with_excluding_envelope(self, engine):
        row = engine.sql("SELECT * FROM poi WHERE fid = 7").rows[0]
        geom = row["geom"]
        inside = (f"SELECT fid FROM poi WHERE fid = 7 AND geom WITHIN "
                  f"st_makeMBR({geom.lng - 0.01}, {geom.lat - 0.01}, "
                  f"{geom.lng + 0.01}, {geom.lat + 0.01})")
        outside = ("SELECT fid FROM poi WHERE fid = 7 AND geom WITHIN "
                   "st_makeMBR(0.0, 0.0, 1.0, 1.0)")
        assert [r["fid"] for r in engine.sql(inside).rows] == [7]
        assert engine.sql(outside).rows == []

    def test_fid_with_excluding_time_between(self, engine):
        t = engine.sql("SELECT time FROM poi WHERE fid = 7").rows[0]["time"]
        inside = (f"SELECT fid FROM poi WHERE fid = 7 "
                  f"AND time BETWEEN {t - 1} AND {t + 1}")
        outside = (f"SELECT fid FROM poi WHERE fid = 7 "
                   f"AND time BETWEEN {t + 100} AND {t + 200}")
        assert [r["fid"] for r in engine.sql(inside).rows] == [7]
        assert engine.sql(outside).rows == []

    def test_knn_with_envelope(self, engine):
        mbr = (116.2, 39.85, 116.3, 39.95)
        rs = engine.sql(
            f"SELECT fid, geom FROM poi WHERE geom IN "
            f"st_KNN(st_makePoint(116.25, 39.9), 10) AND geom WITHIN "
            f"st_makeMBR({mbr[0]}, {mbr[1]}, {mbr[2]}, {mbr[3]})")
        assert rs.rows  # the centre sits inside the window
        for r in rs.rows:
            assert mbr[0] <= r["geom"].lng <= mbr[2]
            assert mbr[1] <= r["geom"].lat <= mbr[3]


class TestAttributeWithEnvelope:
    """When the envelope path wins, an indexed attribute equality must
    still be enforced (it stays in the residual list)."""

    def test_attr_conjunct_survives_envelope_access(self):
        engine = JustEngine()
        engine.sql("CREATE TABLE poi (fid integer:primary key, "
                   "name string, time date, geom point) USERDATA "
                   "{'just.attribute.indices': 'name'}")
        rows = make_poi_rows()
        engine.insert("poi", rows)
        engine.table("poi").flush()
        rs = engine.sql(
            "SELECT fid, name FROM poi WHERE geom WITHIN "
            "st_makeMBR(116.0, 39.8, 116.5, 40.1) AND name = 'poi3'")
        expected = {r["fid"] for r in rows if r["name"] == "poi3"}
        assert {r["fid"] for r in rs.rows} == expected
        assert all(r["name"] == "poi3" for r in rs.rows)


class TestPointGetAccounting:
    def test_pk_lookup_reports_io(self):
        """EXPLAIN ANALYZE on a primary-key lookup shows real I/O."""
        engine = _make_engine(True)
        engine.store.clear_caches()
        rs = engine.sql("EXPLAIN ANALYZE SELECT * FROM poi WHERE fid = 7")
        scan = next(r for r in rs.rows if "Scan[" in r["operator"])
        assert scan["blocks_read"] + scan["cache_hits"] > 0

    def test_get_charges_job(self):
        engine = _make_engine(True)
        engine.store.clear_caches()
        job = engine.cluster.job()
        row = engine.table("poi").get("7", job=job)
        assert row is not None and row["fid"] == 7
        # One seek plus the block read: the lookup is no longer free.
        assert job.breakdown.get("seek", 0) > 0
        assert job.breakdown.get("disk_read", 0) > 0


# -- deadline cancellation mid-batch -----------------------------------------

class TestDeadlineMidBatch:
    def test_batched_scan_honours_deadline(self):
        engine = _make_engine(True)
        ctx = RequestContext(deadline=Deadline(0.01))
        with pytest.raises(QueryTimeoutError):
            engine.sql("SELECT * FROM poi WHERE geom WITHIN "
                       "st_makeMBR(116.0, 39.8, 116.5, 40.1)", ctx=ctx)


# -- compressed field round-trip ---------------------------------------------

class TestCompressedRoundTrip:
    def test_gps_list_survives_scan_and_aggregate(self):
        engine = JustEngine(vectorized=True)
        engine.sql("CREATE TABLE trips AS trajectory")
        table = engine.table("trips")
        rng = random.Random(3)
        trajectories = []
        for i in range(20):
            t0 = T0 + i * 600.0
            pts = [(116.0 + rng.random() * 0.4,
                    39.8 + rng.random() * 0.2) for _ in range(15)]
            pts.sort()
            series = STSeries([(lng, lat, t0 + j * 30.0)
                               for j, (lng, lat) in enumerate(pts)])
            trajectories.append(
                Trajectory(f"t{i}", f"o{i % 4}", series))
        table.insert_trajectories(trajectories)
        table.flush()

        rs = engine.sql("SELECT tid, gps_list FROM trips WHERE gps_list "
                        "WITHIN st_makeMBR(115.9, 39.7, 116.5, 40.1)")
        got = {r["tid"]: r["gps_list"] for r in rs.rows}
        assert len(got) == 20
        for t in trajectories:
            # gzip round-trip is exact up to the codec's fixed-point
            # quantization (1e-6 degree ticks).
            decoded = got[t.tid].points
            assert len(decoded) == len(t.series.points)
            for a, b in zip(decoded, t.series.points):
                assert a.lng == pytest.approx(b.lng, abs=1e-6)
                assert a.lat == pytest.approx(b.lat, abs=1e-6)
                assert a.time == pytest.approx(b.time, abs=1e-3)

        agg = engine.sql("SELECT oid, count(*) AS cnt FROM trips "
                         "GROUP BY oid ORDER BY oid")
        assert [(r["oid"], r["cnt"]) for r in agg.rows] == \
            [("o0", 5), ("o1", 5), ("o2", 5), ("o3", 5)]


# -- recursive container sizing ----------------------------------------------

class TestEstimatedBytes:
    def test_containers_sized_recursively(self):
        series = STSeries([(116.0 + i * 0.001, 39.9, i * 30.0)
                           for i in range(100)])
        fat = DataFrame.from_rows([{"v": series}], ["v"])
        flat = DataFrame.from_rows([{"v": 1}], ["v"])
        assert fat.estimated_bytes() > 100 * 32
        assert fat.estimated_bytes() > 10 * flat.estimated_bytes()

    def test_nested_collections(self):
        df = DataFrame.from_rows(
            [{"v": [list(range(10)) for _ in range(10)]}], ["v"])
        assert df.estimated_bytes() > 100 * 32

    def test_value_estimator_shapes(self):
        assert estimate_value_bytes(None) == 16
        assert estimate_value_bytes("abcd") == 52
        assert estimate_value_bytes(1.5) == 32
        assert estimate_value_bytes([1, 2]) == 56 + 64
        assert estimate_value_bytes({"k": 1}) == 64 + 49 + 32
        assert estimate_value_bytes(Point(116.0, 39.9)) == 48

    def test_batch_backed_frames_use_same_estimator(self):
        rows = [{"a": "xx", "b": [1, 2, 3]} for _ in range(8)]
        row_df = DataFrame.from_rows(rows, ["a", "b"], 2)
        batch_df = DataFrame.from_batches(
            list(batches_from_rows(rows, ["a", "b"], 4)), ["a", "b"])
        assert row_df.estimated_bytes() == batch_df.estimated_bytes()
