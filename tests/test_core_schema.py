"""Schema and field parsing (JustQL column specs)."""

import pytest

from repro.core.schema import Field, FieldType, Schema
from repro.errors import SchemaError
from repro.geometry import LineString, Point
from repro.trajectory import STSeries


class TestFieldParse:
    def test_simple_types(self):
        assert Field.parse("a", "integer").ftype is FieldType.INTEGER
        assert Field.parse("a", "string").ftype is FieldType.STRING
        assert Field.parse("a", "date").ftype is FieldType.DATE

    def test_primary_key(self):
        field = Field.parse("fid", "integer:primary key")
        assert field.primary_key

    def test_srid_option(self):
        field = Field.parse("geom", "point:srid=4326")
        assert field.ftype is FieldType.POINT
        assert field.srid == 4326

    def test_compress_option_with_alternatives(self):
        field = Field.parse("gpsList", "st_series:compress=gzip|zip")
        assert field.compress == "gzip"

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            Field.parse("a", "varchar")

    def test_bad_compression(self):
        with pytest.raises(SchemaError):
            Field(name="x", ftype=FieldType.STRING, compress="lz77")

    def test_extra_options_preserved(self):
        field = Field.parse("a", "string:foo=bar")
        assert field.options == {"foo": "bar"}


class TestFieldValidate:
    def test_type_check(self):
        field = Field("geom", FieldType.POINT)
        field.validate(Point(1, 2))
        with pytest.raises(SchemaError):
            field.validate("POINT (1 2)")

    def test_null_allowed_except_pk(self):
        Field("x", FieldType.STRING).validate(None)
        with pytest.raises(SchemaError):
            Field("fid", FieldType.STRING, primary_key=True).validate(None)

    def test_geometry_accepts_any_shape(self):
        field = Field("g", FieldType.GEOMETRY)
        field.validate(Point(0, 0))
        field.validate(LineString([(0, 0), (1, 1)]))

    def test_st_series(self):
        field = Field("s", FieldType.ST_SERIES)
        field.validate(STSeries([(0, 0, 1.0)]))
        with pytest.raises(SchemaError):
            field.validate([(0, 0, 1.0)])


class TestSchema:
    def make(self):
        return Schema([
            Field("fid", FieldType.INTEGER, primary_key=True),
            Field("name", FieldType.STRING),
            Field("time", FieldType.DATE),
            Field("geom", FieldType.POINT),
        ])

    def test_accessors(self):
        schema = self.make()
        assert schema.names == ["fid", "name", "time", "geom"]
        assert schema.primary_key.name == "fid"
        assert schema.geometry_field.name == "geom"
        assert schema.time_field.name == "time"
        assert "name" in schema
        assert len(schema) == 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Field("a", FieldType.STRING),
                    Field("a", FieldType.STRING)])

    def test_two_primary_keys_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Field("a", FieldType.STRING, primary_key=True),
                    Field("b", FieldType.STRING, primary_key=True)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_validate_row(self):
        schema = self.make()
        schema.validate_row({"fid": 1, "name": "x", "time": 0.0,
                             "geom": Point(0, 0)})
        with pytest.raises(SchemaError):
            schema.validate_row({"fid": 1, "extra": True})
        with pytest.raises(SchemaError):
            schema.validate_row({"fid": None})

    def test_fid_of(self):
        schema = self.make()
        assert schema.fid_of({"fid": 42}) == "42"

    def test_describe(self):
        rows = self.make().describe()
        assert rows[0] == {"field": "fid", "type": "integer",
                           "flags": "primary key"}

    def test_unknown_field_lookup(self):
        with pytest.raises(SchemaError):
            self.make().field("missing")
