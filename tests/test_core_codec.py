"""Row serialization and field compression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import (
    RowCodec,
    compress_bytes,
    decode_value,
    decompress_bytes,
    encode_value,
    read_varint,
    write_varint,
)
from repro.core.schema import Field, FieldType, Schema
from repro.geometry import LineString, Point, Polygon
from repro.trajectory import GPSPoint, STSeries, TSeries


class TestVarint:
    @given(value=st.integers(0, 2 ** 64))
    def test_roundtrip(self, value):
        buf = bytearray()
        write_varint(value, buf)
        decoded, pos = read_varint(bytes(buf), 0)
        assert decoded == value and pos == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            write_varint(-1, bytearray())


class TestValueRoundtrip:
    def test_scalars(self):
        cases = [
            (FieldType.INTEGER, -12345),
            (FieldType.LONG, 2 ** 40),
            (FieldType.DOUBLE, 3.14159),
            (FieldType.DATE, 1_500_000_000.5),
            (FieldType.STRING, "héllo wörld"),
            (FieldType.BOOLEAN, True),
            (FieldType.BOOLEAN, False),
        ]
        for ftype, value in cases:
            assert decode_value(encode_value(value, ftype), ftype) == value

    def test_geometries(self):
        point = Point(116.397, 39.908)
        decoded = decode_value(encode_value(point, FieldType.POINT),
                               FieldType.POINT)
        assert decoded == point
        line = LineString([(0, 0), (1.5, 2.5)])
        assert decode_value(encode_value(line, FieldType.LINESTRING),
                            FieldType.LINESTRING) == line
        poly = Polygon([(0, 0), (1, 0), (0, 1)])
        assert decode_value(encode_value(poly, FieldType.POLYGON),
                            FieldType.POLYGON) == poly

    def test_generic_geometry_tags(self):
        for geom in (Point(1, 2), LineString([(0, 0), (1, 1)]),
                     Polygon([(0, 0), (1, 0), (0, 1)])):
            data = encode_value(geom, FieldType.GEOMETRY)
            assert decode_value(data, FieldType.GEOMETRY) == geom

    def test_t_series(self):
        series = TSeries([(1.0, 10.0), (2.0, 20.0)])
        assert decode_value(encode_value(series, FieldType.T_SERIES),
                            FieldType.T_SERIES) == series


class TestSTSeriesCodec:
    def test_delta_roundtrip_precision(self):
        points = [(116.0 + i * 0.0001, 39.9 + i * 0.00005,
                   1_500_000_000.0 + i * 30.0) for i in range(100)]
        series = STSeries(points)
        decoded = decode_value(encode_value(series, FieldType.ST_SERIES),
                               FieldType.ST_SERIES)
        assert len(decoded) == 100
        for original, back in zip(series, decoded):
            assert back.lng == pytest.approx(original.lng, abs=1e-6)
            assert back.lat == pytest.approx(original.lat, abs=1e-6)
            assert back.time == pytest.approx(original.time, abs=1e-3)

    def test_absolute_fallback_for_huge_gaps(self):
        # A >24-day gap overflows the int32 millisecond delta.
        series = STSeries([(0.0, 0.0, 0.0),
                           (1.0, 1.0, 86400.0 * 60)])
        data = encode_value(series, FieldType.ST_SERIES)
        decoded = decode_value(data, FieldType.ST_SERIES)
        assert decoded[1].time == pytest.approx(86400.0 * 60)

    def test_empty_series(self):
        data = encode_value(STSeries([]), FieldType.ST_SERIES)
        assert len(decode_value(data, FieldType.ST_SERIES)) == 0

    def test_delta_encoding_is_compact(self):
        points = [(116.0 + i * 1e-5, 39.9, 1e9 + i * 30.0)
                  for i in range(1000)]
        data = encode_value(STSeries(points), FieldType.ST_SERIES)
        # Delta layout: ~12 bytes/point versus 24 for raw doubles.
        assert len(data) < 1000 * 16

    @settings(max_examples=25)
    @given(n=st.integers(1, 50), seed=st.integers(0, 999))
    def test_random_roundtrip(self, n, seed):
        import random
        rng = random.Random(seed)
        t = 1_400_000_000.0
        points = []
        lng, lat = 116.0, 39.9
        for _ in range(n):
            lng += rng.uniform(-0.001, 0.001)
            lat += rng.uniform(-0.001, 0.001)
            t += rng.uniform(0.001, 100.0)
            points.append((lng, lat, t))
        series = STSeries(points)
        decoded = decode_value(encode_value(series, FieldType.ST_SERIES),
                               FieldType.ST_SERIES)
        assert len(decoded) == n


class TestCompression:
    def test_gzip_zip_roundtrip(self):
        data = b"hello " * 1000
        for method in ("gzip", "zip"):
            packed = compress_bytes(data, method)
            assert len(packed) < len(data)
            assert decompress_bytes(packed, method) == data

    def test_compression_helps_big_series_only(self):
        """The Figure 10a lesson: compression shrinks big fields but can
        grow tiny ones."""
        big = encode_value(STSeries(
            [(116.0 + i * 1e-5, 39.9 + i * 1e-5, 1e9 + i * 30.0)
             for i in range(2000)]), FieldType.ST_SERIES)
        assert len(compress_bytes(big, "gzip")) < len(big) * 0.7
        tiny = encode_value(Point(116.0, 39.9), FieldType.POINT)
        assert len(compress_bytes(tiny, "gzip")) > len(tiny)


class TestRowCodec:
    def schema(self):
        return Schema([
            Field("fid", FieldType.INTEGER, primary_key=True),
            Field("name", FieldType.STRING),
            Field("time", FieldType.DATE),
            Field("geom", FieldType.POINT),
            Field("gps", FieldType.ST_SERIES, compress="gzip"),
        ])

    def row(self):
        return {
            "fid": 7,
            "name": "alpha",
            "time": 1_500_000_000.0,
            "geom": Point(116.4, 39.9),
            "gps": STSeries([(116.4, 39.9, 1_500_000_000.0 + i)
                             for i in range(50)]),
        }

    def test_roundtrip(self):
        codec = RowCodec(self.schema())
        row = self.row()
        decoded = codec.decode_row(codec.encode_row(row))
        assert decoded["fid"] == 7
        assert decoded["name"] == "alpha"
        assert decoded["geom"] == row["geom"]
        assert len(decoded["gps"]) == 50

    def test_null_fields(self):
        codec = RowCodec(self.schema())
        row = {"fid": 1, "name": None, "time": None, "geom": Point(0, 0),
               "gps": None}
        decoded = codec.decode_row(codec.encode_row(row))
        assert decoded["name"] is None and decoded["gps"] is None

    def test_nc_variant_is_larger_for_big_fields(self):
        row = {
            "fid": 1, "name": "x", "time": 0.0, "geom": Point(0, 0),
            "gps": STSeries([(116.0 + i * 1e-5, 39.9, 1e9 + i * 30.0)
                             for i in range(2000)]),
        }
        compressed = RowCodec(self.schema(), compression_enabled=True)
        plain = RowCodec(self.schema(), compression_enabled=False)
        assert len(compressed.encode_row(row)) < \
            len(plain.encode_row(row)) * 0.8
        # Both decode to the same values.
        assert len(compressed.decode_row(
            compressed.encode_row(row))["gps"]) == 2000
        assert len(plain.decode_row(plain.encode_row(row))["gps"]) == 2000
