"""Write-ahead log: sequence numbers, sync policies, truncation, crash."""

import pytest

from repro.kvstore.iostats import IOStats
from repro.kvstore.wal import SyncPolicy, WriteAheadLog


def make_wal(policy=SyncPolicy.ASYNC, **kwargs):
    return WriteAheadLog(0, IOStats(), policy, **kwargs)


class TestAppend:
    def test_seqnos_monotonic_from_one(self):
        wal = make_wal()
        seqnos = [wal.append("t", 1, f"k{i}".encode(), b"v")
                  for i in range(5)]
        assert seqnos == [1, 2, 3, 4, 5]
        assert wal.appended_seqno == 5

    def test_append_charges_iostats(self):
        stats = IOStats()
        wal = WriteAheadLog(0, stats)
        wal.append("t", 1, b"key", b"value")
        assert stats.wal_appends == 1
        assert stats.wal_bytes_written > len(b"key") + len(b"value")

    def test_tombstone_append(self):
        wal = make_wal()
        wal.append("t", 1, b"k", None)
        assert wal.live_records == 1


class TestSyncPolicies:
    def test_sync_policy_durable_per_append(self):
        wal = make_wal(SyncPolicy.SYNC)
        for i in range(3):
            wal.append("t", 1, f"k{i}".encode(), b"v")
            assert wal.synced_seqno == wal.appended_seqno
        assert wal.sync_count == 3

    def test_async_policy_defers_sync(self):
        wal = make_wal(SyncPolicy.ASYNC)
        for i in range(3):
            wal.append("t", 1, f"k{i}".encode(), b"v")
        assert wal.synced_seqno == 0
        assert wal.unsynced_records == 3

    def test_periodic_policy_group_commits(self):
        wal = make_wal(SyncPolicy.PERIODIC, periodic_bytes=200)
        for i in range(10):
            wal.append("t", 1, f"k{i}".encode(), b"v" * 40)
        # Several appends share each fsync (group commit).
        assert 0 < wal.sync_count < 10
        assert wal.unsynced_records < 10

    def test_explicit_sync_is_a_barrier(self):
        wal = make_wal(SyncPolicy.ASYNC)
        wal.append("t", 1, b"a", b"1")
        wal.sync()
        assert wal.synced_seqno == wal.appended_seqno
        assert wal.sync_count == 1
        wal.sync()  # nothing pending: no extra fsync
        assert wal.sync_count == 1


class TestCheckpointTruncate:
    def test_checkpoint_truncates_flushed_prefix(self):
        wal = make_wal(SyncPolicy.SYNC)
        for i in range(4):
            wal.append("t", 7, f"k{i}".encode(), b"v")
        wal.checkpoint(7, 2)
        assert wal.live_records == 2  # seqnos 3, 4 remain

    def test_checkpoint_only_affects_its_region(self):
        wal = make_wal(SyncPolicy.SYNC)
        wal.append("t", 1, b"a", b"1")
        wal.append("t", 2, b"b", b"2")
        wal.checkpoint(1, 2)
        assert wal.live_records == 1

    def test_retire_region_drops_all_its_records(self):
        wal = make_wal(SyncPolicy.SYNC)
        wal.append("t", 1, b"a", b"1")
        wal.append("t", 2, b"b", b"2")
        wal.retire_region(1)
        assert wal.live_records == 1
        wal.append("t", 1, b"c", b"3")  # retired region stays retired
        assert wal.live_records == 1

    def test_checkpoint_acts_as_sync_barrier(self):
        wal = make_wal(SyncPolicy.ASYNC)
        wal.append("t", 1, b"a", b"1")
        wal.append("t", 2, b"b", b"2")
        wal.checkpoint(1, 1)
        assert wal.synced_seqno == wal.appended_seqno


class TestCrash:
    def test_crash_drops_unsynced_tail(self):
        wal = make_wal(SyncPolicy.ASYNC)
        wal.append("t", 1, b"a", b"1")
        wal.sync()
        wal.append("t", 1, b"b", b"2")
        wal.append("t", 1, b"c", b"3")
        survivors, discarded = wal.crash()
        assert [r.key for r in survivors] == [b"a"]
        assert discarded == 2
        assert wal.crashed

    def test_sync_crash_loses_nothing(self):
        wal = make_wal(SyncPolicy.SYNC)
        for i in range(5):
            wal.append("t", 1, f"k{i}".encode(), b"v")
        survivors, discarded = wal.crash()
        assert len(survivors) == 5
        assert discarded == 0

    def test_torn_tail_drops_last_synced_record(self):
        wal = make_wal(SyncPolicy.SYNC)
        for i in range(5):
            wal.append("t", 1, f"k{i}".encode(), b"v")
        survivors, discarded = wal.crash(lost_tail_records=1)
        assert [r.key for r in survivors] == [b"k0", b"k1", b"k2", b"k3"]
        assert discarded == 1

    def test_delayed_write_drops_several(self):
        wal = make_wal(SyncPolicy.SYNC)
        for i in range(5):
            wal.append("t", 1, f"k{i}".encode(), b"v")
        survivors, discarded = wal.crash(lost_tail_records=3)
        assert len(survivors) == 2
        assert discarded == 3

    def test_corruption_beyond_log_length(self):
        wal = make_wal(SyncPolicy.SYNC)
        wal.append("t", 1, b"a", b"1")
        survivors, discarded = wal.crash(lost_tail_records=10)
        assert survivors == []
        assert discarded == 1

    def test_crash_excludes_flushed_records(self):
        wal = make_wal(SyncPolicy.SYNC)
        for i in range(4):
            wal.append("t", 1, f"k{i}".encode(), b"v")
        wal.checkpoint(1, 3)  # k0..k2 flushed to SSTables
        survivors, _ = wal.crash()
        assert [r.key for r in survivors] == [b"k3"]

    def test_sync_count_tracks_stats(self):
        stats = IOStats()
        wal = WriteAheadLog(0, stats, SyncPolicy.SYNC)
        wal.append("t", 1, b"a", b"1")
        assert stats.wal_syncs == 1


class TestPerServerAttribution:
    def test_appends_split_by_server(self):
        stats = IOStats()
        wal0 = WriteAheadLog(0, stats, SyncPolicy.ASYNC)
        wal2 = WriteAheadLog(2, stats, SyncPolicy.ASYNC)
        wal0.append("t", 1, b"k0", b"v" * 10)
        wal0.append("t", 1, b"k1", b"v" * 10)
        wal2.append("t", 2, b"k2", b"v" * 30)
        assert set(stats.per_server_wal) == {0, 2}
        assert stats.per_server_wal[2] > 0
        assert sum(stats.per_server_wal.values()) == \
            stats.wal_bytes_written
        # Per-server WAL bytes must not leak into the read-side
        # straggler accounting the scan cost model uses.
        assert stats.per_server_read == {}

    def test_snapshot_delta_covers_wal_attribution(self):
        stats = IOStats()
        wal = WriteAheadLog(1, stats, SyncPolicy.ASYNC)
        before = stats.snapshot()
        wal.append("t", 1, b"k", b"v" * 20)
        delta = stats.snapshot().delta(before)
        assert delta.per_server_wal[1] == delta.wal_bytes_written

    def test_replay_attributed_to_recovering_server(self):
        stats = IOStats()
        stats.record_wal_replay(100, server=3)
        assert stats.per_server_wal[3] == 100
        assert stats.wal_bytes_replayed == 100


def test_sync_policy_values():
    assert SyncPolicy("sync") is SyncPolicy.SYNC
    assert SyncPolicy("periodic") is SyncPolicy.PERIODIC
    assert SyncPolicy("async") is SyncPolicy.ASYNC
    with pytest.raises(ValueError):
        SyncPolicy("fsync-every-other-tuesday")
