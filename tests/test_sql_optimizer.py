"""Optimizer rules: folding, selection pushdown, projection pruning."""

from repro.geometry import Envelope
from repro.sql.analyzer import analyze_select
from repro.sql.ast import BinaryOp, Column, Literal
from repro.sql.logical import ProjectNode, ScanNode, SortNode
from repro.sql.optimizer import fold_expr, optimize
from repro.sql.parser import parse_statement


def plan_for(engine, sql):
    stmt = parse_statement(sql)
    return optimize(analyze_select(engine, stmt))


def find_scan(plan):
    node = plan
    while not isinstance(node, ScanNode):
        node = node.children()[0]
    return node


class TestConstantFolding:
    def test_arithmetic(self):
        expr = fold_expr(BinaryOp("*", Literal(52), Literal(9)))
        assert expr == Literal(468)

    def test_st_makembr_folded(self):
        from repro.sql.ast import FuncCall
        call = FuncCall("st_makembr", (Literal(1.0), Literal(2.0),
                                       Literal(3.0), Literal(4.0)))
        folded = fold_expr(call)
        assert isinstance(folded, Literal)
        assert folded.value == Envelope(1, 2, 3, 4)

    def test_partial_folding(self):
        expr = fold_expr(BinaryOp("=", Column("fid"),
                                  BinaryOp("*", Literal(52), Literal(9))))
        assert expr == BinaryOp("=", Column("fid"), Literal(468))

    def test_invalid_fold_left_intact(self):
        # Division by zero folds to NULL rather than erroring at plan time.
        expr = fold_expr(BinaryOp("/", Literal(1), Literal(0)))
        assert expr == Literal(None)


class TestPushdown:
    def test_paper_running_example(self, poi_engine):
        """Figure 8: filter pushed through the subquery projection to the
        scan; projection pruned to the needed fields; sort above."""
        plan = plan_for(poi_engine, """
            SELECT name, geom FROM ( SELECT * FROM poi ) t
            WHERE fid = 52*9 AND geom WITHIN st_makeMBR(100,30,130,45)
            ORDER BY time
        """)
        scan = find_scan(plan)
        assert scan.pushed_filter is not None
        # The folded constant 468 landed in the scan predicate.
        assert "468" in repr(scan.pushed_filter)
        assert set(scan.pushed_projection) == {"fid", "name", "geom",
                                               "time"}
        # Sort sits between the pruned projection and the final one.
        assert isinstance(plan, ProjectNode)
        assert plan.columns == ["name", "geom"]
        assert isinstance(plan.child, SortNode)

    def test_filter_not_pushed_through_limit(self, poi_engine):
        plan = plan_for(poi_engine, """
            SELECT * FROM (SELECT * FROM poi LIMIT 5) t WHERE fid = 1
        """)
        # The inner LIMIT must execute before the filter.
        from repro.sql.logical import FilterNode, LimitNode
        node = plan
        seen = []
        while True:
            seen.append(type(node).__name__)
            children = node.children()
            if not children:
                break
            node = children[0]
        assert seen.index("FilterNode") < seen.index("LimitNode")

    def test_projection_pruned_to_used_columns(self, poi_engine):
        plan = plan_for(poi_engine, "SELECT name FROM poi")
        scan = find_scan(plan)
        assert scan.pushed_projection == ["name"]

    def test_filter_columns_kept_in_scan_projection(self, poi_engine):
        plan = plan_for(poi_engine,
                        "SELECT name FROM poi WHERE fid > 10")
        scan = find_scan(plan)
        assert "fid" in scan.pushed_projection
        assert "name" in scan.pushed_projection
        assert "geom" not in scan.pushed_projection

    def test_renamed_column_pushdown(self, poi_engine):
        plan = plan_for(poi_engine, """
            SELECT alias_name FROM
              (SELECT name AS alias_name FROM poi) t
            WHERE alias_name = 'poi1'
        """)
        scan = find_scan(plan)
        # The filter was rewritten onto the underlying column name.
        assert "name" in repr(scan.pushed_filter)

    def test_pretty_renders_tree(self, poi_engine):
        plan = plan_for(poi_engine,
                        "SELECT name FROM poi WHERE fid = 1")
        text = plan.pretty()
        assert "Scan[poi]" in text
        assert "Project" in text
