"""DDL and DML statements through the SQL front end."""

import pytest

from repro.errors import AnalysisError, TableNotFoundError

from conftest import T0


class TestCreateAndDrop:
    def test_create_table_statement(self, engine):
        rs = engine.sql(
            "CREATE TABLE poi (fid integer:primary key, name string, "
            "time date, geom point:srid=4326)")
        assert "created" in rs.message
        assert engine.has_table("poi")
        table = engine.table("poi")
        assert table.schema.primary_key.name == "fid"
        assert set(table.strategies) == {"z2", "z2t"}

    def test_create_with_userdata_indices(self, engine):
        engine.sql("CREATE TABLE t (fid integer:primary key, time date, "
                   "geom point) USERDATA "
                   "{'geomesa.indices.enabled':'z3:year'}")
        assert set(engine.table("t").strategies) == {"z3:year"}

    def test_create_plugin_table(self, engine):
        engine.sql("CREATE TABLE trips AS trajectory")
        table = engine.table("trips")
        assert table.kind == "plugin"
        assert "gps_list" in table.schema.names

    def test_drop_table(self, engine):
        engine.sql("CREATE TABLE t (fid integer:primary key, geom point)")
        engine.sql("DROP TABLE t")
        assert not engine.has_table("t")

    def test_drop_missing_view(self, engine):
        with pytest.raises(TableNotFoundError):
            engine.sql("DROP VIEW ghost")


class TestShowDesc:
    def test_show_tables_and_views(self, poi_engine):
        poi_engine.sql("CREATE VIEW v AS SELECT * FROM poi LIMIT 1")
        assert poi_engine.sql("SHOW TABLES").rows == [{"table": "poi"}]
        assert poi_engine.sql("SHOW VIEWS").rows == [{"view": "v"}]

    def test_desc_table(self, poi_engine):
        rows = poi_engine.sql("DESC TABLE poi").rows
        assert rows[0]["field"] == "fid"
        assert rows[0]["flags"] == "primary key"

    def test_desc_view(self, poi_engine):
        poi_engine.sql("CREATE VIEW v AS SELECT fid, name FROM poi")
        rows = poi_engine.sql("DESC VIEW v").rows
        assert [r["field"] for r in rows] == ["fid", "name"]


class TestInsert:
    def test_insert_values(self, engine):
        engine.sql("CREATE TABLE t (fid integer:primary key, name string,"
                   " time date, geom point)")
        rs = engine.sql(
            f"INSERT INTO t (fid, name, time, geom) VALUES "
            f"(1, 'a', {T0}, st_makePoint(116.3, 39.9)), "
            f"(2, 'b', {T0 + 60}, st_makePoint(116.4, 39.95))")
        assert "2 rows" in rs.message
        assert engine.table("t").row_count == 2

    def test_insert_default_column_order(self, engine):
        engine.sql("CREATE TABLE t (fid integer:primary key, name string,"
                   " time date, geom point)")
        engine.sql(f"INSERT INTO t VALUES (9, 'x', {T0}, "
                   f"st_makePoint(116.0, 39.8))")
        assert engine.table("t").get("9")["name"] == "x"

    def test_insert_arity_mismatch(self, engine):
        engine.sql("CREATE TABLE t (fid integer:primary key, geom point)")
        with pytest.raises(AnalysisError):
            engine.sql("INSERT INTO t (fid) VALUES (1, 2)")

    def test_insert_is_queryable_immediately(self, engine):
        engine.sql("CREATE TABLE t (fid integer:primary key, name string,"
                   " time date, geom point)")
        engine.sql(f"INSERT INTO t VALUES (1, 'hit', {T0}, "
                   f"st_makePoint(116.2, 39.9))")
        rs = engine.sql("SELECT name FROM t WHERE geom WITHIN "
                        "st_makeMBR(116.1, 39.8, 116.3, 40.0)")
        assert rs.rows == [{"name": "hit"}]


class TestStoreView:
    def test_store_and_requery(self, poi_engine):
        poi_engine.sql(f"CREATE VIEW v AS SELECT fid, name, time, geom "
                       f"FROM poi WHERE time BETWEEN {T0} AND {T0+86400}")
        poi_engine.sql("STORE VIEW v TO TABLE archived")
        count_view = poi_engine.sql("SELECT count(*) FROM v").rows
        count_table = poi_engine.sql(
            "SELECT count(*) FROM archived").rows
        assert count_view == count_table


class TestLoadStatement:
    def test_load_hive_with_filter(self, engine):
        engine.sql("CREATE TABLE t (fid string:primary key, time date, "
                   "geom point)")
        engine.register_source("db.orders", [
            {"trajId": str(i), "lng": 116.0 + i * 0.01, "lat": 39.9,
             "timestamp": int((T0 + i) * 1000)} for i in range(20)])
        rs = engine.sql(
            "LOAD hive:db.orders TO geomesa:t CONFIG {"
            "'fid': 'trajId', "
            "'time': 'long_to_date_ms(timestamp)', "
            "'geom': 'lng_lat_to_point(lng, lat)'} "
            "FILTER 'trajId=\"7\" limit 10'")
        assert "1 rows loaded" in rs.message
        assert engine.table("t").get("7") is not None

    def test_load_numeric_filter(self, engine):
        engine.sql("CREATE TABLE t (fid string:primary key, time date, "
                   "geom point)")
        engine.register_source("src", [
            {"id": i, "lng": 116.0, "lat": 39.9, "ts": T0}
            for i in range(10)])
        rs = engine.sql(
            "LOAD hive:src TO geomesa:t CONFIG {"
            "'fid': 'to_string(id)', 'time': 'long_to_date_s(ts)', "
            "'geom': 'lng_lat_to_point(lng, lat)'} FILTER 'id < 3'")
        assert "3 rows loaded" in rs.message


class TestNamespaces:
    def test_isolated_namespaces(self, engine):
        engine.sql("CREATE TABLE t (fid integer:primary key, geom point)",
                   namespace="alice__")
        engine.sql("CREATE TABLE t (fid integer:primary key, geom point)",
                   namespace="bob__")
        assert engine.sql("SHOW TABLES", namespace="alice__").rows == \
            [{"table": "t"}]
        # The physical names are distinct.
        assert engine.has_table("alice__t") and engine.has_table("bob__t")

    def test_namespace_invisible_in_listing(self, engine):
        engine.sql("CREATE TABLE mine (fid integer:primary key, "
                   "geom point)", namespace="u__")
        rows = engine.sql("SHOW TABLES", namespace="u__").rows
        assert rows == [{"table": "mine"}]
