"""The geofence plugin table (future work #2)."""

import pytest

from repro import JustEngine, Polygon

from conftest import T0


def square(lng, lat, side):
    return Polygon([(lng, lat), (lng + side, lat),
                    (lng + side, lat + side), (lng, lat + side)])


@pytest.fixture
def fences(engine: JustEngine):
    table = engine.create_plugin_table("fences", "geofence")
    table.insert_rows([
        {"gid": "dock", "name": "Loading dock", "category": "delivery",
         "valid_from": T0, "valid_to": T0 + 86400,
         "area": square(116.30, 39.90, 0.01)},
        {"gid": "event", "name": "Marathon", "category": "closure",
         "valid_from": T0 + 3600, "valid_to": T0 + 7200,
         "area": square(116.305, 39.905, 0.02)},
        {"gid": "far", "name": "Other district", "category": "delivery",
         "valid_from": T0, "valid_to": T0 + 86400,
         "area": square(116.60, 40.10, 0.01)},
    ])
    return table


class TestGeofencePlugin:
    def test_created_via_sql(self, engine):
        engine.sql("CREATE TABLE zones AS geofence")
        table = engine.table("zones")
        assert table.plugin_type == "geofence"
        assert set(table.strategies) == {"xz2", "xz2t"}

    def test_item_is_the_polygon(self, fences):
        row = fences.get("dock")
        assert row["item"] == row["area"]

    def test_hit_test_point_and_time(self, fences):
        # Inside both polygons, but only 'dock' is valid at T0.
        hits = fences.active_fences(116.306, 39.906, T0)
        assert [h["gid"] for h in hits] == ["dock"]
        # An hour later the marathon closure also applies.
        hits = fences.active_fences(116.306, 39.906, T0 + 3600)
        assert {h["gid"] for h in hits} == {"dock", "event"}

    def test_hit_test_outside_polygons(self, fences):
        assert fences.active_fences(116.50, 39.95, T0) == []

    def test_hit_test_after_expiry(self, fences):
        assert fences.active_fences(116.306, 39.906, T0 + 10 * 86400) == []

    def test_queryable_via_sql(self, engine, fences):
        rs = engine.sql(
            f"SELECT gid FROM fences WHERE area WITHIN "
            f"st_makeMBR(116.29, 39.89, 116.35, 39.95) "
            f"AND valid_from BETWEEN {T0 - 1} AND {T0 + 86400}")
        assert {r["gid"] for r in rs.rows} == {"dock", "event"}

    def test_update_replaces_fence(self, fences):
        fences.insert_rows([{
            "gid": "dock", "name": "Loading dock v2",
            "category": "delivery", "valid_from": T0,
            "valid_to": T0 + 86400,
            "area": square(116.40, 39.95, 0.01)}])
        assert fences.row_count == 3
        assert fences.active_fences(116.305, 39.905, T0) == []
        hits = fences.active_fences(116.405, 39.955, T0)
        assert [h["name"] for h in hits] == ["Loading dock v2"]
