"""Dataset generators: determinism, shape, statistics."""

import pytest

from repro.datagen import (
    dataset_statistics,
    generate_order_dataset,
    generate_synthetic_dataset,
    generate_traj_dataset,
)
from repro.datagen.ordergen import ORDER_TIME_END, ORDER_TIME_START
from repro.datagen.trajgen import AREA, TRAJ_TIME_END, TRAJ_TIME_START
from repro.datagen.synthetic import SYNTHETIC_TIME_END


class TestTrajGenerator:
    def test_deterministic(self):
        a = generate_traj_dataset(5, 50, seed=42)
        b = generate_traj_dataset(5, 50, seed=42)
        assert [t.tid for t in a] == [t.tid for t in b]
        assert a[0].points == b[0].points

    def test_seed_changes_data(self):
        a = generate_traj_dataset(5, 50, seed=1)
        b = generate_traj_dataset(5, 50, seed=2)
        assert a[0].points != b[0].points

    def test_within_area_and_time_span(self):
        for trajectory in generate_traj_dataset(10, 60, seed=3):
            for p in trajectory.points:
                assert AREA[0] <= p.lng <= AREA[2]
                assert AREA[1] <= p.lat <= AREA[3]
            assert trajectory.start_time >= TRAJ_TIME_START
            assert trajectory.end_time <= TRAJ_TIME_END + 86400

    def test_time_monotone(self):
        for trajectory in generate_traj_dataset(5, 60, seed=4):
            times = [p.time for p in trajectory.points]
            assert times == sorted(times)

    def test_plausible_speeds(self):
        for trajectory in generate_traj_dataset(5, 80, seed=5):
            for a, b in zip(trajectory.points, trajectory.points[1:]):
                assert a.speed_to_mps(b) < 60.0  # under 216 km/h


class TestOrderGenerator:
    def test_deterministic(self):
        assert generate_order_dataset(100, seed=9) == \
            generate_order_dataset(100, seed=9)

    def test_schema_and_ranges(self):
        rows = generate_order_dataset(200, seed=9)
        assert len(rows) == 200
        for row in rows:
            assert set(row) == {"fid", "time", "geom", "amount",
                                "category"}
            assert ORDER_TIME_START <= row["time"] <= ORDER_TIME_END
            assert row["amount"] > 0

    def test_spatial_skew(self):
        """Hotspots make the distribution non-uniform: the densest small
        cell should hold far more than the uniform share."""
        rows = generate_order_dataset(3000, seed=9)
        from collections import Counter
        cells = Counter((round(r["geom"].lng, 2), round(r["geom"].lat, 2))
                        for r in rows)
        densest = cells.most_common(1)[0][1]
        uniform_share = 3000 / (80 * 60)  # area is 0.8 x 0.6 degrees
        assert densest > 10 * uniform_share


class TestSynthetic:
    def test_multiplier_scales_count(self, small_trajs):
        doubled = generate_synthetic_dataset(small_trajs, 2)
        assert len(doubled) == 2 * len(small_trajs)

    def test_ids_unique(self, small_trajs):
        synthetic = generate_synthetic_dataset(small_trajs, 3)
        tids = [t.tid for t in synthetic]
        assert len(set(tids)) == len(tids)

    def test_copies_spread_over_extended_span(self, small_trajs):
        synthetic = generate_synthetic_dataset(small_trajs, 4)
        latest = max(t.end_time for t in synthetic)
        base_latest = max(t.end_time for t in small_trajs)
        assert latest > base_latest
        assert latest <= SYNTHETIC_TIME_END + 86400 * 30

    def test_multiplier_validation(self, small_trajs):
        with pytest.raises(ValueError):
            generate_synthetic_dataset(small_trajs, 0)


class TestStatistics:
    def test_table2_rows(self, small_trajs, small_orders):
        stats = dataset_statistics(trajectories=small_trajs,
                                   orders=small_orders,
                                   synthetic=generate_synthetic_dataset(
                                       small_trajs, 2))
        names = [s.name for s in stats]
        assert names == ["Traj", "Order", "Synthetic"]
        traj, order, synthetic = stats
        assert traj.num_points == sum(len(t.points) for t in small_trajs)
        assert traj.num_records == len(small_trajs)
        assert order.num_points == order.num_records == len(small_orders)
        assert synthetic.num_points == pytest.approx(2 * traj.num_points,
                                                     rel=0.01)
        assert traj.raw_size_bytes > 0
        row = traj.as_row()
        assert row["dataset"] == "Traj" and row["raw_mb"] > 0
