"""Fault plans, deterministic injection, and client retry behaviour."""

import pytest

from repro.errors import RegionUnavailableError
from repro.faults import CorruptionMode, FaultInjector, FaultPlan, KillServer
from repro.kvstore import KVStore, SyncPolicy
from repro.service.client import JustClient
from repro.service.server import JustServer


def durable_store(**kwargs):
    defaults = dict(num_servers=3, wal_policy=SyncPolicy.SYNC,
                    flush_bytes=4 * 1024, split_bytes=16 * 1024,
                    block_bytes=512)
    defaults.update(kwargs)
    return KVStore(**defaults)


class TestFaultPlan:
    def test_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            KillServer(0)
        with pytest.raises(ValueError):
            KillServer(0, after_ops=5, probability=0.5)

    def test_validates_ranges(self):
        with pytest.raises(ValueError):
            KillServer(0, after_ops=0)
        with pytest.raises(ValueError):
            KillServer(0, probability=1.5)

    def test_corruption_tail_sizes(self):
        assert KillServer(0, after_ops=1).lost_tail_records == 0
        assert KillServer(0, after_ops=1,
                          corruption=CorruptionMode.TORN_TAIL
                          ).lost_tail_records == 1
        assert KillServer(0, after_ops=1,
                          corruption=CorruptionMode.DELAYED_WRITE,
                          delayed_records=7).lost_tail_records == 7

    def test_kill_after_shorthand(self):
        plan = FaultPlan.kill_after(2, 100)
        assert plan.faults[0].server == 2
        assert plan.faults[0].after_ops == 100


class TestFaultInjector:
    def test_kill_after_k_ops_is_exact(self):
        store = durable_store()
        injector = FaultInjector(FaultPlan.kill_after(0, 10)).attach(store)
        table = store.create_table("t")
        for i in range(9):
            table.put(f"k{i}".encode(), b"v")
        assert store.dead_servers == set()
        table.put(b"k9", b"v")  # the 10th op fires the fault
        assert store.dead_servers == {0}
        assert injector.fired[0].after_ops == 10

    def test_reads_do_not_advance_the_op_counter(self):
        store = durable_store()
        FaultInjector(FaultPlan.kill_after(0, 2)).attach(store)
        table = store.create_table("t")
        table.put(b"a", b"1")
        for _ in range(10):
            table.get(b"a")
        assert store.dead_servers == set()
        table.put(b"b", b"2")
        assert store.dead_servers == {0}

    def test_probabilistic_kill_is_seed_deterministic(self):
        def run(seed):
            store = durable_store()
            plan = FaultPlan([KillServer(0, probability=0.02)], seed=seed)
            injector = FaultInjector(plan).attach(store)
            table = store.create_table("t")
            for i in range(500):
                table.put(f"k{i:04d}".encode(), b"v")
            return injector.op_count, frozenset(store.dead_servers)

        assert run(7) == run(7)
        assert run(7) != run(8) or run(7)[1]  # seeds differ or both fired

    def test_fault_against_dead_server_is_dropped(self):
        store = durable_store()
        plan = FaultPlan([KillServer(0, after_ops=1),
                          KillServer(0, after_ops=2)])
        FaultInjector(plan).attach(store)
        table = store.create_table("t")
        table.put(b"a", b"1")
        table.put(b"b", b"2")  # second fault targets an already-dead server
        assert store.dead_servers == {0}

    def test_injector_constructor_wiring(self):
        store = durable_store(
            fault_injector=FaultInjector(FaultPlan.kill_after(1, 1)))
        table = store.create_table("t")
        table.put(b"a", b"1")
        assert store.dead_servers == {1}


class TestClientRetry:
    class FlakyServer:
        """Server stub: unavailable for the first N executes."""

        def __init__(self, failures):
            self.failures = failures
            self.calls = 0

        def connect(self, user):
            return "session-1"

        def execute(self, session_id, statement):
            self.calls += 1
            if self.calls <= self.failures:
                raise RegionUnavailableError("t", 1, 0)
            return f"ok after {self.calls}"

        def disconnect(self, session_id):
            pass

    def test_retries_until_region_recovers(self):
        delays = []
        server = self.FlakyServer(failures=2)
        client = JustClient(server, "alice", max_retries=4,
                            backoff_base_ms=10.0, sleep=delays.append)
        assert client.execute_query("SELECT 1") == "ok after 3"
        assert client.retries_attempted == 2
        # Equal jitter draws each delay from [cap/2, cap) where the caps
        # double: 10ms then 20ms (in seconds).
        assert len(delays) == 2
        assert 0.005 <= delays[0] < 0.01
        assert 0.01 <= delays[1] < 0.02

    def test_unjittered_backoff_is_exact(self):
        delays = []
        server = self.FlakyServer(failures=2)
        client = JustClient(server, "alice", max_retries=4,
                            backoff_base_ms=10.0, jitter_seed=None,
                            sleep=delays.append)
        client.execute_query("SELECT 1")
        assert delays == [0.01, 0.02]

    def test_jitter_is_seeded_and_deterministic(self):
        def run(seed):
            delays = []
            client = JustClient(self.FlakyServer(failures=2), "alice",
                                jitter_seed=seed, sleep=delays.append)
            client.execute_query("SELECT 1")
            return delays
        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_backoff_is_capped(self):
        from repro.resilience import CircuitBreaker
        delays = []
        server = self.FlakyServer(failures=6)
        client = JustClient(server, "alice", max_retries=6,
                            backoff_base_ms=10.0, backoff_max_ms=40.0,
                            jitter_seed=None, sleep=delays.append,
                            breaker=CircuitBreaker(failure_threshold=20))
        client.execute_query("SELECT 1")
        # 10, 20, 40, then capped at 40 forever.
        assert delays == [0.01, 0.02, 0.04, 0.04, 0.04, 0.04]

    def test_raises_after_retry_budget(self):
        server = self.FlakyServer(failures=10)
        client = JustClient(server, "alice", max_retries=3,
                            sleep=lambda _s: None)
        with pytest.raises(RegionUnavailableError):
            client.execute_query("SELECT 1")
        assert server.calls == 4  # initial try + 3 retries

    def test_end_to_end_recovery_through_sql(self):
        from repro.core.engine import JustEngine
        server = JustServer(JustEngine(wal_policy=SyncPolicy.SYNC))
        store = server.engine.store
        client = JustClient(server, "alice", max_retries=3,
                            sleep=lambda _s: store.recovering_servers and
                            store.failover(next(iter(
                                store.recovering_servers))))
        client.execute_query(
            "CREATE TABLE t (fid integer:primary key, geom point)")
        client.execute_query(
            "INSERT INTO t VALUES (1, st_makePoint(116.3, 39.9))")
        # Kill every server that hosts table data, deferring failover so
        # the query hits the unavailability window and must retry.
        victims = set()
        for table in store.tables():
            victims |= table.servers_used()
        victim = sorted(victims)[0]
        store.crash_server(victim, defer_failover=True)
        result = client.execute_query("SELECT fid FROM t")
        assert [row["fid"] for row in result.rows] == [1]
        assert client.retries_attempted >= 1
