"""Render EXPERIMENTS.md from bench_results.json.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/render_experiments.py

Combines the measured figure tables with the paper's reported shapes so
EXPERIMENTS.md always reflects the latest benchmark run.
"""

from __future__ import annotations

import json
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "bench_results.json"
OUTPUT = ROOT / "EXPERIMENTS.md"

#: Paper-side narrative per experiment: what Section VIII reports, and
#: which shape properties this reproduction is expected to preserve.
PAPER = {
    "Table I": {
        "paper": "Feature matrix of 12 systems: only JUST combines "
                 "scalability, SQL, updates, processing, S/ST and "
                 "non-point support.",
        "shape": "Matrix reproduced verbatim from the paper's rows.",
    },
    "Table II": {
        "paper": "Traj: 886.6M points / 314k records / 136 GB (2014-03); "
                 "Order: 71.0M points (2018-10..11); Synthetic: copy & "
                 "sample of Traj to 1.36 TB (2014-03..12).",
        "shape": "Generated at ~1/10000 volume with the same schema, "
                 "record-size ratio (Traj >> Order), skew, and time "
                 "spans; Synthetic is a jittered, time-shifted scale-up "
                 "of Traj.",
    },
    "Fig 10a": {
        "paper": "Order storage grows linearly; compressing the tiny "
                 "Order fields *increases* storage slightly.",
        "shape": "JUSTcompress >= JUST at every fraction; linear growth.",
    },
    "Fig 10b": {
        "paper": "Traj storage grows linearly; compression stores 136 GB "
                 "raw in ~30 GB (JUST well below JUSTnc).",
        "shape": "JUST < 0.7 x JUSTnc; linear growth.  Measured "
                 "compression ratio ~0.63 vs the paper's ~0.35 — the "
                 "generated GPS tracks carry more white noise than real "
                 "lorry traces, so DEFLATE finds less redundancy.",
    },
    "Fig 10c": {
        "paper": "Indexing Order: JUST slower than Spark systems "
                 "(indexing includes storing); Hadoop systems take hours "
                 "(not shown).",
        "shape": "JUST ~10x Spark load times, linear in data size.",
    },
    "Fig 10d": {
        "paper": "Indexing Traj: Simba OOM at 40%, SpatialSpark fails at "
                 "100%; JUST < JUSTnc (less write I/O).",
        "shape": "Same OOM crossovers; JUST < JUSTnc; JUST below the "
                 "Spark systems for trajectory rows.",
    },
    "Fig 11a": {
        "paper": "Spatial range (Order) vs data size: all grow; JUST "
                 "competitive with Spark systems, far ahead of "
                 "SpatialHadoop.",
        "shape": "Monotone growth; SpatialHadoop > 3x JUST (paper shows "
                 "an even larger gap as its job launch dominates a "
                 "longer-running cluster).",
    },
    "Fig 11b": {
        "paper": "Spatial range (Traj): Simba OOM > 20%, LocationSpark "
                 "OOM at 20%; JUST < JUSTnc (decompression beats the "
                 "extra disk I/O).",
        "shape": "Same OOM points; JUST < JUSTnc at every fraction.",
    },
    "Fig 11c": {
        "paper": "Bigger windows cost more for all systems (Order); "
                 "Simba/SpatialSpark slightly faster than JUST "
                 "(all-in-memory).",
        "shape": "Monotone in window size; Spark systems and JUST within "
                 "~2x of each other.",
    },
    "Fig 11d": {
        "paper": "Traj windows: JUST faster than SpatialSpark even with "
                 "SpatialSpark holding only 80% of the data.",
        "shape": "JUST below GeoSpark and SpatialSpark(80%) throughout.",
    },
    "Fig 12a": {
        "paper": "ST range (Order) vs data size: JUST fastest; among Z3 "
                 "variants longer periods do better (JUSTc < JUSTy < "
                 "JUSTd).",
        "shape": "JUST <= all variants at >= 60% data; variant ordering "
                 "JUSTc <= JUSTy <= JUSTd at 100%; JUSTd > 1.5x JUST "
                 "everywhere.",
    },
    "Fig 12b": {
        "paper": "ST range vs window (Order): JUST an order of magnitude "
                 "under ST-Hadoop (which holds only 20% of the data).",
        "shape": "ST-Hadoop(20%) > 5x JUST at every window; JUST leads "
                 "its variants.",
    },
    "Fig 12c": {
        "paper": "ST range vs window (Traj): JUST < JUSTnc < XZ3 "
                 "variants.",
        "shape": "Ordering preserved; the XZ3 year/century gaps are "
                 "larger here than the paper's because at g=8 the "
                 "century-period XZ3 cannot filter time at all and "
                 "degenerates to a full scan.",
    },
    "Fig 12d": {
        "paper": "ST range vs time window (Order): all grow; ST-Hadoop "
                 "~10x slower (11.3 s at 20% data); JUSTd degrades "
                 "fastest.",
        "shape": "Monotone in window; ST-Hadoop(20%) > 5x JUST up to 1d "
                 "windows; JUSTd > 3x JUST at 1m.",
    },
    "Fig 13a": {
        "paper": "k-NN (Order) vs data size: grows with data; JUST far "
                 "below GeoSpark/LocationSpark, competitive with Simba.",
        "shape": "JUST < GeoSpark; SpatialHadoop > 5x JUST (expanding "
                 "MapReduce rounds).",
    },
    "Fig 13b": {
        "paper": "k-NN (Traj): Simba OOM at 40%; JUST slightly beats "
                 "JUSTnc.",
        "shape": "Same OOM point; JUST <= JUSTnc.",
    },
    "Fig 13c": {
        "paper": "k-NN vs k (Order): all grow mildly with k.",
        "shape": "Weakly monotone in k for JUST; JUST < GeoSpark at "
                 "every k.",
    },
    "Fig 13d": {
        "paper": "k-NN vs k (Traj): JUST a little better than JUSTnc.",
        "shape": "JUST <= JUSTnc at every k (k rescaled to the generated "
                 "record count; see harness.TRAJ_K_VALUES).",
    },
    "Fig 14a": {
        "paper": "Synthetic: indexing time and storage grow linearly; "
                 "1 TB indexed in ~1.5 h into 313 GB.",
        "shape": "Both series linear (5x data -> ~5x cost).",
    },
    "Fig 14b": {
        "paper": "Synthetic queries: k-NN and spatial range grow with "
                 "data; the ST range query is flat — per-period record "
                 "counts do not change when more periods are appended.",
        "shape": "S grows > 1.5x from 20% to 100%; ST stays within 1.5x "
                 "of its 20% value and sits below S at 100%.",
    },
    "Ablation A1": {
        "paper": "(design choice) Z2T period length vs query time window.",
        "shape": "Hour periods fan out badly on week-long queries; a day "
                 "is the sweet spot for the paper's workloads.",
    },
    "Ablation A2": {
        "paper": "(design choice) key-range decomposition budget.",
        "shape": "A starved budget (16 ranges) over-scans vs the default "
                 "256.",
    },
    "Ablation A3": {
        "paper": "(methodology) HBase block cache: the paper randomizes "
                 "queries to defeat it.",
        "shape": "A repeated identical query is far cheaper warm than "
                 "cold — which is why the harness clears caches between "
                 "queries.",
    },
    "Ablation A4": {
        "paper": "(design choice) shard-prefix count.",
        "shape": "Each extra shard multiplies per-query range fan-out; "
                 "writes spread further.  16 shards cost more per query "
                 "than 1.",
    },
    "Ablation A5": {
        "paper": "(design choice) GPS-list codec.",
        "shape": "gzip and zip both shrink the trajectory table vs "
                 "storing plain.",
    },
    "Ablation A6": {
        "paper": "(Table I) JUST is update-enabled; Spark systems "
                 "rebuild indexes on new data.",
        "shape": "Appending 1% new records costs JUST a small insert; "
                 "the GeoSpark path is a full reload, >5x more.",
    },
}

HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation (Section VIII), as
regenerated by ``pytest benchmarks/ --benchmark-only`` on the generated
laptop-scale datasets.  All "times" are **simulated milliseconds** from
the calibrated cluster cost model (see DESIGN.md §2); the claim preserved
is the *shape* of each result — who wins, by roughly what factor, where
the crossovers and failures fall — not the absolute numbers of the
authors' 5-node testbed.  Each figure's shape assertions are enforced by
the corresponding ``benchmarks/bench_*.py`` test, so a regression in any
shape fails the benchmark suite.

``OOM`` marks a simulated out-of-memory failure (the system's cached
footprint exceeded the cluster budget), matching the failures the paper
reports for the Spark-based systems.

Regenerate this file after a benchmark run with
``python benchmarks/render_experiments.py``.
"""


def render_table(entry: dict) -> str:
    series = entry["series"]
    params: list = []
    for values in series.values():
        for param in values:
            if param not in params:
                params.append(param)
    lines = ["| " + entry["param"] + " | "
             + " | ".join(str(p) for p in params) + " |",
             "|" + "---|" * (len(params) + 1)]
    for name, values in series.items():
        cells = []
        for param in params:
            value = values.get(param, values.get(str(param), "-"))
            if isinstance(value, float):
                cells.append(f"{value:.1f}")
            else:
                cells.append(str(value))
        lines.append("| " + name + " | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main() -> None:
    results = json.loads(RESULTS.read_text())
    parts = [HEADER]
    order = list(PAPER)
    for figure_id in order:
        parts.append(f"\n## {figure_id}")
        entry = results.get(figure_id)
        narrative = PAPER[figure_id]
        if entry is not None:
            parts.append(f"\n*{entry['title']}*\n")
        parts.append(f"**Paper:** {narrative['paper']}\n")
        parts.append(f"**Reproduced shape:** {narrative['shape']}\n")
        if entry is None:
            parts.append("_Not present in the last benchmark run._\n")
            continue
        parts.append("**Measured:**\n")
        parts.append(render_table(entry))
        parts.append("")
    extras = sorted(set(results) - set(order))
    for figure_id in extras:
        entry = results[figure_id]
        parts.append(f"\n## {figure_id}\n")
        parts.append(f"*{entry['title']}*\n")
        parts.append(render_table(entry))
        parts.append("")
    OUTPUT.write_text("\n".join(parts))
    print(f"wrote {OUTPUT} ({len(results)} experiments)")


if __name__ == "__main__":
    main()
