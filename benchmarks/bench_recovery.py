"""Durability: crash-recovery cost and loss per WAL sync policy.

Not a paper figure — JUST inherits HBase's WAL, so this quantifies the
durability subsystem the engine sits on: for each sync policy, inject a
region-server crash mid-ingest, fail its regions over, and report

* acknowledged writes lost (SYNC must lose zero — the acceptance bar),
* WAL bytes replayed during recovery,
* simulated recovery time and ingest-side fsync overhead.
"""

from harness import FigureTable

from repro.faults.demo import run_crash_experiment
from repro.kvstore import SyncPolicy

_KEYS = 3000
_KILL_AFTER = 2000


def _sweep(data):
    results = {}
    for policy in SyncPolicy:
        results[policy] = run_crash_experiment(
            policy, num_keys=_KEYS, kill_after=_KILL_AFTER,
            cost_model=data.cost_model)
    return results


def test_recovery_per_sync_policy(data, report, benchmark):
    """Crash after 2000/3000 writes: loss and recovery cost by policy."""
    results = _sweep(data)

    table = FigureTable("Durability D1",
                        "Crash mid-ingest: loss & recovery by WAL policy",
                        "metric")
    for policy, result in results.items():
        series = f"wal={policy.value}"
        table.add(series, "acked", result.acked_writes)
        table.add(series, "lost", result.lost_acked_writes)
        table.add(series, "ingest ms", result.ingest_ms)
        table.add(series, "fsyncs", result.wal_syncs)
        table.add(series, "replayed B", result.recovery.replayed_bytes)
        table.add(series, "recovery ms", result.recovery.recovery_ms)
    report.record(table)
    benchmark(lambda: run_crash_experiment(
        SyncPolicy.ASYNC, num_keys=600, kill_after=400,
        cost_model=data.cost_model))

    sync = results[SyncPolicy.SYNC]
    # The acceptance property: SYNC acknowledges only durable writes.
    assert sync.lost_acked_writes == 0
    assert sync.recovery.replayed_bytes > 0
    # Fewer fsyncs as the policy relaxes; ingest cost follows.
    assert sync.wal_syncs > results[SyncPolicy.PERIODIC].wal_syncs \
        > results[SyncPolicy.ASYNC].wal_syncs
    assert sync.ingest_ms > results[SyncPolicy.ASYNC].ingest_ms


def test_recovery_time_scales_with_replay_volume(data, report, benchmark):
    """Later crashes leave more unflushed log to replay, costing more."""
    table = FigureTable("Durability D2",
                        "Recovery cost vs crash point (SYNC), sim ms",
                        "kill after")
    points = (500, 1500, 2500)
    replayed = {}
    for kill_after in points:
        result = run_crash_experiment(
            SyncPolicy.SYNC, num_keys=kill_after + 200,
            kill_after=kill_after, cost_model=data.cost_model)
        replayed[kill_after] = result.recovery.replayed_bytes
        table.add("replayed B", kill_after,
                  result.recovery.replayed_bytes)
        table.add("recovery ms", kill_after,
                  result.recovery.recovery_ms)
        assert result.lost_acked_writes == 0
    report.record(table)
    benchmark(lambda: replayed)
    # Replay volume is bounded by what flush checkpoints already retired,
    # but an early crash must not replay more than a late one.
    assert replayed[points[0]] <= replayed[points[-1]]
