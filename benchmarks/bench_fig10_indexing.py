"""Figure 10c/10d: indexing (+storing) time vs data size.

Paper shapes: for Order, JUST pays more than the Spark systems (it writes
to disk, they cache in memory); for Traj, Simba OOMs at 40% and
SpatialSpark at 100%, while JUST keeps scaling; JUSTnc is slower than
JUST because the uncompressed data incurs more write I/O; Hadoop systems
take orders of magnitude longer (they serialize index files).
"""

from harness import DATA, FRACTIONS, OOM, FigureTable

from repro.baselines import GeoSpark, LocationSpark, Simba, SpatialSpark

ORDER_SYSTEMS = (GeoSpark, LocationSpark, SpatialSpark, Simba)
TRAJ_SYSTEMS = (GeoSpark, SpatialSpark, Simba)


def test_fig10c_indexing_order(data, report, benchmark):
    just = data.order_just
    table = FigureTable("Fig 10c", "Indexing time (Order), sim ms",
                        "data size %")
    for percent in FRACTIONS:
        table.add("JUST", percent, just["index_ms"]["JUST"][percent])
        for cls in ORDER_SYSTEMS:
            loaded = data.baseline(cls, "order", percent)
            table.add(cls.name, percent,
                      OOM if loaded == OOM else loaded["load_ms"])
    report.record(table)
    benchmark(lambda: data.baseline(Simba, "order", 100))

    # JUST indexing+storing costs more than an in-memory Spark load.
    assert table.value("JUST", 100) > table.value("GeoSpark", 100)
    # Monotone growth for JUST.
    series = [table.value("JUST", p) for p in FRACTIONS]
    assert series == sorted(series)


def test_fig10d_indexing_traj(data, report, benchmark):
    just = data.traj_just
    just_nc = data.traj_just_nc
    table = FigureTable("Fig 10d", "Indexing time (Traj), sim ms",
                        "data size %")
    for percent in FRACTIONS:
        table.add("JUST", percent, just["index_ms"]["JUST"][percent])
        table.add("JUSTnc", percent,
                  just_nc["index_ms"]["JUST"][percent])
        for cls in TRAJ_SYSTEMS:
            loaded = data.baseline(cls, "traj", percent)
            table.add(cls.name, percent,
                      OOM if loaded == OOM else loaded["load_ms"])
    report.record(table)
    benchmark(lambda: data.baseline(GeoSpark, "traj", 100))

    # Paper's OOM crossovers: Simba dies at 40%, SpatialSpark at 100%.
    assert table.value("Simba", 20) != OOM
    assert table.value("Simba", 40) == OOM
    assert table.value("SpatialSpark", 80) != OOM
    assert table.value("SpatialSpark", 100) == OOM
    assert table.value("GeoSpark", 100) != OOM
    # Compression reduces write I/O: JUST indexes faster than JUSTnc.
    assert table.value("JUST", 100) < table.value("JUSTnc", 100)
