"""Table I: the feature matrix of the twelve compared systems."""

from harness import FigureTable

from repro.baselines import feature_table


def test_table1_feature_matrix(report, benchmark):
    rows = benchmark(feature_table)
    table = FigureTable("Table I", "Comparing JUST against other systems",
                        "feature")
    for row in rows:
        system = row.pop("system")
        for feature, value in row.items():
            table.add(system, feature, value)
    report.record(table)
    just = table.series["JUST"]
    assert just["data_update"] == "Yes"
    assert just["sql"] == "Yes"
    assert just["s_or_st"] == "S/ST"
    # Spark-based systems are memory-limited.
    for spark in ("Simba", "GeoSpark", "LocationSpark", "SpatialSpark"):
        assert table.series[spark]["scalability"] == "Limited"
