"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — these quantify the knobs behind the headline results:

* Z2T time-period length vs the query's time window,
* the key-range decomposition budget (precision vs seek count),
* block cache on/off under repeated queries,
* shard-prefix count (load balance vs per-query fan-out),
* compression codec choice for the trajectory GPS list.
"""

from harness import (
    DEFAULT_TIME_WINDOW_S,
    DEFAULT_WINDOW_KM,
    ORDER_SCHEMA,
    QUERY_REPS,
    FigureTable,
    just_st_ms,
)

from repro.core.schema import Field, FieldType, Schema

_MB = 1024.0 * 1024.0


def _populated(data, userdata=None):
    engine = data.engine()
    engine.create_table("t", ORDER_SCHEMA, userdata)
    engine.insert("t", data.orders)
    engine.table("t").flush()
    return engine


def test_ablation_time_period(data, report, benchmark):
    """Z2T period length vs query time-window size.

    Short periods pay per-period range fan-out on long queries; long
    periods dilute the period-number filter.  A day is the sweet spot for
    day-scale queries — the paper's default.
    """
    table = FigureTable("Ablation A1", "Z2T period vs time window, "
                        "sim ms", "time window")
    engines = {
        period: _populated(data, {"just.time_period": period})
        for period in ("hour", "day", "week", "month")
    }
    for label, window_s in (("1h", 3600.0), ("1d", 86400.0),
                            ("1w", 7 * 86400.0)):
        windows = data.order_query_windows(DEFAULT_WINDOW_KM, QUERY_REPS)
        times = data.time_ranges(data.order_stats, window_s, QUERY_REPS)
        for period, engine in engines.items():
            table.add(f"period={period}", label,
                      just_st_ms(engine, "t", windows, times))
    report.record(table)
    benchmark(lambda: just_st_ms(engines["day"], "t",
                                 data.order_query_windows(3, 1),
                                 data.time_ranges(data.order_stats,
                                                  86400.0, 1)))
    # An hour period must fan out badly on week-long queries.
    assert table.value("period=hour", "1w") > \
        table.value("period=day", "1w")


def test_ablation_range_budget(data, report, benchmark):
    """Key-range decomposition budget: seeks vs over-scan."""
    table = FigureTable("Ablation A2", "Range budget vs ST query, sim ms",
                        "max_ranges")
    windows = data.order_query_windows(DEFAULT_WINDOW_KM, QUERY_REPS)
    times = data.time_ranges(data.order_stats, DEFAULT_TIME_WINDOW_S,
                             QUERY_REPS)
    results = {}
    for budget in (16, 64, 256, 1024):
        engine = _populated(data, {"just.max_ranges": budget})
        value = just_st_ms(engine, "t", windows, times)
        results[budget] = value
        table.add("JUST", budget, value)
    report.record(table)
    benchmark(lambda: results)
    # A starved budget over-scans; the default does materially better.
    assert results[16] > results[256] * 0.95


def test_ablation_block_cache(data, report, benchmark):
    """Block cache effect on repeated queries (why the paper defeats it).

    The same query re-run against a warm cache must be far cheaper —
    which is exactly why the evaluation randomizes query parameters.
    """
    engine = _populated(data)
    window = data.order_query_windows(DEFAULT_WINDOW_KM, 1)[0]
    t_lo, t_hi = data.time_ranges(data.order_stats,
                                  DEFAULT_TIME_WINDOW_S, 1)[0]
    engine.store.clear_caches()
    cold = engine.st_range_query("t", window, t_lo, t_hi).sim_ms
    warm = engine.st_range_query("t", window, t_lo, t_hi).sim_ms

    table = FigureTable("Ablation A3", "Block cache effect, sim ms",
                        "state")
    table.add("same query", "cold", cold)
    table.add("same query", "warm", warm)
    report.record(table)
    benchmark(lambda: engine.st_range_query("t", window, t_lo, t_hi))
    assert warm < cold


def test_ablation_shards(data, report, benchmark):
    """Shard-prefix count: query fan-out cost vs write distribution."""
    table = FigureTable("Ablation A4", "Shards vs ST query, sim ms",
                        "num_shards")
    windows = data.order_query_windows(DEFAULT_WINDOW_KM, QUERY_REPS)
    times = data.time_ranges(data.order_stats, DEFAULT_TIME_WINDOW_S,
                             QUERY_REPS)
    results = {}
    for shards in (1, 4, 16):
        engine = _populated(data, {"just.num_shards": shards})
        value = just_st_ms(engine, "t", windows, times)
        results[shards] = value
        table.add("JUST", shards, value)
    report.record(table)
    benchmark(lambda: results)
    # Every extra shard multiplies the per-query range set.
    assert results[16] > results[1]


def test_ablation_compression_codec(data, report, benchmark):
    """Codec choice for the trajectory GPS list."""
    from repro.core.plugins import TrajectoryPlugin

    table = FigureTable("Ablation A5", "GPS-list codec: stored MB",
                        "codec")
    sizes = {}
    for codec in ("none", "zip", "gzip"):
        schema = Schema([
            Field("tid", FieldType.STRING, primary_key=True),
            Field("oid", FieldType.STRING),
            Field("start_time", FieldType.DATE),
            Field("end_time", FieldType.DATE),
            Field("start_point", FieldType.POINT),
            Field("end_point", FieldType.POINT),
            Field("gps_list", FieldType.ST_SERIES, compress=codec),
        ])
        engine = data.engine()
        stored = engine.create_table("t", schema)
        rows = [TrajectoryPlugin.row_of(t) for t in data.trajs]
        stored.insert_rows(rows)
        stored.flush()
        sizes[codec] = stored.storage_bytes() / _MB
        table.add("traj table", codec, sizes[codec])
    report.record(table)
    benchmark(lambda: sizes)
    assert sizes["gzip"] < sizes["none"]
    assert sizes["zip"] < sizes["none"]


def test_ablation_update_path(data, report, benchmark):
    """Incremental updates: JUST inserts vs a Spark index rebuild.

    Table I: most systems must reconstruct indexes on new data.  Appending
    1% new records to a loaded JUST table costs a small insert; the Spark
    baselines must re-load (re-shuffle, re-index) everything.
    """
    from repro.baselines import GeoSpark
    from repro.baselines.base import items_from_orders

    engine = _populated(data)
    batch = [{**r, "fid": r["fid"] + 1_000_000}
             for r in data.orders[:len(data.orders) // 100]]
    result = engine.insert("t", batch)
    just_ms = result.sim_ms

    geospark = GeoSpark(data.cluster())
    items = items_from_orders(data.orders)
    geospark.load(items)
    # New data -> full rebuild for the Spark system.
    geospark.unload()
    rebuild_ms = GeoSpark(data.cluster()).load(
        items_from_orders(data.orders + batch)).elapsed_ms

    table = FigureTable("Ablation A6", "1% append: JUST insert vs Spark "
                        "rebuild, sim ms", "path")
    table.add("update", "JUST insert", just_ms)
    table.add("update", "GeoSpark rebuild", rebuild_ms)
    report.record(table)
    benchmark(lambda: engine.table("t").get("1"))
    assert just_ms * 5 < rebuild_ms
