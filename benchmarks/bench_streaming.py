"""Streaming continuous queries: event→alert latency and view refresh.

Not a paper figure — Section IX only names streaming ingest as future
work.  This measures what the continuous-query layer costs on the
simulated cluster, over the transit-delay scenario (out-of-order
GTFS-RT-style feed, watermarked tumbling windows, geofence alerts):

* **End-to-end event→alert latency.**  Events are published faster
  than the loader consumes them, so a backlog builds; the latency of
  each geofence alert is publish→detection on the one simulated
  timeline (queue wait + ingest + hit-test work).

* **View refresh: incremental vs recompute.**  The materialized view
  folds in only each batch's newly finalized window rows; the naive
  alternative recomputes the whole aggregation from scratch every
  poll.  Both are charged through the same SimJob cost model.

* **Parity gate.**  The finalized, watermark-driven window rows must
  equal a cold batch recomputation over the same events exactly, with
  zero late drops (the feed's disorder is bounded by the watermark
  delay) — asserted on every run, including CI ``--quick`` smokes.

Also usable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--quick]
"""

from harness import FigureTable

from repro import JustEngine
from repro.core.loader import apply_config
from repro.datagen.transitgen import (
    TRANSIT_RT_CONFIG,
    TRANSIT_RT_SCHEMA,
    TRANSIT_TIME_START,
    TransitGenerator,
)
from repro.geometry.polygon import Polygon
from repro.streaming import (
    Avg,
    Count,
    GeofenceAlerter,
    TumblingWindows,
    WindowedAggregator,
    batch_aggregate,
)
from repro.streaming.views import REFRESH_CPU_US_PER_ROW

_ROUTES = 6
_TRIPS = 10
_STOPS = 10
_DISORDER_S = 120.0
_WINDOW_S = 900.0
_BATCH = 40      # loader batch size
_CHUNK = 80      # events published per poll (2x: a backlog builds)

_AGGS = {"arrivals": lambda: Count(), "avg_delay": lambda: Avg("delay"),
         "avg_dwell": lambda: Avg("dwell")}


def _aggregator():
    return WindowedAggregator(TumblingWindows(_WINDOW_S),
                              {n: make() for n, make in _AGGS.items()},
                              key_fields=("route", "seq"))


def _make_fences(engine, network) -> None:
    fences = engine.create_plugin_table("zones", "geofence")
    rows = []
    for route_id, stops in sorted(network.routes.items()):
        stop = stops[len(stops) // 2]
        half = 0.009
        rows.append({"gid": f"Z-{route_id}", "name": stop["stop_id"],
                     "category": "corridor",
                     "valid_from": TRANSIT_TIME_START - 3600.0,
                     "valid_to": TRANSIT_TIME_START + 7 * 86400.0,
                     "area": Polygon([
                         (stop["lng"] - half, stop["lat"] - half),
                         (stop["lng"] + half, stop["lat"] - half),
                         (stop["lng"] + half, stop["lat"] + half),
                         (stop["lng"] - half, stop["lat"] + half)])})
    fences.insert_rows(rows, engine.cluster.job())


def run_stream_experiment(routes=_ROUTES, trips=_TRIPS, stops=_STOPS,
                          seed=20140301) -> dict:
    """One full pipeline run; returns metrics + the parity verdict."""
    engine = JustEngine()
    network = TransitGenerator(seed=seed, num_routes=routes,
                               stops_per_route=stops)
    feed = network.realtime_feed(trips_per_route=trips,
                                 disorder_s=_DISORDER_S)
    engine.create_table("transit_rt", TRANSIT_RT_SCHEMA)
    _make_fences(engine, network)
    topic = engine.create_topic("gtfs_rt")
    loader = engine.stream_load("gtfs_rt", "transit_rt",
                                TRANSIT_RT_CONFIG, batch_size=_BATCH,
                                max_delay_s=_DISORDER_S)
    view = loader.materialize_window("segment_delay", _aggregator())
    alerter = loader.attach_alerter(
        GeofenceAlerter(engine, "zones", key_field="trip"))

    published = 0
    ingest_ms = 0.0
    naive_refresh_ms = 0.0
    rows_so_far = 0
    while published < len(feed) or loader.lag > 0:
        if published < len(feed):
            chunk = [dict(event, published_ms=engine.events.now_ms)
                     for event in feed[published:published + _CHUNK]]
            topic.append_many(chunk)
            published += len(chunk)
        stats = loader.poll()
        engine.events.advance(stats["sim_ms"])
        ingest_ms += stats["sim_ms"]
        # What a recompute-from-scratch view maintenance would charge
        # for the same freshness: every poll re-folds every row so far.
        rows_so_far += stats["loaded"]
        naive_job = engine.cluster.job()
        naive_job.charge_cpu_records(
            rows_so_far, us_per_record=REFRESH_CPU_US_PER_ROW)
        naive_refresh_ms += naive_job.elapsed_ms
    tail = loader.finalize()
    engine.events.advance(tail["sim_ms"])

    mapped = [apply_config(event, TRANSIT_RT_CONFIG) for event in feed]
    batch = batch_aggregate(mapped, TumblingWindows(_WINDOW_S),
                            {n: make() for n, make in _AGGS.items()},
                            key_fields=("route", "seq"))
    latencies = sorted(a.latency_ms for a in alerter.alerts
                       if a.latency_ms is not None)

    def pct(q):
        return latencies[int(q * (len(latencies) - 1))] if latencies else 0.0

    return {
        "events": len(feed),
        "polls": loader.polls,
        "ingest_ms": ingest_ms,
        "parity": view.rows() == batch,
        "late_events": loader.stats_row()["late_events"],
        "alerts": alerter.total_alerts,
        "alert_p50_ms": pct(0.50),
        "alert_p95_ms": pct(0.95),
        "incremental_refresh_ms": view.total_refresh_ms,
        "naive_refresh_ms": naive_refresh_ms,
        "view_rows": view.row_count,
    }


def _record(report, result) -> FigureTable:
    table = FigureTable(
        "Streaming continuous queries",
        "Transit-delay pipeline: watermarked windows, geofence alerts, "
        "materialized views", "metric")
    table.add("pipeline", "events", result["events"])
    table.add("pipeline", "polls", result["polls"])
    table.add("pipeline", "ingest sim-ms", round(result["ingest_ms"], 2))
    table.add("pipeline", "late events", result["late_events"])
    table.add("event->alert", "alerts", result["alerts"])
    table.add("event->alert", "p50 sim-ms",
              round(result["alert_p50_ms"], 2))
    table.add("event->alert", "p95 sim-ms",
              round(result["alert_p95_ms"], 2))
    table.add("view refresh", "view rows", result["view_rows"])
    table.add("view refresh", "incremental sim-ms",
              round(result["incremental_refresh_ms"], 3))
    table.add("view refresh", "recompute sim-ms",
              round(result["naive_refresh_ms"], 3))
    return report.record(table)


def test_streamed_windows_match_batch(report, benchmark):
    """Watermarked finalization is lossless: stream == batch, 0 late."""
    result = run_stream_experiment()
    _record(report, result)
    assert result["parity"], "finalized windows diverged from batch"
    assert result["late_events"] == 0
    assert result["alerts"] > 0
    # Backlogged events wait in the topic: the p95 alert sees real
    # queue delay on the simulated clock.
    assert result["alert_p95_ms"] > 0.0
    benchmark(lambda: run_stream_experiment(routes=2, trips=3, stops=6))


def test_incremental_view_refresh_beats_recompute(report):
    """Incremental maintenance charges o(new rows), recompute O(all)."""
    result = run_stream_experiment(routes=3, trips=6, stops=8)
    assert result["parity"]
    assert result["incremental_refresh_ms"] < result["naive_refresh_ms"]


def main(argv=None) -> int:
    """Standalone entry point (CI smoke): run + record + parity gate."""
    import argparse

    from harness import REPORT

    parser = argparse.ArgumentParser(
        description="Streaming benchmark: event->alert latency and "
                    "materialized-view refresh cost.")
    parser.add_argument("--quick", action="store_true",
                        help="small feed for CI smoke runs")
    args = parser.parse_args(argv)
    if args.quick:
        result = run_stream_experiment(routes=3, trips=4, stops=6)
    else:
        result = run_stream_experiment()
    _record(REPORT, result)
    assert result["parity"], "finalized windows diverged from batch"
    assert result["late_events"] == 0
    assert result["incremental_refresh_ms"] < result["naive_refresh_ms"]
    print(f"\nparity ok: {result['view_rows']} view rows == batch "
          f"recompute; {result['alerts']} alerts, "
          f"p95 {result['alert_p95_ms']:.2f} sim-ms")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
