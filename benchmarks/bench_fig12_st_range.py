"""Figure 12: spatio-temporal range query performance.

The paper's headline result: Z2T/XZ2T (JUST) beats the native-GeoMesa
Z3/XZ3 strategies at day/year/century periods (JUSTd/JUSTy/JUSTc),
because interleaving a dominant time dimension invalidates spatial
filtering; ST-Hadoop is an order of magnitude slower even on 20% of the
data (MapReduce job launch); bigger spatial/temporal windows cost more;
JUST beats JUSTnc on Traj thanks to compression.
"""

from harness import (
    DEFAULT_TIME_WINDOW_S,
    DEFAULT_WINDOW_KM,
    FRACTIONS,
    ORDER_SCHEMA,
    QUERY_REPS,
    SPATIAL_WINDOWS_KM,
    TIME_WINDOWS,
    FigureTable,
    baseline_st_ms,
    just_st_ms,
)

from repro.baselines import STHadoop

VARIANTS = ("JUST", "JUSTd", "JUSTy", "JUSTc")


def _order_queries(data, window_km=DEFAULT_WINDOW_KM,
                   time_window_s=DEFAULT_TIME_WINDOW_S):
    windows = data.order_query_windows(window_km, QUERY_REPS)
    times = data.time_ranges(data.order_stats, time_window_s, QUERY_REPS)
    return windows, times


def _traj_queries(data, window_km=DEFAULT_WINDOW_KM,
                  time_window_s=DEFAULT_TIME_WINDOW_S):
    windows = data.traj_query_windows(window_km, QUERY_REPS)
    times = data.time_ranges(data.traj_stats, time_window_s, QUERY_REPS)
    return windows, times


def test_fig12a_data_size_order(data, report, benchmark):
    """ST query time vs data size, Order, JUST vs Z3-period variants."""
    windows, times = _order_queries(data)
    table = FigureTable("Fig 12a", "ST range query vs data size (Order), "
                        "sim ms", "data size %")
    for percent in FRACTIONS:
        engine = data.engine()
        engine.create_table("JUST", ORDER_SCHEMA)
        for name, period in (("JUSTd", "day"), ("JUSTy", "year"),
                             ("JUSTc", "century")):
            engine.create_table(
                name, ORDER_SCHEMA,
                {"geomesa.indices.enabled": f"z3:{period}"})
        rows = data.order_fraction(percent)
        for name in VARIANTS:
            engine.insert(name, rows)
            engine.table(name).flush()
            table.add(name, percent,
                      just_st_ms(engine, name, windows, times))
    report.record(table)
    benchmark(lambda: just_st_ms(data.order_just["engine"], "order_JUST",
                                 windows[:1], times[:1]))

    # Observation 2: Z2T beats every Z3 variant.  At the smallest scaled
    # fractions fixed per-range costs can tie the near-empty variants, so
    # the strict ordering is asserted where data volume matters.
    for percent in (60, 80, 100):
        assert table.value("JUST", percent) <= min(
            table.value("JUSTd", percent), table.value("JUSTy", percent),
            table.value("JUSTc", percent))
    # Observation 3: among Z3 variants, longer periods do better.
    assert table.value("JUSTc", 100) <= table.value("JUSTy", 100) <= \
        table.value("JUSTd", 100)
    # The day-period Z3 (the motivating Figure 4a case) always loses big.
    for percent in FRACTIONS:
        assert table.value("JUSTd", percent) > \
            1.5 * table.value("JUST", percent)
    # Growing with data size.
    series = [table.value("JUST", p) for p in FRACTIONS]
    assert series[-1] >= series[0]


def test_fig12b_spatial_window_order(data, report, benchmark):
    """ST query vs spatial window, Order, incl. ST-Hadoop at 20% data."""
    engine = data.order_just["engine"]
    sthadoop = data.baseline(STHadoop, "order", 20)
    table = FigureTable("Fig 12b", "ST range query vs spatial window "
                        "(Order), sim ms", "window km")
    for window_km in SPATIAL_WINDOWS_KM:
        windows, times = _order_queries(data, window_km=window_km)
        for name in VARIANTS:
            table.add(name, window_km,
                      just_st_ms(engine, f"order_{name}", windows, times))
        table.add("ST-Hadoop(20%)", window_km,
                  baseline_st_ms(sthadoop, windows, times))
    report.record(table)
    benchmark(lambda: just_st_ms(
        engine, "order_JUST",
        *(q[:1] for q in _order_queries(data))))

    for window_km in SPATIAL_WINDOWS_KM:
        # JUST leads its variants (small slack: ties at the fixed-cost
        # floor for the smallest windows), and beats ST-Hadoop by ~an
        # order of magnitude despite holding 5x the data.
        assert table.value("JUST", window_km) <= 1.1 * min(
            table.value("JUSTd", window_km),
            table.value("JUSTy", window_km),
            table.value("JUSTc", window_km))
        assert table.value("ST-Hadoop(20%)", window_km) > \
            5 * table.value("JUST", window_km)


def test_fig12c_spatial_window_traj(data, report, benchmark):
    """ST query vs spatial window, Traj, incl. JUSTnc and XZ3 variants."""
    engine = data.traj_just["engine"]
    nc_engine = data.traj_just_nc["engine"]
    table = FigureTable("Fig 12c", "ST range query vs spatial window "
                        "(Traj), sim ms", "window km")
    for window_km in SPATIAL_WINDOWS_KM:
        windows, times = _traj_queries(data, window_km=window_km)
        for name in VARIANTS:
            table.add(name, window_km,
                      just_st_ms(engine, f"traj_{name}", windows, times))
        table.add("JUSTnc", window_km,
                  just_st_ms(nc_engine, "traj_JUST", windows, times))
    report.record(table)
    benchmark(lambda: just_st_ms(
        engine, "traj_JUST", *(q[:1] for q in _traj_queries(data))))

    for window_km in SPATIAL_WINDOWS_KM:
        assert table.value("JUST", window_km) <= min(
            table.value("JUSTd", window_km),
            table.value("JUSTy", window_km),
            table.value("JUSTc", window_km))
        # Compression reduces disk reads.
        assert table.value("JUST", window_km) <= \
            table.value("JUSTnc", window_km)


def test_fig12d_time_window_order(data, report, benchmark):
    """ST query vs time window, Order, incl. ST-Hadoop at 20% data."""
    engine = data.order_just["engine"]
    sthadoop = data.baseline(STHadoop, "order", 20)
    table = FigureTable("Fig 12d", "ST range query vs time window "
                        "(Order), sim ms", "time window")
    for label, seconds in TIME_WINDOWS:
        windows, times = _order_queries(data, time_window_s=seconds)
        for name in VARIANTS:
            table.add(name, label,
                      just_st_ms(engine, f"order_{name}", windows, times))
        table.add("ST-Hadoop(20%)", label,
                  baseline_st_ms(sthadoop, windows, times))
    report.record(table)
    benchmark(lambda: just_st_ms(
        engine, "order_JUST",
        *(q[:1] for q in _order_queries(data))))

    labels = [label for label, _s in TIME_WINDOWS]
    series = [table.value("JUST", label) for label in labels]
    # Bigger time windows return more data.
    assert series[-1] >= series[0]
    # ST-Hadoop's job launch keeps it far slower wherever the result
    # volume itself does not dominate (<= 1 day windows).
    for label in ("1h", "6h", "1d"):
        assert table.value("ST-Hadoop(20%)", label) > \
            5 * table.value("JUST", label)
    # The day-period Z3 variant degrades fastest with the time window.
    assert table.value("JUSTd", "1m") > 3 * table.value("JUST", "1m")
