"""Vectorized scan: batched vs row-at-a-time executor latency.

Not a paper figure — it quantifies the batch-at-a-time rework of the
hot query path.  The same Fig 11/12-style range-scan workload (spatial
windows and spatio-temporal windows with a residual predicate, cold
block cache per query) runs through two otherwise identical engines,
one with ``vectorized=True`` (column-major :class:`RowBatch`es from
SSTable block decode up through filter/project/aggregate) and one with
the row-at-a-time baseline.  Reported per executor: p50/p95 simulated
ms, plus the p95 speedup.  Every query's result set is also asserted
identical between the two executors — the batched path may only change
cost, never semantics.

The cost model uses a large ``record_scale`` so per-record CPU is a
realistic share of query time (the generated dataset is thousands of
times smaller than the paper's); I/O charges are identical between the
two executors by construction.

Also usable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_vectorized.py [--quick]
"""

from harness import DATA, ORDER_SCHEMA, FigureTable, median

from repro import JustEngine
from repro.cluster import CostModel

#: Per-record work amplification: makes the ~10k-row dataset cost what
#: a paper-scale scan would, so the CPU term batching attacks is
#: visible next to the (identical) I/O charges.
_RECORD_SCALE = 2000.0
_QUERIES = 30
_WINDOW_KM = 3
_TIME_WINDOW_S = 86400.0


def _build_engine(vectorized: bool) -> JustEngine:
    engine = JustEngine(cost_model=CostModel(record_scale=_RECORD_SCALE),
                        vectorized=vectorized, block_bytes=1024)
    engine.create_table("orders", ORDER_SCHEMA)
    engine.insert("orders", DATA.orders)
    engine.table("orders").flush()
    return engine


def _statements(count: int) -> list[str]:
    """Seeded Fig 11/12-style scans: half spatial, half spatio-temporal
    with a residual attribute predicate."""
    windows = DATA.order_query_windows(_WINDOW_KM, count, seed=5)
    ranges = DATA.time_ranges(DATA.order_stats, _TIME_WINDOW_S, count,
                              seed=6)
    out = []
    for i, (w, (t_lo, t_hi)) in enumerate(zip(windows, ranges)):
        mbr = (f"st_makeMBR({w.min_lng}, {w.min_lat}, "
               f"{w.max_lng}, {w.max_lat})")
        if i % 2:
            out.append(f"SELECT fid, amount FROM orders "
                       f"WHERE geom WITHIN {mbr} "
                       f"AND time BETWEEN {t_lo} AND {t_hi} "
                       f"AND amount > 10.0")
        else:
            out.append(f"SELECT fid, category FROM orders "
                       f"WHERE geom WITHIN {mbr}")
    return out


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _canonical(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items()))
                  for row in rows)


def _sweep(count: int) -> dict:
    engines = {"vectorized": _build_engine(True),
               "row-at-a-time": _build_engine(False)}
    statements = _statements(count)
    times = {name: [] for name in engines}
    for statement in statements:
        results = {}
        for name, engine in engines.items():
            engine.store.clear_caches()  # cold cache, as in Fig 11/12
            rs = engine.sql(statement)
            times[name].append(rs.job.elapsed_ms)
            results[name] = _canonical(rs.rows)
        # Agreement gate: batching may not change a single result row.
        assert results["vectorized"] == results["row-at-a-time"], \
            f"executors disagree on: {statement}"
    return times


def _record(report, times: dict) -> FigureTable:
    table = FigureTable(
        "Vectorized scan",
        "Range-scan latency: batched vs row-at-a-time executor, sim ms",
        "metric")
    for name, series in times.items():
        table.add(name, "p50 ms", _percentile(series, 0.50))
        table.add(name, "p95 ms", _percentile(series, 0.95))
        table.add(name, "median ms", median(series))
    speedup = (_percentile(times["row-at-a-time"], 0.95)
               / _percentile(times["vectorized"], 0.95))
    table.add("p95 speedup", "p95 ms", round(speedup, 2))
    return report.record(table)


def test_vectorized_scan_p95(report, benchmark):
    """Batching cuts range-scan p95 while agreeing on every result."""
    times = _sweep(_QUERIES)
    _record(report, times)
    assert _percentile(times["vectorized"], 0.95) < \
        _percentile(times["row-at-a-time"], 0.95)
    benchmark(lambda: _sweep(2))


def main(argv=None) -> int:
    """Standalone entry point (CI smoke): sweep and assert the win."""
    import argparse

    from harness import REPORT

    parser = argparse.ArgumentParser(
        description="Vectorized vs row-at-a-time scan benchmark.")
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    args = parser.parse_args(argv)
    times = _sweep(8 if args.quick else _QUERIES)
    _record(REPORT, times)
    assert _percentile(times["vectorized"], 0.95) < \
        _percentile(times["row-at-a-time"], 0.95), \
        "vectorized executor did not beat the row baseline at p95"
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
