"""Figure 10a/10b: storage size vs data size, with/without compression.

Paper shapes to reproduce: compressing the Traj GPS list shrinks storage
several-fold (10b); compressing the Order dataset's tiny fields slightly
*grows* it (10a's JUSTcompress line).
"""

from harness import FRACTIONS, FigureTable

_MB = 1024.0 * 1024.0


def test_fig10a_storage_order(data, report, benchmark):
    just = benchmark(lambda: data.order_just)
    compressed = data.order_just_compressed
    table = FigureTable("Fig 10a", "Storage size (Order), MB",
                        "data size %")
    for percent in FRACTIONS:
        table.add("JUST", percent,
                  just["storage"]["JUST"][percent] / _MB)
        table.add("JUSTcompress", percent, compressed[percent] / _MB)
    report.record(table)

    # Shapes: storage grows with data; compressing tiny fields does not
    # pay off (JUSTcompress >= JUST at full size).
    sizes = [table.value("JUST", p) for p in FRACTIONS]
    assert sizes == sorted(sizes)
    assert table.value("JUSTcompress", 100) >= \
        table.value("JUST", 100) * 0.98


def test_fig10b_storage_traj(data, report, benchmark):
    just = benchmark(lambda: data.traj_just)
    just_nc = data.traj_just_nc
    table = FigureTable("Fig 10b", "Storage size (Traj), MB",
                        "data size %")
    for percent in FRACTIONS:
        table.add("JUST", percent,
                  just["storage"]["JUST"][percent] / _MB)
        table.add("JUSTnc", percent,
                  just_nc["storage"]["JUST"][percent] / _MB)
    report.record(table)

    # Shapes: monotone growth; compression shrinks trajectories markedly
    # (the paper stores 136 GB raw in ~30 GB).
    sizes = [table.value("JUST", p) for p in FRACTIONS]
    assert sizes == sorted(sizes)
    assert table.value("JUST", 100) < 0.7 * table.value("JUSTnc", 100)
    # Stored size is below the raw CSV size thanks to compression.
    raw_mb = data.traj_stats.raw_size_bytes / _MB
    assert table.value("JUST", 100) < raw_mb
