"""Benchmark fixtures: shared dataset/engine state and report sink."""

from __future__ import annotations

import gc

import pytest

from harness import DATA, REPORT


def pytest_configure(config):
    # The session retains dozens of populated engines (tens of millions
    # of acyclic objects).  CPython's generational GC re-walks them on
    # every gen-2 collection, slowing later benchmarks by an order of
    # magnitude.  Reference counting reclaims everything these benchmarks
    # allocate, so cyclic GC is disabled for the session.
    gc.collect()
    gc.freeze()
    gc.disable()


@pytest.fixture(scope="session")
def data():
    """The lazily-built shared figure data (datasets, engines)."""
    return DATA


@pytest.fixture(scope="session")
def report():
    return REPORT


def pytest_sessionfinish(session, exitstatus):
    REPORT.flush()
