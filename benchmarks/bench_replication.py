"""Region replication: failover MTTR and read tail under gray failure.

Not a paper figure — the paper inherits HBase's single-copy region
model, and this quantifies what the replication layer buys a deployment
on top of it:

* **Failover MTTR.**  The same seeded SYNC ingest is crashed mid-stream
  at replication factor 1 (WAL-replay recovery, the PR 1 path) and
  factor 3 (follower promotion).  Both must lose zero acknowledged
  writes; promotion must be strictly faster because it replays only the
  promotion catch-up, not the dead server's whole live WAL.

* **Read p95 under a gray-slow primary.**  The same point-read workload
  runs against a store whose region-0 server stalls every operation,
  unreplicated (reads eat the stall) vs replication-factor 3 with
  hedged reads (the hedge races a healthy follower past the hedge
  delay).  Hedging must cut the p95.

Also usable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_replication.py [--quick]
"""

import random

from harness import FigureTable

from repro.faults import FaultInjector, FaultPlan, SlowServer
from repro.kvstore import KVStore, SyncPolicy
from repro.replication.demo import run_failover_experiment
from repro.resilience import Deadline, RequestContext

_KEYS = 2000
_KILL_AFTER = 1500
_READS = 200
_SLOW_MS = 40.0


def _mttr_sweep(num_keys=_KEYS, kill_after=_KILL_AFTER, seed=0):
    return {factor: run_failover_experiment(
                factor, num_keys=num_keys, kill_after=kill_after,
                seed=seed)
            for factor in (1, 3)}


def _read_latencies(factor, read_mode, reads=_READS, seed=0):
    """p50/p95 of per-read charged latency under a slow server 0."""
    kwargs = {}
    if factor > 1:
        kwargs.update(replication_factor=factor, read_mode=read_mode)
    store = KVStore(num_servers=5, wal_policy=SyncPolicy.SYNC,
                    flush_bytes=16 * 1024, block_bytes=1024, **kwargs)
    table = store.create_table("t", presplit=5)
    rng = random.Random(seed)
    keys = []
    for _ in range(2 * reads):
        key = rng.getrandbits(64).to_bytes(8, "big")
        table.put(key, b"v" * 64)
        keys.append(key)
    if store.replication is not None:
        store.replication.tick()  # followers fully caught up
    plan = FaultPlan([SlowServer(0, latency_ms=_SLOW_MS)], seed=seed)
    FaultInjector(plan).attach(store)
    samples = []
    for key in rng.sample(keys, reads):
        ctx = RequestContext(deadline=Deadline(60_000.0))
        table.get(key, ctx=ctx)
        samples.append(ctx.deadline.consumed_ms)
    samples.sort()

    def pct(q):
        return samples[int(q * (len(samples) - 1))]

    return {"p50": pct(0.50), "p95": pct(0.95)}


def _record_mttr(report, results) -> FigureTable:
    table = FigureTable("Replication MTTR",
                        "Crash failover: WAL replay vs follower "
                        "promotion (SYNC ingest)", "metric")
    for factor, result in results.items():
        series = f"rf={factor}"
        table.add(series, "acked writes", result.acked_writes)
        table.add(series, "lost acked writes",
                  result.lost_acked_writes)
        table.add(series, "regions promoted",
                  result.recovery.promoted_regions)
        table.add(series, "records replayed",
                  result.recovery.replayed_records
                  + result.recovery.catchup_records)
        table.add(series, "recovery ms",
                  round(result.recovery.recovery_ms, 2))
    return report.record(table)


def _record_hedged(report, latencies) -> FigureTable:
    table = FigureTable("Replication hedged reads",
                        "Read latency under a gray-slow primary "
                        f"(+{_SLOW_MS:.0f}ms per op)", "metric")
    for series, stats in latencies.items():
        table.add(series, "p50 ms", round(stats["p50"], 2))
        table.add(series, "p95 ms", round(stats["p95"], 2))
    return report.record(table)


def test_promote_failover_beats_wal_replay(report, benchmark):
    """rf=3 promotion: zero acked-write loss, strictly less MTTR."""
    results = _mttr_sweep()
    _record_mttr(report, results)

    replay, promote = results[1], results[3]
    assert replay.lost_acked_writes == 0
    assert promote.lost_acked_writes == 0
    assert promote.recovery.promoted_regions > 0
    # Promotion replays only the catch-up, never the whole live WAL.
    assert promote.recovery.recovery_ms < replay.recovery.recovery_ms
    benchmark(lambda: run_failover_experiment(
        3, num_keys=300, kill_after=200))


def test_hedged_reads_cut_gray_read_p95(report, benchmark):
    """Hedged replica reads bound the tail a slow primary inflates."""
    latencies = {
        "unreplicated": _read_latencies(1, "primary"),
        "rf=3 hedged": _read_latencies(3, "hedged"),
    }
    _record_hedged(report, latencies)

    # One region server in five stalls every op: the unreplicated p95
    # eats the full stall, the hedge pays only its small delay.
    assert latencies["unreplicated"]["p95"] >= _SLOW_MS
    assert latencies["rf=3 hedged"]["p95"] < _SLOW_MS / 4
    benchmark(lambda: _read_latencies(3, "hedged", reads=20))


def main(argv=None) -> int:
    """Standalone entry point (CI smoke): record both sweeps."""
    import argparse

    from harness import REPORT

    parser = argparse.ArgumentParser(
        description="Replication benchmark: failover MTTR and hedged "
                    "read tail latency.")
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    args = parser.parse_args(argv)
    num_keys = 600 if args.quick else _KEYS
    kill_after = 400 if args.quick else _KILL_AFTER
    reads = 60 if args.quick else _READS

    results = _mttr_sweep(num_keys=num_keys, kill_after=kill_after)
    _record_mttr(REPORT, results)
    assert results[1].lost_acked_writes == 0
    assert results[3].lost_acked_writes == 0
    assert results[3].recovery.recovery_ms \
        < results[1].recovery.recovery_ms

    latencies = {
        "unreplicated": _read_latencies(1, "primary", reads=reads),
        "rf=3 hedged": _read_latencies(3, "hedged", reads=reads),
    }
    _record_hedged(REPORT, latencies)
    assert latencies["rf=3 hedged"]["p95"] \
        < latencies["unreplicated"]["p95"]
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
