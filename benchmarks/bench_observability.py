"""Monitoring pipeline: scrape overhead and alert time-to-fire.

Not a paper figure — JUST's paper shows dashboards but never costs
them.  This measures what the scrape → history → SLO → alert pipeline
costs on the simulated cluster, and what it buys:

* **Scrape overhead.**  The same seeded query workload runs against an
  unmonitored service and a monitored one (50 sim-ms scrape cadence).
  Every scrape charges its modeled cost to the shared clock, so the
  overhead is an honest fraction of statement time — gated at < 5%.

* **Time-to-fire.**  A :class:`~repro.faults.plan.SlowServer` gray
  failure is injected on one region server and the workload keeps
  running until the latency SLO's page-severity burn-rate alert fires.
  Reported: simulated milliseconds and statements from injection to
  firing — gated on the alert actually firing, with the availability
  SLO staying quiet (the failure is gray: nothing errors, everything
  slows).

Also usable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_observability.py [--quick]
"""

from harness import FigureTable

from repro.observability.dash import (
    build_dash_service,
    inject_slow_server,
    workload_queries,
)
from repro.service.client import JustClient

_USER = "ops"
_MAX_FAULT_PASSES = 20


def _drive(client, queries) -> float:
    """One workload pass; returns its total statement sim-ms."""
    return sum(client.execute_query(sql).sim_ms for sql in queries)


def run_overhead_experiment(rows=400, passes=6, seed=11) -> dict:
    """Identical seeded workload, monitoring off vs on."""
    queries = workload_queries(seed)
    results = {}
    for monitored in (False, True):
        server = build_dash_service(rows=rows, seed=seed,
                                    monitored=monitored)
        client = JustClient(server, _USER)
        statement_ms = sum(_drive(client, queries)
                           for _ in range(passes))
        results[monitored] = (server, statement_ms)
        client.close()
    _, base_ms = results[False]
    server, monitored_ms = results[True]
    monitor = server.engine.monitor
    scrape_ms = monitor.scraper.total_scrape_ms
    return {
        "statements": passes * len(queries),
        "unmonitored_ms": base_ms,
        "monitored_ms": monitored_ms,
        "scrapes": monitor.scraper.scrapes,
        "series": len(monitor.history),
        "scrape_ms": scrape_ms,
        "overhead": scrape_ms / monitored_ms if monitored_ms else 0.0,
    }


def run_time_to_fire_experiment(rows=400, healthy_passes=2,
                                latency_ms=40.0, seed=11) -> dict:
    """Inject SlowServer, run until the latency page fires."""
    server = build_dash_service(rows=rows, seed=seed)
    client = JustClient(server, _USER)
    queries = workload_queries(seed)
    for _ in range(healthy_passes):
        _drive(client, queries)
    monitor = server.engine.monitor
    injected_ms = server.engine.events.now_ms
    inject_slow_server(server, latency_ms=latency_ms, seed=seed)
    statements = 0
    alert = monitor.slos.alert("statement-latency", "page")
    while alert.state != "firing" and statements < \
            _MAX_FAULT_PASSES * len(queries):
        for sql in queries:
            client.execute_query(sql)
            statements += 1
            if alert.state == "firing":
                break
    fired = alert.state == "firing"
    availability = monitor.slos.worst_state("statement-availability")
    alert_events = server.events.events(kind="alert")
    client.close()
    return {
        "fired": fired,
        "statements_to_fire": statements,
        "time_to_fire_ms": (alert.fired_at_ms - injected_ms)
        if fired else float("inf"),
        "pending_ms": (alert.fired_at_ms - alert.pending_since_ms)
        if fired and alert.pending_since_ms is not None else 0.0,
        "burn_long": alert.burn_long,
        "trace_id": alert.trace_id,
        "availability_state": availability,
        "alert_events": len(alert_events),
    }


def _record(report, overhead, fire) -> FigureTable:
    table = FigureTable(
        "Monitoring pipeline",
        "Scrape -> history -> SLO -> alert: overhead and time-to-fire "
        "under a SlowServer gray failure", "metric")
    table.add("overhead", "statements", overhead["statements"])
    table.add("overhead", "scrapes", overhead["scrapes"])
    table.add("overhead", "series", overhead["series"])
    table.add("overhead", "statement sim-ms",
              round(overhead["monitored_ms"], 1))
    table.add("overhead", "scrape sim-ms",
              round(overhead["scrape_ms"], 2))
    table.add("overhead", "overhead %",
              round(100.0 * overhead["overhead"], 3))
    table.add("time-to-fire", "fired", int(fire["fired"]))
    table.add("time-to-fire", "statements", fire["statements_to_fire"])
    table.add("time-to-fire", "sim-ms",
              round(fire["time_to_fire_ms"], 1))
    table.add("time-to-fire", "burn rate (long)",
              round(fire["burn_long"], 2))
    table.add("time-to-fire", "alert events", fire["alert_events"])
    return report.record(table)


def _gate(overhead, fire) -> None:
    assert overhead["overhead"] < 0.05, (
        f"scraping cost {100 * overhead['overhead']:.2f}% of statement "
        f"time (budget 5%)")
    assert overhead["scrapes"] > 0
    assert fire["fired"], "latency page never fired under SlowServer"
    assert fire["availability_state"] == "ok", (
        "gray failure should not trip the availability SLO")
    assert fire["alert_events"] >= 1


def test_scrape_overhead_under_budget(report, benchmark):
    """Monitoring charges < 5% of statement time to the shared clock."""
    overhead = run_overhead_experiment()
    fire = run_time_to_fire_experiment()
    _record(report, overhead, fire)
    _gate(overhead, fire)
    benchmark(lambda: run_overhead_experiment(rows=150, passes=2))


def test_gray_failure_pages_with_exemplar(report):
    """The firing page carries a trace-id exemplar of a slow query."""
    fire = run_time_to_fire_experiment()
    assert fire["fired"]
    assert fire["trace_id"], "firing alert should carry an exemplar"


def main(argv=None) -> int:
    """Standalone entry point (CI smoke): run + record + gates."""
    import argparse

    from harness import REPORT

    parser = argparse.ArgumentParser(
        description="Monitoring benchmark: scrape overhead and "
                    "SLO-alert time-to-fire.")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI smoke runs")
    args = parser.parse_args(argv)
    if args.quick:
        overhead = run_overhead_experiment(rows=200, passes=3)
        fire = run_time_to_fire_experiment(rows=200, healthy_passes=1)
    else:
        overhead = run_overhead_experiment()
        fire = run_time_to_fire_experiment()
    _record(REPORT, overhead, fire)
    _gate(overhead, fire)
    print(f"\nscrape overhead "
          f"{100 * overhead['overhead']:.3f}% of statement time over "
          f"{overhead['scrapes']} scrapes; page fired "
          f"{fire['time_to_fire_ms']:.0f} sim-ms "
          f"({fire['statements_to_fire']} statements) after the gray "
          f"fault, exemplar trace {fire['trace_id'] or '(none)'}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
