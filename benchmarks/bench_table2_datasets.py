"""Table II: statistics of the generated datasets."""

from harness import DATA, SYNTHETIC_MULTIPLIER, FigureTable

from repro.datagen.datasets import traj_statistics


def test_table2_dataset_statistics(data, report, benchmark):
    stats = benchmark(lambda: [
        data.traj_stats,
        data.order_stats,
        traj_statistics(data.synthetic, "Synthetic"),
    ])
    table = FigureTable("Table II", "Statistics of datasets", "attribute")
    for s in stats:
        table.add(s.name, "points", s.num_points)
        table.add(s.name, "records", s.num_records)
        table.add(s.name, "raw_mb", round(s.raw_size_mb, 2))
    report.record(table)

    traj, order, synthetic = stats
    # Shape checks mirroring Table II's proportions:
    # Traj has far more points than records (hundreds per trajectory).
    assert traj.num_points > 50 * traj.num_records
    # Order is point-per-record.
    assert order.num_points == order.num_records
    # Synthetic is the copy & sample scale-up of Traj.
    assert synthetic.num_points == SYNTHETIC_MULTIPLIER * traj.num_points
    # Traj raw size dominates Order (136 GB vs 10 GB in the paper).
    assert traj.raw_size_bytes > 2 * order.raw_size_bytes
