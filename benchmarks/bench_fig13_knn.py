"""Figure 13: k-NN query performance.

13a/13b: k-NN time vs data size (Order / Traj).
13c/13d: k-NN time vs k (Order / Traj).

Paper shapes: time grows with data size (each expansion's range query
scans more) and mildly with k; JUST beats GeoSpark and LocationSpark by
locating qualified records directly and scanning in parallel; Simba OOMs
on Traj above 20%; JUST edges JUSTnc thanks to compression.
"""

from harness import (
    DEFAULT_K,
    FRACTIONS,
    K_VALUES,
    OOM,
    ORDER_SCHEMA,
    QUERY_REPS,
    TRAJ_DEFAULT_K,
    TRAJ_K_VALUES,
    TRAJ_KNN_CELL_KM,
    FigureTable,
    baseline_knn_ms,
    just_knn_ms,
    query_points,
)

from repro.baselines import GeoSpark, LocationSpark, Simba, SpatialHadoop

ORDER_SYSTEMS = (GeoSpark, LocationSpark, Simba, SpatialHadoop)
TRAJ_SYSTEMS = (GeoSpark, Simba)


def test_fig13a_data_size_order(data, report, benchmark):
    points = query_points(data.order_stats, QUERY_REPS,
                          centers=data._get("order_centers", lambda: [
                              (r["geom"].lng, r["geom"].lat)
                              for r in data.orders[::97]]))
    table = FigureTable("Fig 13a", "k-NN vs data size (Order), sim ms",
                        "data size %")
    for percent in FRACTIONS:
        engine = data.engine()
        engine.create_table("t", ORDER_SCHEMA)
        engine.insert("t", data.order_fraction(percent))
        engine.table("t").flush()
        table.add("JUST", percent,
                  just_knn_ms(engine, "t", DEFAULT_K, points))
        for cls in ORDER_SYSTEMS:
            loaded = data.baseline(cls, "order", percent)
            table.add(cls.name, percent,
                      baseline_knn_ms(loaded, DEFAULT_K, points))
    report.record(table)
    benchmark(lambda: just_knn_ms(data.order_just["engine"], "order_JUST",
                                  DEFAULT_K, points[:1]))

    # GeoSpark (no global index) merges k candidates from every
    # partition; JUST prunes by area (Lemma 1).
    # The JUST-vs-Hadoop gap is narrower than the paper's because the
    # scaled dataset's k/n ratio (150/10k vs 150/71M) forces far more
    # area expansions per query; the ordering still holds.
    assert table.value("JUST", 100) < table.value("GeoSpark", 100)
    assert table.value("SpatialHadoop", 100) > table.value("JUST", 100)


def test_fig13b_data_size_traj(data, report, benchmark):
    points = query_points(data.traj_stats, QUERY_REPS,
                          centers=[
                              (t.points[len(t.points) // 2].lng,
                               t.points[len(t.points) // 2].lat)
                              for t in data.trajs[::7]])
    table = FigureTable("Fig 13b", "k-NN vs data size (Traj), sim ms",
                        "data size %")
    for percent in FRACTIONS:
        engine = data.engine()
        plugin = engine.create_plugin_table("t", "trajectory")
        plugin.insert_trajectories(data.traj_fraction(percent))
        plugin.flush()
        table.add("JUST", percent,
                  just_knn_ms(engine, "t", TRAJ_DEFAULT_K, points,
                              min_cell_km=TRAJ_KNN_CELL_KM))
        nc = data.engine(compression=False)
        plugin = nc.create_plugin_table("t", "trajectory")
        plugin.insert_trajectories(data.traj_fraction(percent))
        plugin.flush()
        table.add("JUSTnc", percent,
                  just_knn_ms(nc, "t", TRAJ_DEFAULT_K, points,
                              min_cell_km=TRAJ_KNN_CELL_KM))
        for cls in TRAJ_SYSTEMS:
            loaded = data.baseline(cls, "traj", percent)
            table.add(cls.name, percent,
                      baseline_knn_ms(loaded, TRAJ_DEFAULT_K, points))
    report.record(table)
    benchmark(lambda: just_knn_ms(data.traj_just["engine"], "traj_JUST",
                                  TRAJ_DEFAULT_K, points[:1],
                                  min_cell_km=TRAJ_KNN_CELL_KM))

    assert table.value("Simba", 40) == OOM
    assert table.value("JUST", 100) <= table.value("JUSTnc", 100)


def test_fig13c_k_order(data, report, benchmark):
    engine = data.order_just["engine"]
    points = query_points(data.order_stats, QUERY_REPS,
                          centers=data._get("order_centers", lambda: [
                              (r["geom"].lng, r["geom"].lat)
                              for r in data.orders[::97]]))
    table = FigureTable("Fig 13c", "k-NN vs k (Order), sim ms", "k")
    for k in K_VALUES:
        table.add("JUST", k, just_knn_ms(engine, "order_JUST", k, points))
        for cls in (GeoSpark, LocationSpark, Simba):
            loaded = data.baseline(cls, "order", 100)
            table.add(cls.name, k, baseline_knn_ms(loaded, k, points))
    report.record(table)
    benchmark(lambda: just_knn_ms(engine, "order_JUST", DEFAULT_K,
                                  points[:1]))

    # Bigger k needs slightly more expansions (weakly monotone).
    series = [table.value("JUST", k) for k in K_VALUES]
    assert series[-1] >= series[0] * 0.9
    for k in K_VALUES:
        assert table.value("JUST", k) < table.value("GeoSpark", k)


def test_fig13d_k_traj(data, report, benchmark):
    engine = data.traj_just["engine"]
    nc_engine = data.traj_just_nc["engine"]
    points = query_points(data.traj_stats, QUERY_REPS,
                          centers=[
                              (t.points[len(t.points) // 2].lng,
                               t.points[len(t.points) // 2].lat)
                              for t in data.trajs[::7]])
    table = FigureTable("Fig 13d", "k-NN vs k (Traj), sim ms", "k")
    for k in TRAJ_K_VALUES:
        table.add("JUST", k,
                  just_knn_ms(engine, "traj_JUST", k, points,
                              min_cell_km=TRAJ_KNN_CELL_KM))
        table.add("JUSTnc", k,
                  just_knn_ms(nc_engine, "traj_JUST", k, points,
                              min_cell_km=TRAJ_KNN_CELL_KM))
        loaded = data.baseline(GeoSpark, "traj", 100)
        table.add("GeoSpark", k, baseline_knn_ms(loaded, k, points))
    report.record(table)
    benchmark(lambda: just_knn_ms(engine, "traj_JUST", TRAJ_DEFAULT_K,
                                  points[:1],
                                  min_cell_km=TRAJ_KNN_CELL_KM))

    for k in TRAJ_K_VALUES:
        # Compression pays off on trajectory payloads (paper: "JUST is a
        # little better than JUSTnc").
        assert table.value("JUST", k) <= table.value("JUSTnc", k) * 1.02
