"""Load balancer: zipfian multi-tenant skew, balancer off vs on.

Not a paper figure — the paper's engine runs on HBase, whose master
balancer and region splits are what keep a skewed urban workload (a few
hot tenants carry most traffic) from melting one region server.  This
benchmark reproduces that layer: fifteen tenant tables on five servers,
zipf-skewed tenant popularity, and the same seeded run with the
balancer off and on.  Reported per run:

* max/mean per-server write-load imbalance at the end of the run,
* the hot tenant's cold full-scan p95 (simulated ms) — spreading its
  regions over more servers parallelizes the disk reads,
* balancer activity (moves / splits / merges) and mid-move retries.

Also usable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_balancer.py [--quick]
"""

from harness import FigureTable

from repro.balancer.workload import WorkloadConfig, run_workload

_SERIES = {"balancer_off": False, "balancer_on": True}


def _record(report, off, on) -> FigureTable:
    table = FigureTable("Balancer B-1",
                        "Zipfian multi-tenant skew: balancer off vs on",
                        "metric")
    for series, result in (("balancer_off", off), ("balancer_on", on)):
        table.add(series, "write imbalance (max/mean)",
                  round(result.write_imbalance, 2))
        table.add(series, "hot-tenant scan p95 ms",
                  round(result.scan_p95_ms, 2))
        table.add(series, "hot-tenant regions", result.hot_tenant_regions)
        table.add(series, "hot-tenant servers", result.hot_tenant_servers)
        table.add(series, "moves", result.moves)
        table.add(series, "splits", result.splits)
        table.add(series, "merges", result.merges)
        table.add(series, "writes retried", result.retried_writes)
    table.add("balancer_on", "imbalance reduction x",
              round(off.write_imbalance
                    / max(on.write_imbalance, 1e-9), 2))
    return report.record(table)


def test_balancer_halves_write_imbalance(report, data, benchmark):
    """The balancer-on run cuts max/mean write imbalance >= 2x and
    improves the hot tenant's cold-scan tail."""
    off = data.skewed_workload(balancer_on=False)
    on = data.skewed_workload(balancer_on=True)
    _record(report, off, on)

    # Round-robin placement balances region *counts* but not load: the
    # zipf-hot tenants pile write traffic onto their home servers.
    assert off.write_imbalance >= 2.0
    assert off.moves == off.splits == off.merges == 0
    # The balancer splits the hot tenants and spreads their regions.
    assert on.moves > 0 and on.splits > 0
    assert off.write_imbalance / on.write_imbalance >= 2.0
    assert on.hot_tenant_servers > off.hot_tenant_servers
    # More servers per hot table -> parallel disk reads -> lower p95.
    assert on.scan_p95_ms < off.scan_p95_ms
    benchmark(lambda: run_workload(
        WorkloadConfig(rounds=4, writes_per_round=400, scan_samples=2),
        balancer_on=True))


def main(argv=None) -> int:
    """Standalone entry point (CI smoke): record the comparison."""
    import argparse

    from harness import REPORT

    parser = argparse.ArgumentParser(
        description="Balancer benchmark: zipfian multi-tenant skew, "
                    "balancer off vs on.")
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    args = parser.parse_args(argv)
    config = WorkloadConfig()
    if args.quick:
        config.rounds = 20
        config.writes_per_round = 1000
        config.scan_samples = 8
        config.balancer_interval_ms = 100.0
    off = run_workload(config, balancer_on=False)
    on = run_workload(config, balancer_on=True)
    _record(REPORT, off, on)
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
