"""Figure 11: spatial range query performance.

11a/11b: query time vs data size (Order / Traj).
11c/11d: query time vs spatial window (Order / Traj).

Paper shapes: all systems grow with data size and window; JUST is
competitive with the Spark systems and far faster than SpatialHadoop;
memory-bound systems OOM on Traj (Simba > 20%, LocationSpark even at
20%); JUST beats JUSTnc because compression saves disk reads.
"""

import pytest

from harness import (
    DEFAULT_WINDOW_KM,
    FRACTIONS,
    OOM,
    QUERY_REPS,
    SPATIAL_WINDOWS_KM,
    FigureTable,
    baseline_spatial_ms,
    just_spatial_ms,
)

from repro.baselines import (
    GeoSpark,
    LocationSpark,
    Simba,
    SpatialHadoop,
    SpatialSpark,
)

ORDER_SYSTEMS = (GeoSpark, LocationSpark, SpatialSpark, Simba,
                 SpatialHadoop)
TRAJ_SYSTEMS = (GeoSpark, SpatialSpark, Simba)


def _windows(data, dataset, window_km):
    if dataset == "order":
        return data.order_query_windows(window_km, QUERY_REPS)
    return data.traj_query_windows(window_km, QUERY_REPS)


def _just_fraction_tables(data, dataset):
    """JUST tables per fraction live in one engine, keyed by variant."""
    if dataset == "order":
        return data.order_just["engine"], "order_JUST"
    return data.traj_just["engine"], "traj_JUST"


@pytest.mark.parametrize("dataset,systems,figure,title", [
    ("order", ORDER_SYSTEMS, "Fig 11a",
     "Spatial range query vs data size (Order), sim ms"),
    ("traj", TRAJ_SYSTEMS, "Fig 11b",
     "Spatial range query vs data size (Traj), sim ms"),
])
def test_fig11_data_size(data, report, benchmark, dataset, systems,
                         figure, title):
    # Fraction sweeps need a dedicated JUST engine per fraction (the
    # shared engines only hold the final 100% state).
    from harness import ORDER_SCHEMA

    windows = _windows(data, dataset, DEFAULT_WINDOW_KM)
    table = FigureTable(figure, title, "data size %")
    for percent in FRACTIONS:
        engine = data.engine()
        if dataset == "order":
            engine.create_table("t", ORDER_SCHEMA)
            engine.insert("t", data.order_fraction(percent))
            engine.table("t").flush()
        else:
            plugin = engine.create_plugin_table("t", "trajectory")
            plugin.insert_trajectories(data.traj_fraction(percent))
            plugin.flush()
        table.add("JUST", percent, just_spatial_ms(engine, "t", windows))
        if dataset == "traj":
            nc = data.engine(compression=False)
            plugin = nc.create_plugin_table("t", "trajectory")
            plugin.insert_trajectories(data.traj_fraction(percent))
            plugin.flush()
            table.add("JUSTnc", percent,
                      just_spatial_ms(nc, "t", windows))
        for cls in systems:
            loaded = data.baseline(cls, dataset, percent)
            table.add(cls.name, percent,
                      baseline_spatial_ms(loaded, windows))
    report.record(table)
    benchmark(lambda: just_spatial_ms(
        *_just_fraction_tables(data, dataset), windows[:1]))

    # Shapes: SpatialHadoop is far slower than JUST (job launch).
    if dataset == "order":
        assert table.value("SpatialHadoop", 100) > \
            3 * table.value("JUST", 100)
    else:
        assert table.value("Simba", 40) == OOM
        assert table.value("JUST", 100) <= table.value("JUSTnc", 100)


@pytest.mark.parametrize("dataset,systems,figure,title", [
    ("order", ORDER_SYSTEMS, "Fig 11c",
     "Spatial range query vs window (Order), sim ms"),
    ("traj", (GeoSpark, SpatialSpark), "Fig 11d",
     "Spatial range query vs window (Traj), sim ms"),
])
def test_fig11_spatial_window(data, report, benchmark, dataset, systems,
                              figure, title):
    engine_key = "order_just" if dataset == "order" else "traj_just"
    built = getattr(data, engine_key)
    engine = built["engine"]
    just_table = "order_JUST" if dataset == "order" else "traj_JUST"
    # Paper note: SpatialSpark only holds 80% of Traj.
    baseline_percent = {"SpatialSpark": 80} if dataset == "traj" else {}

    table = FigureTable(figure, title, "window km")
    for window_km in SPATIAL_WINDOWS_KM:
        windows = _windows(data, dataset, window_km)
        table.add("JUST", window_km,
                  just_spatial_ms(engine, just_table, windows))
        if dataset == "traj":
            nc_engine = data.traj_just_nc["engine"]
            table.add("JUSTnc", window_km,
                      just_spatial_ms(nc_engine, "traj_JUST", windows))
        for cls in systems:
            percent = baseline_percent.get(cls.name, 100)
            loaded = data.baseline(cls, dataset, percent)
            label = cls.name if percent == 100 else \
                f"{cls.name}({percent}%)"
            table.add(label, window_km,
                      baseline_spatial_ms(loaded, windows))
    report.record(table)
    benchmark(lambda: just_spatial_ms(
        engine, just_table,
        _windows(data, dataset, DEFAULT_WINDOW_KM)[:1]))

    # Bigger windows cost more (weakly monotone for JUST).
    series = [table.value("JUST", w) for w in SPATIAL_WINDOWS_KM]
    assert series[-1] >= series[0] * 0.95
