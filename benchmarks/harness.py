"""Shared machinery for the figure/table benchmarks.

Each ``bench_*`` module reproduces one table or figure of the paper.  The
expensive part — building populated engines and baseline systems over the
generated datasets and sweeping the paper's parameter grids — happens once
per session inside :class:`FigureData`; the pytest-benchmark hooks then
time one representative query per figure for wall-clock numbers, and every
figure's full sweep (in simulated milliseconds) is printed and recorded to
``bench_results.json`` so EXPERIMENTS.md can cite it.

Scale knob: ``REPRO_BENCH_SCALE`` (default 1.0) multiplies dataset sizes.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

from repro import Envelope, JustEngine, Schema, Field, FieldType
from repro.baselines import (
    GeoSpark,
    LocationSpark,
    Simba,
    SpatialHadoop,
    SpatialSpark,
    STHadoop,
)
from repro.baselines.base import (
    items_from_orders,
    items_from_trajectories,
)
from repro.balancer.workload import WorkloadConfig, run_workload
from repro.cluster import Cluster, CostModel
from repro.curves.strategies import STQuery
from repro.datagen import (
    generate_order_dataset,
    generate_synthetic_dataset,
    generate_traj_dataset,
)
from repro.datagen.datasets import order_statistics, traj_statistics
from repro.errors import SimulatedOutOfMemoryError
from repro.geometry.distance import km_to_degrees

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Paper parameter grids (Table IV).  Defaults in bold there.
FRACTIONS = (20, 40, 60, 80, 100)
SPATIAL_WINDOWS_KM = (1, 2, 3, 4, 5)          # side of the square window
TIME_WINDOWS = (("1h", 3600.0), ("6h", 6 * 3600.0), ("1d", 86400.0),
                ("1w", 7 * 86400.0), ("1m", 30 * 86400.0))
K_VALUES = (50, 100, 150, 200, 250)
DEFAULT_WINDOW_KM = 3
DEFAULT_TIME_WINDOW_S = 86400.0
DEFAULT_K = 150
#: k for the scaled-down Traj dataset: the paper's k=150 assumes 314k
#: trajectory records; at the generated record count the same k/n ratio
#: gives a much smaller k (k >= n would degenerate to a full scan).
TRAJ_K_VALUES = (5, 10, 15, 20, 25)
TRAJ_DEFAULT_K = 15
#: Algorithm 1's minimum-cell parameter g, tuned to object density:
#: 1 km suits the dense point datasets; sparse multi-km trajectories
#: use a coarser grid.
TRAJ_KNN_CELL_KM = 5.0

#: Queries per configuration; the paper uses 100 and takes the median.
QUERY_REPS = int(os.environ.get("REPRO_BENCH_REPS", "5"))

# Sized so the Order:Traj raw ratio matches Table II's 10GB:136GB — the
# memory-budget crossovers (which systems OOM at which Traj fraction while
# every system still fits Order) depend on that ratio.
ORDER_COUNT = int(10_000 * SCALE)
TRAJ_COUNT = int(600 * SCALE)
TRAJ_MEAN_POINTS = 250
SYNTHETIC_MULTIPLIER = 4

ORDER_SCHEMA = Schema([
    Field("fid", FieldType.INTEGER, primary_key=True),
    Field("time", FieldType.DATE),
    Field("geom", FieldType.POINT),
    Field("amount", FieldType.DOUBLE),
    Field("category", FieldType.STRING),
])

RESULTS_PATH = Path(__file__).resolve().parent.parent \
    / "bench_results.json"
#: Metrics-registry snapshots of every engine a benchmark run built,
#: dumped next to the figures so I/O accounting rides along.
METRICS_PATH = RESULTS_PATH.parent / "bench_metrics.json"

OOM = "OOM"


def median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


class FigureTable:
    """One reproduced table/figure: rows of {param -> value} by series."""

    def __init__(self, figure_id: str, title: str, param_name: str):
        self.figure_id = figure_id
        self.title = title
        self.param_name = param_name
        self.series: dict[str, dict] = {}

    def add(self, series: str, param, value) -> None:
        self.series.setdefault(series, {})[param] = value

    def value(self, series: str, param):
        return self.series[series][param]

    def render(self) -> str:
        params = []
        for values in self.series.values():
            for param in values:
                if param not in params:
                    params.append(param)
        width = max(14, max((len(s) for s in self.series), default=10) + 2)
        lines = [f"== {self.figure_id}: {self.title} ==",
                 f"{self.param_name:>{width}} | " + " | ".join(
                     f"{p!s:>10}" for p in params)]
        for name, values in self.series.items():
            cells = []
            for param in params:
                value = values.get(param, "-")
                if isinstance(value, float):
                    cells.append(f"{value:>10.1f}")
                else:
                    cells.append(f"{value!s:>10}")
            lines.append(f"{name:>{width}} | " + " | ".join(cells))
        return "\n".join(lines)

    def as_json(self) -> dict:
        return {"figure": self.figure_id, "title": self.title,
                "param": self.param_name, "series": self.series}


class ReportSink:
    """Collects figure tables, prints them, persists them to JSON."""

    def __init__(self):
        self.tables: dict[str, FigureTable] = {}

    def record(self, table: FigureTable) -> FigureTable:
        self.tables[table.figure_id] = table
        print()
        print(table.render())
        self.flush()
        return table

    def flush(self) -> None:
        # Merge with any figures recorded by other benchmark runs so
        # partial invocations never clobber the results file.
        existing = {}
        if RESULTS_PATH.exists():
            try:
                existing = json.loads(RESULTS_PATH.read_text())
            except (ValueError, OSError):
                existing = {}
        existing.update({fid: t.as_json()
                         for fid, t in self.tables.items()})
        RESULTS_PATH.write_text(
            json.dumps(dict(sorted(existing.items())), indent=2,
                       default=str))
        snapshots = DATA.metrics_snapshots()
        if snapshots:
            METRICS_PATH.write_text(
                json.dumps(snapshots, indent=2, default=str))


REPORT = ReportSink()


# ---------------------------------------------------------------------------
# Datasets and engines (built lazily, cached for the session)
# ---------------------------------------------------------------------------

class FigureData:
    """Lazily-built shared state for every figure benchmark."""

    def __init__(self):
        self._cache: dict[str, object] = {}

    def _get(self, key, builder):
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    def metrics_snapshots(self) -> dict:
        """Registry snapshot of every engine built so far, by cache key."""
        out = {}
        for key, value in self._cache.items():
            engine = value.get("engine") \
                if isinstance(value, dict) else value
            metrics = getattr(engine, "metrics", None)
            if metrics is not None:
                out[key] = metrics.snapshot()
        return out

    # -- datasets ------------------------------------------------------------
    @property
    def orders(self):
        return self._get("orders",
                         lambda: generate_order_dataset(ORDER_COUNT))

    @property
    def trajs(self):
        return self._get("trajs", lambda: generate_traj_dataset(
            TRAJ_COUNT, TRAJ_MEAN_POINTS))

    @property
    def synthetic(self):
        return self._get("synthetic", lambda: generate_synthetic_dataset(
            self.trajs, SYNTHETIC_MULTIPLIER))

    @property
    def order_stats(self):
        return self._get("order_stats",
                         lambda: order_statistics(self.orders))

    @property
    def traj_stats(self):
        return self._get("traj_stats",
                         lambda: traj_statistics(self.trajs))

    def order_fraction(self, percent: int):
        count = len(self.orders) * percent // 100
        return self.orders[:count]

    def traj_fraction(self, percent: int):
        count = len(self.trajs) * percent // 100
        return self.trajs[:count]

    # -- memory budget (reproduces the paper's OOM crossovers) ---------------
    @property
    def memory_budget(self) -> int:
        return int(0.9 * self.traj_stats.raw_size_bytes)

    @property
    def cost_model(self) -> CostModel:
        """Cost model calibrated so data-volume work matches Table II.

        ``work_scale`` = paper Traj raw size / generated Traj raw size:
        per-query byte volumes then land at the paper's magnitudes while
        fixed costs (job launches, seeks) stay physical.
        """
        def build():
            paper_traj_raw = 136 * 1024 ** 3
            paper_order_points = 71_007_530
            scale = paper_traj_raw / self.traj_stats.raw_size_bytes
            record_scale = paper_order_points / len(self.orders)
            return CostModel(work_scale=scale,
                             record_scale=record_scale,
                             kv_put_us=15.0)
        return self._get("cost_model", build)

    # -- multi-tenant skewed workload (balancer benchmark) -------------------
    def skewed_workload(self, balancer_on: bool):
        """Zipfian multi-tenant workload run, balancer off or on.

        Both runs share one seeded :class:`WorkloadConfig`, so the only
        difference between the cached results is the balancer itself.
        """
        key = f"skewed_workload_{'on' if balancer_on else 'off'}"
        return self._get(key, lambda: run_workload(
            WorkloadConfig(), balancer_on=balancer_on))

    def cluster(self) -> Cluster:
        return Cluster(memory_budget_bytes=self.memory_budget,
                       model=self.cost_model)

    def engine(self, compression: bool = True) -> JustEngine:
        # block_bytes shrinks with work_scale so per-block read overhead
        # stays proportional to the scaled data volume (an 8 KiB block at
        # paper scale corresponds to a few hundred bytes here).
        return JustEngine(compression_enabled=compression,
                          cost_model=self.cost_model,
                          block_bytes=256)

    # -- JUST engines ----------------------------------------------------------
    def _build_order_engine(self, compression: bool) -> dict:
        """Engine with the Order table under every index variant.

        Returns per-fraction cumulative indexing sim-times per table.
        """
        engine = self.engine(compression)
        variants = {
            "JUST": {},  # default: z2 + z2t(day)
            "JUSTd": {"geomesa.indices.enabled": "z3:day"},
            "JUSTy": {"geomesa.indices.enabled": "z3:year"},
            "JUSTc": {"geomesa.indices.enabled": "z3:century"},
        }
        for name, userdata in variants.items():
            engine.create_table(f"order_{name}", ORDER_SCHEMA,
                                userdata or None)
        index_ms = {name: {} for name in variants}
        storage = {name: {} for name in variants}
        done = 0
        for percent in FRACTIONS:
            rows = self.order_fraction(percent)
            batch = rows[done:]
            done = len(rows)
            for name in variants:
                result = engine.insert(f"order_{name}", batch)
                previous_percent = {20: None, 40: 20, 60: 40, 80: 60,
                                    100: 80}[percent]
                previous = index_ms[name].get(previous_percent, 0.0) \
                    if previous_percent else 0.0
                index_ms[name][percent] = previous + result.sim_ms
                table = engine.table(f"order_{name}")
                table.flush()
                storage[name][percent] = table.storage_bytes()
        return {"engine": engine, "index_ms": index_ms,
                "storage": storage}

    @property
    def order_just(self) -> dict:
        return self._get("order_just",
                         lambda: self._build_order_engine(True))

    def _build_traj_engine(self, compression: bool) -> dict:
        engine = self.engine(compression)
        variants = {
            "JUST": None,  # default plugin indexes: xz2 + xz2t(day)
            "JUSTd": {"geomesa.indices.enabled": "xz3:day"},
            "JUSTy": {"geomesa.indices.enabled": "xz3:year"},
            "JUSTc": {"geomesa.indices.enabled": "xz3:century"},
        }
        for name, userdata in variants.items():
            engine.create_plugin_table(f"traj_{name}", "trajectory",
                                       userdata)
        index_ms = {name: {} for name in variants}
        storage = {name: {} for name in variants}
        done = 0
        for percent in FRACTIONS:
            trajs = self.traj_fraction(percent)
            batch = trajs[done:]
            done = len(trajs)
            for name in variants:
                table = engine.table(f"traj_{name}")
                job = engine.cluster.job()
                table.insert_trajectories(batch, job)
                previous_percent = {20: None, 40: 20, 60: 40, 80: 60,
                                    100: 80}[percent]
                previous = index_ms[name].get(previous_percent, 0.0) \
                    if previous_percent else 0.0
                index_ms[name][percent] = previous + job.elapsed_ms
                table.flush()
                storage[name][percent] = table.storage_bytes()
        return {"engine": engine, "index_ms": index_ms,
                "storage": storage}

    @property
    def traj_just(self) -> dict:
        return self._get("traj_just",
                         lambda: self._build_traj_engine(True))

    @property
    def traj_just_nc(self) -> dict:
        return self._get("traj_just_nc",
                         lambda: self._build_traj_engine(False))

    @property
    def order_just_compressed(self) -> dict:
        """Order with compression forced on point/attribute fields
        (the JUSTcompress line of Figure 10a)."""
        def build():
            schema = Schema([
                Field("fid", FieldType.INTEGER, primary_key=True),
                Field("time", FieldType.DATE),
                Field("geom", FieldType.POINT),
                Field("amount", FieldType.DOUBLE),
                Field("category", FieldType.STRING, compress="gzip"),
            ])
            engine = self.engine(True)
            engine.create_table("order_c", schema)
            storage = {}
            done = 0
            for percent in FRACTIONS:
                rows = self.order_fraction(percent)
                engine.insert("order_c", rows[done:])
                done = len(rows)
                table = engine.table("order_c")
                table.flush()
                storage[percent] = table.storage_bytes()
            return storage
        return self._get("order_just_compressed", build)

    # -- baselines ------------------------------------------------------------
    def baseline(self, cls, dataset: str, percent: int = 100):
        """A loaded baseline (or the string OOM).  Cached per config."""
        key = f"baseline_{cls.__name__}_{dataset}_{percent}"

        def build():
            if dataset == "order":
                items = items_from_orders(self.order_fraction(percent))
            elif dataset == "traj":
                items = items_from_trajectories(
                    self.traj_fraction(percent))
            else:
                raise ValueError(dataset)
            system = cls(self.cluster())
            try:
                job = system.load(items)
            except SimulatedOutOfMemoryError:
                return OOM
            return {"system": system, "load_ms": job.elapsed_ms}
        return self._get(key, build)

    # -- query generators --------------------------------------------------------
    def order_query_windows(self, window_km: float, count: int,
                            seed: int = 0) -> list[Envelope]:
        centers = self._get("order_centers", lambda: [
            (r["geom"].lng, r["geom"].lat) for r in self.orders[::97]])
        return _windows(self.order_stats, window_km, count, seed,
                        centers)

    def traj_query_windows(self, window_km: float, count: int,
                           seed: int = 1) -> list[Envelope]:
        def midpoints():
            out = []
            for t in self.trajs[::7]:
                mid = t.points[len(t.points) // 2]
                out.append((mid.lng, mid.lat))
            return out

        centers = self._get("traj_centers", midpoints)
        return _windows(self.traj_stats, window_km, count, seed,
                        centers)

    def time_ranges(self, stats, window_s: float, count: int,
                    seed: int = 2) -> list[tuple[float, float]]:
        rng = random.Random(seed)
        span = stats.time_end - stats.time_start - window_s
        out = []
        for _ in range(count):
            start = stats.time_start + rng.random() * max(1.0, span)
            out.append((start, start + window_s))
        return out


def _windows(stats, window_km: float, count: int,
             seed: int, centers=None) -> list[Envelope]:
    """Query windows centred on sampled data locations.

    Urban range queries target populated areas; sampling centres from the
    data (rather than uniformly from the bounding box) keeps per-window
    selectivity stable, as the paper's randomly-parameterized query
    workload does.
    """
    from repro.datagen.trajgen import AREA
    # Same centres for every window size: the sweep then isolates
    # the window-size effect instead of re-rolling query locations.
    rng = random.Random(seed)
    side = km_to_degrees(window_km)
    out = []
    for _ in range(count):
        if centers:
            cx, cy = rng.choice(centers)
        else:
            cx = rng.uniform(AREA[0], AREA[2])
            cy = rng.uniform(AREA[1], AREA[3])
        lng = min(max(cx - side / 2, AREA[0]), AREA[2] - side)
        lat = min(max(cy - side / 2, AREA[1]), AREA[3] - side)
        out.append(Envelope(lng, lat, lng + side, lat + side))
    return out


DATA = FigureData()


# ---------------------------------------------------------------------------
# Measurement helpers
# ---------------------------------------------------------------------------

def just_spatial_ms(engine: JustEngine, table: str,
                    windows: list[Envelope]) -> float:
    times = []
    for window in windows:
        engine.store.clear_caches()  # the paper defeats the HBase cache
        times.append(engine.spatial_range_query(table, window).sim_ms)
    return median(times)


def just_st_ms(engine: JustEngine, table: str, windows: list[Envelope],
               time_ranges: list[tuple[float, float]]) -> float:
    times = []
    for window, (t_lo, t_hi) in zip(windows, time_ranges):
        engine.store.clear_caches()
        times.append(engine.st_range_query(table, window, t_lo,
                                           t_hi).sim_ms)
    return median(times)


def just_knn_ms(engine: JustEngine, table: str, k: int,
                points: list[tuple[float, float]],
                min_cell_km: float = 1.0) -> float:
    times = []
    for lng, lat in points:
        engine.store.clear_caches()
        times.append(engine.knn(table, lng, lat, k,
                                min_cell_km=min_cell_km).sim_ms)
    return median(times)


def baseline_spatial_ms(loaded, windows: list[Envelope]):
    if loaded == OOM:
        return OOM
    system = loaded["system"]
    return median([system.spatial_range_query(w).sim_ms
                   for w in windows])


def baseline_st_ms(loaded, windows, time_ranges):
    if loaded == OOM:
        return OOM
    system = loaded["system"]
    return median([system.st_range_query(w, t_lo, t_hi).sim_ms
                   for w, (t_lo, t_hi) in zip(windows, time_ranges)])


def baseline_knn_ms(loaded, k: int, points):
    if loaded == OOM:
        return OOM
    system = loaded["system"]
    return median([system.knn(lng, lat, k).sim_ms
                   for lng, lat in points])


def query_points(stats, count: int, seed: int = 3, centers=None):
    """k-NN query points.

    Like the range-query windows, points are drawn near data locations
    (dispatch-style queries originate where the fleet operates); a small
    jitter keeps them off exact record positions.
    """
    from repro.datagen.trajgen import AREA
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        if centers:
            cx, cy = rng.choice(centers)
            cx += rng.gauss(0.0, 0.005)
            cy += rng.gauss(0.0, 0.005)
        else:
            cx = rng.uniform(AREA[0], AREA[2])
            cy = rng.uniform(AREA[1], AREA[3])
        out.append((min(max(cx, AREA[0]), AREA[2]),
                    min(max(cy, AREA[1]), AREA[3])))
    return out
