"""Request resilience: tail latency and goodput under gray failures.

Not a paper figure — the paper's PaaS serves many concurrent users from
one shared engine, and this quantifies the request-resilience layer that
deployment needs: a seeded query workload runs against a cluster with
one *sick* region server (uniformly slow, or flapping with intermittent
errors) under three client policies — no protection, per-statement
deadlines, and deadlines + opt-in partial results.  Reported per policy:

* tail latency (p50/p95/p99, simulated ms) over finished requests,
* goodput (fraction of requests that returned rows),
* timeouts, typed failures, and partial results with skipped regions.

Also usable standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_resilience.py [--quick]
"""

from harness import FigureTable

from repro.faults.resilience_demo import build_service, run_workload

_QUERIES = 40
_TIMEOUT_MS = 100.0
_MODES = ("baseline", "deadline", "partial")


def _sweep(fault: str, queries: int = _QUERIES) -> dict:
    results = {}
    for mode in _MODES:
        server = build_service(fault)
        results[mode] = run_workload(server, mode, queries=queries,
                                     timeout_ms=_TIMEOUT_MS)
    return results


def _record(report, fault: str, results: dict) -> FigureTable:
    table = FigureTable(f"Resilience R-{fault}",
                        f"Client policies vs a {fault} region server",
                        "metric")
    for mode, result in results.items():
        table.add(mode, "ok", result.ok)
        table.add(mode, "timeouts", result.timeouts)
        table.add(mode, "errors", result.errors)
        table.add(mode, "partial", result.partial)
        table.add(mode, "p50 ms", result.percentile(0.50))
        table.add(mode, "p95 ms", result.percentile(0.95))
        table.add(mode, "p99 ms", result.percentile(0.99))
        table.add(mode, "goodput", round(result.goodput, 3))
    return report.record(table)


def test_deadlines_cap_tail_latency_on_slow_server(report, benchmark):
    """A uniformly slow server: deadlines bound p99 at the budget."""
    results = _sweep("slow")
    _record(report, "slow", results)

    baseline, deadline = results["baseline"], results["deadline"]
    # Unprotected requests absorb the injected latency in full.
    assert baseline.goodput == 1.0
    assert baseline.percentile(0.99) > 10 * _TIMEOUT_MS
    # Deadlines convert unbounded stalls into prompt, bounded timeouts:
    # every finished latency sits within one charge of the budget.
    assert deadline.timeouts > 0
    assert max(deadline.latencies_ms) < 2 * _TIMEOUT_MS
    assert deadline.percentile(0.99) < baseline.percentile(0.99) / 5
    benchmark(lambda: run_workload(build_service("slow"), "deadline",
                                   queries=5, timeout_ms=_TIMEOUT_MS))


def test_partial_results_restore_goodput_on_flaky_server(report,
                                                         benchmark):
    """A flapping server: partial results trade completeness for
    goodput where retries alone are hopeless."""
    results = _sweep("flaky")
    _record(report, "flaky", results)

    baseline, partial = results["baseline"], results["partial"]
    # Every scan crosses the sick server, so unprotected (and
    # deadline-only) requests keep failing even after SDK retries...
    assert baseline.goodput < 0.5
    # ...while partial-results mode skips the flapping regions, returns
    # the live rows, and reports exactly what was skipped.
    assert partial.goodput > 0.9
    assert partial.partial > 0
    assert partial.regions_skipped > 0
    benchmark(lambda: run_workload(build_service("flaky"), "partial",
                                   queries=5, timeout_ms=_TIMEOUT_MS))


def main(argv=None) -> int:
    """Standalone entry point (CI smoke): record both sweeps."""
    import argparse

    from harness import REPORT

    parser = argparse.ArgumentParser(
        description="Resilience benchmark: tail latency/goodput under "
                    "gray failures.")
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    args = parser.parse_args(argv)
    queries = 10 if args.quick else _QUERIES
    for fault in ("slow", "flaky"):
        _record(REPORT, fault, _sweep(fault, queries=queries))
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
