"""Figure 14: scalability on the Synthetic (copy & sample) dataset.

14a: indexing time and storage size vs data size — both linear.
14b: query time vs data size — k-NN and spatial range grow with data;
     the spatio-temporal query is *flat*: Z2T locates the qualified time
     periods directly, and the per-period record count does not change
     when more periods are appended.
"""

from harness import (
    DEFAULT_TIME_WINDOW_S,
    DEFAULT_WINDOW_KM,
    FRACTIONS,
    QUERY_REPS,
    FigureTable,
    just_knn_ms,
    just_spatial_ms,
    just_st_ms,
    median,
    query_points,
)

from repro.datagen.datasets import traj_statistics

_MB = 1024.0 * 1024.0


def _build_fraction(data, percent):
    engine = data.engine()
    plugin = engine.create_plugin_table("t", "trajectory")
    count = len(data.synthetic) * percent // 100
    job = engine.cluster.job()
    plugin.insert_trajectories(data.synthetic[:count], job)
    plugin.flush()
    return engine, plugin, job


def test_fig14a_indexing_and_storage(data, report, benchmark):
    table = FigureTable("Fig 14a", "Synthetic: indexing time (sim ms) "
                        "and storage (MB)", "data size %")
    for percent in FRACTIONS:
        _engine, plugin, job = _build_fraction(data, percent)
        table.add("indexing_ms", percent, job.elapsed_ms)
        table.add("storage_mb", percent, plugin.storage_bytes() / _MB)
    report.record(table)
    benchmark(lambda: traj_statistics(data.synthetic))

    # Both curves are linear in the data size (ratio ~= fraction ratio).
    for series in ("indexing_ms", "storage_mb"):
        v20 = table.value(series, 20)
        v100 = table.value(series, 100)
        assert 3.5 < v100 / v20 < 6.5  # ~5x for 5x the data


def test_fig14b_query_times(data, report, benchmark):
    stats = traj_statistics(data.synthetic, "Synthetic")
    windows = data.traj_query_windows(DEFAULT_WINDOW_KM, QUERY_REPS)
    times = data.time_ranges(stats, DEFAULT_TIME_WINDOW_S, QUERY_REPS)
    # k-NN over the scaled Synthetic dataset: the paper's k=150 assumes
    # 314k trajectory records; at the generated count the same k/n ratio
    # means a small k, and Algorithm 1's cell parameter g is widened so
    # each expanding search probes a bounded number of cells (every
    # probed cell decodes all overlapping trajectory rows).  One query
    # point per fraction keeps the sweep tractable; the figure's claim
    # is the trend across fractions.
    points = query_points(stats, 1, centers=[
        (t.points[len(t.points) // 2].lng,
         t.points[len(t.points) // 2].lat)
        for t in data.synthetic[::17]])

    table = FigureTable("Fig 14b", "Synthetic: query time vs data size, "
                        "sim ms", "data size %")
    engines = {}
    for percent in FRACTIONS:
        engine, _plugin, _job = _build_fraction(data, percent)
        engines[percent] = engine
        table.add("k-NN", percent,
                  just_knn_ms(engine, "t", 10, points,
                              min_cell_km=15.0))
        table.add("S", percent, just_spatial_ms(engine, "t", windows))
        table.add("ST", percent, just_st_ms(engine, "t", windows, times))
    report.record(table)
    benchmark(lambda: just_st_ms(engines[100], "t", windows[:1],
                                 times[:1]))

    # S and k-NN grow with data; ST stays flat (paper Section VIII-F).
    s_ratio = table.value("S", 100) / table.value("S", 20)
    assert s_ratio > 1.5
    # "Flat" relative to the growing series: the ST growth ratio stays
    # well below S's (absolute ST medians wobble with which periods the
    # random windows hit).
    st_ratio = table.value("ST", 100) / table.value("ST", 20)
    assert st_ratio < s_ratio / 1.5
    # The flat ST line sits far below the growing S line at full size.
    assert table.value("ST", 100) < table.value("S", 100)


def test_fig14_median_helper_sanity(benchmark):
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
    benchmark(lambda: median(list(range(100))))
