"""Road network graph with spatial candidate lookup."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ExecutionError
from repro.geometry.distance import (
    METERS_PER_DEGREE,
    haversine_distance_m,
    point_segment_distance,
)


@dataclass(frozen=True)
class RoadSegment:
    """One directed road segment (graph edge)."""

    segment_id: str
    start_node: str
    end_node: str
    coords: tuple[tuple[float, float], ...]
    length_m: float
    attributes: dict = field(default_factory=dict, compare=False)


@dataclass(frozen=True, slots=True)
class Candidate:
    """A map-matching candidate: a segment plus the projected position."""

    segment: RoadSegment
    proj_lng: float
    proj_lat: float
    distance_m: float
    #: metres from the segment start to the projection point
    offset_m: float


class RoadNetwork:
    """A directed road graph over :mod:`networkx` with a grid index.

    Nodes are intersections with coordinates; edges are
    :class:`RoadSegment` polylines.  ``candidates`` finds the segments
    near a GPS sample; ``route_length_m`` gives network distances for
    map-matching transitions.
    """

    def __init__(self, index_cell_m: float = 250.0):
        self.graph = nx.DiGraph()
        self._segments: dict[str, RoadSegment] = {}
        self._cell_degrees = index_cell_m / METERS_PER_DEGREE
        self._grid: dict[tuple[int, int], list[str]] = {}

    # -- construction -----------------------------------------------------------
    def add_node(self, node_id: str, lng: float, lat: float) -> None:
        self.graph.add_node(node_id, lng=lng, lat=lat)

    def node_position(self, node_id: str) -> tuple[float, float]:
        data = self.graph.nodes[node_id]
        return data["lng"], data["lat"]

    def add_segment(self, segment_id: str, start_node: str, end_node: str,
                    coords=None, bidirectional: bool = True,
                    **attributes) -> RoadSegment:
        """Add a segment; coords default to the straight node-to-node line."""
        if start_node not in self.graph or end_node not in self.graph:
            raise ExecutionError(
                f"segment {segment_id!r} references unknown nodes")
        if coords is None:
            coords = (self.node_position(start_node),
                      self.node_position(end_node))
        coords = tuple((float(a), float(b)) for a, b in coords)
        length = sum(haversine_distance_m(x1, y1, x2, y2)
                     for (x1, y1), (x2, y2) in zip(coords, coords[1:]))
        segment = RoadSegment(segment_id, start_node, end_node, coords,
                              length, dict(attributes))
        self._register(segment)
        if bidirectional:
            reverse = RoadSegment(segment_id + ":rev", end_node, start_node,
                                  tuple(reversed(coords)), length,
                                  dict(attributes))
            self._register(reverse)
        return segment

    def _register(self, segment: RoadSegment) -> None:
        self._segments[segment.segment_id] = segment
        self.graph.add_edge(segment.start_node, segment.end_node,
                            segment_id=segment.segment_id,
                            weight=segment.length_m)
        for (x1, y1), (x2, y2) in zip(segment.coords, segment.coords[1:]):
            self._index_span(segment.segment_id, x1, y1, x2, y2)

    def _index_span(self, segment_id: str, x1, y1, x2, y2) -> None:
        size = self._cell_degrees
        cx1, cx2 = sorted((math.floor(x1 / size), math.floor(x2 / size)))
        cy1, cy2 = sorted((math.floor(y1 / size), math.floor(y2 / size)))
        for cx in range(cx1, cx2 + 1):
            for cy in range(cy1, cy2 + 1):
                bucket = self._grid.setdefault((cx, cy), [])
                if not bucket or bucket[-1] != segment_id:
                    bucket.append(segment_id)

    # -- accessors ----------------------------------------------------------------
    def segment(self, segment_id: str) -> RoadSegment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise ExecutionError(
                f"unknown road segment {segment_id!r}") from None

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    # -- spatial lookup -------------------------------------------------------------
    def candidates(self, lng: float, lat: float, radius_m: float = 50.0,
                   max_candidates: int = 5) -> list[Candidate]:
        """Segments whose geometry passes within ``radius_m`` of a point."""
        size = self._cell_degrees
        reach = max(1, math.ceil(radius_m / METERS_PER_DEGREE / size))
        cx, cy = math.floor(lng / size), math.floor(lat / size)
        seen: set[str] = set()
        found: list[Candidate] = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                for segment_id in self._grid.get((gx, gy), ()):
                    if segment_id in seen:
                        continue
                    seen.add(segment_id)
                    candidate = self._project(self._segments[segment_id],
                                              lng, lat)
                    if candidate.distance_m <= radius_m:
                        found.append(candidate)
        found.sort(key=lambda c: c.distance_m)
        return found[:max_candidates]

    @staticmethod
    def _project(segment: RoadSegment, lng: float,
                 lat: float) -> Candidate:
        best_d = float("inf")
        best_point = segment.coords[0]
        best_offset = 0.0
        walked = 0.0
        for (x1, y1), (x2, y2) in zip(segment.coords, segment.coords[1:]):
            proj = _project_on_segment(lng, lat, x1, y1, x2, y2)
            d_deg = point_segment_distance(lng, lat, x1, y1, x2, y2)
            if d_deg < best_d:
                best_d = d_deg
                best_point = proj
                best_offset = walked + haversine_distance_m(
                    x1, y1, proj[0], proj[1])
            walked += haversine_distance_m(x1, y1, x2, y2)
        distance_m = haversine_distance_m(lng, lat, best_point[0],
                                          best_point[1])
        return Candidate(segment, best_point[0], best_point[1],
                         distance_m, best_offset)

    # -- routing ------------------------------------------------------------------------
    def route_length_m(self, from_node: str, to_node: str) -> float:
        """Shortest network distance between two nodes; inf if unreachable."""
        if from_node == to_node:
            return 0.0
        try:
            return nx.shortest_path_length(self.graph, from_node, to_node,
                                           weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return float("inf")

    # -- factories ------------------------------------------------------------------------
    @classmethod
    def grid(cls, min_lng: float, min_lat: float, cols: int, rows: int,
             spacing_m: float = 500.0) -> "RoadNetwork":
        """A Manhattan-style grid network (tests, examples, synthetics).

        ``spacing_m`` is ground distance: the longitude step is widened by
        1/cos(latitude) so horizontal and vertical segments have the same
        physical length.
        """
        network = cls()
        lat_step = spacing_m / METERS_PER_DEGREE
        mid_lat = min_lat + rows * lat_step / 2.0
        lng_step = lat_step / math.cos(math.radians(mid_lat))
        for r in range(rows):
            for c in range(cols):
                network.add_node(f"n{r}_{c}", min_lng + c * lng_step,
                                 min_lat + r * lat_step)
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    network.add_segment(f"h{r}_{c}", f"n{r}_{c}",
                                        f"n{r}_{c + 1}")
                if r + 1 < rows:
                    network.add_segment(f"v{r}_{c}", f"n{r}_{c}",
                                        f"n{r + 1}_{c}")
        return network


def _project_on_segment(px, py, ax, ay, bx, by) -> tuple[float, float]:
    abx, aby = bx - ax, by - ay
    denom = abx * abx + aby * aby
    if denom == 0.0:
        return (ax, ay)
    t = max(0.0, min(1.0, ((px - ax) * abx + (py - ay) * aby) / denom))
    return (ax + t * abx, ay + t * aby)
