"""Map recovery from trajectories (the paper's Map Recovery System).

Couriers walk and ride through living areas missing from commercial maps;
their GPS tracks reveal the road skeleton.  The recovery pipeline here is
density-based:

1. rasterize every trajectory leg onto a uniform grid and count distinct
   trajectories per cell;
2. keep cells supported by at least ``min_support`` trajectories;
3. connect kept cells that are 8-neighbours into road segments, estimate
   each segment's speed from the samples that crossed it, and classify
   the travel mode (walking / riding / driving) from the speed.

The result is a :class:`RoadNetwork` whose segments carry ``speed_mps``
and ``mode`` attributes, ready for path planning.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from repro.geometry.distance import METERS_PER_DEGREE
from repro.roadnetwork.network import RoadNetwork
from repro.trajectory.model import Trajectory

DEFAULT_CELL_M = 50.0
DEFAULT_MIN_SUPPORT = 3

#: Mode classification thresholds on mean speed (m/s).
WALKING_MAX_MPS = 2.5
RIDING_MAX_MPS = 8.0


@dataclass(frozen=True, slots=True)
class RecoveredSegment:
    """One recovered road segment with inferred attributes."""

    segment_id: str
    start: tuple[float, float]
    end: tuple[float, float]
    support: int
    speed_mps: float
    mode: str


def classify_mode(speed_mps: float) -> str:
    if speed_mps <= WALKING_MAX_MPS:
        return "walking"
    if speed_mps <= RIDING_MAX_MPS:
        return "riding"
    return "driving"


def _cells_on_leg(x1, y1, x2, y2, size) -> list[tuple[int, int]]:
    """Grid cells visited by the segment, sampled at sub-cell steps."""
    steps = max(1, int(max(abs(x2 - x1), abs(y2 - y1)) / size * 2))
    cells = []
    last = None
    for s in range(steps + 1):
        t = s / steps
        cell = (math.floor((x1 + (x2 - x1) * t) / size),
                math.floor((y1 + (y2 - y1) * t) / size))
        if cell != last:
            cells.append(cell)
            last = cell
    return cells


def recover_map(trajectories: list[Trajectory],
                cell_m: float = DEFAULT_CELL_M,
                min_support: int = DEFAULT_MIN_SUPPORT
                ) -> tuple[RoadNetwork, list[RecoveredSegment]]:
    """Recover a road network from trajectories.

    Returns the network plus the recovered segment summaries.  Support is
    counted in *distinct trajectories*, so a single vehicle idling in one
    spot cannot fabricate a road.
    """
    size = cell_m / METERS_PER_DEGREE
    support: dict[tuple[int, int], set[str]] = defaultdict(set)
    speed_sum: dict[tuple[int, int], float] = defaultdict(float)
    speed_count: dict[tuple[int, int], int] = defaultdict(int)

    for trajectory in trajectories:
        points = trajectory.points
        for a, b in zip(points, points[1:]):
            speed = a.speed_to_mps(b)
            if math.isinf(speed):
                continue
            for cell in _cells_on_leg(a.lng, a.lat, b.lng, b.lat, size):
                support[cell].add(trajectory.tid)
                speed_sum[cell] += speed
                speed_count[cell] += 1

    kept = {cell for cell, tids in support.items()
            if len(tids) >= min_support}

    network = RoadNetwork(index_cell_m=cell_m)
    for cx, cy in kept:
        network.add_node(f"c{cx}_{cy}", (cx + 0.5) * size,
                         (cy + 0.5) * size)

    segments: list[RecoveredSegment] = []
    # Connect 8-neighbours; to avoid duplicates only look "forward".
    neighbour_offsets = ((1, 0), (0, 1), (1, 1), (1, -1))
    for cx, cy in sorted(kept):
        for dx, dy in neighbour_offsets:
            other = (cx + dx, cy + dy)
            if other not in kept:
                continue
            cell_a, cell_b = (cx, cy), other
            samples = speed_count[cell_a] + speed_count[cell_b]
            mean_speed = ((speed_sum[cell_a] + speed_sum[cell_b]) / samples
                          if samples else 0.0)
            mode = classify_mode(mean_speed)
            seg_support = len(support[cell_a] & support[cell_b]) or \
                min(len(support[cell_a]), len(support[cell_b]))
            segment_id = f"r{cx}_{cy}_{other[0]}_{other[1]}"
            network.add_segment(segment_id, f"c{cx}_{cy}",
                                f"c{other[0]}_{other[1]}",
                                speed_mps=mean_speed, mode=mode,
                                support=seg_support)
            segments.append(RecoveredSegment(
                segment_id,
                network.node_position(f"c{cx}_{cy}"),
                network.node_position(f"c{other[0]}_{other[1]}"),
                seg_support, mean_speed, mode))
    return network, segments
