"""Road networks and map recovery.

``network`` provides the road-graph substrate the map-matching operation
needs (candidate segment lookup, shortest routes).  ``recovery``
implements the paper's Map Recovery application: inferring missing road
segments, speeds, and travel modes from courier trajectories.
"""

from repro.roadnetwork.network import RoadNetwork, RoadSegment
from repro.roadnetwork.recovery import RecoveredSegment, recover_map

__all__ = ["RoadNetwork", "RoadSegment", "RecoveredSegment", "recover_map"]
