"""SpatialSpark (ICDE workshops 2015): grid-partitioned Spark ranges.

SpatialSpark supports fixed-grid / binary-space partitioning with spatial
range queries only — no k-NN, no SQL, no temporal dimension.  Its
partition replication of boundary-crossing objects gives it a moderate
memory footprint; the paper reports it fails at 100% of Traj.
"""

from __future__ import annotations

from repro.baselines.base import SparkBaseline
from repro.cluster.simclock import SimJob
from repro.spatial_index.grid import GridIndex
from repro.geometry.envelope import Envelope


class SpatialSpark(SparkBaseline):
    name = "SpatialSpark"
    memory_expansion = 1.0
    has_global_index = True
    supports_st = False
    supports_knn = False

    def _build_local_index(self, partition, job: SimJob):
        bounds = Envelope.union_all([i.envelope for i in partition])
        grid = GridIndex(bounds, cols=8, rows=8)
        for item in partition:
            grid.insert(item.envelope, item)
        return grid
