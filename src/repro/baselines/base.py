"""Shared machinery for the comparison systems.

The baselines operate on :class:`Item` records — the index-relevant
projection of a point or trajectory plus its raw byte size.  Loading
builds each system's partitioning + indexes for real (the structures in
:mod:`repro.spatial_index`), charges the cost model for the work, and
reserves cluster memory for memory-resident systems.  Queries run the
real index algorithms and charge scan/CPU/network costs, so the
benchmark's relative numbers derive from actual work done.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cluster.node import Cluster
from repro.cluster.simclock import SimJob
from repro.datagen.datasets import (
    _csv_bytes_per_gps_point,
    _csv_bytes_per_order,
)
from repro.errors import UnsupportedOperationError
from repro.geometry.envelope import Envelope
from repro.spatial_index.rtree import RTree
from repro.trajectory.model import Trajectory


@dataclass(frozen=True)
class Item:
    """One indexed record: envelope, time extent, id, raw size."""

    fid: str
    envelope: Envelope
    t_min: float
    t_max: float
    raw_bytes: int

    @property
    def center(self) -> tuple[float, float]:
        return self.envelope.center


def items_from_orders(rows: list[dict]) -> list[Item]:
    """Convert Order rows (fid/time/geom) into baseline items."""
    per_row = _csv_bytes_per_order()
    return [Item(str(r["fid"]), r["geom"].envelope, float(r["time"]),
                 float(r["time"]), per_row) for r in rows]


def items_from_trajectories(trajectories: list[Trajectory]) -> list[Item]:
    """Convert trajectories into baseline items (MBR + time extent)."""
    per_point = _csv_bytes_per_gps_point()
    return [Item(t.tid, t.envelope, t.start_time, t.end_time,
                 len(t.points) * per_point) for t in trajectories]


@dataclass
class BaselineResult:
    """Query output plus the simulated job that produced it."""

    items: list[Item]
    job: SimJob

    @property
    def sim_ms(self) -> float:
        return self.job.elapsed_ms

    def __len__(self) -> int:
        return len(self.items)


class BaselineSystem(ABC):
    """Interface shared by all six comparison systems."""

    #: Display name used in benchmark tables.
    name: str = "abstract"
    #: "spark" (memory-resident) or "hadoop" (disk-resident MapReduce).
    category: str = "spark"
    #: In-memory bytes consumed per raw input byte when cached (RDD rows,
    #: JVM object headers, index overhead).  Drives the OOM behaviour.
    memory_expansion: float = 1.0
    #: Table VI capabilities.
    supports_st: bool = False
    supports_knn: bool = True

    def __init__(self, cluster: Cluster | None = None):
        self.cluster = cluster if cluster is not None else Cluster()
        self.items: list[Item] = []
        self.raw_bytes = 0
        self.loaded = False

    # -- loading -----------------------------------------------------------------
    def load(self, items: list[Item]) -> SimJob:
        """Ingest + index a dataset; returns the indexing-time job."""
        job = self.cluster.job()
        self.items = list(items)
        self.raw_bytes = sum(item.raw_bytes for item in items)
        # Reading the raw input from distributed storage.
        job.charge_disk_read(self.raw_bytes)
        if self.category == "spark":
            self.cluster.reserve_memory(
                self.name, int(self.raw_bytes * self.memory_expansion))
        self._build(job)
        self.loaded = True
        return job

    @abstractmethod
    def _build(self, job: SimJob) -> None:
        """Build this system's partitioning and indexes, charging ``job``."""

    def unload(self) -> None:
        self.cluster.release_memory(self.name)
        self.items = []
        self.loaded = False

    # -- queries -----------------------------------------------------------------
    def spatial_range_query(self, query: Envelope) -> BaselineResult:
        job = self._query_job()
        items = self._spatial_query(query, job)
        self._charge_results(job, items)
        return BaselineResult(items, job)

    def st_range_query(self, query: Envelope, t_min: float,
                       t_max: float) -> BaselineResult:
        if not self.supports_st:
            raise UnsupportedOperationError(
                f"{self.name} does not support spatio-temporal queries")
        job = self._query_job()
        items = self._st_query(query, t_min, t_max, job)
        self._charge_results(job, items)
        return BaselineResult(items, job)

    def knn(self, lng: float, lat: float, k: int) -> BaselineResult:
        if not self.supports_knn:
            raise UnsupportedOperationError(
                f"{self.name} does not support k-NN queries")
        job = self._query_job()
        items = self._knn_query(lng, lat, k, job)
        self._charge_results(job, items)
        return BaselineResult(items, job)

    def _query_job(self) -> SimJob:
        job = self.cluster.job()
        if self.category == "hadoop":
            job.charge_fixed("job_launch", self.cluster.model.mapreduce_job_ms)
        else:
            job.charge_fixed("spark_stage",
                             self.cluster.model.spark_stage_ms)
        return job

    def _charge_results(self, job: SimJob, items: list[Item]) -> None:
        job.charge_network(sum(item.raw_bytes for item in items))

    @abstractmethod
    def _spatial_query(self, query: Envelope,
                       job: SimJob) -> list[Item]:
        ...

    def _st_query(self, query: Envelope, t_min: float, t_max: float,
                  job: SimJob) -> list[Item]:
        items = self._spatial_query(query, job)
        job.charge_cpu_records(len(items))
        return [item for item in items
                if item.t_max >= t_min and item.t_min <= t_max]

    def _knn_query(self, lng: float, lat: float, k: int,
                   job: SimJob) -> list[Item]:
        raise UnsupportedOperationError(
            f"{self.name} does not implement k-NN")


class SparkBaseline(BaselineSystem):
    """Common structure of the Spark systems: spatial partitions with
    per-partition local indexes, optionally a global index over partition
    MBRs.

    ``has_global_index=False`` (GeoSpark) means every query visits every
    partition; with a global index only intersecting partitions are
    visited — but the whole global index is scanned per query, which is
    the "scan huge indexes" cost the paper attributes to these systems.
    """

    category = "spark"
    has_global_index = True
    partitions_per_server = 4

    def __init__(self, cluster: Cluster | None = None):
        super().__init__(cluster)
        self.partitions: list[list[Item]] = []
        self.partition_envelopes: list[Envelope] = []
        self.local_indexes: list[object] = []

    # -- partitioning -------------------------------------------------------------
    def _build(self, job: SimJob) -> None:
        num_partitions = max(
            1, self.cluster.num_servers * self.partitions_per_server)
        self.partitions = self._partition_items(num_partitions)
        self.partition_envelopes = [
            Envelope.union_all([i.envelope for i in part])
            for part in self.partitions if part]
        self.partitions = [p for p in self.partitions if p]
        self.local_indexes = [self._build_local_index(part, job)
                              for part in self.partitions]
        # Shuffle (parallel across executors) + index-build cost.
        job.charge_fixed("shuffle",
                         job.model.network_ms(self.raw_bytes)
                         / max(1, self.cluster.num_servers))
        job.charge_cpu_records(
            len(self.items),
            us_per_record=self.cluster.model.index_build_us_per_record)

    def _partition_items(self, num_partitions: int) -> list[list[Item]]:
        """STR-style spatial partitioning (sort by x, strip by y)."""
        items = sorted(self.items, key=lambda i: i.center[0])
        slices = max(1, int(math.sqrt(num_partitions)))
        per_slice = math.ceil(len(items) / slices) or 1
        per_cell = math.ceil(per_slice / max(1, num_partitions // slices)) \
            or 1
        partitions: list[list[Item]] = []
        for i in range(0, len(items), per_slice):
            strip = sorted(items[i:i + per_slice],
                           key=lambda it: it.center[1])
            for j in range(0, len(strip), per_cell):
                partitions.append(strip[j:j + per_cell])
        return partitions

    def _build_local_index(self, partition: list[Item],
                           job: SimJob) -> object:
        return RTree([(item.envelope, item) for item in partition])

    # -- queries ---------------------------------------------------------------------
    def _candidate_partitions(self, query: Envelope,
                              job: SimJob) -> list[int]:
        if not self.has_global_index:
            return list(range(len(self.partitions)))
        # Scanning the global index costs a pass over partition MBRs.
        job.charge_cpu_records(len(self.partition_envelopes),
                               us_per_record=0.5, parallel=False)
        return [i for i, env in enumerate(self.partition_envelopes)
                if env.intersects(query)]

    def _spatial_query(self, query: Envelope, job: SimJob) -> list[Item]:
        out: list[Item] = []
        visited_nodes = 0
        candidate_bytes = 0
        candidate_records = 0
        for index in self._candidate_partitions(query, job):
            local = self.local_indexes[index]
            found = local.range_query(query)
            visited_nodes += getattr(local, "last_nodes_visited", 0)
            candidate_bytes += sum(item.raw_bytes
                                   for item in self.partitions[index])
            candidate_records += len(self.partitions[index])
            out.extend(found)
        # A Spark stage materializes every candidate partition: the task
        # deserializes and tests each cached row (this is the "scan huge
        # indexes" cost of Section I — GeoSpark, lacking a global index,
        # pays it for the whole dataset).
        job.charge_cpu_records(visited_nodes, us_per_record=1.0)
        job.charge_memory_scan(candidate_bytes)
        job.charge_cpu_records(candidate_records)
        return [item for item in out
                if item.envelope.intersects(query)]

    def _knn_query(self, lng: float, lat: float, k: int,
                   job: SimJob) -> list[Item]:
        # Gather k candidates per partition, merge on the driver.  Each
        # candidate partition is materialized in full (takeOrdered over
        # the cached rows), like the range-query path.
        candidates: list[Item] = []
        nodes = 0
        candidate_bytes = 0
        candidate_records = 0
        for index in self._candidate_knn_partitions(lng, lat, job):
            local = self.local_indexes[index]
            candidates.extend(local.knn(lng, lat, k))
            nodes += getattr(local, "last_nodes_visited", 0)
            candidate_bytes += sum(item.raw_bytes
                                   for item in self.partitions[index])
            candidate_records += len(self.partitions[index])
        job.charge_cpu_records(nodes, us_per_record=1.0)
        job.charge_memory_scan(candidate_bytes)
        job.charge_cpu_records(candidate_records)
        job.charge_network(sum(item.raw_bytes for item in candidates))
        candidates.sort(key=lambda item:
                        item.envelope.min_distance_to_point(lng, lat))
        return candidates[:k]

    def _candidate_knn_partitions(self, lng: float, lat: float,
                                  job: SimJob) -> list[int]:
        if not self.has_global_index:
            return list(range(len(self.partitions)))
        job.charge_cpu_records(len(self.partition_envelopes),
                               us_per_record=0.5, parallel=False)
        ranked = sorted(
            range(len(self.partition_envelopes)),
            key=lambda i: self.partition_envelopes[i]
            .min_distance_to_point(lng, lat))
        # The containing partition plus its nearest neighbours.
        return ranked[:max(3, len(ranked) // 4)]


class HadoopBaseline(BaselineSystem):
    """Common structure of the Hadoop systems: grid-partitioned files on
    disk; every query launches a MapReduce job that reads the candidate
    partitions in full."""

    category = "hadoop"
    grid_cols = 16
    grid_rows = 16
    #: Index serialization is the paper's observed Hadoop bottleneck.
    serialize_us_per_record = 150.0

    def __init__(self, cluster: Cluster | None = None):
        super().__init__(cluster)
        self.partition_files: dict[tuple[int, int], list[Item]] = {}
        self.bounds: Envelope | None = None

    def _build(self, job: SimJob) -> None:
        if not self.items:
            self.bounds = Envelope.world()
            return
        self.bounds = Envelope.union_all(
            [item.envelope for item in self.items])
        width = self.bounds.width / self.grid_cols or 1e-12
        height = self.bounds.height / self.grid_rows or 1e-12

        def clamp(value, top):
            return min(top, max(0, int(value)))

        # Extended objects are replicated into every overlapping cell
        # (SpatialHadoop's grid partitioning does the same); queries
        # deduplicate by feature id.
        for item in self.items:
            env = item.envelope
            c1 = clamp((env.min_lng - self.bounds.min_lng) / width,
                       self.grid_cols - 1)
            c2 = clamp((env.max_lng - self.bounds.min_lng) / width,
                       self.grid_cols - 1)
            r1 = clamp((env.min_lat - self.bounds.min_lat) / height,
                       self.grid_rows - 1)
            r2 = clamp((env.max_lat - self.bounds.min_lat) / height,
                       self.grid_rows - 1)
            for col in range(c1, c2 + 1):
                for row in range(r1, r2 + 1):
                    self.partition_files.setdefault((col, row),
                                                    []).append(item)
        # MapReduce indexing: one full job, a shuffle, serialized index
        # files written back to disk (the paper's >3h bottleneck).
        job.charge_fixed("job_launch",
                         self.cluster.model.mapreduce_job_ms * 2)
        job.charge_network(self.raw_bytes)
        job.charge_cpu_records(len(self.items),
                               us_per_record=self.serialize_us_per_record,
                               parallel=True)
        job.charge_disk_write(self.raw_bytes * 2)

    def _candidate_files(self, query: Envelope) -> list[list[Item]]:
        if self.bounds is None:
            return []
        width = self.bounds.width / self.grid_cols or 1e-12
        height = self.bounds.height / self.grid_rows or 1e-12
        c1 = max(0, int((query.min_lng - self.bounds.min_lng) / width))
        c2 = min(self.grid_cols - 1,
                 int((query.max_lng - self.bounds.min_lng) / width))
        r1 = max(0, int((query.min_lat - self.bounds.min_lat) / height))
        r2 = min(self.grid_rows - 1,
                 int((query.max_lat - self.bounds.min_lat) / height))
        out = []
        for col in range(c1, c2 + 1):
            for row in range(r1, r2 + 1):
                part = self.partition_files.get((col, row))
                if part:
                    out.append(part)
        return out

    def _spatial_query(self, query: Envelope, job: SimJob) -> list[Item]:
        out: list[Item] = []
        seen: set[str] = set()
        read_bytes = 0
        scanned = 0
        for part in self._candidate_files(query):
            read_bytes += sum(item.raw_bytes for item in part)
            scanned += len(part)
            for item in part:
                if item.fid not in seen and \
                        item.envelope.intersects(query):
                    seen.add(item.fid)
                    out.append(item)
        job.charge_disk_read(read_bytes)
        job.charge_cpu_records(scanned)
        return out

    def _knn_query(self, lng: float, lat: float, k: int,
                   job: SimJob) -> list[Item]:
        """Expanding-range k-NN over grid files (SpatialHadoop style)."""
        if self.bounds is None:
            return []
        span = max(self.bounds.width / self.grid_cols,
                   self.bounds.height / self.grid_rows)
        radius = span
        while True:
            query = Envelope(
                max(-180.0, lng - radius), max(-90.0, lat - radius),
                min(180.0, lng + radius), min(90.0, lat + radius))
            found = self._spatial_query(query, job)
            if len(found) >= k or query.contains(self.bounds):
                found.sort(key=lambda item: item.envelope
                           .min_distance_to_point(lng, lat))
                return found[:k]
            radius *= 2.0
            # Each expansion is another MapReduce round.
            job.charge_fixed("job_launch",
                             self.cluster.model.mapreduce_job_ms)
