"""Simba (SIGMOD 2016): Spark SQL with global + local spatial indexes.

Simba partitions with STR, keeps an R-tree per partition and a global
index over partition MBRs, and supports SQL and k-NN but not
spatio-temporal predicates.  Its rich per-row representation gives it the
largest memory footprint of the Spark systems after LocationSpark — the
paper observes it OOMs at 40% of the Traj dataset.
"""

from __future__ import annotations

from repro.baselines.base import SparkBaseline


class Simba(SparkBaseline):
    name = "Simba"
    memory_expansion = 3.0
    has_global_index = True
    supports_st = False
    supports_knn = True
