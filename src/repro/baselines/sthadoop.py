"""ST-Hadoop (GeoInformatica 2018): SpatialHadoop + temporal slicing.

ST-Hadoop extends SpatialHadoop with temporal hierarchy levels: data is
sliced by time period, each slice spatially partitioned.  Spatio-temporal
queries read only the matching slices, but still pay the MapReduce job
launch per query.  Data updates only append in future time — rewriting a
historical slice is unsupported, matching Table I's "Limited" entry.
"""

from __future__ import annotations

from repro.baselines.base import HadoopBaseline, Item
from repro.cluster.simclock import SimJob
from repro.curves.timeperiod import TimePeriod, period_bin
from repro.errors import UnsupportedOperationError
from repro.geometry.envelope import Envelope


class STHadoop(HadoopBaseline):
    name = "ST-Hadoop"
    supports_st = True
    supports_knn = True

    def __init__(self, cluster=None, period: TimePeriod = TimePeriod.DAY):
        super().__init__(cluster)
        self.period = period
        self.slices: dict[int, dict[tuple[int, int], list[Item]]] = {}
        self.max_loaded_bin: int | None = None

    def _build(self, job: SimJob) -> None:
        super()._build(job)
        # Temporal slicing: re-bucket the grid files per time period.
        for cell, items in self.partition_files.items():
            for item in items:
                bin_number = period_bin(item.t_min, self.period)
                self.slices.setdefault(bin_number, {}) \
                    .setdefault(cell, []).append(item)
                if self.max_loaded_bin is None or \
                        bin_number > self.max_loaded_bin:
                    self.max_loaded_bin = bin_number
        # The temporal hierarchy is a second serialization pass.
        job.charge_cpu_records(len(self.items),
                               us_per_record=self.serialize_us_per_record
                               / 2.0)
        job.charge_disk_write(self.raw_bytes)

    def append_future(self, items: list[Item]) -> SimJob:
        """ST-Hadoop's limited update path: future-time appends only."""
        job = self.cluster.job()
        for item in items:
            bin_number = period_bin(item.t_min, self.period)
            if self.max_loaded_bin is not None and \
                    bin_number <= self.max_loaded_bin:
                raise UnsupportedOperationError(
                    "ST-Hadoop cannot insert into historical time slices")
        for item in items:
            bin_number = period_bin(item.t_min, self.period)
            self.slices.setdefault(bin_number, {}) \
                .setdefault((0, 0), []).append(item)
            self.items.append(item)
            self.max_loaded_bin = max(self.max_loaded_bin or bin_number,
                                      bin_number)
        job.charge_disk_write(sum(i.raw_bytes for i in items))
        return job

    def _st_query(self, query: Envelope, t_min: float, t_max: float,
                  job: SimJob) -> list[Item]:
        bins = range(period_bin(t_min, self.period) - 1,
                     period_bin(t_max, self.period) + 1)
        read_bytes = 0
        scanned = 0
        out: list[Item] = []
        seen: set[str] = set()
        for bin_number in bins:
            cells = self.slices.get(bin_number)
            if not cells:
                continue
            for cell, items in cells.items():
                if not self._cell_intersects(cell, query):
                    continue
                read_bytes += sum(item.raw_bytes for item in items)
                scanned += len(items)
                for item in items:
                    if (item.fid not in seen
                            and item.envelope.intersects(query)
                            and item.t_max >= t_min
                            and item.t_min <= t_max):
                        seen.add(item.fid)
                        out.append(item)
        job.charge_disk_read(read_bytes)
        job.charge_cpu_records(scanned)
        return out

    def _cell_intersects(self, cell: tuple[int, int],
                         query: Envelope) -> bool:
        if self.bounds is None:
            return False
        width = self.bounds.width / self.grid_cols or 1e-12
        height = self.bounds.height / self.grid_rows or 1e-12
        col, row = cell
        cell_env = Envelope(self.bounds.min_lng + col * width,
                            self.bounds.min_lat + row * height,
                            self.bounds.min_lng + (col + 1) * width,
                            self.bounds.min_lat + (row + 1) * height)
        return cell_env.intersects(query)
