"""LocationSpark (VLDB 2016): quad-tree local indexes + query cache.

LocationSpark layers a dynamic memory-caching framework over quad-tree
(and other) local indexes.  The caching framework and its skew-tracking
structures make it the most memory-hungry baseline — the paper observes
OOM even at 20% of the Traj dataset.
"""

from __future__ import annotations

from repro.baselines.base import SparkBaseline
from repro.cluster.simclock import SimJob
from repro.geometry.envelope import Envelope
from repro.spatial_index.quadtree import QuadTree


class _QuadTreeAdapter:
    """Adapts the point quad-tree to the (envelope, item) local-index API.

    LocationSpark indexes points; extended objects are registered by
    centre and post-filtered by envelope, which the adapter compensates
    for by expanding the probe window to the largest object extent."""

    def __init__(self, partition):
        bounds = Envelope.union_all([i.envelope for i in partition])
        self.tree = QuadTree(bounds.buffer(1e-9, 1e-9))
        self.max_extent = 0.0
        for item in partition:
            cx, cy = item.center
            self.tree.insert(cx, cy, item)
            self.max_extent = max(self.max_extent, item.envelope.width,
                                  item.envelope.height)
        self.last_nodes_visited = 0

    def range_query(self, query: Envelope):
        margin = self.max_extent / 2.0
        probe = query.buffer(margin, margin)
        found = self.tree.range_query(probe)
        self.last_nodes_visited = self.tree.last_nodes_visited
        return [item for item in found
                if item.envelope.intersects(query)]

    def knn(self, lng: float, lat: float, k: int):
        found = sorted(
            self.tree.range_query(self.tree.bounds),
            key=lambda item: item.envelope.min_distance_to_point(lng, lat))
        self.last_nodes_visited = self.tree.last_nodes_visited
        return found[:k]


class LocationSpark(SparkBaseline):
    name = "LocationSpark"
    memory_expansion = 5.0
    has_global_index = True
    supports_st = False
    supports_knn = True

    def _build_local_index(self, partition, job: SimJob):
        return _QuadTreeAdapter(partition)
