"""GeoSpark (SIGSPATIAL 2015): Spatial RDDs with local indexes only.

GeoSpark's SRDDs carry one geometry type and local per-partition indexes,
but it "lacks a global index, which limits its performance" (Section II):
every query visits every partition.  Its lean row format keeps the memory
footprint the smallest of the Spark systems, so it survives the full Traj
dataset in the paper's experiments.
"""

from __future__ import annotations

from repro.baselines.base import SparkBaseline


class GeoSpark(SparkBaseline):
    name = "GeoSpark"
    memory_expansion = 0.8
    has_global_index = False
    supports_st = False
    supports_knn = True
