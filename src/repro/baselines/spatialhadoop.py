"""SpatialHadoop (ICDE 2015): MapReduce with persisted grid partitions.

Spatial-only queries (range, k-NN, joins) over partition files on HDFS.
Every query launches a MapReduce job, which dominates latency; indexing
serializes and writes partition files, which the paper observes taking
hours at scale.
"""

from __future__ import annotations

from repro.baselines.base import HadoopBaseline


class SpatialHadoop(HadoopBaseline):
    name = "SpatialHadoop"
    supports_st = False
    supports_knn = True
