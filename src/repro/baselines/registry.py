"""The Table I feature matrix.

A static capability registry for the twelve systems the paper compares.
``feature_table()`` renders it as rows in the paper's column order so the
Table I benchmark can print it verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemFeatures:
    """One column of Table I."""

    name: str
    category: str          # NoSQL / Spark / Hadoop / MR-Hive
    scalability: str       # Yes / Limited
    sql: str               # Yes / No
    data_update: str       # Yes / No / Limited
    data_processing: str   # Yes / No
    s_or_st: str           # "S" or "S/ST"
    non_point: str         # Yes / No / "Not present"


FEATURE_MATRIX: tuple[SystemFeatures, ...] = (
    SystemFeatures("JUST", "NoSQL", "Yes", "Yes", "Yes", "Yes", "S/ST",
                   "Yes"),
    SystemFeatures("Simba", "Spark", "Limited", "Yes", "No", "No", "S",
                   "Not present"),
    SystemFeatures("STARK", "Spark", "Limited", "Yes", "No", "No", "S/ST",
                   "No"),
    SystemFeatures("ST-Hadoop", "Hadoop", "Yes", "Yes", "Limited", "No",
                   "S/ST", "No"),
    SystemFeatures("SparkGIS", "Spark", "Limited", "No", "No", "No", "S",
                   "No"),
    SystemFeatures("Hadoop-GIS", "MR/Hive", "Yes", "Yes", "No", "Yes",
                   "S", "No"),
    SystemFeatures("SpatialHadoop", "Hadoop", "Yes", "Yes", "No", "No",
                   "S", "No"),
    SystemFeatures("GeoSpark", "Spark", "Limited", "No", "No", "Yes", "S",
                   "Yes"),
    SystemFeatures("LocationSpark", "Spark", "Limited", "No", "Yes",
                   "Yes", "S", "Yes"),
    SystemFeatures("SpatialSpark", "Spark", "Limited", "No", "No", "No",
                   "S", "No"),
    SystemFeatures("MD-HBase", "NoSQL", "Yes", "No", "Yes", "No", "S",
                   "No"),
    SystemFeatures("BBoxDB", "NoSQL", "Yes", "No", "Yes", "No", "S",
                   "Yes"),
)


def feature_table() -> list[dict]:
    """Table I as dict rows (one per system)."""
    return [{
        "system": f.name,
        "category": f.category,
        "scalability": f.scalability,
        "sql": f.sql,
        "data_update": f.data_update,
        "data_processing": f.data_processing,
        "s_or_st": f.s_or_st,
        "non_point": f.non_point,
    } for f in FEATURE_MATRIX]


def features_of(name: str) -> SystemFeatures:
    for features in FEATURE_MATRIX:
        if features.name.lower() == name.lower():
            return features
    raise KeyError(f"unknown system {name!r}")
