"""Reimplementations of the paper's six comparison systems.

Each baseline implements its architecture class's real algorithms (spatial
partitioning, local/global indexes, query paths) over the same datasets
and cluster cost model as JUST, so the evaluation figures compare like
with like:

* **Spark-based, memory-resident**: Simba, GeoSpark, SpatialSpark,
  LocationSpark — data and indexes live in cluster memory (subject to the
  memory budget; exceeding it raises the simulated OOM the paper reports).
* **Hadoop-based, disk-resident**: SpatialHadoop, ST-Hadoop — partitioned
  files on disk, a MapReduce job launch per query.

``registry`` carries the static feature matrix of Table I.
"""

from repro.baselines.base import BaselineSystem
from repro.baselines.simba import Simba
from repro.baselines.geospark import GeoSpark
from repro.baselines.spatialspark import SpatialSpark
from repro.baselines.locationspark import LocationSpark
from repro.baselines.spatialhadoop import SpatialHadoop
from repro.baselines.sthadoop import STHadoop
from repro.baselines.registry import FEATURE_MATRIX, feature_table

__all__ = [
    "BaselineSystem",
    "Simba",
    "GeoSpark",
    "SpatialSpark",
    "LocationSpark",
    "SpatialHadoop",
    "STHadoop",
    "FEATURE_MATRIX",
    "feature_table",
]
