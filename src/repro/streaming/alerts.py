"""Geofence alerting: join in-flight stream events against fences.

Every mapped event is hit-tested against a ``GeofencePlugin`` table
(:meth:`~repro.core.plugins.GeofencePlugin.active_fences` — polygon
containment plus validity window, charged to the poll's SimJob like any
other index probe).  The alerter keeps a per-object set of fences the
object is currently inside; transitions produce typed
:class:`GeofenceAlert` events:

* ``enter`` — the object's position moved into a fence it was outside,
* ``exit``  — it left a fence it was inside.

Alerts are appended to the alerter's in-memory log, emitted into the
cluster event log (``sys.events`` kind ``geofence_alert``), and — when
a ``sink`` topic is given — published as events so downstream loaders
can consume them like any other stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.observability.events import GeofenceAlertEvent


@dataclass(frozen=True)
class GeofenceAlert:
    """One fence boundary crossing by one streamed object."""

    alert: str            # "enter" | "exit"
    gid: str
    fence_name: str
    object_id: str
    lng: float
    lat: float
    event_time: float     # epoch seconds (the event's own timestamp)
    detected_ms: float    # simulated cluster clock at detection
    published_ms: float | None = None  # producer stamp, if the event had one

    @property
    def latency_ms(self) -> float | None:
        """End-to-end publish→alert latency on the simulated clock."""
        if self.published_ms is None:
            return None
        return self.detected_ms - self.published_ms

    def as_event(self) -> dict:
        """The alert as a publishable topic event."""
        return {"alert": self.alert, "gid": self.gid,
                "fence_name": self.fence_name, "object_id": self.object_id,
                "lng": self.lng, "lat": self.lat,
                "event_time": self.event_time,
                "detected_ms": self.detected_ms,
                "published_ms": self.published_ms}


class GeofenceAlerter:
    """Stateful enter/exit detection against one geofence table."""

    def __init__(self, engine, fence_table: str, key_field: str = "fid",
                 geom_field: str = "geom", time_field: str = "time",
                 sink=None, max_alerts: int = 10_000):
        self.engine = engine
        self.fences = engine.table(fence_table)
        if not hasattr(self.fences, "active_fences"):
            raise ExecutionError(
                f"{fence_table!r} is not a geofence plugin table")
        self.fence_table = fence_table
        self.key_field = key_field
        self.geom_field = geom_field
        self.time_field = time_field
        self.sink = sink
        self.max_alerts = max_alerts
        self._inside: dict[str, frozenset[str]] = {}
        self._fence_names: dict[str, str] = {}
        self.alerts: list[GeofenceAlert] = []
        self.total_alerts = 0
        self.total_by_kind = {"enter": 0, "exit": 0}

    def process(self, pairs, job=None) -> list[GeofenceAlert]:
        """Hit-test one batch of ``(raw event, mapped row)`` pairs.

        Returns the alerts raised by this batch, in event order.
        """
        new: list[GeofenceAlert] = []
        for event, row in pairs:
            geom = row.get(self.geom_field)
            event_time = row.get(self.time_field)
            if geom is None or event_time is None:
                continue
            object_id = str(row.get(self.key_field))
            hits = self.fences.active_fences(geom.lng, geom.lat,
                                             float(event_time), job)
            current = frozenset(str(hit["gid"]) for hit in hits)
            for hit in hits:
                self._fence_names[str(hit["gid"])] = hit.get("name") or ""
            previous = self._inside.get(object_id, frozenset())
            published_ms = event.get("published_ms")
            # Detection happens mid-poll: the cluster clock plus the
            # simulated work this poll has already done (queue wait in
            # the topic is the clock delta since publish).
            detected_ms = self.engine.events.now_ms + (
                job.elapsed_ms if job is not None else 0.0)
            for kind, gids in (("enter", current - previous),
                               ("exit", previous - current)):
                for gid in sorted(gids):
                    new.append(GeofenceAlert(
                        alert=kind, gid=gid,
                        fence_name=self._fence_names.get(gid, ""),
                        object_id=object_id,
                        lng=geom.lng, lat=geom.lat,
                        event_time=float(event_time),
                        detected_ms=detected_ms,
                        published_ms=published_ms))
            self._inside[object_id] = current
        self._record(new)
        return new

    def _record(self, alerts: list[GeofenceAlert]) -> None:
        for alert in alerts:
            self.total_alerts += 1
            self.total_by_kind[alert.alert] += 1
            self.engine.events.emit(GeofenceAlertEvent(
                table=self.fence_table, alert=alert.alert, gid=alert.gid,
                object_id=alert.object_id, lng=round(alert.lng, 6),
                lat=round(alert.lat, 6)))
            if self.sink is not None:
                self.sink.append(alert.as_event())
        self.alerts.extend(alerts)
        if len(self.alerts) > self.max_alerts:
            del self.alerts[:len(self.alerts) - self.max_alerts]
