"""Incrementally-maintained materialized views (live View tables).

The paper's View tables (Section IV-D) are cached-once query results —
:class:`~repro.core.tables.ViewTable` snapshots that go stale the
moment new data lands.  A :class:`MaterializedView` is the streaming
upgrade: it subclasses ``ViewTable`` (so the SQL layer's view scan,
``SHOW VIEWS``, and ``DESC`` all work unchanged), is registered in the
catalog, and is kept fresh by a :class:`~repro.streaming.stream.
StreamLoader` that appends each batch of watermark-finalized window
rows as it emits them.

Freshness model: a view reflects exactly the finalized windows — rows
are appended once, when the watermark passes the window's end, and
never retracted (the aggregates are append-only by construction).
Refreshes charge incremental CPU to the loader's poll job, proportional
to the *new* rows only — the benchmark compares this against naively
recomputing the view from scratch each poll.
"""

from __future__ import annotations

from repro.core.schema import Field, FieldType, Schema
from repro.core.tables import ViewTable
from repro.dataframe import DataFrame

#: SimJob CPU cost to fold one finalized row into a view.
REFRESH_CPU_US_PER_ROW = 2.0


class MaterializedView(ViewTable):
    """A catalog-registered view kept fresh by the loader pipeline."""

    kind = "materialized_view"

    def __init__(self, name: str, columns, types=None,
                 owner: str | None = None):
        columns = list(columns)
        super().__init__(name, DataFrame.from_rows([], columns), owner)
        self._types = dict(types or {})
        self._rows: list[dict] = []
        self.refresh_count = 0
        self.total_refresh_ms = 0.0

    def schema(self) -> Schema:
        """Catalog schema (best-effort types; views never validate rows)."""
        return Schema([Field(name, self._types.get(name, FieldType.STRING))
                       for name in self.columns()])

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def apply(self, new_rows, job=None) -> int:
        """Fold newly finalized rows in; returns how many were applied.

        Incremental maintenance: cost is charged for ``new_rows`` only,
        and the backing DataFrame is swapped so in-flight SQL sees the
        refreshed view on its next scan.
        """
        new_rows = [dict(row) for row in new_rows]
        if not new_rows:
            return 0
        before_ms = job.elapsed_ms if job is not None else 0.0
        if job is not None:
            job.charge_cpu_records(len(new_rows),
                                   us_per_record=REFRESH_CPU_US_PER_ROW)
        self._rows.extend(new_rows)
        self.dataframe = DataFrame.from_rows(self._rows, self.columns())
        self.refresh_count += 1
        if job is not None:
            self.total_refresh_ms += job.elapsed_ms - before_ms
        return len(new_rows)

    def rows(self) -> list[dict]:
        return [dict(row) for row in self._rows]

    def describe(self) -> list[dict]:
        return [{"field": f.name, "type": f.ftype.value,
                 "flags": "materialized"} for f in self.schema().fields]
