"""Streaming ingestion and continuous queries (Section IX future work #1).

The paper plans Kafka support; this package provides the equivalent
substrate and the continuous-query layer on top of it:

* :mod:`~repro.streaming.stream` — named append-only topics with
  offset-based consumption and an at-least-once micro-batch loader
  mapping events through a LOAD-style CONFIG into a stored table.
* :mod:`~repro.streaming.watermark` — bounded-out-of-orderness
  event-time watermarks.
* :mod:`~repro.streaming.window` — tumbling/sliding windows with
  commutative aggregates, finalized exactly once when the watermark
  passes (including curve-cell heatmap keys).
* :mod:`~repro.streaming.views` — incrementally-maintained
  materialized views, registered in the catalog and queryable in SQL.
* :mod:`~repro.streaming.alerts` — geofence enter/exit alerting joined
  against ``GeofencePlugin`` fences.

Because JUST keys are record-local, streaming inserts are just inserts
— no index rebuilds, no future-time restriction.
"""

from repro.streaming.alerts import GeofenceAlert, GeofenceAlerter
from repro.streaming.stream import StreamLoader, StreamTopic
from repro.streaming.views import MaterializedView
from repro.streaming.watermark import WatermarkTracker
from repro.streaming.window import (
    Avg,
    Count,
    Max,
    Min,
    SlidingWindows,
    Sum,
    TumblingWindows,
    WindowedAggregator,
    batch_aggregate,
    cell_envelope,
    curve_cell_key,
)

__all__ = [
    "StreamTopic",
    "StreamLoader",
    "WatermarkTracker",
    "TumblingWindows",
    "SlidingWindows",
    "WindowedAggregator",
    "batch_aggregate",
    "Count",
    "Sum",
    "Avg",
    "Min",
    "Max",
    "curve_cell_key",
    "cell_envelope",
    "MaterializedView",
    "GeofenceAlert",
    "GeofenceAlerter",
]
