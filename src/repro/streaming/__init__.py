"""Streaming ingestion (future work #1 of Section IX).

The paper plans Kafka support; this package provides the equivalent
substrate: named append-only topics with offset-based consumption, and a
micro-batch loader that maps events through a LOAD-style CONFIG into a
stored table.  Because JUST keys are record-local, streaming inserts are
just inserts — no index rebuilds, no future-time restriction.
"""

from repro.streaming.stream import StreamTopic, StreamLoader

__all__ = ["StreamTopic", "StreamLoader"]
