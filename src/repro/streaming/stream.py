"""Kafka-like topics and micro-batch loading into JUST tables.

The loader is **at-least-once**: an offset is committed only after the
batch's ``insert_rows`` succeeds, so a retryable failure mid-batch (a
lost replication quorum, an unavailable region) leaves the offset
where it was and the next poll re-reads the same events.  Re-delivery
is safe because table inserts are idempotent upserts by primary key —
the pipeline's effective guarantee is exactly-once table state over
at-least-once delivery.

Beyond plain ingest, a loader is the attachment point for continuous
queries: a per-loader :class:`~repro.streaming.watermark.
WatermarkTracker` advances with every mapped batch, attached
:class:`~repro.streaming.window.WindowedAggregator` operators emit
watermark-finalized window rows into
:class:`~repro.streaming.views.MaterializedView` targets, and attached
:class:`~repro.streaming.alerts.GeofenceAlerter` operators raise
enter/exit alerts — all charged to the poll's SimJob, all surfaced in
the ``sys.streams`` virtual table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.loader import apply_config
from repro.errors import ExecutionError

#: SimJob CPU cost of evaluating the row filter per consumed event.
FILTER_CPU_US = 0.5
#: SimJob CPU cost of the CONFIG field mapping per kept event.
MAP_CPU_US = 4.0


@dataclass
class StreamTopic:
    """An append-only, offset-addressed event log (one Kafka topic).

    Producers ``append`` dict events; consumers read from an offset.
    Events are retained (laptop scale) so multiple loaders can consume
    the same topic independently.
    """

    name: str
    _events: list[dict] = field(default_factory=list)

    def append(self, event: dict) -> int:
        """Publish one event; returns the next end offset.

        Like ``append_many``, the return value is the offset one past
        the appended event — the high-water mark a consumer would have
        to reach to have read everything.
        """
        self._events.append(dict(event))
        return len(self._events)

    def append_many(self, events) -> int:
        """Publish a batch; returns the next end offset."""
        for event in events:
            self._events.append(dict(event))
        return len(self._events)

    @property
    def end_offset(self) -> int:
        return len(self._events)

    def read(self, offset: int, max_events: int) -> list[dict]:
        """Events in ``[offset, offset + max_events)`` (may be fewer)."""
        if offset < 0:
            raise ExecutionError("negative stream offset")
        if max_events <= 0:
            raise ExecutionError(
                f"max_events must be positive, got {max_events}")
        return self._events[offset:offset + max_events]


class StreamLoader:
    """Micro-batch consumer: topic -> CONFIG mapping -> stored table.

    Each :meth:`poll` reads up to ``batch_size`` pending events, applies
    the LOAD field mapping, and inserts them — accruing simulated cost
    on the engine's cluster like any other ingest.  The loader tracks
    its own offset and commits it only after the insert succeeds;
    ``start_offset`` recreates a loader at a saved position (restart /
    resume).

    ``max_delay_s`` bounds the stream's out-of-orderness for the
    event-time watermark; ``time_field`` names the mapped row column
    carrying event time (defaults to the table schema's DATE field).
    """

    def __init__(self, engine, topic: StreamTopic, table_name: str,
                 config: dict[str, str], batch_size: int = 1000,
                 row_filter=None, start_offset: int = 0,
                 max_delay_s: float = 0.0, name: str | None = None,
                 time_field: str | None = None):
        from repro.streaming.watermark import WatermarkTracker
        if start_offset < 0:
            raise ExecutionError("negative stream offset")
        self.engine = engine
        self.topic = topic
        self.table_name = table_name
        self.config = dict(config)
        self.batch_size = batch_size
        self.row_filter = row_filter
        self.offset = start_offset
        self.name = name or f"{topic.name}->{table_name}"
        self.watermark = WatermarkTracker(max_delay_s)
        if time_field is None:
            schema_time = engine.table(table_name).schema.time_field
            time_field = schema_time.name if schema_time else None
        self.time_field = time_field
        self._windows: list[tuple[object, object]] = []  # (aggregator, view)
        self._alerters: list[object] = []
        self.total_loaded = 0
        self.total_dropped = 0
        self.polls = 0
        self.total_sim_ms = 0.0

    @property
    def lag(self) -> int:
        """Events published but not yet consumed."""
        return self.topic.end_offset - self.offset

    # -- continuous-query attachments ---------------------------------------

    def attach_window(self, aggregator, view=None):
        """Feed mapped rows into ``aggregator``; finalized rows (if a
        ``view`` is given) are applied to the materialized view."""
        self._windows.append((aggregator, view))
        return aggregator

    def materialize_window(self, view_name: str, aggregator, types=None,
                           owner: str | None = None):
        """Attach ``aggregator`` and maintain it as a catalog-registered
        materialized view named ``view_name``; returns the view."""
        view = self.engine.create_materialized_view(
            view_name, aggregator.columns(), types=types, owner=owner)
        self._windows.append((aggregator, view))
        return view

    def attach_alerter(self, alerter):
        """Run ``alerter.process`` over every mapped batch."""
        self._alerters.append(alerter)
        return alerter

    # -- consumption --------------------------------------------------------

    def poll(self) -> dict:
        """Consume one micro-batch; returns ingest statistics.

        The returned dict has ``consumed`` (events read), ``loaded``
        (rows inserted), ``dropped`` (filtered out), ``emitted``
        (finalized window rows), ``alerts``, and ``sim_ms``.  An empty
        poll is free.  If the insert fails the offset is *not* advanced
        and the same events are re-read next poll (at-least-once).
        """
        events = self.topic.read(self.offset, self.batch_size)
        if not events:
            return {"consumed": 0, "loaded": 0, "dropped": 0,
                    "emitted": 0, "alerts": 0, "sim_ms": 0.0}
        table = self.engine.table(self.table_name)
        kept: list[tuple[dict, dict]] = []
        dropped = 0
        for event in events:
            if self.row_filter is not None and not self.row_filter(event):
                dropped += 1
                continue
            kept.append((event, apply_config(event, self.config)))
        job = self.engine.cluster.job()
        # The filter touches every consumed event; mapping and insert
        # only the kept ones — an all-filtered batch costs filter CPU
        # alone, no insert overhead.
        job.charge_cpu_records(len(events), us_per_record=FILTER_CPU_US)
        rows = [row for _, row in kept]
        if rows:
            job.charge_cpu_records(len(rows), us_per_record=MAP_CPU_US)
            table.insert_rows(rows, job)
        # Commit point: only a fully-inserted batch advances the offset.
        self.offset += len(events)
        self.total_loaded += len(rows)
        self.total_dropped += dropped
        late_before = sum(a.late_dropped for a, _ in self._windows)
        refresh_before = sum(v.total_refresh_ms
                             for _, v in self._windows if v is not None)
        emitted, alerts = self._run_pipeline(kept, job)
        self.polls += 1
        self.total_sim_ms += job.elapsed_ms
        self._observe_poll(len(events), len(rows), dropped, emitted,
                           alerts, late_before, refresh_before,
                           job.elapsed_ms)
        return {"consumed": len(events), "loaded": len(rows),
                "dropped": dropped, "emitted": emitted, "alerts": alerts,
                "sim_ms": job.elapsed_ms}

    def _observe_poll(self, consumed: int, loaded: int, dropped: int,
                      emitted: int, alerts: int, late_before: int,
                      refresh_before: float, sim_ms: float) -> None:
        """Report one poll into the engine's metrics registry."""
        registry = getattr(self.engine, "metrics", None)
        if registry is None:
            return
        name = self.name
        registry.counter("streaming.polls", loader=name).inc()
        registry.counter("streaming.events_consumed",
                         loader=name).inc(consumed)
        registry.counter("streaming.rows_loaded", loader=name).inc(loaded)
        if dropped:
            registry.counter("streaming.events_dropped",
                             loader=name).inc(dropped)
        if emitted:
            registry.counter("streaming.windows_emitted",
                             loader=name).inc(emitted)
        if alerts:
            registry.counter("streaming.alerts", loader=name).inc(alerts)
        late_delta = (sum(a.late_dropped for a, _ in self._windows)
                      - late_before)
        if late_delta:
            registry.counter("streaming.late_events",
                             loader=name).inc(late_delta)
        refresh_delta = (sum(v.total_refresh_ms for _, v in self._windows
                             if v is not None) - refresh_before)
        if refresh_delta:
            registry.counter("streaming.view_refresh_ms",
                             loader=name).inc(refresh_delta)
        registry.counter("streaming.poll_sim_ms",
                         loader=name).inc(sim_ms)
        registry.gauge("streaming.lag", loader=name).set(self.lag)
        watermark = self.watermark.watermark
        if watermark is not None:
            registry.gauge("streaming.watermark", loader=name).set(
                watermark)
            registry.gauge("streaming.watermark_delay_s",
                           loader=name).set(
                self.watermark.max_event_time - watermark)

    def _run_pipeline(self, kept, job) -> tuple[int, int]:
        """Advance the watermark, windows, views, and alerters by one batch.

        The whole batch is buffered *before* the advanced watermark
        finalizes anything, so in-batch disorder never makes an event
        late — only cross-batch delays beyond ``max_delay_s`` can.
        """
        if self.time_field is not None:
            for _, row in kept:
                event_time = row.get(self.time_field)
                if event_time is not None:
                    self.watermark.observe(float(event_time))
        emitted = 0
        alerts = 0
        watermark = self.watermark.watermark
        for aggregator, view in self._windows:
            for _, row in kept:
                aggregator.add(row)
            finalized = aggregator.advance(watermark)
            if finalized:
                emitted += len(finalized)
                if view is not None:
                    view.apply(finalized, job)
        for alerter in self._alerters:
            alerts += len(alerter.process(kept, job))
        return emitted, alerts

    def drain(self, max_batches: int = 1_000_000) -> dict:
        """Poll until the topic is fully consumed; aggregated stats."""
        totals = {"consumed": 0, "loaded": 0, "dropped": 0,
                  "emitted": 0, "alerts": 0, "sim_ms": 0.0}
        for _ in range(max_batches):
            if self.lag == 0:
                break
            batch = self.poll()
            for key in totals:
                totals[key] += batch[key]
        return totals

    def finalize(self) -> dict:
        """End of stream: flush every open window into its view.

        Use when the producer is done and the tail windows (those the
        watermark never passed) should still be emitted.  A live
        pipeline never calls this — it would finalize windows that
        could still receive events.
        """
        job = self.engine.cluster.job()
        emitted = 0
        for aggregator, view in self._windows:
            rows = aggregator.flush()
            if rows and view is not None:
                view.apply(rows, job)
            emitted += len(rows)
        self.total_sim_ms += job.elapsed_ms
        return {"emitted": emitted, "sim_ms": job.elapsed_ms}

    # -- introspection ------------------------------------------------------

    def stats_row(self) -> dict:
        """One ``sys.streams`` row: offsets, watermark, operator stats."""
        return {
            "loader": self.name,
            "topic": self.topic.name,
            "table": self.table_name,
            "offset": self.offset,
            "end_offset": self.topic.end_offset,
            "lag": self.lag,
            "watermark": self.watermark.watermark,
            "open_windows": sum(a.open_windows for a, _ in self._windows),
            "finalized_windows": sum(a.finalized_windows
                                     for a, _ in self._windows),
            "late_events": sum(a.late_dropped for a, _ in self._windows),
            "alerts": sum(a.total_alerts for a in self._alerters),
            "views": ",".join(v.name for _, v in self._windows
                              if v is not None),
            "loaded": self.total_loaded,
            "dropped": self.total_dropped,
            "polls": self.polls,
            "sim_ms": round(self.total_sim_ms, 3),
        }
