"""Kafka-like topics and micro-batch loading into JUST tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.loader import apply_config
from repro.errors import ExecutionError


@dataclass
class StreamTopic:
    """An append-only, offset-addressed event log (one Kafka topic).

    Producers ``append`` dict events; consumers read from an offset.
    Events are retained (laptop scale) so multiple loaders can consume
    the same topic independently.
    """

    name: str
    _events: list[dict] = field(default_factory=list)

    def append(self, event: dict) -> int:
        """Publish one event; returns its offset."""
        self._events.append(dict(event))
        return len(self._events) - 1

    def append_many(self, events) -> int:
        """Publish a batch; returns the next end offset."""
        for event in events:
            self._events.append(dict(event))
        return len(self._events)

    @property
    def end_offset(self) -> int:
        return len(self._events)

    def read(self, offset: int, max_events: int) -> list[dict]:
        """Events in ``[offset, offset + max_events)`` (may be fewer)."""
        if offset < 0:
            raise ExecutionError("negative stream offset")
        return self._events[offset:offset + max_events]


class StreamLoader:
    """Micro-batch consumer: topic -> CONFIG mapping -> stored table.

    Each :meth:`poll` reads up to ``batch_size`` pending events, applies
    the LOAD field mapping, and inserts them — accruing simulated cost on
    the engine's cluster like any other ingest.  The loader tracks its
    own offset, so restarts resume where they stopped.
    """

    def __init__(self, engine, topic: StreamTopic, table_name: str,
                 config: dict[str, str], batch_size: int = 1000,
                 row_filter=None):
        self.engine = engine
        self.topic = topic
        self.table_name = table_name
        self.config = dict(config)
        self.batch_size = batch_size
        self.row_filter = row_filter
        self.offset = 0
        self.total_loaded = 0
        self.total_dropped = 0

    @property
    def lag(self) -> int:
        """Events published but not yet consumed."""
        return self.topic.end_offset - self.offset

    def poll(self) -> dict:
        """Consume one micro-batch; returns ingest statistics.

        The returned dict has ``consumed`` (events read), ``loaded``
        (rows inserted), ``dropped`` (filtered out), and ``sim_ms``.
        """
        events = self.topic.read(self.offset, self.batch_size)
        self.offset += len(events)
        table = self.engine.table(self.table_name)
        job = self.engine.cluster.job()
        rows = []
        for event in events:
            if self.row_filter is not None and not self.row_filter(event):
                self.total_dropped += 1
                continue
            rows.append(apply_config(event, self.config))
        job.charge_cpu_records(len(rows), us_per_record=4.0)
        table.insert_rows(rows, job)
        self.total_loaded += len(rows)
        return {"consumed": len(events), "loaded": len(rows),
                "dropped": len(events) - len(rows),
                "sim_ms": job.elapsed_ms}

    def drain(self, max_batches: int = 1_000_000) -> dict:
        """Poll until the topic is fully consumed; aggregated stats."""
        totals = {"consumed": 0, "loaded": 0, "dropped": 0, "sim_ms": 0.0}
        for _ in range(max_batches):
            if self.lag == 0:
                break
            batch = self.poll()
            for key in totals:
                totals[key] += batch[key]
        return totals
