"""``python -m repro stream`` — the transit-delay streaming demonstration.

Three acts over a simulated GTFS-RT feed (scheduled vs realtime bus
trips, out of order by a bounded disorder):

1. **Continuous ingest.**  A stream loader consumes the feed in
   micro-batches into a stored table, advancing a bounded-
   out-of-orderness watermark; tumbling windows keyed by route segment
   (avg/max delay, dwell, arrivals→headway) and by Z2 curve cell (a
   delay heatmap) finalize as the watermark passes, each refreshing a
   catalog-registered materialized view; a geofence alerter raises
   enter/exit events as buses cross downtown zones.

2. **Stream = batch.**  The finalized view rows are compared — exactly
   — against a cold batch recomputation over the same events: the
   watermark/window machinery loses nothing and double-counts nothing.

3. **The SQL surface.**  The views and ``sys.streams`` queried through
   JustQL, plus the alert events in ``sys.events``.

Everything is seeded; two runs print identical output.
"""

from __future__ import annotations

import argparse
import sys

from repro.datagen.transitgen import (
    TRANSIT_RT_CONFIG,
    TRANSIT_RT_SCHEMA,
    TRANSIT_TIME_START,
    TransitGenerator,
)
from repro.geometry.polygon import Polygon
from repro.service.client import JustClient
from repro.service.server import JustServer
from repro.streaming.alerts import GeofenceAlerter
from repro.streaming.window import (
    Avg,
    Count,
    Max,
    TumblingWindows,
    WindowedAggregator,
    batch_aggregate,
    cell_envelope,
    curve_cell_key,
)

DEMO_USER = "demo"
SEGMENT_WINDOW_S = 900.0
HEATMAP_WINDOW_S = 1800.0
HEATMAP_BITS = 14
DISORDER_S = 120.0

SEGMENT_AGGS = {"arrivals": lambda: Count(),
                "avg_delay": lambda: Avg("delay"),
                "max_delay": lambda: Max("delay"),
                "avg_dwell": lambda: Avg("dwell")}


def _segment_aggregator() -> WindowedAggregator:
    return WindowedAggregator(
        TumblingWindows(SEGMENT_WINDOW_S),
        {name: make() for name, make in SEGMENT_AGGS.items()},
        key_fields=("route", "seq"))


def _heatmap_aggregator() -> WindowedAggregator:
    return WindowedAggregator(
        TumblingWindows(HEATMAP_WINDOW_S),
        {"events": Count(), "avg_delay": Avg("delay")},
        key_fn=curve_cell_key("geom", bits=HEATMAP_BITS),
        key_columns=("cell",))


def _make_fences(engine, network: TransitGenerator, out) -> None:
    """A square geofence around one mid-route stop of every route."""
    fences = engine.create_plugin_table(f"{DEMO_USER}__zones", "geofence")
    rows = []
    for route_id, stops in sorted(network.routes.items()):
        stop = stops[len(stops) // 2]
        half = 0.009  # ~1 km
        lng, lat = stop["lng"], stop["lat"]
        rows.append({
            "gid": f"Z-{route_id}", "name": f"zone {stop['stop_id']}",
            "category": "corridor",
            "valid_from": TRANSIT_TIME_START - 3600.0,
            "valid_to": TRANSIT_TIME_START + 7 * 86400.0,
            "area": Polygon([(lng - half, lat - half),
                             (lng + half, lat - half),
                             (lng + half, lat + half),
                             (lng - half, lat + half)]),
        })
    fences.insert_rows(rows, engine.cluster.job())
    print(f"geofences: {len(rows)} corridor zones around mid-route stops",
          file=out)


def run_pipeline(server: JustServer, feed: list[dict],
                 chunk: int = 50, out=sys.stdout, verbose: bool = True):
    """Publish the feed chunk-by-chunk and poll after each chunk.

    Each event is stamped with the simulated publish time; each poll's
    simulated cost advances the cluster clock, so alert latencies are
    end-to-end on one timeline.  Returns the loader.
    """
    engine = server.engine
    topic = engine.create_topic("gtfs_rt")
    loader = engine.stream_load(
        "gtfs_rt", f"{DEMO_USER}__transit_rt", TRANSIT_RT_CONFIG,
        batch_size=chunk, max_delay_s=DISORDER_S, name="gtfs_rt")
    segments = loader.materialize_window(
        f"{DEMO_USER}__segment_delay", _segment_aggregator())
    loader.materialize_window(
        f"{DEMO_USER}__delay_heatmap", _heatmap_aggregator())
    alerter = loader.attach_alerter(GeofenceAlerter(
        engine, f"{DEMO_USER}__zones", key_field="trip",
        sink=engine.create_topic("alerts")))

    for start in range(0, len(feed), chunk):
        batch = [dict(event, published_ms=engine.events.now_ms)
                 for event in feed[start:start + chunk]]
        topic.append_many(batch)
        stats = loader.poll()
        engine.events.advance(stats["sim_ms"])
        if verbose:
            wm = loader.watermark.watermark
            print(f"poll {loader.polls:>3}: consumed {stats['consumed']:>3}"
                  f"  watermark +{wm - TRANSIT_TIME_START:>7.0f}s"
                  f"  finalized rows {stats['emitted']:>3}"
                  f"  alerts {stats['alerts']:>2}"
                  f"  ({stats['sim_ms']:.2f} sim-ms)", file=out)
    tail = loader.finalize()
    engine.events.advance(tail["sim_ms"])
    if verbose:
        print(f"end of feed: flushed {tail['emitted']} tail window rows; "
              f"view {segments.name} has {segments.row_count} rows",
              file=out)
    return loader, alerter


def main(argv: list[str] | None = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro stream",
        description="Streaming continuous-query demo (transit delays).")
    parser.add_argument("--quick", action="store_true",
                        help="small feed (CI smoke)")
    parser.add_argument("--routes", type=int, default=None)
    parser.add_argument("--trips", type=int, default=None)
    args = parser.parse_args(argv)
    out = out or sys.stdout

    routes = args.routes or (3 if args.quick else 5)
    trips = args.trips or (4 if args.quick else 8)
    stops = 6 if args.quick else 10

    server = JustServer()
    engine = server.engine
    network = TransitGenerator(num_routes=routes, stops_per_route=stops)
    feed = network.realtime_feed(trips_per_route=trips,
                                 disorder_s=DISORDER_S)
    print("== act 1: continuous ingest "
          f"({routes} routes x {trips} trips x {stops} stops = "
          f"{len(feed)} realtime events, disorder <= {DISORDER_S:.0f}s) ==",
          file=out)
    engine.create_table(f"{DEMO_USER}__transit_rt", TRANSIT_RT_SCHEMA)
    _make_fences(engine, network, out)
    loader, alerter = run_pipeline(server, feed, out=out,
                                   verbose=not args.quick)

    print("\n== act 2: finalized stream == cold batch recompute ==",
          file=out)
    from repro.core.loader import apply_config
    rows = [apply_config(event, TRANSIT_RT_CONFIG) for event in feed]
    batch = batch_aggregate(rows, TumblingWindows(SEGMENT_WINDOW_S),
                            {name: make()
                             for name, make in SEGMENT_AGGS.items()},
                            key_fields=("route", "seq"))
    streamed = engine.view(f"{DEMO_USER}__segment_delay").rows()
    if streamed != batch:
        print("PARITY FAILED", file=out)
        return 1
    late = loader.stats_row()["late_events"]
    print(f"parity ok: {len(streamed)} windowed segment rows identical; "
          f"{late} late events dropped", file=out)
    latencies = sorted(a.latency_ms for a in alerter.alerts
                       if a.latency_ms is not None)
    if latencies:
        p50 = latencies[len(latencies) // 2]
        print(f"alerts: {alerter.total_by_kind['enter']} enter / "
              f"{alerter.total_by_kind['exit']} exit; "
              f"publish->alert p50 {p50:.2f} sim-ms", file=out)

    print("\n== act 3: the SQL surface ==", file=out)
    from repro.cli import format_result
    with JustClient(server, DEMO_USER) as client:
        for sql in (
                "SELECT route, seq, arrivals, avg_delay, avg_dwell "
                "FROM segment_delay ORDER BY avg_delay DESC, route, seq "
                "LIMIT 5",
                "SELECT loader, offset, lag, watermark, finalized_windows,"
                " late_events, alerts, views FROM sys.streams",
                "SELECT table, count(*) AS alerts FROM sys.events "
                "WHERE kind = 'geofence_alert' GROUP BY table",
        ):
            print(f"\njustql> {sql}", file=out)
            print(format_result(client.execute_query(sql)), file=out)
    heatmap = engine.view(f"{DEMO_USER}__delay_heatmap").rows()
    if heatmap:
        hottest = max(heatmap, key=lambda r: r["events"])
        env = cell_envelope(hottest["cell"], bits=HEATMAP_BITS)
        print(f"\nhottest heatmap cell: {hottest['events']} events, "
              f"avg delay {hottest['avg_delay']:.0f}s at "
              f"({env.min_lng:.3f},{env.min_lat:.3f})..."
              f"({env.max_lng:.3f},{env.max_lat:.3f})", file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
