"""Event-time watermarks with bounded out-of-orderness.

A watermark is the pipeline's running claim that *no event older than
the watermark will still arrive*.  Downstream operators (windows,
joins) use it to decide when a result is final: a window whose end is
at or below the watermark can be emitted exactly once and then
forgotten.

This is the bounded-out-of-orderness generator every streaming engine
ships as its default (Flink's ``forBoundedOutOfOrderness``, Spark's
``withWatermark``): the watermark trails the maximum event time seen by
a fixed ``max_delay_s``.  Events that arrive more than ``max_delay_s``
behind the stream's frontier are *late* — the pipeline counts and drops
them rather than reopening finalized results.

All times are epoch **seconds**, matching the engine's ``DATE`` fields;
producers that stamp milliseconds convert in their LOAD config
(``long_to_date_ms``).
"""

from __future__ import annotations

from repro.errors import ExecutionError


class WatermarkTracker:
    """Tracks the event-time frontier of one stream.

    ``watermark = max(event time seen) - max_delay_s`` — ``None`` until
    the first event is observed.  ``max_delay_s=0`` means the stream is
    promised to be in order; any out-of-order event becomes late.
    """

    def __init__(self, max_delay_s: float = 0.0):
        if max_delay_s < 0:
            raise ExecutionError(
                f"max_delay_s must be >= 0, got {max_delay_s}")
        self.max_delay_s = float(max_delay_s)
        self.max_event_time: float | None = None
        self.observed = 0

    @property
    def watermark(self) -> float | None:
        """Current watermark in epoch seconds (``None`` before any event)."""
        if self.max_event_time is None:
            return None
        return self.max_event_time - self.max_delay_s

    def observe(self, event_time: float) -> float | None:
        """Advance the frontier past one event; returns the new watermark."""
        self.observed += 1
        if self.max_event_time is None or event_time > self.max_event_time:
            self.max_event_time = float(event_time)
        return self.watermark

    def observe_many(self, event_times) -> float | None:
        for t in event_times:
            self.observe(t)
        return self.watermark

    def is_late(self, event_time: float) -> bool:
        """True if an event at ``event_time`` is behind the watermark."""
        wm = self.watermark
        return wm is not None and event_time < wm

    def snapshot(self) -> dict:
        return {"watermark": self.watermark,
                "max_event_time": self.max_event_time,
                "max_delay_s": self.max_delay_s,
                "observed": self.observed}
