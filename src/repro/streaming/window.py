"""Event-time window operators over streamed ST records.

Windows group events by *event time* (not arrival order) into
fixed-size intervals and hold per-key aggregate state until the
watermark passes a window's end — only then is the window finalized and
emitted, exactly once.  Late events (behind an already-finalized
window) are counted and dropped, never re-opening emitted results.

Two window assigners:

* :class:`TumblingWindows` — back-to-back ``[k*size, (k+1)*size)``
  intervals; every event lands in exactly one.
* :class:`SlidingWindows` — ``size``-long windows starting every
  ``slide``; an event lands in ``ceil(size / slide)`` of them.

Aggregates (:class:`Count` / :class:`Sum` / :class:`Avg` /
:class:`Min` / :class:`Max`) are commutative and associative, so the
finalized output of a watermarked stream is *exactly* equal to a cold
batch recomputation over the same events — the parity property the
tests and ``benchmarks/bench_streaming.py`` assert.

Spatial heatmaps fall out of the key function: :func:`curve_cell_key`
keys events by their reduced-precision Z2 curve cell, so a windowed
``Count`` per key is a space-time heatmap; :func:`cell_envelope` maps a
cell id back to its lng/lat rectangle for rendering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.curves.zorder import Dimension, deinterleave2, interleave2
from repro.errors import ExecutionError
from repro.geometry.envelope import Envelope

Window = tuple[float, float]  # [start, end) in epoch seconds


# -- window assigners --------------------------------------------------------

@dataclass(frozen=True)
class TumblingWindows:
    """Fixed, non-overlapping event-time windows of ``size_s`` seconds."""

    size_s: float

    def __post_init__(self):
        if self.size_s <= 0:
            raise ExecutionError(
                f"window size must be > 0, got {self.size_s}")

    def assign(self, event_time: float) -> list[Window]:
        start = math.floor(event_time / self.size_s) * self.size_s
        return [(start, start + self.size_s)]


@dataclass(frozen=True)
class SlidingWindows:
    """``size_s``-long windows, one starting every ``slide_s`` seconds."""

    size_s: float
    slide_s: float

    def __post_init__(self):
        if self.size_s <= 0 or self.slide_s <= 0:
            raise ExecutionError("window size and slide must be > 0")
        if self.slide_s > self.size_s:
            raise ExecutionError(
                "slide larger than size leaves gaps between windows")

    def assign(self, event_time: float) -> list[Window]:
        last_start = math.floor(event_time / self.slide_s) * self.slide_s
        out: list[Window] = []
        start = last_start
        while start > event_time - self.size_s:
            out.append((start, start + self.size_s))
            start -= self.slide_s
        out.reverse()
        return out


# -- aggregate functions -----------------------------------------------------
# Each aggregate is a tiny fold: initial() -> state, step(state, row) ->
# state, final(state) -> value.  All are commutative over rows, which is
# what makes streamed-vs-batch parity exact.

class Count:
    def initial(self):
        return 0

    def step(self, state, row):
        return state + 1

    def final(self, state):
        return state


class _FieldAgg:
    def __init__(self, field: str):
        self.field = field


class Sum(_FieldAgg):
    def initial(self):
        return 0.0

    def step(self, state, row):
        value = row.get(self.field)
        return state if value is None else state + float(value)

    def final(self, state):
        return state


class Avg(_FieldAgg):
    def initial(self):
        return (0, 0.0)

    def step(self, state, row):
        value = row.get(self.field)
        if value is None:
            return state
        return (state[0] + 1, state[1] + float(value))

    def final(self, state):
        count, total = state
        return None if count == 0 else total / count


class Min(_FieldAgg):
    def initial(self):
        return None

    def step(self, state, row):
        value = row.get(self.field)
        if value is None:
            return state
        return value if state is None else min(state, value)

    def final(self, state):
        return state


class Max(Min):
    def step(self, state, row):
        value = row.get(self.field)
        if value is None:
            return state
        return value if state is None else max(state, value)


# -- spatial keys ------------------------------------------------------------

def curve_cell_key(geom_field: str = "geom", bits: int = 12):
    """Key function: the event's reduced-precision Z2 curve cell.

    ``bits`` bits per axis ⇒ a ``2^bits × 2^bits`` global grid (12 bits
    ≈ 8.8 km cells at the equator).  Windowed ``Count`` keyed by this is
    a space-time heatmap on the same curve the storage indexes use.
    """
    lng_dim = Dimension(-180.0, 180.0, bits)
    lat_dim = Dimension(-90.0, 90.0, bits)

    def key(row: dict) -> int:
        geom = row[geom_field]
        return interleave2(lng_dim.normalize(geom.lng),
                           lat_dim.normalize(geom.lat))

    return key


def cell_envelope(cell: int, bits: int = 12) -> Envelope:
    """The lng/lat rectangle of a :func:`curve_cell_key` cell id."""
    lng_dim = Dimension(-180.0, 180.0, bits)
    lat_dim = Dimension(-90.0, 90.0, bits)
    xi, yi = deinterleave2(cell)
    lng_lo, lng_hi = lng_dim.denormalize(xi)
    lat_lo, lat_hi = lat_dim.denormalize(yi)
    return Envelope(lng_lo, lat_lo, lng_hi, lat_hi)


# -- the windowed aggregation operator ---------------------------------------

class WindowedAggregator:
    """Keyed, watermark-finalized windowed aggregation.

    :meth:`add` buffers an event into every window it belongs to;
    :meth:`advance` finalizes (emits and forgets) every open window
    whose end is at or below the watermark.  Events targeting an
    already-finalized window are late: counted in ``late_dropped`` and
    discarded.  :meth:`flush` finalizes everything regardless of the
    watermark — the batch-recompute path.

    Output rows are ``{"window_start", "window_end", *key columns,
    *aggregate columns}``, deterministically ordered by window then key.
    """

    def __init__(self, windows, aggregates: dict,
                 key_fields: tuple[str, ...] = (),
                 key_fn=None, key_columns=None,
                 time_field: str = "time", time_fn=None):
        self.windows = windows
        self._agg_names = list(aggregates)
        self._aggs = [aggregates[name] for name in self._agg_names]
        if key_fn is not None:
            self._key_fn = key_fn
            self.key_columns = tuple(key_columns) if key_columns else ("key",)
        else:
            names = tuple(key_fields)
            self._key_fn = lambda row: tuple(row.get(n) for n in names)
            self.key_columns = names
        self.time_fn = time_fn or (lambda row: float(row[time_field]))
        self._open: dict[Window, dict] = {}
        self._finalized_up_to = -math.inf
        self.late_dropped = 0
        self.finalized_windows = 0
        self.emitted_rows = 0

    def columns(self) -> list[str]:
        return (["window_start", "window_end"]
                + list(self.key_columns) + self._agg_names)

    @property
    def open_windows(self) -> int:
        return len(self._open)

    def _as_key(self, key) -> tuple:
        return key if isinstance(key, tuple) else (key,)

    def add(self, row: dict) -> None:
        event_time = self.time_fn(row)
        key = self._as_key(self._key_fn(row))
        for window in self.windows.assign(event_time):
            if window[1] <= self._finalized_up_to:
                self.late_dropped += 1
                continue
            states = self._open.setdefault(window, {})
            state = states.get(key)
            if state is None:
                state = [agg.initial() for agg in self._aggs]
                states[key] = state
            for i, agg in enumerate(self._aggs):
                state[i] = agg.step(state[i], row)

    def add_batch(self, rows) -> None:
        for row in rows:
            self.add(row)

    def advance(self, watermark: float | None) -> list[dict]:
        """Finalize windows ending at/below ``watermark``; emit their rows."""
        if watermark is None:
            return []
        ready = sorted(w for w in self._open if w[1] <= watermark)
        out: list[dict] = []
        for window in ready:
            out.extend(self._emit(window, self._open.pop(window)))
        self._finalized_up_to = max(self._finalized_up_to, watermark)
        return out

    def flush(self) -> list[dict]:
        """Finalize every open window (end of stream / batch recompute)."""
        out: list[dict] = []
        for window in sorted(self._open):
            out.extend(self._emit(window, self._open.pop(window)))
        self._finalized_up_to = math.inf
        return out

    def _emit(self, window: Window, states: dict) -> list[dict]:
        rows = []
        for key in sorted(states, key=repr):
            row = {"window_start": window[0], "window_end": window[1]}
            row.update(zip(self.key_columns, key))
            state = states[key]
            for i, name in enumerate(self._agg_names):
                row[name] = self._aggs[i].final(state[i])
            rows.append(row)
        self.finalized_windows += 1
        self.emitted_rows += len(rows)
        return rows


def batch_aggregate(rows, windows, aggregates: dict, **kwargs) -> list[dict]:
    """Cold batch recomputation: aggregate ``rows`` with no watermark.

    The reference result for stream/batch parity checks — a streamed
    :class:`WindowedAggregator` that dropped no late events must emit
    exactly these rows (finalized + a trailing :meth:`flush`).
    """
    aggregator = WindowedAggregator(windows, aggregates, **kwargs)
    aggregator.add_batch(rows)
    return aggregator.flush()
