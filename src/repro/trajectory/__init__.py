"""Trajectory data structures (the paper's trajectory plugin payload)."""

from repro.trajectory.model import GPSPoint, Trajectory, STSeries, TSeries

__all__ = ["GPSPoint", "Trajectory", "STSeries", "TSeries"]
