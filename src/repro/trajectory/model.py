"""Trajectory value objects.

``STSeries`` is the paper's ``st_series`` column type (a sequence of
``(lng, lat, t)`` samples, e.g. the ``gpsList`` field); ``TSeries`` is
``t_series`` (a sequence of ``(t, value)`` samples).  ``Trajectory`` is the
complete entity behind the trajectory plugin table's implicit ``item``
field.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError
from repro.geometry.distance import haversine_distance_m
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LineString


@dataclass(frozen=True, slots=True)
class GPSPoint:
    """One GPS sample: position plus epoch-seconds timestamp."""

    lng: float
    lat: float
    time: float

    def distance_m(self, other: "GPSPoint") -> float:
        return haversine_distance_m(self.lng, self.lat,
                                    other.lng, other.lat)

    def speed_to_mps(self, other: "GPSPoint") -> float:
        """Average speed between two samples in metres per second."""
        dt = abs(other.time - self.time)
        if dt == 0.0:
            return float("inf") if self.distance_m(other) > 0 else 0.0
        return self.distance_m(other) / dt


class STSeries:
    """An ordered, time-monotone sequence of GPS samples."""

    __slots__ = ("_points", "_envelope")

    def __init__(self, points):
        pts = tuple(p if isinstance(p, GPSPoint) else GPSPoint(*p)
                    for p in points)
        for a, b in zip(pts, pts[1:]):
            if b.time < a.time:
                raise SchemaError("st_series timestamps must be "
                                  "non-decreasing")
        self._points = pts
        self._envelope = None  # computed lazily, cached (immutable)

    @property
    def points(self) -> tuple[GPSPoint, ...]:
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, i):
        return self._points[i]

    def __eq__(self, other) -> bool:
        return isinstance(other, STSeries) and self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        return f"STSeries({len(self._points)} points)"

    @property
    def envelope(self) -> Envelope:
        if not self._points:
            raise SchemaError("empty st_series has no envelope")
        if self._envelope is None:
            min_lng = max_lng = self._points[0].lng
            min_lat = max_lat = self._points[0].lat
            for p in self._points[1:]:
                if p.lng < min_lng:
                    min_lng = p.lng
                elif p.lng > max_lng:
                    max_lng = p.lng
                if p.lat < min_lat:
                    min_lat = p.lat
                elif p.lat > max_lat:
                    max_lat = p.lat
            self._envelope = Envelope(min_lng, min_lat, max_lng, max_lat)
        return self._envelope

    @property
    def time_extent(self) -> tuple[float, float]:
        if not self._points:
            raise SchemaError("empty st_series has no time extent")
        return self._points[0].time, self._points[-1].time

    def as_linestring(self) -> LineString:
        if len(self._points) < 2:
            raise SchemaError("st_series needs >= 2 points for a linestring")
        return LineString((p.lng, p.lat) for p in self._points)

    def length_m(self) -> float:
        """Travelled distance in metres."""
        return sum(a.distance_m(b)
                   for a, b in zip(self._points, self._points[1:]))


class TSeries:
    """An ordered sequence of ``(time, value)`` samples (``t_series``)."""

    __slots__ = ("_samples",)

    def __init__(self, samples):
        pairs = tuple((float(t), float(v)) for t, v in samples)
        for (t1, _), (t2, _) in zip(pairs, pairs[1:]):
            if t2 < t1:
                raise SchemaError("t_series timestamps must be "
                                  "non-decreasing")
        self._samples = pairs

    @property
    def samples(self) -> tuple[tuple[float, float], ...]:
        return self._samples

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    def __eq__(self, other) -> bool:
        return isinstance(other, TSeries) and self._samples == other._samples

    def __hash__(self) -> int:
        return hash(self._samples)

    def __repr__(self) -> str:
        return f"TSeries({len(self._samples)} samples)"


@dataclass(frozen=True)
class Trajectory:
    """A complete trajectory entity: id, moving-object id, GPS samples."""

    tid: str
    oid: str
    series: STSeries

    def __post_init__(self):
        if not isinstance(self.series, STSeries):
            object.__setattr__(self, "series", STSeries(self.series))
        if len(self.series) == 0:
            raise SchemaError(f"trajectory {self.tid!r} has no points")

    @property
    def points(self) -> tuple[GPSPoint, ...]:
        return self.series.points

    @property
    def envelope(self) -> Envelope:
        return self.series.envelope

    @property
    def start_time(self) -> float:
        return self.series.points[0].time

    @property
    def end_time(self) -> float:
        return self.series.points[-1].time

    @property
    def start_point(self) -> GPSPoint:
        return self.series.points[0]

    @property
    def end_point(self) -> GPSPoint:
        return self.series.points[-1]

    def length_m(self) -> float:
        return self.series.length_m()

    def duration_s(self) -> float:
        return self.end_time - self.start_time

    def subtrajectory(self, start: int, stop: int,
                      tid_suffix: str = "") -> "Trajectory":
        """New trajectory over the sample index range [start, stop)."""
        tid = self.tid + (tid_suffix or f"#{start}:{stop}")
        return Trajectory(tid, self.oid, STSeries(self.points[start:stop]))
