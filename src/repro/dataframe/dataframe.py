"""The partitioned DataFrame."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.dataframe.functions import AggregateSpec
from repro.errors import ExecutionError

DEFAULT_PARTITIONS = 8

Row = dict


class DataFrame:
    """An immutable, partitioned collection of ``dict`` rows.

    ``columns`` is the declared output schema; rows may omit columns (the
    value reads as ``None``) but must not carry extras after a
    ``select``.  Operations return new DataFrames; partitioning is
    preserved where the operation allows and rebalanced otherwise.
    """

    def __init__(self, partitions: list[list[Row]], columns: list[str]):
        self._partitions = partitions
        self.columns = list(columns)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Iterable[Row], columns: list[str] | None = None,
                  num_partitions: int = DEFAULT_PARTITIONS) -> "DataFrame":
        """Build a DataFrame, hashing rows round-robin into partitions."""
        rows = list(rows)
        if columns is None:
            columns = list(rows[0].keys()) if rows else []
        num_partitions = max(1, num_partitions)
        partitions: list[list[Row]] = [[] for _ in range(num_partitions)]
        for i, row in enumerate(rows):
            partitions[i % num_partitions].append(row)
        return cls(partitions, columns)

    @classmethod
    def empty(cls, columns: list[str]) -> "DataFrame":
        return cls([[]], columns)

    # -- basic accessors -------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def iter_rows(self) -> Iterator[Row]:
        for partition in self._partitions:
            yield from partition

    def collect(self) -> list[Row]:
        """All rows as a list (the driver-side materialization)."""
        return list(self.iter_rows())

    def count(self) -> int:
        return sum(len(p) for p in self._partitions)

    def first(self) -> Row | None:
        for row in self.iter_rows():
            return row
        return None

    def column_values(self, column: str) -> list[object]:
        return [row.get(column) for row in self.iter_rows()]

    # -- row-wise transformations ------------------------------------------------
    def select(self, columns: list[str]) -> "DataFrame":
        """Keep only ``columns`` (missing values become ``None``)."""
        unknown = [c for c in columns if c not in self.columns]
        if unknown:
            raise ExecutionError(f"unknown columns in select: {unknown}")
        parts = [[{c: row.get(c) for c in columns} for row in p]
                 for p in self._partitions]
        return DataFrame(parts, columns)

    def where(self, predicate: Callable[[Row], bool]) -> "DataFrame":
        parts = [[row for row in p if predicate(row)]
                 for p in self._partitions]
        return DataFrame(parts, self.columns)

    def with_column(self, name: str,
                    fn: Callable[[Row], object]) -> "DataFrame":
        """Add or replace a column computed per row."""
        parts = [[{**row, name: fn(row)} for row in p]
                 for p in self._partitions]
        columns = self.columns if name in self.columns \
            else self.columns + [name]
        return DataFrame(parts, columns)

    def map_rows(self, fn: Callable[[Row], Row],
                 columns: list[str]) -> "DataFrame":
        """1-1 transformation to a new row shape."""
        parts = [[fn(row) for row in p] for p in self._partitions]
        return DataFrame(parts, columns)

    def flat_map(self, fn: Callable[[Row], Iterable[Row]],
                 columns: list[str]) -> "DataFrame":
        """1-N transformation (the engine's 1-N analysis operations)."""
        parts = []
        for p in self._partitions:
            out: list[Row] = []
            for row in p:
                out.extend(fn(row))
            parts.append(out)
        return DataFrame(parts, columns)

    def map_partitions(self, fn: Callable[[list[Row]], list[Row]],
                       columns: list[str]) -> "DataFrame":
        """Partition-wise transformation (N-M analysis operations)."""
        return DataFrame([fn(list(p)) for p in self._partitions], columns)

    # -- global operations -------------------------------------------------------
    def distinct(self) -> "DataFrame":
        """Deduplicate rows on the full column tuple (a shuffle)."""
        seen = set()
        out = []
        for row in self.iter_rows():
            key = tuple(row.get(c) for c in self.columns)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return DataFrame.from_rows(out, self.columns,
                                   len(self._partitions))

    def order_by(self, keys: list[str],
                 ascending: list[bool] | None = None) -> "DataFrame":
        """Global sort; the result has a single ordered partition."""
        if ascending is None:
            ascending = [True] * len(keys)
        rows = self.collect()
        # Stable multi-key sort: apply keys right-to-left.
        for key, asc in reversed(list(zip(keys, ascending))):
            rows.sort(key=lambda r: _sort_key(r.get(key)), reverse=not asc)
        return DataFrame([rows], self.columns)

    def limit(self, n: int) -> "DataFrame":
        rows = []
        for row in self.iter_rows():
            if len(rows) >= n:
                break
            rows.append(row)
        return DataFrame([rows], self.columns)

    def union(self, other: "DataFrame") -> "DataFrame":
        if self.columns != other.columns:
            raise ExecutionError(
                f"union of incompatible schemas: {self.columns} vs "
                f"{other.columns}")
        return DataFrame(self._partitions + other._partitions, self.columns)

    def group_by(self, keys: list[str],
                 aggregates: list[AggregateSpec]) -> "DataFrame":
        """Hash aggregation; one output row per distinct key tuple."""
        unknown = [k for k in keys if k not in self.columns]
        if unknown:
            raise ExecutionError(f"unknown group keys: {unknown}")
        groups: dict[tuple, list[object]] = {}
        for row in self.iter_rows():
            key = tuple(row.get(k) for k in keys)
            if key not in groups:
                groups[key] = [spec.seed() for spec in aggregates]
            accs = groups[key]
            for i, spec in enumerate(aggregates):
                value = row if spec.column is None else row.get(spec.column)
                accs[i] = spec.step(accs[i], value)
        columns = list(keys) + [spec.output for spec in aggregates]
        out = []
        for key, accs in groups.items():
            row = dict(zip(keys, key))
            for spec, acc in zip(aggregates, accs):
                row[spec.output] = spec.final(acc)
            out.append(row)
        return DataFrame.from_rows(out, columns,
                                   max(1, len(self._partitions)))

    def join(self, other: "DataFrame", on: list[str],
             how: str = "inner") -> "DataFrame":
        """Hash join on equality of the ``on`` columns."""
        if how not in ("inner", "left"):
            raise ExecutionError(f"unsupported join type: {how}")
        build: dict[tuple, list[Row]] = {}
        for row in other.iter_rows():
            build.setdefault(tuple(row.get(k) for k in on), []).append(row)
        extra = [c for c in other.columns if c not in self.columns]
        columns = self.columns + extra
        out = []
        for row in self.iter_rows():
            key = tuple(row.get(k) for k in on)
            matches = build.get(key, [])
            if matches:
                for match in matches:
                    merged = dict(row)
                    for c in extra:
                        merged[c] = match.get(c)
                    out.append(merged)
            elif how == "left":
                merged = dict(row)
                for c in extra:
                    merged[c] = None
                out.append(merged)
        return DataFrame.from_rows(out, columns, self.num_partitions)

    def repartition(self, num_partitions: int) -> "DataFrame":
        return DataFrame.from_rows(self.collect(), self.columns,
                                   num_partitions)

    # -- sizing --------------------------------------------------------------
    def estimated_bytes(self) -> int:
        """Rough in-memory footprint used for cost accounting."""
        total = 0
        for row in self.iter_rows():
            total += 64  # row object overhead
            for value in row.values():
                if isinstance(value, (str, bytes)):
                    total += len(value) + 48
                else:
                    total += 32
        return total

    def __repr__(self) -> str:
        return (f"DataFrame(columns={self.columns}, rows={self.count()}, "
                f"partitions={self.num_partitions})")


class _AlwaysLast:
    """Sorts after every comparable value (NULLS LAST semantics)."""

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return not isinstance(other, _AlwaysLast)


_ALWAYS_LAST = _AlwaysLast()


def _sort_key(value):
    if value is None:
        return (2, _ALWAYS_LAST)
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))
