"""The partitioned DataFrame."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.dataframe.batch import DEFAULT_BATCH_ROWS, RowBatch
from repro.dataframe.functions import AggregateSpec
from repro.errors import ExecutionError

DEFAULT_PARTITIONS = 8

Row = dict


class DataFrame:
    """An immutable, partitioned collection of ``dict`` rows.

    ``columns`` is the declared output schema; rows may omit columns (the
    value reads as ``None``) but must not carry extras after a
    ``select``.  Operations return new DataFrames; partitioning is
    preserved where the operation allows and rebalanced otherwise.

    A DataFrame may be backed by column-major :class:`RowBatch`es
    instead of row lists (the vectorized scan path builds these).  Row
    partitions are then materialized lazily — one partition per batch —
    the first time a row-oriented operation needs them; columnar
    operations (``count``, ``select``, ``limit``) have fast paths that
    never pivot back to rows.
    """

    def __init__(self, partitions: list[list[Row]] | None,
                 columns: list[str],
                 batches: list[RowBatch] | None = None):
        self._parts = partitions
        self._batches = batches
        self.columns = list(columns)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Iterable[Row], columns: list[str] | None = None,
                  num_partitions: int = DEFAULT_PARTITIONS) -> "DataFrame":
        """Build a DataFrame, hashing rows round-robin into partitions."""
        rows = list(rows)
        if columns is None:
            columns = list(rows[0].keys()) if rows else []
        num_partitions = max(1, num_partitions)
        partitions: list[list[Row]] = [[] for _ in range(num_partitions)]
        for i, row in enumerate(rows):
            partitions[i % num_partitions].append(row)
        return cls(partitions, columns)

    @classmethod
    def from_batches(cls, batches: list[RowBatch],
                     columns: list[str]) -> "DataFrame":
        """Build a batch-backed DataFrame (one partition per batch)."""
        return cls(None, columns, batches=list(batches))

    @classmethod
    def empty(cls, columns: list[str]) -> "DataFrame":
        return cls([[]], columns)

    # -- batch backing -------------------------------------------------------
    @property
    def _partitions(self) -> list[list[Row]]:
        if self._parts is None:
            self._parts = [b.to_rows() for b in self._batches] or [[]]
        return self._parts

    @property
    def num_batches(self) -> int:
        """Batches backing this DataFrame (0 when row-backed)."""
        return len(self._batches) if self._batches is not None else 0

    def to_batches(self, batch_rows: int = DEFAULT_BATCH_ROWS) \
            -> list[RowBatch]:
        """This DataFrame's rows as column-major batches.

        Batch-backed frames return their batches as-is; row-backed
        frames pivot each non-empty partition into one batch.
        """
        if self._batches is not None:
            return list(self._batches)
        return [RowBatch.from_rows(p, self.columns)
                for p in self._partitions if p]

    # -- basic accessors -------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        if self._parts is None:
            return max(1, len(self._batches))
        return len(self._partitions)

    def iter_rows(self) -> Iterator[Row]:
        if self._parts is None:
            for batch in self._batches:
                yield from batch.iter_rows()
            return
        for partition in self._partitions:
            yield from partition

    def collect(self) -> list[Row]:
        """All rows as a list (the driver-side materialization)."""
        return list(self.iter_rows())

    def count(self) -> int:
        if self._parts is None:
            return sum(len(b) for b in self._batches)
        return sum(len(p) for p in self._partitions)

    def first(self) -> Row | None:
        for row in self.iter_rows():
            return row
        return None

    def column_values(self, column: str) -> list[object]:
        return [row.get(column) for row in self.iter_rows()]

    # -- row-wise transformations ------------------------------------------------
    def select(self, columns: list[str]) -> "DataFrame":
        """Keep only ``columns`` (missing values become ``None``)."""
        unknown = [c for c in columns if c not in self.columns]
        if unknown:
            raise ExecutionError(f"unknown columns in select: {unknown}")
        if self._parts is None:
            # Columnar: share the kept column lists, no row rebuilds.
            return DataFrame.from_batches(
                [b.select(columns) for b in self._batches], columns)
        parts = [[{c: row.get(c) for c in columns} for row in p]
                 for p in self._partitions]
        return DataFrame(parts, columns)

    def where(self, predicate: Callable[[Row], bool]) -> "DataFrame":
        parts = [[row for row in p if predicate(row)]
                 for p in self._partitions]
        return DataFrame(parts, self.columns)

    def with_column(self, name: str,
                    fn: Callable[[Row], object]) -> "DataFrame":
        """Add or replace a column computed per row."""
        parts = [[{**row, name: fn(row)} for row in p]
                 for p in self._partitions]
        columns = self.columns if name in self.columns \
            else self.columns + [name]
        return DataFrame(parts, columns)

    def map_rows(self, fn: Callable[[Row], Row],
                 columns: list[str]) -> "DataFrame":
        """1-1 transformation to a new row shape."""
        parts = [[fn(row) for row in p] for p in self._partitions]
        return DataFrame(parts, columns)

    def flat_map(self, fn: Callable[[Row], Iterable[Row]],
                 columns: list[str]) -> "DataFrame":
        """1-N transformation (the engine's 1-N analysis operations)."""
        parts = []
        for p in self._partitions:
            out: list[Row] = []
            for row in p:
                out.extend(fn(row))
            parts.append(out)
        return DataFrame(parts, columns)

    def map_partitions(self, fn: Callable[[list[Row]], list[Row]],
                       columns: list[str]) -> "DataFrame":
        """Partition-wise transformation (N-M analysis operations)."""
        return DataFrame([fn(list(p)) for p in self._partitions], columns)

    # -- global operations -------------------------------------------------------
    def distinct(self) -> "DataFrame":
        """Deduplicate rows on the full column tuple (a shuffle)."""
        seen = set()
        out = []
        for row in self.iter_rows():
            key = tuple(row.get(c) for c in self.columns)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return DataFrame.from_rows(out, self.columns,
                                   len(self._partitions))

    def order_by(self, keys: list[str],
                 ascending: list[bool] | None = None) -> "DataFrame":
        """Global sort; the result has a single ordered partition."""
        if ascending is None:
            ascending = [True] * len(keys)
        rows = self.collect()
        # Stable multi-key sort: apply keys right-to-left.
        for key, asc in reversed(list(zip(keys, ascending))):
            rows.sort(key=lambda r: _sort_key(r.get(key)), reverse=not asc)
        return DataFrame([rows], self.columns)

    def limit(self, n: int) -> "DataFrame":
        if self._parts is None:
            # Columnar: slice whole batches instead of copying rows.
            kept: list[RowBatch] = []
            remaining = n
            for batch in self._batches:
                if remaining <= 0:
                    break
                if len(batch) <= remaining:
                    kept.append(batch)
                    remaining -= len(batch)
                else:
                    kept.append(batch.slice(0, remaining))
                    remaining = 0
            return DataFrame.from_batches(kept, self.columns)
        rows = []
        for row in self.iter_rows():
            if len(rows) >= n:
                break
            rows.append(row)
        return DataFrame([rows], self.columns)

    def union(self, other: "DataFrame") -> "DataFrame":
        if self.columns != other.columns:
            raise ExecutionError(
                f"union of incompatible schemas: {self.columns} vs "
                f"{other.columns}")
        return DataFrame(self._partitions + other._partitions, self.columns)

    def group_by(self, keys: list[str],
                 aggregates: list[AggregateSpec]) -> "DataFrame":
        """Hash aggregation; one output row per distinct key tuple."""
        unknown = [k for k in keys if k not in self.columns]
        if unknown:
            raise ExecutionError(f"unknown group keys: {unknown}")
        groups: dict[tuple, list[object]] = {}
        for row in self.iter_rows():
            key = tuple(row.get(k) for k in keys)
            if key not in groups:
                groups[key] = [spec.seed() for spec in aggregates]
            accs = groups[key]
            for i, spec in enumerate(aggregates):
                value = row if spec.column is None else row.get(spec.column)
                accs[i] = spec.step(accs[i], value)
        columns = list(keys) + [spec.output for spec in aggregates]
        out = []
        for key, accs in groups.items():
            row = dict(zip(keys, key))
            for spec, acc in zip(aggregates, accs):
                row[spec.output] = spec.final(acc)
            out.append(row)
        return DataFrame.from_rows(out, columns,
                                   max(1, len(self._partitions)))

    def join(self, other: "DataFrame", on: list[str],
             how: str = "inner") -> "DataFrame":
        """Hash join on equality of the ``on`` columns."""
        if how not in ("inner", "left"):
            raise ExecutionError(f"unsupported join type: {how}")
        build: dict[tuple, list[Row]] = {}
        for row in other.iter_rows():
            build.setdefault(tuple(row.get(k) for k in on), []).append(row)
        extra = [c for c in other.columns if c not in self.columns]
        columns = self.columns + extra
        out = []
        for row in self.iter_rows():
            key = tuple(row.get(k) for k in on)
            matches = build.get(key, [])
            if matches:
                for match in matches:
                    merged = dict(row)
                    for c in extra:
                        merged[c] = match.get(c)
                    out.append(merged)
            elif how == "left":
                merged = dict(row)
                for c in extra:
                    merged[c] = None
                out.append(merged)
        return DataFrame.from_rows(out, columns, self.num_partitions)

    def repartition(self, num_partitions: int) -> "DataFrame":
        return DataFrame.from_rows(self.collect(), self.columns,
                                   num_partitions)

    # -- sizing --------------------------------------------------------------
    def estimated_bytes(self) -> int:
        """Rough in-memory footprint used for cost accounting.

        Container values — trajectory series, geometry coordinate
        lists, nested dicts — are sized recursively; charging them a
        scalar's 32 bytes would make a frame of trajectory blobs look
        as cheap to ship as a frame of integers.
        """
        if self._parts is None:
            total = 0
            for batch in self._batches:
                total += 64 * len(batch)  # row object overhead
                for values in batch.data.values():
                    for value in values:
                        total += estimate_value_bytes(value)
            return total
        total = 0
        for row in self.iter_rows():
            total += 64  # row object overhead
            for value in row.values():
                total += estimate_value_bytes(value)
        return total

    def __repr__(self) -> str:
        return (f"DataFrame(columns={self.columns}, rows={self.count()}, "
                f"partitions={self.num_partitions})")


def estimate_value_bytes(value) -> int:
    """Approximate in-memory size of one column value, recursively.

    Duck-typed for the engine's value types (trajectory series expose
    ``points``, line strings ``coords``, polygons ``ring``) so the
    dataframe layer stays independent of the geometry package.
    """
    if value is None:
        return 16
    if isinstance(value, (str, bytes)):
        return len(value) + 48
    if isinstance(value, (bool, int, float)):
        return 32
    if isinstance(value, dict):
        return 64 + sum(estimate_value_bytes(k) + estimate_value_bytes(v)
                        for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return 56 + sum(estimate_value_bytes(v) for v in value)
    points = getattr(value, "points", None)
    if points is not None and not callable(points):
        return 56 + 48 * len(points)  # STSeries: (lng, lat, t) samples
    coords = getattr(value, "coords", None)
    if coords is not None and not callable(coords):
        return 56 + 16 * len(coords)  # LineString
    ring = getattr(value, "ring", None)
    if ring is not None and not callable(ring):
        return 56 + 16 * len(ring)  # Polygon
    if hasattr(value, "lng") and hasattr(value, "lat"):  # Point
        return 48
    return 32


class _AlwaysLast:
    """Sorts after every comparable value (NULLS LAST semantics)."""

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return not isinstance(other, _AlwaysLast)


_ALWAYS_LAST = _AlwaysLast()


def _sort_key(value):
    if value is None:
        return (2, _ALWAYS_LAST)
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))
