"""Aggregate function specifications for DataFrame.group_by."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True, slots=True)
class AggregateSpec:
    """One output column of a grouped aggregation.

    ``seed``/``step``/``final`` form a fold: ``final(reduce(step, values,
    seed()))``.  ``column`` is the input column; ``None`` means the whole
    row (only COUNT uses that).
    """

    output: str
    column: str | None
    seed: Callable[[], object]
    step: Callable[[object, object], object]
    final: Callable[[object], object]


def agg_count(output: str = "count") -> AggregateSpec:
    """COUNT(*) over the group."""
    return AggregateSpec(output, None,
                         seed=lambda: 0,
                         step=lambda acc, _row: acc + 1,
                         final=lambda acc: acc)


def agg_sum(column: str, output: str | None = None) -> AggregateSpec:
    """SUM(column), ignoring NULLs."""
    return AggregateSpec(output or f"sum_{column}", column,
                         seed=lambda: 0,
                         step=lambda acc, v: acc if v is None else acc + v,
                         final=lambda acc: acc)


def agg_min(column: str, output: str | None = None) -> AggregateSpec:
    """MIN(column), ignoring NULLs."""
    def step(acc, v):
        if v is None:
            return acc
        return v if acc is None or v < acc else acc
    return AggregateSpec(output or f"min_{column}", column,
                         seed=lambda: None, step=step,
                         final=lambda acc: acc)


def agg_max(column: str, output: str | None = None) -> AggregateSpec:
    """MAX(column), ignoring NULLs."""
    def step(acc, v):
        if v is None:
            return acc
        return v if acc is None or v > acc else acc
    return AggregateSpec(output or f"max_{column}", column,
                         seed=lambda: None, step=step,
                         final=lambda acc: acc)


def agg_avg(column: str, output: str | None = None) -> AggregateSpec:
    """AVG(column), ignoring NULLs; NULL for empty groups."""
    def step(acc, v):
        if v is None:
            return acc
        total, count = acc
        return (total + v, count + 1)
    return AggregateSpec(output or f"avg_{column}", column,
                         seed=lambda: (0.0, 0),
                         step=step,
                         final=lambda acc: acc[0] / acc[1] if acc[1] else None)


def agg_collect(column: str, output: str | None = None) -> AggregateSpec:
    """collect_list(column): group values in encounter order."""
    def step(acc, v):
        acc.append(v)
        return acc
    return AggregateSpec(output or f"collect_{column}", column,
                         seed=list, step=step,
                         final=lambda acc: acc)
