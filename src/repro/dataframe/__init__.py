"""A small partitioned DataFrame engine (the Spark SQL substitute).

The SQL layer pushes spatio-temporal predicates into key-value store scans
and runs everything else — projections, residual filters, aggregates,
sorts, joins — on these DataFrames.  A DataFrame is a list of row
partitions; operations produce new DataFrames and never mutate rows in
place.  Rows are plain ``dict`` objects keyed by column name.
"""

from repro.dataframe.batch import (
    DEFAULT_BATCH_ROWS,
    BatchBuilder,
    RowBatch,
    batches_from_rows,
)
from repro.dataframe.dataframe import DataFrame, estimate_value_bytes
from repro.dataframe.functions import (
    AggregateSpec,
    agg_avg,
    agg_count,
    agg_collect,
    agg_max,
    agg_min,
    agg_sum,
)

__all__ = [
    "DataFrame",
    "RowBatch",
    "BatchBuilder",
    "DEFAULT_BATCH_ROWS",
    "batches_from_rows",
    "estimate_value_bytes",
    "AggregateSpec",
    "agg_avg",
    "agg_count",
    "agg_collect",
    "agg_max",
    "agg_min",
    "agg_sum",
]
