"""Column-major row batches for batch-at-a-time execution.

A :class:`RowBatch` holds a slice of a scan result as a dict of
``column -> list`` (one list per column, all the same length), the same
shape a pandas UDF receives a Spark partition in.  Operators work on
whole columns — a residual filter computes one boolean mask per batch,
a projection slices column lists instead of rebuilding per-row dicts —
so the per-row Python dispatch that dominates row-at-a-time execution
is paid once per batch instead of once per record.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: Rows per batch on the scan path.  Small enough that an early LIMIT
#: or a cancelled query wastes at most one batch of decode work, large
#: enough to amortize per-batch dispatch over many records.
DEFAULT_BATCH_ROWS = 256

Row = dict


class RowBatch:
    """One column-major batch: ``data[column][i]`` is row ``i``'s value.

    Column lists are shared, never mutated: ``select`` reuses the same
    lists under a narrower schema and ``filter`` builds new ones.
    """

    __slots__ = ("columns", "data", "num_rows")

    def __init__(self, data: dict[str, list], columns: list[str],
                 num_rows: int):
        self.data = data
        self.columns = list(columns)
        self.num_rows = num_rows

    # -- construction --------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: list[Row],
                  columns: list[str] | None = None) -> "RowBatch":
        """Pivot row dicts into columns (missing values become None)."""
        if columns is None:
            columns = list(rows[0].keys()) if rows else []
        data = {c: [row.get(c) for row in rows] for c in columns}
        return cls(data, columns, len(rows))

    @classmethod
    def empty(cls, columns: list[str]) -> "RowBatch":
        return cls({c: [] for c in columns}, columns, 0)

    # -- accessors -----------------------------------------------------------
    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, column: str) -> bool:
        return column in self.data

    def column(self, name: str) -> list:
        """The values of one column; KeyError when absent."""
        return self.data[name]

    def row(self, i: int) -> Row:
        return {c: self.data[c][i] for c in self.columns}

    def iter_rows(self) -> Iterator[Row]:
        data = self.data
        columns = self.columns
        for i in range(self.num_rows):
            yield {c: data[c][i] for c in columns}

    def to_rows(self) -> list[Row]:
        return list(self.iter_rows())

    # -- columnar transformations --------------------------------------------
    def select(self, columns: list[str]) -> "RowBatch":
        """Narrow to ``columns``, sharing the underlying lists.

        A column the batch does not carry reads as all-None, matching
        ``row.get`` semantics on the row path.
        """
        none_column = None
        data = {}
        for c in columns:
            if c in self.data:
                data[c] = self.data[c]
            else:
                if none_column is None:
                    none_column = [None] * self.num_rows
                data[c] = none_column
        return RowBatch(data, columns, self.num_rows)

    def filter(self, mask: list) -> "RowBatch":
        """Keep rows whose mask entry is ``True`` (SQL three-valued:
        ``None`` and ``False`` both drop the row)."""
        keep = [i for i, m in enumerate(mask) if m is True]
        if len(keep) == self.num_rows:
            return self
        data = {c: [values[i] for i in keep]
                for c, values in self.data.items()}
        return RowBatch(data, self.columns, len(keep))

    def slice(self, start: int, stop: int) -> "RowBatch":
        data = {c: values[start:stop] for c, values in self.data.items()}
        return RowBatch(data, self.columns, len(next(iter(data.values()),
                                                     [])))

    def with_column(self, name: str, values: list) -> "RowBatch":
        data = dict(self.data)
        data[name] = values
        columns = self.columns if name in self.data \
            else self.columns + [name]
        return RowBatch(data, columns, self.num_rows)


class BatchBuilder:
    """Accumulates rows column-wise and emits full :class:`RowBatch`es."""

    __slots__ = ("columns", "_data", "_count", "batch_rows")

    def __init__(self, columns: list[str],
                 batch_rows: int = DEFAULT_BATCH_ROWS):
        self.columns = list(columns)
        self.batch_rows = batch_rows
        self._data: dict[str, list] = {c: [] for c in self.columns}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, row: Row) -> "RowBatch | None":
        """Append one row; returns a full batch when one completes."""
        for c in self.columns:
            self._data[c].append(row.get(c))
        self._count += 1
        if self._count >= self.batch_rows:
            return self.take()
        return None

    def take(self) -> "RowBatch | None":
        """Emit whatever has accumulated (None when empty)."""
        if not self._count:
            return None
        batch = RowBatch(self._data, self.columns, self._count)
        self._data = {c: [] for c in self.columns}
        self._count = 0
        return batch


def batches_from_rows(rows: Iterable[Row], columns: list[str],
                      batch_rows: int = DEFAULT_BATCH_ROWS):
    """Chunk an iterable of row dicts into :class:`RowBatch`es."""
    builder = BatchBuilder(columns, batch_rows)
    for row in rows:
        full = builder.add(row)
        if full is not None:
            yield full
    tail = builder.take()
    if tail is not None:
        yield tail
