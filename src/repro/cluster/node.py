"""The simulated cluster: servers, memory budget, job factory."""

from __future__ import annotations

from repro.cluster.simclock import CostModel, SimJob
from repro.errors import SimulatedOutOfMemoryError

_GB = 1024 ** 3


class Cluster:
    """A fixed pool of nodes with a shared memory budget.

    The paper's Spark-based baselines cache entire datasets (plus index
    overhead) in cluster memory; systems exceeding ``memory_budget_bytes``
    raise :class:`SimulatedOutOfMemoryError`, reproducing the OOM failures
    reported in Section VIII without exhausting host RAM.
    """

    def __init__(self, num_servers: int = 5,
                 memory_budget_bytes: int = 5 * 32 * _GB,
                 model: CostModel | None = None):
        self.num_servers = num_servers
        self.memory_budget_bytes = memory_budget_bytes
        self.model = model if model is not None else CostModel()
        self._reservations: dict[str, int] = {}

    def job(self) -> SimJob:
        """Start a fresh simulated-time accumulator."""
        return SimJob(self.model, self.num_servers)

    # -- memory accounting ---------------------------------------------------
    @property
    def memory_in_use(self) -> int:
        return sum(self._reservations.values())

    def reserve_memory(self, owner: str, nbytes: int) -> None:
        """Claim cluster memory; raises simulated OOM when over budget."""
        current = self._reservations.get(owner, 0)
        required = self.memory_in_use - current + nbytes
        if required > self.memory_budget_bytes:
            raise SimulatedOutOfMemoryError(owner, required,
                                            self.memory_budget_bytes)
        self._reservations[owner] = nbytes

    def release_memory(self, owner: str) -> None:
        self._reservations.pop(owner, None)
