"""Cost model and per-job simulated clock."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kvstore.iostats import IOSnapshot

_MB = 1024.0 * 1024.0


@dataclass(frozen=True, slots=True)
class CostModel:
    """Latency/throughput parameters of the simulated cluster.

    Defaults are calibrated to the paper's testbed class: spinning-disk
    sequential reads, gigabit interconnect, and the constant overheads the
    paper attributes to each architecture (Spark driver round-trip for
    JUST, full MapReduce job launch for the Hadoop systems).
    """

    #: Sequential disk read bandwidth per region server.
    disk_read_mb_s: float = 150.0
    #: Sequential disk write bandwidth per server.
    disk_write_mb_s: float = 100.0
    #: In-memory scan bandwidth per node (RDD/DataFrame traversal).
    memory_scan_mb_s: float = 4000.0
    #: Network bandwidth for shipping results to the driver.
    network_mb_s: float = 120.0
    #: Cost of initiating one range SCAN (RPC + seek).
    seek_ms: float = 1.5
    #: Fixed per-query driver overhead with a shared Spark context (JUST).
    query_overhead_ms: float = 150.0
    #: Fixed cost of launching a MapReduce job (SpatialHadoop/ST-Hadoop).
    mapreduce_job_ms: float = 9000.0
    #: Fixed cost of a Spark stage over an in-memory RDD.
    spark_stage_ms: float = 80.0
    #: Per-record CPU cost of deserializing + filtering one row.
    cpu_us_per_record: float = 2.0
    #: Amortized per-record CPU cost under batch-at-a-time execution:
    #: the expression tree is dispatched once per batch and the leaves
    #: loop over column lists, so most of the per-row interpreter
    #: overhead disappears (the pandas-UDF effect).
    cpu_us_per_record_batched: float = 0.4
    #: Fixed per-batch dispatch cost (building the columnar batch and
    #: walking the expression tree once).
    batch_overhead_us: float = 40.0
    #: Per-record CPU cost of building an in-memory index entry.
    index_build_us_per_record: float = 6.0
    #: Latency of one WAL fsync (group commit pays this once per batch).
    fsync_ms: float = 4.0
    #: Fixed cost of reopening one region on its failover target
    #: (ZooKeeper reassignment + store-file handle open).
    region_reopen_ms: float = 50.0
    #: Per-cell cost of an HBase put (RPC + WAL append + memstore insert);
    #: this is why JUST indexes Order slower than the Spark systems cache
    #: it (Figure 10c) — ingest writes through to the store.
    kv_put_us: float = 30.0
    #: Calibration factor for data-proportional work (bytes and records).
    #: The benchmark harness runs datasets ~10^4 times smaller than the
    #: paper's; setting ``work_scale`` to paper_raw_bytes/our_raw_bytes
    #: restores the paper's balance between fixed costs (job launches,
    #: driver round-trips, seeks — unscaled) and data-volume costs, so
    #: figure shapes and crossovers are preserved.  Fixed costs are NOT
    #: scaled.  Defaults to 1.0 (no scaling) for library use.
    work_scale: float = 1.0
    #: Separate calibration for per-record CPU work.  Row counts shrink
    #: less than byte volumes when scaling a dataset down (rows keep their
    #: width), so record-proportional costs get their own factor.  ``None``
    #: falls back to ``work_scale``.
    record_scale: float | None = None

    @property
    def effective_record_scale(self) -> float:
        return self.record_scale if self.record_scale is not None \
            else self.work_scale

    def disk_read_ms(self, nbytes: int) -> float:
        return nbytes * self.work_scale / _MB / self.disk_read_mb_s \
            * 1000.0

    def disk_write_ms(self, nbytes: int) -> float:
        return nbytes * self.work_scale / _MB / self.disk_write_mb_s \
            * 1000.0

    def memory_scan_ms(self, nbytes: int) -> float:
        return nbytes * self.work_scale / _MB / self.memory_scan_mb_s \
            * 1000.0

    def network_ms(self, nbytes: int) -> float:
        return nbytes * self.work_scale / _MB / self.network_mb_s \
            * 1000.0


@dataclass
class SimJob:
    """Accumulates simulated time for one logical job (query, load, ...).

    Components call the ``charge_*`` methods; ``elapsed_ms`` is the final
    simulated latency.  Parallel work across servers is charged as the
    maximum per-server time (the straggler), matching how a scatter/gather
    query completes.
    """

    model: CostModel
    num_servers: int = 5
    elapsed_ms: float = 0.0
    breakdown: dict[str, float] = field(default_factory=dict)
    #: Optional per-statement budget (:class:`repro.resilience.Deadline`):
    #: every charge consumes budget and an exhausted budget raises
    #: QueryTimeoutError at the charge point, so cancellation overrun is
    #: bounded by one charge's granularity.
    deadline: object | None = None

    def _add(self, label: str, ms: float) -> None:
        self.elapsed_ms += ms
        self.breakdown[label] = self.breakdown.get(label, 0.0) + ms
        if self.deadline is not None:
            self.deadline.charge(ms)
            self.deadline.check(label)

    def charge_fixed(self, label: str, ms: float) -> None:
        """An architecture-constant cost (job startup, driver overhead)."""
        self._add(label, ms)

    def charge_store_scan(self, delta: IOSnapshot,
                          num_ranges: int = 1) -> None:
        """Charge a key-value store scatter/gather scan.

        ``delta`` is the I/O counter increment attributable to this scan.
        Disk reads proceed in parallel on each region server; seeks are
        spread across servers; results stream back over the network.
        """
        if delta.per_server_read:
            slowest = max(delta.per_server_read.values())
        else:
            slowest = delta.disk_bytes_read
        self._add("disk_read", self.model.disk_read_ms(slowest))
        seeks = -(-num_ranges // max(1, self.num_servers))  # ceil division
        self._add("seek", seeks * self.model.seek_ms)
        self._add("cache_read",
                  self.model.memory_scan_ms(delta.cache_bytes_read))
        # Large results leave region servers in parallel via the HDFS
        # spill path of Figure 2 (not through one driver link), so the
        # transfer is divided across servers.
        self._add("network",
                  self.model.network_ms(delta.result_bytes)
                  / max(1, self.num_servers))

    def charge_wal(self, delta: IOSnapshot) -> None:
        """Charge write-ahead-log traffic: sequential appends + fsyncs."""
        self._add("wal_write",
                  self.model.disk_write_ms(delta.wal_bytes_written))
        self._add("wal_sync", delta.wal_syncs * self.model.fsync_ms)

    def charge_disk_write(self, nbytes: int, parallel: bool = True) -> None:
        servers = self.num_servers if parallel else 1
        self._add("disk_write",
                  self.model.disk_write_ms(nbytes) / servers)

    def charge_disk_read(self, nbytes: int, parallel: bool = True) -> None:
        servers = self.num_servers if parallel else 1
        self._add("disk_read",
                  self.model.disk_read_ms(nbytes) / servers)

    def charge_memory_scan(self, nbytes: int, parallel: bool = True) -> None:
        servers = self.num_servers if parallel else 1
        self._add("memory_scan",
                  self.model.memory_scan_ms(nbytes) / servers)

    def charge_network(self, nbytes: int) -> None:
        self._add("network", self.model.network_ms(nbytes))

    def charge_cpu_records(self, count: int,
                           us_per_record: float | None = None,
                           parallel: bool = True) -> None:
        us = us_per_record if us_per_record is not None \
            else self.model.cpu_us_per_record
        servers = self.num_servers if parallel else 1
        scale = self.model.effective_record_scale
        self._add("cpu", count * scale * us / 1000.0 / servers)

    def charge_cpu_batch(self, count: int, num_batches: int = 1,
                         us_per_record: float | None = None,
                         parallel: bool = True) -> None:
        """CPU for ``count`` records processed as ``num_batches`` batches.

        The record count stays exact — batching changes how the work is
        dispatched, not how much data flows — but each record costs the
        amortized batched rate plus a fixed per-batch dispatch overhead.
        """
        us = us_per_record if us_per_record is not None \
            else self.model.cpu_us_per_record_batched
        servers = self.num_servers if parallel else 1
        scale = self.model.effective_record_scale
        self._add("cpu", (count * scale * us
                          + num_batches * self.model.batch_overhead_us)
                  / 1000.0 / servers)
