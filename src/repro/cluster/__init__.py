"""Deterministic cluster cost model.

The paper's testbed is a 5-node cluster (8-core CPU, 32 GB RAM, 1 TB disk
per node).  This package replaces the wall clock of that cluster with a
deterministic model: components meter bytes and operations while executing
for real, and the model converts the meters into *simulated milliseconds*.
All "querying time"/"indexing time" numbers in the benchmark harness are
simulated milliseconds, so figure shapes are reproducible on any host.
"""

from repro.cluster.simclock import CostModel, SimJob
from repro.cluster.node import Cluster

__all__ = ["CostModel", "SimJob", "Cluster"]
