"""Lightweight planar geometry library used throughout the engine.

The engine stores longitude/latitude coordinates (WGS84, SRID 4326 by
default).  Geometries are immutable value objects.  Only the operations the
paper's query layer needs are implemented: envelopes, containment and
intersection tests, point/segment distances, WKT round-tripping, and
coordinate-system transforms.
"""

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.geometry.linestring import LineString
from repro.geometry.polygon import Polygon
from repro.geometry.distance import (
    euclidean_distance,
    haversine_distance_m,
    point_segment_distance,
    METERS_PER_DEGREE,
)
from repro.geometry.wkt import to_wkt, from_wkt
from repro.geometry.transforms import (
    wgs84_to_gcj02,
    gcj02_to_wgs84,
    gcj02_to_bd09,
    bd09_to_gcj02,
)

__all__ = [
    "Geometry",
    "Envelope",
    "Point",
    "LineString",
    "Polygon",
    "euclidean_distance",
    "haversine_distance_m",
    "point_segment_distance",
    "METERS_PER_DEGREE",
    "to_wkt",
    "from_wkt",
    "wgs84_to_gcj02",
    "gcj02_to_wgs84",
    "gcj02_to_bd09",
    "bd09_to_gcj02",
]
