"""GeoHash encoding/decoding.

The Urban Block Indicator System (Section VII-B) partitions space into
~150 m grids "where the GeoHash code has a length of 7"; this module
provides the standard base-32 GeoHash so applications can name blocks the
way the paper's deployment does.
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry.envelope import Envelope

_BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"
_DECODE = {ch: i for i, ch in enumerate(_BASE32)}

#: Approximate cell sizes (width m x height m) per precision at the
#: equator, for documentation and the tests.
CELL_SIZE_M = {
    1: (5_009_400, 4_992_600),
    2: (1_252_300, 624_100),
    3: (156_500, 156_000),
    4: (39_100, 19_500),
    5: (4_900, 4_900),
    6: (1_200, 609),
    7: (152.9, 152.4),
    8: (38.2, 19.0),
    9: (4.8, 4.8),
}


def encode(lng: float, lat: float, precision: int = 7) -> str:
    """GeoHash of a coordinate at the given character precision."""
    if not (1 <= precision <= 12):
        raise GeometryError("geohash precision must be in [1, 12]")
    if not (-180.0 <= lng <= 180.0 and -90.0 <= lat <= 90.0):
        raise GeometryError(f"coordinate out of bounds: ({lng}, {lat})")
    lng_lo, lng_hi = -180.0, 180.0
    lat_lo, lat_hi = -90.0, 90.0
    out = []
    bit = 0
    value = 0
    even = True  # longitude first
    while len(out) < precision:
        if even:
            mid = (lng_lo + lng_hi) / 2.0
            if lng >= mid:
                value = (value << 1) | 1
                lng_lo = mid
            else:
                value <<= 1
                lng_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2.0
            if lat >= mid:
                value = (value << 1) | 1
                lat_lo = mid
            else:
                value <<= 1
                lat_hi = mid
        even = not even
        bit += 1
        if bit == 5:
            out.append(_BASE32[value])
            bit = 0
            value = 0
    return "".join(out)


def decode_envelope(geohash: str) -> Envelope:
    """The cell (envelope) a GeoHash string names."""
    if not geohash:
        raise GeometryError("empty geohash")
    lng_lo, lng_hi = -180.0, 180.0
    lat_lo, lat_hi = -90.0, 90.0
    even = True
    for ch in geohash.lower():
        try:
            value = _DECODE[ch]
        except KeyError:
            raise GeometryError(
                f"invalid geohash character {ch!r}") from None
        for shift in range(4, -1, -1):
            bit = (value >> shift) & 1
            if even:
                mid = (lng_lo + lng_hi) / 2.0
                if bit:
                    lng_lo = mid
                else:
                    lng_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2.0
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    return Envelope(lng_lo, lat_lo, lng_hi, lat_hi)


def decode(geohash: str) -> tuple[float, float]:
    """Centre coordinate of a GeoHash cell."""
    return decode_envelope(geohash).center


def neighbors(geohash: str) -> list[str]:
    """The up-to-8 surrounding cells at the same precision."""
    env = decode_envelope(geohash)
    cx, cy = env.center
    out = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx == 0 and dy == 0:
                continue
            lng = cx + dx * env.width
            lat = cy + dy * env.height
            if -180.0 <= lng <= 180.0 and -90.0 <= lat <= 90.0:
                candidate = encode(lng, lat, len(geohash))
                if candidate != geohash and candidate not in out:
                    out.append(candidate)
    return out


def cover_envelope(envelope: Envelope, precision: int = 7,
                   max_cells: int = 4096) -> list[str]:
    """All GeoHash cells of the precision intersecting an envelope."""
    probe = decode_envelope(encode(envelope.min_lng, envelope.min_lat,
                                   precision))
    out = []
    lat = envelope.min_lat
    while lat <= envelope.max_lat + probe.height:
        lng = envelope.min_lng
        while lng <= envelope.max_lng + probe.width:
            cell = encode(min(lng, 180.0), min(lat, 90.0), precision)
            cell_env = decode_envelope(cell)
            if cell_env.intersects(envelope) and cell not in out:
                out.append(cell)
                if len(out) > max_cells:
                    raise GeometryError(
                        f"envelope covers more than {max_cells} geohash "
                        f"cells at precision {precision}")
            lng += probe.width
        lat += probe.height
    return out
