"""Coordinate-system transforms between WGS84, GCJ02, and BD09.

These implement the engine's 1-1 analysis operations
(``st_WGS84ToGCJ02`` and friends).  GCJ02 is the obfuscated coordinate
system mandated for maps of mainland China; BD09 is Baidu's additional
offset on top of GCJ02.  The formulas are the widely published ones; the
inverse (GCJ02 -> WGS84) is the standard one-step approximation, accurate
to roughly a metre which is sufficient for analytical workloads.
"""

from __future__ import annotations

import math

_A = 6378245.0  # Krasovsky 1940 semi-major axis
_EE = 0.00669342162296594323  # eccentricity squared

_X_PI = math.pi * 3000.0 / 180.0


def _out_of_china(lng: float, lat: float) -> bool:
    return not (72.004 <= lng <= 137.8347 and 0.8293 <= lat <= 55.8271)


def _transform_lat(x: float, y: float) -> float:
    ret = (-100.0 + 2.0 * x + 3.0 * y + 0.2 * y * y + 0.1 * x * y
           + 0.2 * math.sqrt(abs(x)))
    ret += (20.0 * math.sin(6.0 * x * math.pi)
            + 20.0 * math.sin(2.0 * x * math.pi)) * 2.0 / 3.0
    ret += (20.0 * math.sin(y * math.pi)
            + 40.0 * math.sin(y / 3.0 * math.pi)) * 2.0 / 3.0
    ret += (160.0 * math.sin(y / 12.0 * math.pi)
            + 320.0 * math.sin(y * math.pi / 30.0)) * 2.0 / 3.0
    return ret


def _transform_lng(x: float, y: float) -> float:
    ret = (300.0 + x + 2.0 * y + 0.1 * x * x + 0.1 * x * y
           + 0.1 * math.sqrt(abs(x)))
    ret += (20.0 * math.sin(6.0 * x * math.pi)
            + 20.0 * math.sin(2.0 * x * math.pi)) * 2.0 / 3.0
    ret += (20.0 * math.sin(x * math.pi)
            + 40.0 * math.sin(x / 3.0 * math.pi)) * 2.0 / 3.0
    ret += (150.0 * math.sin(x / 12.0 * math.pi)
            + 300.0 * math.sin(x / 30.0 * math.pi)) * 2.0 / 3.0
    return ret


def _gcj_offsets(lng: float, lat: float) -> tuple[float, float]:
    dlat = _transform_lat(lng - 105.0, lat - 35.0)
    dlng = _transform_lng(lng - 105.0, lat - 35.0)
    rad_lat = lat / 180.0 * math.pi
    magic = math.sin(rad_lat)
    magic = 1.0 - _EE * magic * magic
    sqrt_magic = math.sqrt(magic)
    dlat = (dlat * 180.0) / ((_A * (1.0 - _EE)) / (magic * sqrt_magic)
                             * math.pi)
    dlng = (dlng * 180.0) / (_A / sqrt_magic * math.cos(rad_lat) * math.pi)
    return dlng, dlat


def wgs84_to_gcj02(lng: float, lat: float) -> tuple[float, float]:
    """WGS84 -> GCJ02.  Coordinates outside China are returned unchanged."""
    if _out_of_china(lng, lat):
        return lng, lat
    dlng, dlat = _gcj_offsets(lng, lat)
    return lng + dlng, lat + dlat


def gcj02_to_wgs84(lng: float, lat: float) -> tuple[float, float]:
    """GCJ02 -> WGS84 (one-step approximate inverse)."""
    if _out_of_china(lng, lat):
        return lng, lat
    dlng, dlat = _gcj_offsets(lng, lat)
    return lng - dlng, lat - dlat


def gcj02_to_bd09(lng: float, lat: float) -> tuple[float, float]:
    """GCJ02 -> BD09 (Baidu)."""
    z = math.sqrt(lng * lng + lat * lat) + 0.00002 * math.sin(lat * _X_PI)
    theta = math.atan2(lat, lng) + 0.000003 * math.cos(lng * _X_PI)
    return z * math.cos(theta) + 0.0065, z * math.sin(theta) + 0.006


def bd09_to_gcj02(lng: float, lat: float) -> tuple[float, float]:
    """BD09 -> GCJ02."""
    x = lng - 0.0065
    y = lat - 0.006
    z = math.sqrt(x * x + y * y) - 0.00002 * math.sin(y * _X_PI)
    theta = math.atan2(y, x) - 0.000003 * math.cos(x * _X_PI)
    return z * math.cos(theta), z * math.sin(theta)
