"""Point geometry."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope


@dataclass(frozen=True, slots=True)
class Point(Geometry):
    """A single ``(lng, lat)`` coordinate, optionally with a timestamp.

    ``time`` is an epoch-seconds float used by spatio-temporal plugin types;
    plain spatial points leave it as ``None``.
    """

    lng: float
    lat: float
    time: float | None = None

    wkt_name = "POINT"

    def __post_init__(self) -> None:
        if not (math.isfinite(self.lng) and math.isfinite(self.lat)):
            raise GeometryError(f"non-finite point ({self.lng}, {self.lat})")
        if not (-180.0 <= self.lng <= 180.0 and -90.0 <= self.lat <= 90.0):
            raise GeometryError(
                f"point out of WGS84 bounds: ({self.lng}, {self.lat})")

    @property
    def envelope(self) -> Envelope:
        return Envelope.of_point(self.lng, self.lat)

    def is_point(self) -> bool:
        return True

    def intersects_envelope(self, env: Envelope) -> bool:
        return env.contains_point(self.lng, self.lat)

    def coords(self) -> tuple[float, float]:
        return (self.lng, self.lat)
