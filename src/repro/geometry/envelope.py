"""Axis-aligned minimum bounding rectangles (MBRs)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError


@dataclass(frozen=True, slots=True)
class Envelope:
    """An axis-aligned rectangle ``[min_lng, max_lng] x [min_lat, max_lat]``.

    This is the ``st_makeMBR`` object of JustQL and the building block of
    every spatial predicate in the engine.
    """

    min_lng: float
    min_lat: float
    max_lng: float
    max_lat: float

    def __post_init__(self) -> None:
        if self.min_lng > self.max_lng or self.min_lat > self.max_lat:
            raise GeometryError(
                f"degenerate envelope: ({self.min_lng}, {self.min_lat}, "
                f"{self.max_lng}, {self.max_lat})")

    # -- factories ---------------------------------------------------------
    @classmethod
    def of_point(cls, lng: float, lat: float) -> "Envelope":
        """Zero-area envelope around a single coordinate."""
        return cls(lng, lat, lng, lat)

    @classmethod
    def world(cls) -> "Envelope":
        """The whole WGS84 coordinate space."""
        return cls(-180.0, -90.0, 180.0, 90.0)

    @classmethod
    def union_all(cls, envelopes: "list[Envelope]") -> "Envelope":
        """Smallest envelope covering every envelope in ``envelopes``."""
        if not envelopes:
            raise GeometryError("union_all of zero envelopes")
        return cls(
            min(e.min_lng for e in envelopes),
            min(e.min_lat for e in envelopes),
            max(e.max_lng for e in envelopes),
            max(e.max_lat for e in envelopes),
        )

    # -- predicates --------------------------------------------------------
    def contains_point(self, lng: float, lat: float) -> bool:
        """True when ``(lng, lat)`` lies inside or on the boundary."""
        return (self.min_lng <= lng <= self.max_lng
                and self.min_lat <= lat <= self.max_lat)

    def contains(self, other: "Envelope") -> bool:
        """True when ``other`` lies entirely inside this envelope."""
        return (self.min_lng <= other.min_lng
                and self.max_lng >= other.max_lng
                and self.min_lat <= other.min_lat
                and self.max_lat >= other.max_lat)

    def intersects(self, other: "Envelope") -> bool:
        """True when the two rectangles share at least one point."""
        return not (other.min_lng > self.max_lng
                    or other.max_lng < self.min_lng
                    or other.min_lat > self.max_lat
                    or other.max_lat < self.min_lat)

    def intersection(self, other: "Envelope") -> "Envelope | None":
        """The shared rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Envelope(
            max(self.min_lng, other.min_lng),
            max(self.min_lat, other.min_lat),
            min(self.max_lng, other.max_lng),
            min(self.max_lat, other.max_lat),
        )

    def expand(self, other: "Envelope") -> "Envelope":
        """Smallest envelope covering both this and ``other``."""
        return Envelope(
            min(self.min_lng, other.min_lng),
            min(self.min_lat, other.min_lat),
            max(self.max_lng, other.max_lng),
            max(self.max_lat, other.max_lat),
        )

    def buffer(self, delta_lng: float, delta_lat: float) -> "Envelope":
        """Envelope grown by the given margins on every side."""
        return Envelope(
            self.min_lng - delta_lng,
            self.min_lat - delta_lat,
            self.max_lng + delta_lng,
            self.max_lat + delta_lat,
        )

    # -- measures ----------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_lng - self.min_lng

    @property
    def height(self) -> float:
        return self.max_lat - self.min_lat

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.min_lng + self.max_lng) / 2.0,
                (self.min_lat + self.max_lat) / 2.0)

    def min_distance_to_point(self, lng: float, lat: float) -> float:
        """Minimum planar (degree-space) distance from a point to this box.

        This is the ``dA(q, a)`` of the paper's k-NN Algorithm 1: zero when
        the point lies inside the rectangle.
        """
        import math
        dx = max(self.min_lng - lng, 0.0, lng - self.max_lng)
        dy = max(self.min_lat - lat, 0.0, lat - self.max_lat)
        # math.hypot keeps subnormal distances non-zero where squaring
        # would underflow to 0.0.
        return math.hypot(dx, dy)

    def quadrants(self) -> "tuple[Envelope, Envelope, Envelope, Envelope]":
        """Split into four equal children (SW, SE, NW, NE order)."""
        cx, cy = self.center
        return (
            Envelope(self.min_lng, self.min_lat, cx, cy),
            Envelope(cx, self.min_lat, self.max_lng, cy),
            Envelope(self.min_lng, cy, cx, self.max_lat),
            Envelope(cx, cy, self.max_lng, self.max_lat),
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.min_lng, self.min_lat, self.max_lng, self.max_lat)
