"""Distance functions.

The paper's k-NN query uses Euclidean distance "for simplicity"; trajectory
preprocessing (noise filtering, stay points) needs physical metres, for
which the haversine formula is used.
"""

from __future__ import annotations

import math

#: Approximate metres per degree of latitude (and of longitude at the
#: equator).  Used to convert kilometre-sized query windows to degrees.
METERS_PER_DEGREE = 111_320.0

EARTH_RADIUS_M = 6_371_008.8


def euclidean_distance(lng1: float, lat1: float,
                       lng2: float, lat2: float) -> float:
    """Planar distance in degree units between two coordinates."""
    dx = lng1 - lng2
    dy = lat1 - lat2
    return math.hypot(dx, dy)


def haversine_distance_m(lng1: float, lat1: float,
                         lng2: float, lat2: float) -> float:
    """Great-circle distance in metres between two WGS84 coordinates."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lng2 - lng1)
    a = (math.sin(dphi / 2.0) ** 2
         + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2)
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def point_segment_distance(px: float, py: float,
                           ax: float, ay: float,
                           bx: float, by: float) -> float:
    """Planar distance from point ``p`` to segment ``ab`` in degree units."""
    abx, aby = bx - ax, by - ay
    apx, apy = px - ax, py - ay
    denom = abx * abx + aby * aby
    if denom == 0.0:
        return math.hypot(apx, apy)
    t = max(0.0, min(1.0, (apx * abx + apy * aby) / denom))
    cx, cy = ax + t * abx, ay + t * aby
    return math.hypot(px - cx, py - cy)


def km_to_degrees(km: float) -> float:
    """Convert a kilometre span to an approximate degree span."""
    return km * 1000.0 / METERS_PER_DEGREE
