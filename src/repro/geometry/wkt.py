"""Minimal WKT (Well-Known Text) reader/writer.

Supports the geometry types the engine stores: POINT, LINESTRING, POLYGON
(single ring).  WKT is the on-disk text format for geometry fields in common
tables and for the CSV/GeoJSON loaders.
"""

from __future__ import annotations

import re

from repro.errors import GeometryError
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

_NUMBER = r"[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?"
_POINT_RE = re.compile(
    rf"^\s*POINT\s*\(\s*({_NUMBER})\s+({_NUMBER})\s*\)\s*$", re.IGNORECASE)
_LINESTRING_RE = re.compile(
    r"^\s*LINESTRING\s*\(([^)]*)\)\s*$", re.IGNORECASE)
_POLYGON_RE = re.compile(
    r"^\s*POLYGON\s*\(\s*\(([^)]*)\)\s*\)\s*$", re.IGNORECASE)


def _format_coord(value: float) -> str:
    text = f"{value:.8f}".rstrip("0").rstrip(".")
    return text if text not in ("", "-") else "0"


def _parse_coord_list(body: str) -> list[tuple[float, float]]:
    coords = []
    for chunk in body.split(","):
        parts = chunk.split()
        if len(parts) != 2:
            raise GeometryError(f"malformed WKT coordinate: {chunk!r}")
        coords.append((float(parts[0]), float(parts[1])))
    return coords


def to_wkt(geom: Geometry) -> str:
    """Serialize a geometry to WKT text."""
    if isinstance(geom, Point):
        return (f"POINT ({_format_coord(geom.lng)} "
                f"{_format_coord(geom.lat)})")
    if isinstance(geom, LineString):
        body = ", ".join(
            f"{_format_coord(x)} {_format_coord(y)}" for x, y in geom.coords)
        return f"LINESTRING ({body})"
    if isinstance(geom, Polygon):
        ring = list(geom.ring) + [geom.ring[0]]
        body = ", ".join(
            f"{_format_coord(x)} {_format_coord(y)}" for x, y in ring)
        return f"POLYGON (({body}))"
    raise GeometryError(f"cannot serialize geometry type {type(geom)!r}")


def from_wkt(text: str) -> Geometry:
    """Parse a WKT string into a geometry object."""
    match = _POINT_RE.match(text)
    if match:
        return Point(float(match.group(1)), float(match.group(2)))
    match = _LINESTRING_RE.match(text)
    if match:
        return LineString(_parse_coord_list(match.group(1)))
    match = _POLYGON_RE.match(text)
    if match:
        return Polygon(_parse_coord_list(match.group(1)))
    raise GeometryError(f"unparseable WKT: {text[:80]!r}")
