"""Abstract geometry interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.geometry.envelope import Envelope


class Geometry(ABC):
    """Base class for all geometry value objects.

    Subclasses are immutable and hashable.  All coordinates are
    ``(lng, lat)`` pairs in degrees unless stated otherwise.
    """

    __slots__ = ()

    #: Geometry type name as it appears in WKT, e.g. ``"POINT"``.
    wkt_name: str = "GEOMETRY"

    @property
    @abstractmethod
    def envelope(self) -> "Envelope":
        """Minimum bounding rectangle of this geometry."""

    @abstractmethod
    def is_point(self) -> bool:
        """True when the geometry is point-like (indexed with Z curves)."""

    def intersects_envelope(self, env: "Envelope") -> bool:
        """True when this geometry's envelope intersects ``env``.

        Subclasses override this with an exact test where cheap; the
        envelope approximation is always a safe upper bound.
        """
        return self.envelope.intersects(env)
