"""LineString geometry."""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope


def _segments_intersect(p1, p2, p3, p4) -> bool:
    """Exact test whether segments ``p1p2`` and ``p3p4`` intersect."""
    def orient(a, b, c):
        v = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
        if v > 0:
            return 1
        if v < 0:
            return -1
        return 0

    def on_segment(a, b, c):
        return (min(a[0], b[0]) <= c[0] <= max(a[0], b[0])
                and min(a[1], b[1]) <= c[1] <= max(a[1], b[1]))

    o1, o2 = orient(p1, p2, p3), orient(p1, p2, p4)
    o3, o4 = orient(p3, p4, p1), orient(p3, p4, p2)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(p1, p2, p3):
        return True
    if o2 == 0 and on_segment(p1, p2, p4):
        return True
    if o3 == 0 and on_segment(p3, p4, p1):
        return True
    if o4 == 0 and on_segment(p3, p4, p2):
        return True
    return False


class LineString(Geometry):
    """An ordered sequence of two or more ``(lng, lat)`` coordinates."""

    __slots__ = ("_coords", "_envelope")

    wkt_name = "LINESTRING"

    def __init__(self, coords):
        coords = tuple((float(lng), float(lat)) for lng, lat in coords)
        if len(coords) < 2:
            raise GeometryError("LineString requires at least two points")
        object.__setattr__(self, "_coords", coords)
        object.__setattr__(self, "_envelope", Envelope(
            min(c[0] for c in coords),
            min(c[1] for c in coords),
            max(c[0] for c in coords),
            max(c[1] for c in coords),
        ))

    @property
    def coords(self) -> tuple[tuple[float, float], ...]:
        return self._coords

    @property
    def envelope(self) -> Envelope:
        return self._envelope

    def is_point(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self._coords)

    def __eq__(self, other) -> bool:
        return isinstance(other, LineString) and self._coords == other._coords

    def __hash__(self) -> int:
        return hash(("LineString", self._coords))

    def __repr__(self) -> str:
        return f"LineString({len(self._coords)} points)"

    def length_degrees(self) -> float:
        """Total planar length of the line in degree units."""
        total = 0.0
        for (x1, y1), (x2, y2) in zip(self._coords, self._coords[1:]):
            total += ((x2 - x1) ** 2 + (y2 - y1) ** 2) ** 0.5
        return total

    def intersects_envelope(self, env: Envelope) -> bool:
        """Exact segment-vs-rectangle intersection test."""
        if not self._envelope.intersects(env):
            return False
        corners = [
            (env.min_lng, env.min_lat), (env.max_lng, env.min_lat),
            (env.max_lng, env.max_lat), (env.min_lng, env.max_lat),
        ]
        for p in self._coords:
            if env.contains_point(p[0], p[1]):
                return True
        edges = list(zip(corners, corners[1:] + corners[:1]))
        for a, b in zip(self._coords, self._coords[1:]):
            for c, d in edges:
                if _segments_intersect(a, b, c, d):
                    return True
        return False
