"""Polygon geometry (single exterior ring, no holes)."""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import _segments_intersect


class Polygon(Geometry):
    """A simple polygon described by its exterior ring.

    The ring closes itself: the last coordinate does not have to repeat the
    first.  Holes are not needed by any paper workload and are unsupported.
    """

    __slots__ = ("_ring", "_envelope")

    wkt_name = "POLYGON"

    def __init__(self, ring):
        ring = tuple((float(lng), float(lat)) for lng, lat in ring)
        if len(ring) >= 2 and ring[0] == ring[-1]:
            ring = ring[:-1]
        if len(ring) < 3:
            raise GeometryError("Polygon requires at least three points")
        object.__setattr__(self, "_ring", ring)
        object.__setattr__(self, "_envelope", Envelope(
            min(c[0] for c in ring),
            min(c[1] for c in ring),
            max(c[0] for c in ring),
            max(c[1] for c in ring),
        ))

    @property
    def ring(self) -> tuple[tuple[float, float], ...]:
        return self._ring

    @property
    def envelope(self) -> Envelope:
        return self._envelope

    def is_point(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, Polygon) and self._ring == other._ring

    def __hash__(self) -> int:
        return hash(("Polygon", self._ring))

    def __repr__(self) -> str:
        return f"Polygon({len(self._ring)} vertices)"

    def area_degrees(self) -> float:
        """Unsigned planar area (shoelace) in degree² units."""
        total = 0.0
        ring = self._ring
        for (x1, y1), (x2, y2) in zip(ring, ring[1:] + ring[:1]):
            total += x1 * y2 - x2 * y1
        return abs(total) / 2.0

    def contains_point(self, lng: float, lat: float) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        if not self._envelope.contains_point(lng, lat):
            return False
        inside = False
        ring = self._ring
        j = len(ring) - 1
        for i in range(len(ring)):
            xi, yi = ring[i]
            xj, yj = ring[j]
            if (xi, yi) == (lng, lat):
                return True
            if (yi > lat) != (yj > lat):
                x_cross = (xj - xi) * (lat - yi) / (yj - yi) + xi
                if lng < x_cross:
                    inside = not inside
                elif lng == x_cross:
                    return True
            j = i
        return inside

    def intersects_envelope(self, env: Envelope) -> bool:
        """Exact polygon-vs-rectangle intersection test."""
        if not self._envelope.intersects(env):
            return False
        # Any polygon vertex inside the rectangle?
        for lng, lat in self._ring:
            if env.contains_point(lng, lat):
                return True
        # Any rectangle corner inside the polygon?
        corners = [
            (env.min_lng, env.min_lat), (env.max_lng, env.min_lat),
            (env.max_lng, env.max_lat), (env.min_lng, env.max_lat),
        ]
        for lng, lat in corners:
            if self.contains_point(lng, lat):
                return True
        # Any edge crossings?
        edges = list(zip(corners, corners[1:] + corners[:1]))
        ring_edges = list(zip(self._ring, self._ring[1:] + self._ring[:1]))
        for a, b in ring_edges:
            for c, d in edges:
                if _segments_intersect(a, b, c, d):
                    return True
        return False
