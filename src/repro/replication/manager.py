"""The replication manager: WAL shipping, quorum acks, fast failover.

One :class:`ReplicationManager` per store keeps ``factor - 1`` follower
replicas per region on distinct servers (anti-affinity) and drives four
mechanisms:

* **WAL shipping** — every primary WAL append is shipped, in order, to
  the region's followers, which append it to *their* server's WAL and
  apply it to their private memstore.  Under the ``SYNC`` policy the
  write is only acknowledged once a quorum (primary included) holds it
  durably; ``PERIODIC``/``ASYNC`` enqueue and ship lazily, exposing the
  backlog as per-replica lag.
* **Fast failover** — when a primary's server dies, the most-caught-up
  live follower is *promoted*: its memstore and its local WAL records
  simply become the region's, and only the records it had not applied
  yet are replayed.  The unavailability window shrinks from a full WAL
  replay to a region reopen plus that catch-up.
* **Anti-entropy** — a background chore (:meth:`maybe_tick`, driven by
  the simulated clock like the balancer's) drains lazy backlogs, heals
  torn or freshly-placed followers by re-copying the primary's
  unflushed tail, and tops follower sets back up to the factor.
* **Replica reads** — reads may opt into ``FOLLOWER`` (timeline
  consistency) or ``HEDGED`` serving, so a slow or gray-failing primary
  no longer owns the read tail; see :meth:`route_read`.

In-order shipping means every follower holds a *prefix* of the
primary's edit stream.  An acknowledged SYNC write is therefore in the
applied prefix of at least ``quorum - 1`` followers, and the follower
with the highest ``applied_seqno`` holds a superset of every
acknowledged edit — which is exactly why promoting the most-caught-up
follower can never lose an acknowledged write, even when the crashed
primary's own log tail is torn.
"""

from __future__ import annotations

from repro.errors import RegionUnavailableError, ReplicationQuorumError
from repro.kvstore.recovery import RecoveryReport, recover_server
from repro.kvstore.wal import SyncPolicy, WALRecord
from repro.observability.events import (
    ReplicaLagEvent,
    ReplicaPromotedEvent,
    ReplicaRebuildEvent,
)
from repro.replication.replica import (
    LIVE,
    REBUILDING,
    TORN,
    FlushMarker,
    FollowerReplica,
    ReadMode,
    read_mode_of,
)

#: How often (simulated ms) the anti-entropy chore runs.
DEFAULT_INTERVAL_MS = 200.0
#: Emit a ReplicaLagEvent once a follower's backlog crosses this.
DEFAULT_LAG_ALERT_RECORDS = 64
#: Hedged reads: wait this long (simulated ms) for the primary before
#: sending the hedge request to a follower.
DEFAULT_HEDGE_MS = 5.0


class ReplicationManager:
    """Keeps and uses follower replicas for every region of one store."""

    def __init__(self, store, factor: int = 3,
                 read_mode: ReadMode | str = ReadMode.PRIMARY,
                 interval_ms: float = DEFAULT_INTERVAL_MS,
                 lag_alert_records: int = DEFAULT_LAG_ALERT_RECORDS,
                 hedge_ms: float = DEFAULT_HEDGE_MS):
        if factor < 2:
            raise ValueError(f"replication factor must be >= 2, "
                             f"got {factor}")
        if store.wal_policy is None:
            raise ValueError("replication requires a write-ahead log "
                             "(pass wal_policy to the store)")
        self.store = store
        self.factor = factor
        #: Copies (primary included) that must hold a SYNC write durably
        #: before it is acknowledged.
        self.quorum = factor // 2 + 1
        self.read_mode = read_mode_of(read_mode)
        self.interval_ms = interval_ms
        self.lag_alert_records = lag_alert_records
        self.hedge_ms = hedge_ms
        self._followers: dict[int, list[FollowerReplica]] = {}
        self._last_tick_ms = float("-inf")
        # Lifetime counters (surfaced by snapshot() / sys.replication).
        self.ticks = 0
        self.records_shipped = 0
        self.bytes_shipped = 0
        self.markers_shipped = 0
        self.blocked_ships = 0
        self.dropped_ships = 0
        self.quorum_failures = 0
        self.promotions = 0
        self.rebuilds = 0
        self.follower_reads = 0
        self.hedged_reads = 0
        self.hedge_wins = 0
        self.lag_alerts = 0

    # -- metrics -------------------------------------------------------------
    @property
    def metrics(self):
        """The shared registry (via the store's IOStats), or ``None``."""
        return getattr(self.store.stats, "metrics", None)

    def _inc(self, name: str, amount: int | float = 1) -> None:
        registry = self.metrics
        if registry is not None and amount:
            registry.counter(name).inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        registry = self.metrics
        if registry is not None:
            registry.gauge(name).set(value)

    # -- placement -----------------------------------------------------------
    def _pick_servers(self, count: int, exclude: set[int],
                      start: int) -> list[int]:
        """Up to ``count`` distinct placeable servers, ring order from
        ``start`` (spreads follower sets instead of piling on server 0)."""
        store = self.store
        picked: list[int] = []
        for i in range(store.num_servers):
            server = (start + i) % store.num_servers
            if server in exclude or server in store.dead_servers \
                    or server in store.recovering_servers:
                continue
            picked.append(server)
            exclude.add(server)
            if len(picked) >= count:
                break
        return picked

    def attach_region(self, region) -> None:
        """Give a new region its follower set (anti-affine placement).

        A region is empty at creation (splits and merges persist every
        parent entry into shared SSTables first), so fresh followers are
        immediately ``LIVE`` and caught up at ``applied_seqno == 0``.
        """
        followers = [FollowerReplica(server)
                     for server in self._pick_servers(
                         self.factor - 1, {region.server},
                         start=region.server + 1)]
        self._followers[region.region_id] = followers
        region.replication = self

    def detach_region(self, region) -> None:
        """The region is gone (split parent, merge parent, table drop)."""
        for follower in self._followers.pop(region.region_id, ()):
            self._release_follower(region, follower)
        region.replication = None

    def followers(self, region_id: int) -> list[FollowerReplica]:
        return self._followers.get(region_id, [])

    def follower_servers(self, region_id: int) -> list[int]:
        return [f.server for f in self._followers.get(region_id, ())]

    def _release_follower(self, region, follower: FollowerReplica) -> None:
        """Drop a follower's footprint on its current server: retire its
        shipped WAL records and evict its cached blocks (the server no
        longer serves this region, so the blocks are dead weight —
        exactly like the source side of a ``move_region``)."""
        wal = self.store.wal_for(follower.server)
        if wal is not None and follower.local_max_seqno:
            wal.checkpoint(region.region_id, follower.local_max_seqno)
        region.evict_cached_blocks(server=follower.server)

    # -- write path: shipping and quorum -------------------------------------
    def _ship_verdict(self, server: int) -> str:
        injector = self.store.fault_injector
        if injector is None:
            return "ok"
        return injector.on_ship(server)

    def _apply_record(self, region, follower: FollowerReplica,
                      record: WALRecord) -> None:
        """Land one shipped record on a follower: its WAL, then memstore."""
        wal = self.store.wal_for(follower.server)
        if wal is not None:
            follower.local_max_seqno = wal.append(
                record.table, record.region_id, record.key, record.value)
        follower.memstore.put(record.key, record.value)
        if record.seqno:
            follower.applied_seqno = max(follower.applied_seqno,
                                         record.seqno)
        follower.shipped_records += 1
        self.records_shipped += 1
        self.bytes_shipped += record.nbytes
        self._inc("replication.records_shipped")
        self._inc("replication.bytes_shipped", record.nbytes)

    def _apply_marker(self, region, follower: FollowerReplica,
                      marker: FlushMarker) -> None:
        """The primary flushed: everything the follower has applied is
        now in shared SSTables, so its memstore copy and its local WAL
        records are obsolete."""
        follower.memstore.clear()
        wal = self.store.wal_for(follower.server)
        if wal is not None and follower.local_max_seqno:
            wal.checkpoint(region.region_id, follower.local_max_seqno)
        follower.applied_seqno = max(follower.applied_seqno,
                                     marker.seqno)
        self.markers_shipped += 1

    def _drain(self, region, follower: FollowerReplica) -> bool:
        """Ship the follower's queued backlog in order.

        Returns True when the backlog fully landed and the follower is
        still ``LIVE``.  A blocked link (partition) leaves the backlog
        queued for a later attempt; a record *dropped* mid-flight after
        the sender moved on leaves a gap in the stream, so the follower
        is marked ``TORN`` — its applied prefix stays valid (and
        promotable) but it must be rebuilt before applying more.
        """
        if follower.state != LIVE:
            return False
        while follower.pending:
            item = follower.pending[0]
            if isinstance(item, FlushMarker):
                follower.pending.popleft()
                self._apply_marker(region, follower, item)
                continue
            verdict = self._ship_verdict(follower.server)
            if verdict == "blocked":
                self.blocked_ships += 1
                self._inc("replication.blocked_ships")
                return False
            follower.pending.popleft()
            if verdict == "drop":
                self.dropped_ships += 1
                self._inc("replication.dropped_ships")
                follower.dropped_records += 1
                follower.state = TORN
                return False
            self._apply_record(region, follower, item)
        return True

    def _ship_sync(self, region, follower: FollowerReplica,
                   record: WALRecord) -> bool:
        """Ship one record synchronously for a quorum ack.

        In-order shipping first drains anything already queued; if the
        link is down or drops the record, no ack — the record joins the
        queue so the stream keeps its order when the link heals.
        """
        if not self._drain(region, follower):
            follower.pending.append(record)
            return False
        verdict = self._ship_verdict(follower.server)
        if verdict != "ok":
            if verdict == "blocked":
                self.blocked_ships += 1
                self._inc("replication.blocked_ships")
            else:
                # Lost in flight but not acknowledged: the sender still
                # holds it, so this is a retry, not a torn stream.
                self.dropped_ships += 1
                self._inc("replication.dropped_ships")
            follower.pending.append(record)
            return False
        self._apply_record(region, follower, record)
        return True

    def on_append(self, region, table: str, key: bytes,
                  value: bytes | None, seqno: int | None) -> None:
        """One primary WAL append happened; replicate it.

        Under ``SYNC`` the write needs ``quorum`` durable copies
        (primary included) before it is acknowledged — too few and this
        raises :class:`~repro.errors.ReplicationQuorumError` *before*
        the primary memstore applies the value.  Other policies enqueue
        to every follower and ship lazily (at flushes and chore ticks).
        """
        followers = self._followers.get(region.region_id)
        if not followers:
            return
        record = WALRecord(seqno if seqno is not None else 0, table,
                           region.region_id, key, value)
        sync = self.store.wal_policy is SyncPolicy.SYNC
        acks = 1  # the primary's own synced append
        for follower in followers:
            if follower.state != LIVE:
                continue  # torn/rebuilding replicas heal via the chore
            if sync and acks < self.quorum:
                if self._ship_sync(region, follower, record):
                    acks += 1
            else:
                follower.pending.append(record)
        if sync and acks < self.quorum:
            self.quorum_failures += 1
            self._inc("replication.quorum_failures")
            raise ReplicationQuorumError(table, region.region_id,
                                         region.server, acks,
                                         self.quorum)
        if sync:
            # Modeled quorum-ack latency: sequential synchronous ships,
            # one follower WAL fsync each (the primary's own fsync is
            # charged by the WAL itself).
            registry = self.metrics
            if registry is not None:
                fsync_ms = getattr(self.store.cost_model, "fsync_ms",
                                   4.0) if self.store.cost_model \
                    is not None else 4.0
                registry.histogram("replication.quorum_ack_ms").observe(
                    (acks - 1) * fsync_ms)

    def on_flush(self, region, seqno: int) -> None:
        """The primary flushed its memstore; ship the marker in-stream."""
        followers = self._followers.get(region.region_id)
        if not followers:
            return
        marker = FlushMarker(seqno)
        for follower in followers:
            if follower.state != LIVE:
                continue
            follower.pending.append(marker)
            self._drain(region, follower)

    # -- anti-entropy chore --------------------------------------------------
    def maybe_tick(self):
        """Run one anti-entropy pass if the interval elapsed."""
        now_ms = self.store.events.now_ms
        if now_ms - self._last_tick_ms < self.interval_ms:
            return None
        return self.tick()

    def tick(self) -> dict:
        """One anti-entropy pass over every region's follower set."""
        store = self.store
        self._last_tick_ms = store.events.now_ms
        self.ticks += 1
        healed = drained = 0
        max_lag = 0
        lagging = 0
        for table in store.tables():
            for region in table.regions():
                followers = self._followers.get(region.region_id)
                if followers is None:
                    continue
                for follower in list(followers):
                    if follower.server in store.dead_servers:
                        # Its server died without a failover touching
                        # this region (it only hosted followers here).
                        followers.remove(follower)
                self._top_up(region, followers)
                for follower in followers:
                    if follower.state in (TORN, REBUILDING):
                        if self._rebuild(table.name, region, follower):
                            healed += 1
                    elif self._drain(region, follower):
                        drained += 1
                    max_lag = max(max_lag, follower.lag_records)
                    if follower.lag_records > self.lag_alert_records:
                        lagging += 1
                        self.lag_alerts += 1
                        self._inc("replication.lag_alerts")
                        store.events.emit(ReplicaLagEvent(
                            table=table.name,
                            region_id=region.region_id,
                            server=follower.server,
                            lag_records=follower.lag_records))
        self._gauge("replication.max_lag_records", max_lag)
        self._gauge("replication.lagging_followers", lagging)
        return {"healed": healed, "drained": drained}

    def _top_up(self, region, followers: list[FollowerReplica]) -> None:
        """Add fresh (rebuilding) followers up to ``factor - 1``."""
        want = self.factor - 1 - len(followers)
        if want <= 0:
            return
        exclude = {region.server} | {f.server for f in followers}
        for server in self._pick_servers(want, exclude,
                                         start=region.server + 1):
            followers.append(FollowerReplica(server, state=REBUILDING))

    def _rebuild(self, table_name: str, region,
                 follower: FollowerReplica) -> bool:
        """Heal one torn/fresh follower: re-copy the primary's unflushed
        tail over the ship link.  Everything at or below the primary's
        ``max_seqno`` lives in its memstore or in shared SSTables, so a
        fresh memstore copy plus ``applied_seqno = max_seqno`` is a
        fully caught-up replica.  A still-bad link aborts the attempt;
        the chore retries next tick.
        """
        store = self.store
        follower.reset()
        wal = store.wal_for(follower.server)
        copied = 0
        for key, value in region.memstore.items_sorted():
            verdict = self._ship_verdict(follower.server)
            if verdict != "ok":
                if verdict == "blocked":
                    self.blocked_ships += 1
                else:
                    self.dropped_ships += 1
                # Drop the partial copy; its WAL records are retired so
                # the next attempt starts clean.
                follower.reset()
                if wal is not None:
                    wal.checkpoint(region.region_id, wal.appended_seqno)
                return False
            if wal is not None:
                follower.local_max_seqno = wal.append(
                    table_name, region.region_id, key, value)
            follower.memstore.put(key, value)
            copied += 1
        follower.applied_seqno = region.max_seqno
        follower.state = LIVE
        self.rebuilds += 1
        self._inc("replication.rebuilds")
        store.events.emit(ReplicaRebuildEvent(
            table=table_name, region_id=region.region_id,
            server=follower.server, records_copied=copied))
        return True

    def _restore_quorum(self, table_name: str, region,
                        followers: list[FollowerReplica]) -> None:
        """After a failover, writes must be able to ack again: under
        ``SYNC``, rebuild followers synchronously until ``quorum - 1``
        are live (the rest heal lazily via the chore)."""
        if self.store.wal_policy is not SyncPolicy.SYNC:
            return
        need = self.quorum - 1
        live = sum(1 for f in followers if f.state == LIVE)
        for follower in followers:
            if live >= need:
                break
            if follower.state != LIVE:
                if self._rebuild(table_name, region, follower):
                    live += 1

    # -- failover: promote instead of replay ---------------------------------
    def failover(self, server: int, records: list[WALRecord],
                 discarded: int) -> RecoveryReport:
        """Recover every region the dead ``server`` touched.

        Regions whose *primary* lived there are promoted onto their
        most-caught-up live follower — the promotion inherits the
        follower's memstore and local WAL records wholesale, then
        replays only the surviving primary-log records the follower had
        not applied (its lag).  Regions with no promotable follower fall
        back to the full WAL replay.  Follower replicas the dead server
        hosted for *other* regions are dropped and re-placed.
        """
        store = self.store
        model = store.cost_model
        if model is None:
            from repro.cluster.simclock import CostModel
            model = CostModel()
        report = RecoveryReport(server=server,
                                discarded_records=discarded)
        promote: list[tuple] = []   # (table, region, eligible followers)
        replay_ids: set[int] = set()
        follower_losses: list[tuple] = []
        for table in store.tables():
            for region in table.regions():
                followers = self._followers.get(region.region_id)
                if region.server == server:
                    eligible = [
                        f for f in (followers or ())
                        if f.state in (LIVE, TORN)
                        and f.server not in store.dead_servers
                        and f.server not in store.recovering_servers]
                    if eligible:
                        promote.append((table, region, eligible))
                    else:
                        replay_ids.add(region.region_id)
                elif followers and any(f.server == server
                                       for f in followers):
                    follower_losses.append((table, region))

        before = store.stats.snapshot()
        for table, region, eligible in promote:
            # The max applied_seqno is the most-caught-up replica; every
            # acknowledged edit is in its prefix.  Ties break on the
            # lower server id for determinism.
            best = max(eligible,
                       key=lambda f: (f.applied_seqno, -f.server))
            followers = self._followers[region.region_id]
            followers.remove(best)
            for follower in list(followers):
                if follower.server in store.dead_servers:
                    followers.remove(follower)
                    continue
                # Their stream position refers to the dead primary's
                # WAL; re-sync them against the promoted one.
                self._release_follower(region, follower)
                follower.reset()
            from_server = region.server
            # Promotion proper: the follower's private memstore and its
            # local WAL records *become* the region's.  Its block cache
            # stays warm — shared-SSTable blocks it cached while serving
            # follower reads are still valid.
            region.memstore = best.memstore
            region.server = best.server
            region.wal = store.wal_for(best.server)
            # Seqnos are per server: the promoted watermark is the
            # follower's own WAL position (the PR 1 failover lesson).
            region.max_seqno = best.local_max_seqno
            catchup = 0
            for record in records:
                if record.region_id != region.region_id \
                        or record.seqno <= best.applied_seqno:
                    continue
                seqno = None
                if region.wal is not None:
                    seqno = region.wal.append(record.table,
                                              record.region_id,
                                              record.key, record.value)
                region.put(record.key, record.value, seqno)
                catchup += 1
                report.replayed_records += 1
                report.replayed_bytes += record.nbytes
            report.catchup_records += catchup
            report.reassignments[region.region_id] = best.server
            self.promotions += 1
            self._inc("replication.promotions")
            store.events.emit(ReplicaPromotedEvent(
                table=table.name, region_id=region.region_id,
                server=best.server, from_server=from_server,
                applied_seqno=best.applied_seqno,
                catchup_records=catchup))

        delta = store.stats.snapshot().delta(before)
        promoted = len(promote)
        report.promoted_regions = promoted
        report.regions_reassigned += promoted
        scale = model.effective_record_scale
        report.recovery_ms += (
            promoted * model.region_reopen_ms
            + model.disk_read_ms(sum(r.nbytes for r in records)
                                 if promoted else 0)
            + model.disk_write_ms(delta.wal_bytes_written)
            + delta.wal_syncs * model.fsync_ms
            + model.disk_write_ms(delta.disk_bytes_written)
            + report.catchup_records * model.kv_put_us * scale / 1000.0)
        # Replica sets are restored *after* the promoted regions are
        # back online: in HBase the region serves as soon as it is
        # reassigned, and re-replication is background work — only the
        # synchronous quorum restoration below keeps SYNC writes
        # ackable immediately, and it is not part of the unavailability
        # window either.
        for table, region, _eligible in promote:
            followers = self._followers[region.region_id]
            self._top_up(region, followers)
            self._restore_quorum(table.name, region, followers)
        for table, region in follower_losses:
            followers = self._followers[region.region_id]
            for follower in list(followers):
                if follower.server == server:
                    followers.remove(follower)
            self._top_up(region, followers)
            self._restore_quorum(table.name, region, followers)
        if replay_ids:
            # No promotable follower (e.g. every replica was rebuilding
            # or its server is gone too): the PR 1 replay path.
            sub = recover_server(
                store, server,
                [r for r in records if r.region_id in replay_ids],
                0, model=model, only_regions=replay_ids,
                emit_event=False)
            report.regions_reassigned += sub.regions_reassigned
            report.replayed_records += sub.replayed_records
            report.replayed_bytes += sub.replayed_bytes
            report.recovery_ms += sub.recovery_ms
            report.reassignments.update(sub.reassignments)
            # Replay placement ignores replicas; restore anti-affinity
            # where the new primary landed on one of its followers.
            for region_id, dest in sub.reassignments.items():
                followers = self._followers.get(region_id, [])
                for follower in list(followers):
                    if follower.server == dest:
                        followers.remove(follower)
        from repro.observability.events import FailoverEvent
        store.events.emit(FailoverEvent(
            server=server,
            regions_reassigned=report.regions_reassigned,
            replayed_records=report.replayed_records,
            discarded_records=report.discarded_records,
            recovery_ms=round(report.recovery_ms, 3)))
        return report

    # -- placement hooks (balancer integration) ------------------------------
    def on_primary_moved(self, region, source: int, dest: int) -> None:
        """The balancer moved a region's primary ``source`` -> ``dest``.

        ``move_region`` flushed the memstore first, so every entry is in
        shared SSTables and the new primary's stream restarts at seqno
        0 on ``dest``'s WAL.  Followers reset to that empty stream —
        which makes them instantly caught up — and a follower that was
        living on ``dest`` swaps to the vacated ``source`` to keep the
        copies on distinct servers.
        """
        followers = self._followers.get(region.region_id)
        if not followers:
            return
        for follower in followers:
            self._release_follower(region, follower)
            follower.reset(server=source if follower.server == dest
                           else None)
            # Empty memstore at position 0 == the just-moved primary.
            follower.state = LIVE

    # -- read routing ---------------------------------------------------------
    def effective_mode(self, ctx) -> ReadMode:
        override = getattr(ctx, "read_mode", None) if ctx is not None \
            else None
        if override is not None:
            return read_mode_of(override)
        return self.read_mode

    def _probe(self, server: int, op: str) -> tuple[float, bool]:
        injector = self.store.fault_injector
        if injector is None:
            return 0.0, False
        return injector.evaluate(server, op)

    def _read_candidates(self, region) -> list[FollowerReplica]:
        store = self.store
        return [f for f in self._followers.get(region.region_id, ())
                if f.state == LIVE
                and f.server not in store.dead_servers
                and f.server not in store.recovering_servers]

    def route_read(self, table: str, region, op: str,
                   ctx=None) -> FollowerReplica | None:
        """Decide which replica serves one read.

        Returns ``None`` for the primary, or the chosen follower.
        ``PRIMARY`` mode is byte-for-byte the unreplicated behaviour.
        In the other modes an offline primary (mid-failover or mid-move)
        degrades to follower serving instead of raising, and ``HEDGED``
        arbitrates primary vs follower latency under gray faults,
        charging only the winning path to the request's deadline.
        """
        store = self.store
        mode = self.effective_mode(ctx)
        candidates = self._read_candidates(region) \
            if mode is not ReadMode.PRIMARY else []
        if not candidates:
            store.check_available(table, region, op, ctx)
            return None
        best = max(candidates, key=lambda f: (f.applied_seqno,
                                              -f.server))
        primary_offline = (region.server in store.recovering_servers
                           or store.events.now_ms
                           < region.unavailable_until_ms)
        if primary_offline:
            # The unreplicated path would raise RegionUnavailableError;
            # a live follower keeps the region readable instead.
            follower_ms, follower_err = self._probe(best.server, op)
            if follower_err:
                raise RegionUnavailableError(
                    table, region.region_id, best.server,
                    reason="primary offline and follower replica "
                           "failing intermittently")
            if ctx is not None and follower_ms:
                ctx.charge(follower_ms, label="gray_latency")
            self.follower_reads += 1
            self._inc("replication.follower_reads")
            best.reads += 1
            return best
        if mode is ReadMode.FOLLOWER:
            follower_ms, follower_err = self._probe(best.server, op)
            if follower_err:
                # A flapping follower is not worth an error when the
                # primary is healthy: fall back.
                store.check_available(table, region, op, ctx)
                return None
            if ctx is not None and follower_ms:
                ctx.charge(follower_ms, label="gray_latency")
            self.follower_reads += 1
            self._inc("replication.follower_reads")
            best.reads += 1
            return best
        # HEDGED: probe the primary; past the hedge delay, race a
        # follower and charge only the path that would answer first.
        primary_ms, primary_err = self._probe(region.server, op)
        hedge_ms = self.hedge_ms
        if ctx is not None:
            hedge_ms = ctx.hedge_budget_ms(self.hedge_ms)
        if not primary_err and primary_ms <= hedge_ms:
            if ctx is not None and primary_ms:
                ctx.charge(primary_ms, label="gray_latency")
            return None
        self.hedged_reads += 1
        self._inc("replication.hedged_reads")
        follower_ms, follower_err = self._probe(best.server, op)
        if follower_err and primary_err:
            raise RegionUnavailableError(
                table, region.region_id, region.server,
                reason="primary and follower replicas both failing "
                       "intermittently")
        if follower_err:
            if ctx is not None and primary_ms:
                ctx.charge(primary_ms, label="gray_latency")
            return None
        hedged_total = hedge_ms + follower_ms
        if primary_err or hedged_total < primary_ms:
            self.hedge_wins += 1
            self._inc("replication.hedge_wins")
            if ctx is not None and hedged_total:
                ctx.charge(hedged_total, label="hedged_read")
            best.reads += 1
            return best
        if ctx is not None and primary_ms:
            ctx.charge(primary_ms, label="gray_latency")
        return None

    # -- introspection ---------------------------------------------------------
    def rows(self) -> list[dict]:
        """``sys.replication`` rows: one per replica, primaries included."""
        out: list[dict] = []
        for table in self.store.tables():
            for region in table.regions():
                followers = self._followers.get(region.region_id)
                if followers is None:
                    continue
                out.append({
                    "table": table.name,
                    "region_id": region.region_id,
                    "server": region.server, "role": "primary",
                    "state": LIVE,
                    "applied_seqno": region.max_seqno,
                    "lag_records": 0, "reads": region.reads,
                    "shipped_records": 0})
                for follower in followers:
                    out.append({
                        "table": table.name,
                        "region_id": region.region_id,
                        "server": follower.server, "role": "follower",
                        "state": follower.state,
                        "applied_seqno": follower.applied_seqno,
                        "lag_records": follower.lag_records,
                        "reads": follower.reads,
                        "shipped_records": follower.shipped_records})
        return out

    def snapshot(self) -> dict:
        """Summary counters for the ``/replication`` route and demos."""
        states = {LIVE: 0, TORN: 0, REBUILDING: 0}
        lag = 0
        replicas = 0
        for followers in self._followers.values():
            for follower in followers:
                replicas += 1
                states[follower.state] += 1
                lag += follower.lag_records
        return {
            "factor": self.factor, "quorum": self.quorum,
            "read_mode": self.read_mode.value,
            "regions": len(self._followers),
            "follower_replicas": replicas,
            "followers_live": states[LIVE],
            "followers_torn": states[TORN],
            "followers_rebuilding": states[REBUILDING],
            "lag_records": lag,
            "records_shipped": self.records_shipped,
            "bytes_shipped": self.bytes_shipped,
            "markers_shipped": self.markers_shipped,
            "blocked_ships": self.blocked_ships,
            "dropped_ships": self.dropped_ships,
            "quorum_failures": self.quorum_failures,
            "promotions": self.promotions,
            "rebuilds": self.rebuilds,
            "follower_reads": self.follower_reads,
            "hedged_reads": self.hedged_reads,
            "hedge_wins": self.hedge_wins,
            "lag_alerts": self.lag_alerts,
            "interval_ms": self.interval_ms,
        }
