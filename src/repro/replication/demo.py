"""``python -m repro replicate`` — the region-replication demonstration.

Three acts:

1. **Crash failover, replication off vs on.**  The same seeded SYNC
   ingest runs against an unreplicated store and a replication-factor-3
   store; a region server is killed mid-stream through the fault
   harness.  The unreplicated store replays the dead server's whole WAL
   to bring its regions back; the replicated store *promotes* each
   region's most-caught-up follower and replays only the promotion
   catch-up — orders of magnitude less unavailability, and still zero
   acknowledged writes lost.

2. **Hedged reads.**  The same point-read workload against a
   gray-slow primary, primary-only vs hedged serving: the hedge races
   a healthy follower past the hedge delay and cuts the read p95.

3. **SQL surface.**  An engine with ``replication_factor=3`` and the
   introspection an operator would use: ``sys.replication``, the
   replication events in ``sys.events``, and the ``/replication``
   snapshot counters.

Everything is seeded; two runs print identical tables.
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass

from repro.cli import format_result
from repro.faults import FaultInjector, FaultPlan, KillServer, SlowServer
from repro.kvstore import KVStore, SyncPolicy
from repro.kvstore.recovery import RecoveryReport
from repro.resilience import Deadline, RequestContext
from repro.service.client import JustClient
from repro.service.server import JustServer

DEMO_USER = "ops"


@dataclass
class FailoverResult:
    """Outcome of one ingest-crash-failover run."""

    factor: int
    acked_writes: int
    lost_acked_writes: int
    recovery: RecoveryReport
    post_crash_writes: int


def run_failover_experiment(factor: int,
                            num_keys: int = 2000,
                            kill_after: int = 1500,
                            victim: int = 0,
                            num_servers: int = 5,
                            value_bytes: int = 64,
                            seed: int = 0) -> FailoverResult:
    """Ingest under SYNC, crash a server mid-stream, measure recovery.

    Every ``put`` that returns normally counts as acknowledged; after
    failover each acknowledged key is read back and counted lost if its
    value is gone.  With ``factor > 1`` the crash recovers by follower
    promotion; without, by full WAL replay.
    """
    kwargs = {}
    if factor > 1:
        kwargs["replication_factor"] = factor
    store = KVStore(num_servers=num_servers,
                    wal_policy=SyncPolicy.SYNC,
                    flush_bytes=16 * 1024, split_bytes=64 * 1024,
                    block_bytes=1024, **kwargs)
    plan = FaultPlan([KillServer(victim, after_ops=kill_after)],
                     seed=seed)
    FaultInjector(plan).attach(store)
    table = store.create_table("ingest", presplit=num_servers)

    rng = random.Random(seed)
    acked: list[tuple[bytes, bytes]] = []
    for _ in range(num_keys):
        # Random raw bytes spread uniformly over the presplit
        # boundaries, so every region (and so every server) takes load.
        key = rng.getrandbits(64).to_bytes(8, "big")
        value = rng.randbytes(value_bytes)
        table.put(key, value)
        acked.append((key, value))

    report = store.last_recovery
    assert report is not None, "the injected crash never fired"
    lost = sum(1 for key, value in acked if table.get(key) != value)
    return FailoverResult(factor=factor, acked_writes=len(acked),
                          lost_acked_writes=lost, recovery=report,
                          post_crash_writes=num_keys - kill_after)


def _print_comparison(off: FailoverResult, on: FailoverResult,
                      out) -> None:
    rows = [
        ("acked writes", off.acked_writes, on.acked_writes),
        ("lost acked writes", off.lost_acked_writes,
         on.lost_acked_writes),
        ("regions failed over", off.recovery.regions_reassigned,
         on.recovery.regions_reassigned),
        ("regions promoted", off.recovery.promoted_regions,
         on.recovery.promoted_regions),
        ("WAL records replayed", off.recovery.replayed_records,
         on.recovery.replayed_records + on.recovery.catchup_records),
        ("recovery (sim-ms)", f"{off.recovery.recovery_ms:.1f}",
         f"{on.recovery.recovery_ms:.1f}"),
        ("writes after the crash", off.post_crash_writes,
         on.post_crash_writes),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"{'metric'.ljust(width)} | {'rf=1 replay':>12} | rf=3 promote",
          file=out)
    print(f"{'-' * width}-+--------------+-------------", file=out)
    for name, off_v, on_v in rows:
        print(f"{name.ljust(width)} | {str(off_v):>12} | {on_v}",
              file=out)


def _replicated_engine():
    """A small replicated engine for the SQL act."""
    from repro.core.engine import JustEngine
    return JustEngine(wal_policy=SyncPolicy.SYNC,
                      replication_factor=3,
                      split_bytes=64 * 1024, flush_bytes=16 * 1024)


def _sql_act(out) -> None:
    server = JustServer(_replicated_engine())
    client = JustClient(server, DEMO_USER)

    print("\n== replicated engine: CREATE TABLE + INSERT ==", file=out)
    client.execute_query(
        "CREATE TABLE taxi (fid integer:primary key, name string, "
        "time date, geom point) WITH (presplit=4)")
    values = ", ".join(
        f"({i}, 'cab{i}', {1_500_000_000 + i * 60}, "
        f"st_makePoint({116.0 + (i % 40) * 0.01:.2f}, "
        f"{39.8 + (i % 25) * 0.01:.2f}))"
        for i in range(120))
    client.execute_query(f"INSERT INTO taxi VALUES {values}")

    print("\n== sys.replication (replica placement and lag) ==",
          file=out)
    result = client.execute_query(
        "SELECT server, role, count(*) AS replicas, "
        "sum(lag_records) AS lag FROM sys.replication "
        "GROUP BY server, role ORDER BY server")
    print(format_result(result), file=out)

    # Crash a region server under the SQL surface: its primaries
    # promote, and the anti-entropy chore re-replicates in background.
    server.engine.store.crash_server(0)
    print("\n== after crash_server(0): replication events ==", file=out)
    result = client.execute_query(
        "SELECT kind, count(*) AS n FROM sys.events "
        "WHERE kind = 'replica_promote' OR kind = 'replica_rebuild' "
        "OR kind = 'failover' GROUP BY kind")
    print(format_result(result), file=out)

    snapshot = server.replication_snapshot()
    print("\n== /replication snapshot ==", file=out)
    for key in ("factor", "quorum", "read_mode", "regions",
                "follower_replicas", "followers_live",
                "records_shipped", "quorum_failures", "promotions"):
        print(f"{key:>18}: {snapshot[key]}", file=out)
    client.close()


def _hedged_act(out, reads: int = 200, seed: int = 0) -> None:
    """Hedged reads vs a slow primary: p95 of the charged latency."""
    latencies = {}
    for mode in ("primary", "hedged"):
        store = KVStore(num_servers=5, wal_policy=SyncPolicy.SYNC,
                        replication_factor=3, read_mode=mode,
                        flush_bytes=16 * 1024, block_bytes=1024)
        table = store.create_table("t", presplit=5)
        rng = random.Random(seed)
        keys = []
        for _ in range(400):
            key = rng.getrandbits(64).to_bytes(8, "big")
            table.put(key, b"v" * 64)
            keys.append(key)
        # Every primary on server 0 is slow; followers are healthy.
        plan = FaultPlan([SlowServer(0, latency_ms=40.0)], seed=seed)
        FaultInjector(plan).attach(store)
        samples = []
        for key in rng.sample(keys, reads):
            ctx = RequestContext(deadline=Deadline(10_000.0))
            table.get(key, ctx=ctx)
            samples.append(ctx.deadline.consumed_ms)
        samples.sort()
        latencies[mode] = samples[int(0.95 * (len(samples) - 1))]
        if mode == "hedged":
            snapshot = store.replication.snapshot()
            print(f"hedged reads: {snapshot['hedged_reads']}, "
                  f"hedge wins: {snapshot['hedge_wins']}", file=out)
    print(f"read p95 under a slow primary: "
          f"primary-only {latencies['primary']:.1f} sim-ms -> "
          f"hedged {latencies['hedged']:.1f} sim-ms", file=out)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro replicate",
        description="Region-replication demo: quorum writes, WAL "
                    "shipping, fast promote failover, hedged reads.")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload (CI smoke)")
    parser.add_argument("--keys", type=int, default=None,
                        help="keys to ingest (default: 2000)")
    parser.add_argument("--kill-after", type=int, default=None,
                        help="crash the victim after this many writes")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    num_keys = args.keys if args.keys is not None \
        else (600 if args.quick else 2000)
    kill_after = args.kill_after if args.kill_after is not None \
        else (400 if args.quick else 1500)
    if not 0 < kill_after < num_keys:
        parser.error(f"--kill-after must be between 1 and --keys - 1 "
                     f"(got {kill_after} with --keys {num_keys})")

    print(f"== act 1: crash after {kill_after}/{num_keys} SYNC writes, "
          f"rf=1 WAL replay vs rf=3 follower promotion ==", file=out)
    off = run_failover_experiment(1, num_keys=num_keys,
                                  kill_after=kill_after, seed=args.seed)
    on = run_failover_experiment(3, num_keys=num_keys,
                                 kill_after=kill_after, seed=args.seed)
    _print_comparison(off, on, out)
    ratio = off.recovery.recovery_ms / max(on.recovery.recovery_ms,
                                           1e-9)
    print(f"\npromotion cut unavailability {ratio:.0f}x "
          f"({off.recovery.recovery_ms:.1f} -> "
          f"{on.recovery.recovery_ms:.1f} sim-ms) with zero acked "
          f"writes lost", file=out)

    print("\n== act 2: hedged reads under a gray-slow primary ==",
          file=out)
    _hedged_act(out, reads=60 if args.quick else 200, seed=args.seed)

    print("\n== act 3: the SQL surface ==", file=out)
    _sql_act(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
