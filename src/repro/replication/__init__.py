"""Region replication: follower replicas, quorum writes, fast failover.

See :mod:`repro.replication.manager` for the mechanism overview and
:mod:`repro.replication.replica` for the per-replica state model.
"""

from repro.replication.manager import (
    DEFAULT_HEDGE_MS,
    DEFAULT_INTERVAL_MS,
    DEFAULT_LAG_ALERT_RECORDS,
    ReplicationManager,
)
from repro.replication.replica import (
    LIVE,
    REBUILDING,
    TORN,
    FlushMarker,
    FollowerReplica,
    ReadMode,
    read_mode_of,
)

__all__ = [
    "ReplicationManager", "ReadMode", "read_mode_of",
    "FollowerReplica", "FlushMarker",
    "LIVE", "TORN", "REBUILDING",
    "DEFAULT_INTERVAL_MS", "DEFAULT_LAG_ALERT_RECORDS",
    "DEFAULT_HEDGE_MS",
]
