"""Replica state: one follower copy of a region.

The replication model mirrors HBase region replicas on HDFS: SSTables
live in *shared* storage, so every replica of a region reads the same
immutable runs — what a follower privately maintains is the unflushed
tail.  Each follower keeps its own :class:`~repro.kvstore.memstore.
MemStore`, fed by WAL records shipped from the primary in order, and
makes the shipped records durable by appending them to its *own*
server's write-ahead log.  A primary flush ships a marker down the same
stream; a follower that applies the marker drops its memstore (the
entries are now in the shared SSTables) and checkpoints its WAL.

In-order shipping gives every follower a *prefix* of the primary's edit
stream, which is what makes promotion safe: the most-caught-up follower
holds a superset of every other replica's acknowledged edits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.kvstore.memstore import MemStore


class ReadMode(Enum):
    """Where replicated reads are served from.

    ``PRIMARY``
        the hosting primary only — strongest consistency, no protection
        from a slow or flapping primary server.
    ``FOLLOWER``
        serve from a live follower replica (timeline consistency: a
        lagging follower may return slightly stale data).
    ``HEDGED``
        send to the primary, and after a hedge delay also to a follower;
        take whichever answers first.  Caps the read tail under gray
        failures at roughly ``hedge_ms`` + the follower's latency.
    """

    PRIMARY = "primary"
    FOLLOWER = "follower"
    HEDGED = "hedged"


def read_mode_of(value) -> ReadMode:
    """Coerce a string or :class:`ReadMode` into a :class:`ReadMode`."""
    if isinstance(value, ReadMode):
        return value
    return ReadMode(value)


#: Follower lifecycle states.
LIVE = "live"
#: The follower lost a shipped record (lossy link): its applied prefix
#: is intact and still promotable, but it must not apply further records
#: until the anti-entropy chore rebuilds it over the gap.
TORN = "torn"
#: Freshly created (after a failover or a swap) and not yet synced from
#: the primary; holds nothing beyond the shared SSTables.
REBUILDING = "rebuilding"


@dataclass(frozen=True, slots=True)
class FlushMarker:
    """Shipped when the primary flushes: everything <= ``seqno`` is in
    shared SSTables, so an up-to-date follower can drop its memstore."""

    seqno: int


class FollowerReplica:
    """One follower copy of one region, hosted on ``server``.

    ``applied_seqno`` is the *primary's* WAL sequence number of the last
    record applied here (the replication stream position);
    ``local_max_seqno`` is this server's own WAL watermark for the
    shipped records (per-server seqnos, exactly like a primary's
    ``Region.max_seqno``).  ``pending`` holds records and flush markers
    shipped lazily and not yet applied — its length is the replica's
    lag in records.
    """

    __slots__ = ("server", "memstore", "pending", "applied_seqno",
                 "local_max_seqno", "state", "reads", "shipped_records",
                 "dropped_records")

    def __init__(self, server: int, state: str = LIVE):
        self.server = server
        self.memstore = MemStore()
        self.pending: deque = deque()
        self.applied_seqno = 0
        self.local_max_seqno = 0
        self.state = state
        self.reads = 0
        self.shipped_records = 0
        self.dropped_records = 0

    @property
    def lag_records(self) -> int:
        """Unapplied shipped entries (records + markers) queued here."""
        return len(self.pending)

    def reset(self, server: int | None = None) -> None:
        """Forget all replica state and enter the rebuilding phase."""
        if server is not None:
            self.server = server
        self.memstore = MemStore()
        self.pending.clear()
        self.applied_seqno = 0
        self.local_max_seqno = 0
        self.state = REBUILDING

    def __repr__(self) -> str:
        return (f"FollowerReplica(s{self.server} {self.state} "
                f"applied={self.applied_seqno} lag={self.lag_records})")
