"""Time-period binning for the temporal axis.

The time dimension is unbounded, so every temporal index strategy first
breaks it into disjoint fixed-length periods (Figure 3c; Equation 1 of the
paper) counted from the Unix epoch:

    Num(t) = floor((t - RefTime) / TimePeriodLen)

The paper's default period for Z2T/XZ2T is a day; the JUSTd/JUSTy/JUSTc
ablation variants use Z3/XZ3 with day, year, and century periods (GeoMesa
tops out at a year; the century period is the paper's extension and is
reproduced here).
"""

from __future__ import annotations

import enum

#: RefTime of Equation (1): 1970-01-01T00:00:00Z as epoch seconds.
REF_TIME = 0.0


class TimePeriod(enum.Enum):
    """Fixed-length time periods, value = length in seconds."""

    HOUR = 3600.0
    DAY = 86400.0
    WEEK = 7 * 86400.0
    MONTH = 30 * 86400.0
    YEAR = 365 * 86400.0
    DECADE = 3650 * 86400.0
    CENTURY = 36500 * 86400.0

    @property
    def seconds(self) -> float:
        return self.value

    @classmethod
    def from_name(cls, name: str) -> "TimePeriod":
        try:
            return cls[name.upper()]
        except KeyError:
            valid = ", ".join(p.name.lower() for p in cls)
            raise ValueError(
                f"unknown time period {name!r}; expected one of {valid}"
            ) from None


def period_bin(t: float, period: TimePeriod) -> int:
    """Equation (1): the period number containing epoch-seconds ``t``."""
    import math
    return math.floor((t - REF_TIME) / period.seconds)


def period_start(bin_number: int, period: TimePeriod) -> float:
    """Epoch seconds at which period ``bin_number`` starts."""
    return REF_TIME + bin_number * period.seconds


def period_offset(t: float, period: TimePeriod) -> float:
    """Fraction of the period elapsed at time ``t``, in ``[0, 1)``."""
    start = period_start(period_bin(t, period), period)
    return (t - start) / period.seconds


def period_bins_covering(t_min: float, t_max: float,
                         period: TimePeriod) -> range:
    """All period numbers intersecting the closed interval [t_min, t_max]."""
    if t_max < t_min:
        raise ValueError(f"inverted time interval: [{t_min}, {t_max}]")
    return range(period_bin(t_min, period), period_bin(t_max, period) + 1)
