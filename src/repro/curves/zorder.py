"""Z-order (Morton) curves for point data.

``Z2Curve`` maps a ``(lng, lat)`` pair to a single 62-bit integer by
encoding each dimension with 31 bits (a binary search over the coordinate
range, exactly Figure 3a of the paper) and interleaving the bits
(Figure 3b).  ``Z3Curve`` adds a 21-bit normalized time-within-period
dimension and interleaves three 21-bit values into a 63-bit integer
(Figure 3e), matching GeoMesa's resolution choices.

Bit spreading uses the standard magic-mask technique so encoding is O(1)
per record rather than O(bits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.envelope import Envelope

# -- 2D bit interleaving (31 bits per dimension) ---------------------------

_MASK64 = (1 << 64) - 1


def split2(value: int) -> int:
    """Spread the low 32 bits of ``value`` onto the even bit positions."""
    x = value & 0xFFFFFFFF
    x = (x | (x << 16)) & 0x0000FFFF0000FFFF
    x = (x | (x << 8)) & 0x00FF00FF00FF00FF
    x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0F
    x = (x | (x << 2)) & 0x3333333333333333
    x = (x | (x << 1)) & 0x5555555555555555
    return x


def combine2(value: int) -> int:
    """Inverse of :func:`split2`: gather even bit positions."""
    x = value & 0x5555555555555555
    x = (x | (x >> 1)) & 0x3333333333333333
    x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0F
    x = (x | (x >> 4)) & 0x00FF00FF00FF00FF
    x = (x | (x >> 8)) & 0x0000FFFF0000FFFF
    x = (x | (x >> 16)) & 0x00000000FFFFFFFF
    return x


def interleave2(x: int, y: int) -> int:
    """Interleave two integers bitwise; ``x`` occupies the even bits."""
    return split2(x) | (split2(y) << 1)


def deinterleave2(z: int) -> tuple[int, int]:
    """Inverse of :func:`interleave2`."""
    return combine2(z), combine2(z >> 1)


# -- 3D bit interleaving (21 bits per dimension) ---------------------------

def split3(value: int) -> int:
    """Spread the low 21 bits of ``value`` onto every third bit position."""
    x = value & 0x1FFFFF
    x = (x | (x << 32)) & 0x1F00000000FFFF
    x = (x | (x << 16)) & 0x1F0000FF0000FF
    x = (x | (x << 8)) & 0x100F00F00F00F00F
    x = (x | (x << 4)) & 0x10C30C30C30C30C3
    x = (x | (x << 2)) & 0x1249249249249249
    return x


def combine3(value: int) -> int:
    """Inverse of :func:`split3`."""
    x = value & 0x1249249249249249
    x = (x | (x >> 2)) & 0x10C30C30C30C30C3
    x = (x | (x >> 4)) & 0x100F00F00F00F00F
    x = (x | (x >> 8)) & 0x1F0000FF0000FF
    x = (x | (x >> 16)) & 0x1F00000000FFFF
    x = (x | (x >> 32)) & 0x1FFFFF
    return x


def interleave3(x: int, y: int, z: int) -> int:
    """Interleave three 21-bit integers; ``x`` occupies bits 0, 3, 6, ..."""
    return split3(x) | (split3(y) << 1) | (split3(z) << 2)


def deinterleave3(code: int) -> tuple[int, int, int]:
    """Inverse of :func:`interleave3`."""
    return combine3(code), combine3(code >> 1), combine3(code >> 2)


# -- coordinate normalization ----------------------------------------------

@dataclass(frozen=True, slots=True)
class Dimension:
    """A bounded continuous dimension discretized to ``bits`` bits."""

    low: float
    high: float
    bits: int

    @property
    def max_index(self) -> int:
        return (1 << self.bits) - 1

    def normalize(self, value: float) -> int:
        """Map a continuous value to its cell index (clamped to bounds)."""
        if value <= self.low:
            return 0
        if value >= self.high:
            return self.max_index
        fraction = (value - self.low) / (self.high - self.low)
        return min(self.max_index, int(fraction * (self.max_index + 1)))

    def denormalize(self, index: int) -> tuple[float, float]:
        """Continuous ``[low, high)`` interval covered by cell ``index``."""
        span = (self.high - self.low) / (self.max_index + 1)
        return (self.low + index * span, self.low + (index + 1) * span)


class Z2Curve:
    """The Z2 curve over WGS84 longitude/latitude with 31 bits per axis."""

    BITS_PER_DIM = 31

    def __init__(self) -> None:
        self.lng_dim = Dimension(-180.0, 180.0, self.BITS_PER_DIM)
        self.lat_dim = Dimension(-90.0, 90.0, self.BITS_PER_DIM)

    def index(self, lng: float, lat: float) -> int:
        """Z2 value of a coordinate (Equation Z2(lng, lat) of the paper)."""
        return interleave2(self.lng_dim.normalize(lng),
                           self.lat_dim.normalize(lat))

    def invert(self, z: int) -> tuple[float, float]:
        """Lower-left corner of the cell encoded by ``z``."""
        xi, yi = deinterleave2(z)
        return (self.lng_dim.denormalize(xi)[0],
                self.lat_dim.denormalize(yi)[0])

    def cell_of(self, envelope: Envelope) -> tuple[int, int, int, int]:
        """Integer cell bounds covered by an envelope (inclusive)."""
        return (self.lng_dim.normalize(envelope.min_lng),
                self.lat_dim.normalize(envelope.min_lat),
                self.lng_dim.normalize(envelope.max_lng),
                self.lat_dim.normalize(envelope.max_lat))


class Z3Curve:
    """The Z3 curve: lng/lat/time-in-period, 21 bits per axis.

    The time axis covers exactly one time period; callers bin the timestamp
    first (``timeperiod.period_bin``) and pass the offset fraction here.
    """

    BITS_PER_DIM = 21

    def __init__(self) -> None:
        self.lng_dim = Dimension(-180.0, 180.0, self.BITS_PER_DIM)
        self.lat_dim = Dimension(-90.0, 90.0, self.BITS_PER_DIM)
        self.time_dim = Dimension(0.0, 1.0, self.BITS_PER_DIM)

    def index(self, lng: float, lat: float, time_fraction: float) -> int:
        """Z3 value of a record whose time offset fraction is known."""
        return interleave3(self.lng_dim.normalize(lng),
                           self.lat_dim.normalize(lat),
                           self.time_dim.normalize(time_fraction))

    def invert(self, z: int) -> tuple[float, float, float]:
        """Lower corner (lng, lat, time fraction) of the encoded cell."""
        xi, yi, ti = deinterleave3(z)
        return (self.lng_dim.denormalize(xi)[0],
                self.lat_dim.denormalize(yi)[0],
                self.time_dim.denormalize(ti)[0])
