"""Space-filling-curve indexing (the GeoMesa layer plus the paper's Z2T/XZ2T).

``zorder``     — bit-interleaving Z curves for 2D points (Z2) and
                 3D space-time points (Z3).
``zranges``    — decomposition of query windows into covering key ranges.
``xz``         — XZ-ordering sequence codes for extended objects (XZ2/XZ3).
``timeperiod`` — binning of the unbounded time axis into fixed periods.
``strategies`` — the index strategies that turn records into sortable byte
                 keys and queries into key ranges: Z2, Z3, XZ2, XZ3 and the
                 paper's novel Z2T and XZ2T, plus a simple attribute index.
"""

from repro.curves.zorder import Z2Curve, Z3Curve
from repro.curves.xz import XZ2Curve, XZ3Curve
from repro.curves.timeperiod import TimePeriod, period_bin, period_offset
from repro.curves.strategies import (
    STQuery,
    KeyRange,
    IndexedRecord,
    IndexStrategy,
    Z2Strategy,
    Z3Strategy,
    XZ2Strategy,
    XZ3Strategy,
    Z2TStrategy,
    XZ2TStrategy,
    AttributeStrategy,
    strategy_from_name,
)

__all__ = [
    "Z2Curve",
    "Z3Curve",
    "XZ2Curve",
    "XZ3Curve",
    "TimePeriod",
    "period_bin",
    "period_offset",
    "STQuery",
    "KeyRange",
    "IndexedRecord",
    "IndexStrategy",
    "Z2Strategy",
    "Z3Strategy",
    "XZ2Strategy",
    "XZ3Strategy",
    "Z2TStrategy",
    "XZ2TStrategy",
    "AttributeStrategy",
    "strategy_from_name",
]
