"""XZ-ordering for extended (non-point) objects.

XZ-ordering (Böhm et al., SSD 1999) assigns an object to the largest
quad-tree cell whose *enlarged* square (the cell doubled in width and
height, anchored at the cell's lower-left corner) still contains the
object's MBR.  Each cell is identified by a sequence code laid out so that
a cell's code immediately precedes all of its descendants' codes — a scan
over a code interval therefore covers a whole subtree.

``XZ2Curve`` is the 2D variant (Figure 3f of the paper); ``XZ3Curve`` adds
the normalized time-within-period axis and is the index the paper's
JUSTd/JUSTy/JUSTc variants use for trajectories.
"""

from __future__ import annotations

import math
from collections import deque

from repro.errors import IndexError_
from repro.geometry.envelope import Envelope

DEFAULT_MAX_RANGES = 256


def _merge_ranges(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    if not ranges:
        return []
    ranges.sort()
    merged = [ranges[0]]
    for lo, hi in ranges[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + 1:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


class _XZBase:
    """Shared machinery for XZ curves of any dimensionality."""

    def __init__(self, g: int, dims: int):
        if g < 1:
            raise IndexError_("XZ resolution g must be >= 1")
        self.g = g
        self.dims = dims
        self._fanout = 1 << dims  # 4 for XZ2, 8 for XZ3

    def _subtree_size(self, level: int) -> int:
        """Codes owned by a cell at ``level`` including itself."""
        f = self._fanout
        return (f ** (self.g - level + 1) - 1) // (f - 1)

    def _child_step(self, level: int) -> int:
        """Code distance between sibling children of a cell at ``level``."""
        f = self._fanout
        return (f ** (self.g - level) - 1) // (f - 1)

    def max_code(self) -> int:
        """Largest sequence code the curve can produce."""
        return self._subtree_size(0) - 1

    # -- element length ----------------------------------------------------
    def _element_length(self, mins: list[float], spans: list[float]) -> int:
        """Number of quadrant digits for an object with the given extents.

        This is the l(s) of the XZ-ordering paper: the deepest level whose
        enlarged cell (side ``2 * 0.5^l``) can contain the object.
        """
        max_span = max(spans)
        if max_span <= 0.0:
            return self.g
        l1 = int(math.floor(math.log(max_span) / math.log(0.5)))
        if l1 >= self.g:
            return self.g
        if l1 < 0:
            return 0
        # Check whether the object still fits an enlarged cell one level
        # deeper (the object may straddle a cell boundary).
        w2 = 0.5 ** (l1 + 1)

        def fits(lo: float, hi: float) -> bool:
            return hi <= math.floor(lo / w2) * w2 + 2.0 * w2

        deeper_fits = all(fits(lo, lo + span)
                          for lo, span in zip(mins, spans))
        return min(self.g, l1 + 1 if deeper_fits else l1)

    def _sequence_code(self, mins: list[float], length: int) -> int:
        """Code of the cell reached by ``length`` quadrant steps."""
        cell_lo = [0.0] * self.dims
        cell_hi = [1.0] * self.dims
        cs = 0
        for i in range(length):
            step = self._child_step(i)
            quadrant = 0
            for d in range(self.dims):
                center = (cell_lo[d] + cell_hi[d]) / 2.0
                if mins[d] < center:
                    cell_hi[d] = center
                else:
                    quadrant |= 1 << d
                    cell_lo[d] = center
            cs += 1 + quadrant * step
        return cs

    def _index_normalized(self, mins: list[float],
                          maxs: list[float]) -> int:
        for lo, hi in zip(mins, maxs):
            if hi < lo:
                raise IndexError_("XZ element with inverted bounds")
        spans = [hi - lo for lo, hi in zip(mins, maxs)]
        length = self._element_length(mins, spans)
        return self._sequence_code(mins, length)

    # -- query ranges ------------------------------------------------------
    def _ranges_normalized(self, q_lo: list[float], q_hi: list[float],
                           max_ranges: int) -> list[tuple[int, int]]:
        """Covering code ranges for a normalized query box.

        A cell's *extended* square is its own square doubled in each
        dimension.  Every descendant's extended square lies inside the
        parent's extended square, so pruning on the extended square is
        exact for whole subtrees.
        """
        ranges: list[tuple[int, int]] = []
        # queue entries: (level, cell lower corner per dim, cell code)
        queue: deque[tuple[int, list[float], int]] = deque()
        queue.append((0, [0.0] * self.dims, 0))

        while queue:
            level, lo, cs = queue.popleft()
            width = 0.5 ** level
            ext_hi = [lo[d] + 2.0 * width for d in range(self.dims)]
            intersects = all(lo[d] <= q_hi[d] and ext_hi[d] >= q_lo[d]
                             for d in range(self.dims))
            if not intersects:
                continue
            contained = all(lo[d] >= q_lo[d] and ext_hi[d] <= q_hi[d]
                            for d in range(self.dims))
            budget_left = max_ranges - len(ranges) - len(queue)
            if contained or level == self.g or budget_left <= 0:
                ranges.append((cs, cs + self._subtree_size(level) - 1))
                continue
            # The element stored exactly at this cell may intersect the
            # query even when no single child subtree fully covers it.
            ranges.append((cs, cs))
            step = self._child_step(level)
            child_width = width / 2.0
            for quadrant in range(self._fanout):
                child_lo = [lo[d] + (child_width if quadrant & (1 << d)
                                     else 0.0)
                            for d in range(self.dims)]
                queue.append((level + 1, child_lo, cs + 1 + quadrant * step))

        return _merge_ranges(ranges)


class XZ2Curve(_XZBase):
    """XZ-ordering over 2D envelopes, resolution ``g`` (default 12)."""

    def __init__(self, g: int = 12):
        super().__init__(g, dims=2)

    @staticmethod
    def _normalize(envelope: Envelope) -> tuple[list[float], list[float]]:
        return ([(envelope.min_lng + 180.0) / 360.0,
                 (envelope.min_lat + 90.0) / 180.0],
                [(envelope.max_lng + 180.0) / 360.0,
                 (envelope.max_lat + 90.0) / 180.0])

    def index(self, envelope: Envelope) -> int:
        """Sequence code of an object's MBR (XZ2 of the paper)."""
        mins, maxs = self._normalize(envelope)
        return self._index_normalized(mins, maxs)

    def ranges(self, query: Envelope,
               max_ranges: int = DEFAULT_MAX_RANGES) -> list[tuple[int, int]]:
        """Covering code ranges for a rectangular spatial query."""
        mins, maxs = self._normalize(query)
        return self._ranges_normalized(mins, maxs, max_ranges)


class XZ3Curve(_XZBase):
    """XZ-ordering over space-time boxes, resolution ``g`` (default 8).

    The time axis is the fraction of a time period, so one ``XZ3Curve``
    instance serves every period.  Objects whose duration exceeds one
    period are clamped to the period end; the strategy layer compensates by
    also scanning the preceding period at query time.
    """

    def __init__(self, g: int = 8):
        super().__init__(g, dims=3)

    @staticmethod
    def _normalize(envelope: Envelope, t_lo: float,
                   t_hi: float) -> tuple[list[float], list[float]]:
        return ([(envelope.min_lng + 180.0) / 360.0,
                 (envelope.min_lat + 90.0) / 180.0,
                 max(0.0, min(1.0, t_lo))],
                [(envelope.max_lng + 180.0) / 360.0,
                 (envelope.max_lat + 90.0) / 180.0,
                 max(0.0, min(1.0, t_hi))])

    def index(self, envelope: Envelope, t_lo_fraction: float,
              t_hi_fraction: float) -> int:
        """Sequence code of a space-time MBR within one period."""
        mins, maxs = self._normalize(envelope, t_lo_fraction, t_hi_fraction)
        return self._index_normalized(mins, maxs)

    def ranges(self, query: Envelope, t_lo_fraction: float,
               t_hi_fraction: float,
               max_ranges: int = DEFAULT_MAX_RANGES) -> list[tuple[int, int]]:
        """Covering code ranges for a space-time query within one period."""
        mins, maxs = self._normalize(query, t_lo_fraction, t_hi_fraction)
        return self._ranges_normalized(mins, maxs, max_ranges)
