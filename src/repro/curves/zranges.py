"""Decomposition of query windows into covering Z-value ranges.

A rectangular query window rarely maps to a single contiguous Z range; it is
covered by a set of ranges obtained by walking the implicit quad-tree (2D)
or oct-tree (3D) of curve cells.  Cells fully inside the window contribute
their whole Z interval; boundary cells are split until a range budget is
reached, at which point the remaining cells contribute covering
(over-approximating) intervals.  Over-approximation is safe: the scan layer
post-filters records against the exact predicate.

The budget mirrors GeoMesa's ``maxRangesPerExtendedRange`` behaviour and is
the knob ablated in ``benchmarks/bench_ablation.py``.
"""

from __future__ import annotations

from collections import deque
from itertools import product

from repro.curves.zorder import interleave2, interleave3

DEFAULT_MAX_RANGES = 256

#: Recursion limits below the query's common-prefix cell, mirroring
#: GeoMesa's bounded range decomposition.  The 3D limit is the reason
#: interleaved space-time curves cannot isolate a thin time slab (or a
#: small spatial window) inside a long period — the paper's Section IV-B
#: motivation for Z2T.  Octree refinement costs 8x per level, so the 3D
#: planner stops much earlier than the 2D one.
DEFAULT_MAX_RECURSE_2D = 16
DEFAULT_MAX_RECURSE_3D = 7


def _merge_ranges(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort and coalesce overlapping or adjacent inclusive ranges."""
    if not ranges:
        return []
    ranges.sort()
    merged = [ranges[0]]
    for lo, hi in ranges[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + 1:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def _common_prefix_level(bits: int, q_lo: tuple[int, ...],
                         q_hi: tuple[int, ...]) -> int:
    """Deepest level at which one cell still contains the whole query."""
    level = 0
    while level < bits:
        shift = bits - level - 1
        if any((lo >> shift) != (hi >> shift)
               for lo, hi in zip(q_lo, q_hi)):
            return level
        level += 1
    return bits


def _decompose(bits: int, q_lo: tuple[int, ...], q_hi: tuple[int, ...],
               max_ranges: int, max_recurse: int) -> list[tuple[int, int]]:
    """Generic n-dimensional Z-range decomposition.

    ``q_lo``/``q_hi`` are inclusive integer cell bounds per dimension.
    Returns inclusive ``(z_lo, z_hi)`` ranges whose union covers every cell
    in the query box.  Refinement stops ``max_recurse`` levels below the
    query's common-prefix cell (GeoMesa's planner bound); boundary cells
    at the stop level are emitted as covering ranges.
    """
    dims = len(q_lo)
    depth_limit = min(bits,
                      _common_prefix_level(bits, q_lo, q_hi) + max_recurse)
    interleave = {2: lambda c: interleave2(c[0], c[1]),
                  3: lambda c: interleave3(c[0], c[1], c[2])}[dims]
    child_offsets = list(product((0, 1), repeat=dims))

    ranges: list[tuple[int, int]] = []
    # Breadth-first over (level, coords); coarse cells are decided first so
    # that exhausting the budget degrades precision, not correctness.
    queue: deque[tuple[int, tuple[int, ...]]] = deque()
    queue.append((0, tuple(0 for _ in range(dims))))

    def cell_range(level: int, coords: tuple[int, ...]) -> tuple[int, int]:
        shift = dims * (bits - level)
        z_lo = interleave(coords) << shift
        return z_lo, z_lo + (1 << shift) - 1

    while queue:
        level, coords = queue.popleft()
        shift = bits - level
        lo = tuple(c << shift for c in coords)
        hi = tuple(((c + 1) << shift) - 1 for c in coords)
        disjoint = any(lo[d] > q_hi[d] or hi[d] < q_lo[d]
                       for d in range(dims))
        if disjoint:
            continue
        contained = all(lo[d] >= q_lo[d] and hi[d] <= q_hi[d]
                        for d in range(dims))
        budget_left = max_ranges - len(ranges) - len(queue)
        if contained or level >= depth_limit or budget_left <= 0:
            ranges.append(cell_range(level, coords))
            continue
        for offsets in child_offsets:
            child = tuple(c * 2 + o for c, o in zip(coords, offsets))
            queue.append((level + 1, child))

    return _merge_ranges(ranges)


def z2_ranges(x_lo: int, y_lo: int, x_hi: int, y_hi: int,
              bits: int = 31,
              max_ranges: int = DEFAULT_MAX_RANGES,
              max_recurse: int = DEFAULT_MAX_RECURSE_2D
              ) -> list[tuple[int, int]]:
    """Covering Z2 ranges for an integer cell box (inclusive bounds)."""
    return _decompose(bits, (x_lo, y_lo), (x_hi, y_hi), max_ranges,
                      max_recurse)


def z3_ranges(x_lo: int, y_lo: int, t_lo: int,
              x_hi: int, y_hi: int, t_hi: int,
              bits: int = 21,
              max_ranges: int = DEFAULT_MAX_RANGES,
              max_recurse: int = DEFAULT_MAX_RECURSE_3D
              ) -> list[tuple[int, int]]:
    """Covering Z3 ranges for an integer cell cube (inclusive bounds)."""
    return _decompose(bits, (x_lo, y_lo, t_lo), (x_hi, y_hi, t_hi),
                      max_ranges, max_recurse)
