"""Index strategies: records -> sortable byte keys, queries -> key ranges.

An index strategy encodes the spatio-temporal part of a record into the
*row key* of the underlying key-value store so that a spatio-temporal query
becomes a small set of key-range SCANs.  Because a record's key depends
only on the record itself (never on other records), inserting new data or
rewriting historical data never requires index reconstruction — this is the
paper's "update-enabled" property.

Strategies provided:

* ``Z2Strategy``   — spatial points (Z-ordering).
* ``XZ2Strategy``  — spatial extended objects (XZ-ordering).
* ``Z3Strategy``   — ST points, one interleaved space-time curve per period
                     (native GeoMesa; the paper's JUSTd/JUSTy/JUSTc use this
                     with day/year/century periods).
* ``XZ3Strategy``  — ST extended objects, space-time XZ curve per period.
* ``Z2TStrategy``  — **the paper's Z2T**: per-period Z2 index (Section IV-B).
* ``XZ2TStrategy`` — **the paper's XZ2T**: per-period XZ2 index (Sec. IV-C).
* ``AttributeStrategy`` — secondary index on a scalar field.

Key layout (all integers big-endian so byte order equals numeric order)::

    [shard: 1][period: 4, biased][curve value: 8][0x00][feature id utf-8]

The one-byte shard prefix is GeoMesa's random-prefix load-balancing trick:
records spread across ``num_shards`` contiguous key spaces (and therefore
across region servers); every query fans out one range set per shard.
"""

from __future__ import annotations

import struct
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import IndexError_
from repro.curves.timeperiod import (
    TimePeriod,
    period_bin,
    period_bins_covering,
    period_offset,
    period_start,
)
from repro.curves.xz import XZ2Curve, XZ3Curve
from repro.curves.zorder import Z2Curve, Z3Curve
from repro.curves.zranges import DEFAULT_MAX_RANGES, z2_ranges, z3_ranges
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope

_PERIOD_BIAS = 1 << 31  # biased so negative bins still sort correctly


@dataclass(frozen=True, slots=True)
class STQuery:
    """A (possibly partial) spatio-temporal range predicate."""

    envelope: Envelope | None = None
    t_min: float | None = None
    t_max: float | None = None

    @property
    def has_spatial(self) -> bool:
        return self.envelope is not None

    @property
    def has_temporal(self) -> bool:
        return self.t_min is not None and self.t_max is not None


@dataclass(frozen=True, slots=True)
class KeyRange:
    """An inclusive byte-key range handed to the key-value store SCAN."""

    start: bytes
    end: bytes


@dataclass(frozen=True, slots=True)
class IndexedRecord:
    """The index-relevant projection of a stored row."""

    fid: str
    geometry: Geometry
    t_min: float | None = None
    t_max: float | None = None


def shard_of(fid: str, num_shards: int) -> int:
    """Deterministic shard for a feature id."""
    return zlib.crc32(fid.encode("utf-8")) % num_shards


def _pack_period(bin_number: int) -> bytes:
    return struct.pack(">I", bin_number + _PERIOD_BIAS)


def _pack_curve(value: int) -> bytes:
    return struct.pack(">Q", value)


class IndexStrategy(ABC):
    """Interface every index strategy implements."""

    #: Short name used in USERDATA hints, e.g. ``"z2t"``.
    name: str = "abstract"

    def __init__(self, num_shards: int = 4,
                 max_ranges: int = DEFAULT_MAX_RANGES):
        if num_shards < 1 or num_shards > 255:
            raise IndexError_("num_shards must be in [1, 255]")
        self.num_shards = num_shards
        self.max_ranges = max_ranges

    # -- write path --------------------------------------------------------
    def key(self, record: IndexedRecord) -> bytes:
        """Full row key for a record (shard + body + feature id)."""
        shard = shard_of(record.fid, self.num_shards)
        return (bytes([shard]) + self._key_body(record) + b"\x00"
                + record.fid.encode("utf-8"))

    @abstractmethod
    def _key_body(self, record: IndexedRecord) -> bytes:
        """Strategy-specific key body (period/curve bytes)."""

    # -- read path ---------------------------------------------------------
    @abstractmethod
    def supports(self, query: STQuery) -> bool:
        """True when this strategy can serve ``query`` via key ranges."""

    def ranges(self, query: STQuery) -> list[KeyRange]:
        """Key ranges whose union covers every possibly-matching record."""
        if not self.supports(query):
            raise IndexError_(
                f"index {self.name!r} cannot serve query {query!r}")
        body_ranges = self._body_ranges(query)
        out = []
        for shard in range(self.num_shards):
            prefix = bytes([shard])
            for lo, hi in body_ranges:
                out.append(KeyRange(prefix + lo, prefix + hi + b"\xff"))
        return out

    @abstractmethod
    def _body_ranges(self, query: STQuery) -> list[tuple[bytes, bytes]]:
        """Inclusive (start, end) ranges over the key body."""

    # -- statistics for the cost-based planner -------------------------------
    def estimate_selectivity(self, query: STQuery,
                             time_extent: tuple[float, float] | None = None,
                             data_envelope: Envelope | None = None
                             ) -> float:
        """Estimated fraction of this index's *data* a query scans.

        Curve coverage is computed against the whole coordinate space but
        keys cluster where the data lives, so when the table's observed
        ``data_envelope`` is known the spatial coverage is normalized by
        the data's share of the space.  Used by the cost-based planner
        (Section IX future work #3) and the adaptive OLTP path (#4).
        """
        if not self.supports(query):
            return 1.0
        spatial = self._curve_fraction(query)
        if data_envelope is not None:
            occupancy = max(1e-12,
                            (data_envelope.width * data_envelope.height)
                            / (360.0 * 180.0))
            spatial = spatial / occupancy
        spatial = max(spatial, self._selectivity_floor(query))
        return min(1.0, spatial
                   * self._temporal_fraction(query, time_extent))

    def _selectivity_floor(self, query: STQuery) -> float:
        """Lower bound on per-period coverage (0 where none applies)."""
        return 0.0

    def _curve_fraction(self, query: STQuery) -> float:
        """Covered curve-value space / total curve-value space."""
        return 1.0

    def _temporal_fraction(self, query: STQuery,
                           time_extent) -> float:
        """Fraction of the data's periods a temporal strategy touches."""
        return 1.0


def _spatial_fraction_of(ranges: list[tuple[int, int]],
                         space: int) -> float:
    if space <= 0:
        return 1.0
    covered = sum(hi - lo + 1 for lo, hi in ranges)
    return min(1.0, covered / space)


def _bins_fraction(query: STQuery, period: TimePeriod,
                   time_extent) -> float:
    if not query.has_temporal or time_extent is None:
        return 1.0
    total = len(period_bins_covering(time_extent[0], time_extent[1],
                                     period))
    touched = len(period_bins_covering(query.t_min, query.t_max, period))
    return min(1.0, touched / max(1, total))


# ---------------------------------------------------------------------------
# Spatial-only strategies
# ---------------------------------------------------------------------------

class Z2Strategy(IndexStrategy):
    """Z-ordering over point geometries (spatial range queries)."""

    name = "z2"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.curve = Z2Curve()

    def _key_body(self, record: IndexedRecord) -> bytes:
        if not record.geometry.is_point():
            raise IndexError_("z2 indexes point geometries only")
        env = record.geometry.envelope
        return _pack_curve(self.curve.index(env.min_lng, env.min_lat))

    def supports(self, query: STQuery) -> bool:
        return query.has_spatial

    def _body_ranges(self, query: STQuery) -> list[tuple[bytes, bytes]]:
        x_lo, y_lo, x_hi, y_hi = self.curve.cell_of(query.envelope)
        return [(_pack_curve(lo), _pack_curve(hi))
                for lo, hi in z2_ranges(x_lo, y_lo, x_hi, y_hi,
                                        max_ranges=self.max_ranges)]

    def _curve_fraction(self, query: STQuery) -> float:
        x_lo, y_lo, x_hi, y_hi = self.curve.cell_of(query.envelope)
        ranges = z2_ranges(x_lo, y_lo, x_hi, y_hi,
                           max_ranges=self.max_ranges)
        return _spatial_fraction_of(ranges, 1 << 62)


class XZ2Strategy(IndexStrategy):
    """XZ-ordering over extended geometries (spatial range queries)."""

    name = "xz2"

    def __init__(self, g: int = 12, **kwargs):
        super().__init__(**kwargs)
        self.curve = XZ2Curve(g)

    def _key_body(self, record: IndexedRecord) -> bytes:
        return _pack_curve(self.curve.index(record.geometry.envelope))

    def supports(self, query: STQuery) -> bool:
        return query.has_spatial

    def _body_ranges(self, query: STQuery) -> list[tuple[bytes, bytes]]:
        return [(_pack_curve(lo), _pack_curve(hi))
                for lo, hi in self.curve.ranges(query.envelope,
                                                self.max_ranges)]

    def _curve_fraction(self, query: STQuery) -> float:
        ranges = self.curve.ranges(query.envelope, self.max_ranges)
        return _spatial_fraction_of(ranges, self.curve.max_code() + 1)


# ---------------------------------------------------------------------------
# Native GeoMesa spatio-temporal strategies (Z3 / XZ3)
# ---------------------------------------------------------------------------

class Z3Strategy(IndexStrategy):
    """Per-period interleaved space-time curve for points (Figure 3e).

    The paper's analysis (Section IV-B) shows why this struggles: within a
    period the time bits dominate the interleaved code for typical urban
    queries, invalidating the spatial filter.  Reproduced faithfully so the
    JUSTd/JUSTy/JUSTc ablations behave as in Figure 12.
    """

    name = "z3"

    #: Per-period range budget.  Octree decomposition spends its budget
    #: across three dimensions, so real planners (GeoMesa) produce far
    #: coarser covers per period than a 2D planner would — this cap is
    #: what makes the interleaved strategies over-scan (Section IV-B).
    RANGE_BUDGET_CAP = 32

    def __init__(self, period: TimePeriod = TimePeriod.DAY, **kwargs):
        super().__init__(**kwargs)
        self.period = period
        self.curve = Z3Curve()

    def _key_body(self, record: IndexedRecord) -> bytes:
        if not record.geometry.is_point():
            raise IndexError_("z3 indexes point geometries only")
        if record.t_min is None:
            raise IndexError_("z3 requires a timestamp")
        env = record.geometry.envelope
        bin_number = period_bin(record.t_min, self.period)
        fraction = period_offset(record.t_min, self.period)
        z = self.curve.index(env.min_lng, env.min_lat, fraction)
        return _pack_period(bin_number) + _pack_curve(z)

    def supports(self, query: STQuery) -> bool:
        return query.has_spatial and query.has_temporal

    def _body_ranges(self, query: STQuery) -> list[tuple[bytes, bytes]]:
        env = query.envelope
        x_lo = self.curve.lng_dim.normalize(env.min_lng)
        x_hi = self.curve.lng_dim.normalize(env.max_lng)
        y_lo = self.curve.lat_dim.normalize(env.min_lat)
        y_hi = self.curve.lat_dim.normalize(env.max_lat)
        bins = period_bins_covering(query.t_min, query.t_max, self.period)
        out: list[tuple[bytes, bytes]] = []
        per_bin_budget = max(8, min(self.RANGE_BUDGET_CAP,
                                    self.max_ranges // max(1, len(bins))))
        for bin_number in bins:
            start = period_start(bin_number, self.period)
            lo_frac = max(0.0, (query.t_min - start) / self.period.seconds)
            hi_frac = min(1.0, (query.t_max - start) / self.period.seconds)
            t_lo = self.curve.time_dim.normalize(lo_frac)
            t_hi = self.curve.time_dim.normalize(hi_frac)
            prefix = _pack_period(bin_number)
            for lo, hi in z3_ranges(x_lo, y_lo, t_lo, x_hi, y_hi, t_hi,
                                    max_ranges=per_bin_budget):
                out.append((prefix + _pack_curve(lo),
                            prefix + _pack_curve(hi)))
        return out

    def _curve_fraction(self, query: STQuery) -> float:
        env = query.envelope
        x_lo = self.curve.lng_dim.normalize(env.min_lng)
        x_hi = self.curve.lng_dim.normalize(env.max_lng)
        y_lo = self.curve.lat_dim.normalize(env.min_lat)
        y_hi = self.curve.lat_dim.normalize(env.max_lat)
        # Representative bin: the first one the query touches.
        bin_number = period_bin(query.t_min, self.period)
        start = period_start(bin_number, self.period)
        lo_frac = max(0.0, (query.t_min - start) / self.period.seconds)
        hi_frac = min(1.0, (query.t_max - start) / self.period.seconds)
        t_lo = self.curve.time_dim.normalize(lo_frac)
        t_hi = self.curve.time_dim.normalize(hi_frac)
        ranges = z3_ranges(x_lo, y_lo, t_lo, x_hi, y_hi, t_hi,
                           max_ranges=min(self.RANGE_BUDGET_CAP,
                                          self.max_ranges))
        return _spatial_fraction_of(ranges, 1 << 63)

    def _temporal_fraction(self, query: STQuery, time_extent) -> float:
        return _bins_fraction(query, self.period, time_extent)
    def _selectivity_floor(self, query: STQuery) -> float:
        """Interleaving makes spatial filtering unreliable inside a
        period (Section IV-B): conservatively assume each touched period
        contributes at least its covered time-slice fraction."""
        if not query.has_temporal:
            return 0.0
        bin_number = period_bin(query.t_min, self.period)
        start = period_start(bin_number, self.period)
        lo_frac = max(0.0, (query.t_min - start) / self.period.seconds)
        hi_frac = min(1.0, (query.t_max - start) / self.period.seconds)
        return max(0.0, hi_frac - lo_frac)



class XZ3Strategy(IndexStrategy):
    """Per-period space-time XZ curve for extended objects (Figure 5a).

    Objects are binned by their start time (``t_min``); queries therefore
    scan ``lookback_periods`` extra preceding periods to catch objects that
    started earlier but extend into the query window.
    """

    name = "xz3"

    #: See Z3Strategy.RANGE_BUDGET_CAP: 3D planners produce coarse covers.
    RANGE_BUDGET_CAP = 32

    def __init__(self, period: TimePeriod = TimePeriod.DAY, g: int = 8,
                 lookback_periods: int = 1, **kwargs):
        super().__init__(**kwargs)
        self.period = period
        self.curve = XZ3Curve(g)
        self.lookback_periods = lookback_periods

    def _key_body(self, record: IndexedRecord) -> bytes:
        if record.t_min is None:
            raise IndexError_("xz3 requires a time extent")
        t_max = record.t_max if record.t_max is not None else record.t_min
        bin_number = period_bin(record.t_min, self.period)
        start = period_start(bin_number, self.period)
        lo_frac = (record.t_min - start) / self.period.seconds
        hi_frac = min(1.0, (t_max - start) / self.period.seconds)
        code = self.curve.index(record.geometry.envelope, lo_frac, hi_frac)
        return _pack_period(bin_number) + _pack_curve(code)

    def supports(self, query: STQuery) -> bool:
        return query.has_spatial and query.has_temporal

    def _body_ranges(self, query: STQuery) -> list[tuple[bytes, bytes]]:
        bins = period_bins_covering(query.t_min, query.t_max, self.period)
        bins = range(bins.start - self.lookback_periods, bins.stop)
        out: list[tuple[bytes, bytes]] = []
        per_bin_budget = max(8, min(self.RANGE_BUDGET_CAP,
                                    self.max_ranges // max(1, len(bins))))
        for bin_number in bins:
            start = period_start(bin_number, self.period)
            lo_frac = max(0.0, (query.t_min - start) / self.period.seconds)
            hi_frac = min(1.0, (query.t_max - start) / self.period.seconds)
            if hi_frac <= 0.0:
                # Lookback period: objects binned here may still reach the
                # query window, so scan their full time extent.
                lo_frac, hi_frac = 0.0, 1.0
            prefix = _pack_period(bin_number)
            for lo, hi in self.curve.ranges(query.envelope, lo_frac, hi_frac,
                                            per_bin_budget):
                out.append((prefix + _pack_curve(lo),
                            prefix + _pack_curve(hi)))
        return out

    def _curve_fraction(self, query: STQuery) -> float:
        bin_number = period_bin(query.t_min, self.period)
        start = period_start(bin_number, self.period)
        lo_frac = max(0.0, (query.t_min - start) / self.period.seconds)
        hi_frac = min(1.0, (query.t_max - start) / self.period.seconds)
        ranges = self.curve.ranges(query.envelope, lo_frac, hi_frac,
                                   min(self.RANGE_BUDGET_CAP,
                                       self.max_ranges))
        return _spatial_fraction_of(ranges, self.curve.max_code() + 1)

    def _temporal_fraction(self, query: STQuery, time_extent) -> float:
        return _bins_fraction(query, self.period, time_extent)
    def _selectivity_floor(self, query: STQuery) -> float:
        """Interleaving makes spatial filtering unreliable inside a
        period (Section IV-B): conservatively assume each touched period
        contributes at least its covered time-slice fraction."""
        if not query.has_temporal:
            return 0.0
        bin_number = period_bin(query.t_min, self.period)
        start = period_start(bin_number, self.period)
        lo_frac = max(0.0, (query.t_min - start) / self.period.seconds)
        hi_frac = min(1.0, (query.t_max - start) / self.period.seconds)
        return max(0.0, hi_frac - lo_frac)



# ---------------------------------------------------------------------------
# The paper's strategies: Z2T and XZ2T
# ---------------------------------------------------------------------------

class Z2TStrategy(IndexStrategy):
    """Z2T (Section IV-B): a separate Z2 index inside each time period.

    Key = ``Num(t) :: Z2(lng, lat)`` (Equation 2).  Temporal filtering is
    done by the period prefix; spatial filtering keeps the full 31-bit Z2
    resolution because the time offset is *not* interleaved into the curve.
    """

    name = "z2t"

    def __init__(self, period: TimePeriod = TimePeriod.DAY, **kwargs):
        super().__init__(**kwargs)
        self.period = period
        self.curve = Z2Curve()

    def _key_body(self, record: IndexedRecord) -> bytes:
        if not record.geometry.is_point():
            raise IndexError_("z2t indexes point geometries only")
        if record.t_min is None:
            raise IndexError_("z2t requires a timestamp")
        env = record.geometry.envelope
        bin_number = period_bin(record.t_min, self.period)
        z = self.curve.index(env.min_lng, env.min_lat)
        return _pack_period(bin_number) + _pack_curve(z)

    def supports(self, query: STQuery) -> bool:
        return query.has_spatial and query.has_temporal

    def _body_ranges(self, query: STQuery) -> list[tuple[bytes, bytes]]:
        x_lo, y_lo, x_hi, y_hi = self.curve.cell_of(query.envelope)
        bins = period_bins_covering(query.t_min, query.t_max, self.period)
        per_bin_budget = max(8, self.max_ranges // max(1, len(bins)))
        spatial = z2_ranges(x_lo, y_lo, x_hi, y_hi,
                            max_ranges=per_bin_budget)
        out: list[tuple[bytes, bytes]] = []
        for bin_number in bins:
            prefix = _pack_period(bin_number)
            for lo, hi in spatial:
                out.append((prefix + _pack_curve(lo),
                            prefix + _pack_curve(hi)))
        return out

    def _curve_fraction(self, query: STQuery) -> float:
        x_lo, y_lo, x_hi, y_hi = self.curve.cell_of(query.envelope)
        ranges = z2_ranges(x_lo, y_lo, x_hi, y_hi,
                           max_ranges=self.max_ranges)
        return _spatial_fraction_of(ranges, 1 << 62)

    def _temporal_fraction(self, query: STQuery, time_extent) -> float:
        return _bins_fraction(query, self.period, time_extent)


class XZ2TStrategy(IndexStrategy):
    """XZ2T (Section IV-C): a separate XZ2 index inside each time period.

    Key = ``Num(t_min) :: XZ2(mbr)`` (Equation 3).  Like XZ3, binning is by
    start time, so queries scan ``lookback_periods`` preceding periods.
    """

    name = "xz2t"

    def __init__(self, period: TimePeriod = TimePeriod.DAY, g: int = 12,
                 lookback_periods: int = 1, **kwargs):
        super().__init__(**kwargs)
        self.period = period
        self.curve = XZ2Curve(g)
        self.lookback_periods = lookback_periods

    def _key_body(self, record: IndexedRecord) -> bytes:
        if record.t_min is None:
            raise IndexError_("xz2t requires a time extent")
        bin_number = period_bin(record.t_min, self.period)
        code = self.curve.index(record.geometry.envelope)
        return _pack_period(bin_number) + _pack_curve(code)

    def supports(self, query: STQuery) -> bool:
        return query.has_spatial and query.has_temporal

    def _body_ranges(self, query: STQuery) -> list[tuple[bytes, bytes]]:
        bins = period_bins_covering(query.t_min, query.t_max, self.period)
        bins = range(bins.start - self.lookback_periods, bins.stop)
        per_bin_budget = max(8, self.max_ranges // max(1, len(bins)))
        spatial = self.curve.ranges(query.envelope, per_bin_budget)
        out: list[tuple[bytes, bytes]] = []
        for bin_number in bins:
            prefix = _pack_period(bin_number)
            for lo, hi in spatial:
                out.append((prefix + _pack_curve(lo),
                            prefix + _pack_curve(hi)))
        return out

    def _curve_fraction(self, query: STQuery) -> float:
        ranges = self.curve.ranges(query.envelope, self.max_ranges)
        return _spatial_fraction_of(ranges, self.curve.max_code() + 1)

    def _temporal_fraction(self, query: STQuery, time_extent) -> float:
        return _bins_fraction(query, self.period, time_extent)


# ---------------------------------------------------------------------------
# Attribute index
# ---------------------------------------------------------------------------

class AttributeStrategy(IndexStrategy):
    """Secondary index over one scalar attribute of the table.

    Values are encoded order-preservingly: strings as UTF-8, numbers as
    biased big-endian doubles.  Serves equality and BETWEEN predicates.
    """

    name = "attr"

    def __init__(self, field: str, **kwargs):
        super().__init__(**kwargs)
        self.field = field
        self._values: dict[str, object] = {}

    @staticmethod
    def encode_value(value) -> bytes:
        if isinstance(value, str):
            return b"s" + value.encode("utf-8")
        if isinstance(value, bool):
            return b"b" + (b"\x01" if value else b"\x00")
        if isinstance(value, (int, float)):
            # Order-preserving double encoding: flip the sign bit for
            # non-negatives, complement for negatives.
            bits = struct.unpack(">Q", struct.pack(">d", float(value)))[0]
            if bits & (1 << 63):
                bits = bits ^ ((1 << 64) - 1)
            else:
                bits = bits | (1 << 63)
            return b"n" + struct.pack(">Q", bits)
        raise IndexError_(
            f"attribute index cannot encode {type(value).__name__}")

    def key_for_value(self, fid: str, value) -> bytes:
        shard = shard_of(fid, self.num_shards)
        return (bytes([shard]) + self.encode_value(value) + b"\x00"
                + fid.encode("utf-8"))

    def _key_body(self, record: IndexedRecord) -> bytes:
        raise IndexError_(
            "attribute index keys are built via key_for_value()")

    def supports(self, query: STQuery) -> bool:
        return False  # never used for spatio-temporal predicates

    def _body_ranges(self, query: STQuery) -> list[tuple[bytes, bytes]]:
        raise IndexError_("attribute index serves value ranges only")

    def ranges_for_value(self, value) -> list[KeyRange]:
        """Key ranges for an equality predicate on the indexed field."""
        body = self.encode_value(value)
        return [KeyRange(bytes([s]) + body + b"\x00",
                         bytes([s]) + body + b"\x00" + b"\xff" * 8)
                for s in range(self.num_shards)]

    def ranges_for_between(self, low, high) -> list[KeyRange]:
        """Key ranges for a BETWEEN predicate on the indexed field."""
        lo = self.encode_value(low)
        hi = self.encode_value(high)
        return [KeyRange(bytes([s]) + lo, bytes([s]) + hi + b"\xff" * 8)
                for s in range(self.num_shards)]


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------

_STRATEGY_NAMES = {
    "z2": Z2Strategy,
    "z3": Z3Strategy,
    "xz2": XZ2Strategy,
    "xz3": XZ3Strategy,
    "z2t": Z2TStrategy,
    "xz2t": XZ2TStrategy,
}


def strategy_from_name(name: str, *, period: TimePeriod = TimePeriod.DAY,
                       num_shards: int = 4,
                       max_ranges: int = DEFAULT_MAX_RANGES) -> IndexStrategy:
    """Build a strategy from a USERDATA hint such as ``'z2t'``.

    A period suffix is accepted for temporal strategies, e.g. ``'z3:year'``.
    """
    base, _, period_name = name.lower().partition(":")
    if period_name:
        period = TimePeriod.from_name(period_name)
    try:
        cls = _STRATEGY_NAMES[base]
    except KeyError:
        valid = ", ".join(sorted(_STRATEGY_NAMES))
        raise IndexError_(
            f"unknown index strategy {name!r}; expected one of {valid}"
        ) from None
    if cls in (Z2Strategy, XZ2Strategy):
        return cls(num_shards=num_shards, max_ranges=max_ranges)
    return cls(period=period, num_shards=num_shards, max_ranges=max_ranges)
