"""Abstract syntax trees for JustQL statements and expressions."""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions ---------------------------------------------------------------

class Expr:
    """Base class of expression nodes."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Literal(Expr):
    value: object


@dataclass(frozen=True, slots=True)
class Column(Expr):
    name: str


@dataclass(frozen=True, slots=True)
class Star(Expr):
    pass


@dataclass(frozen=True, slots=True)
class BinaryOp(Expr):
    """Arithmetic/comparison/logical binary operator.

    ``op`` is one of ``+ - * / % = != < <= > >= and or within like``.
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class UnaryOp(Expr):
    op: str          # "not" or "-"
    operand: Expr


@dataclass(frozen=True, slots=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr


@dataclass(frozen=True, slots=True)
class InFunc(Expr):
    """``expr IN st_KNN(...)`` — set membership against a function."""

    operand: Expr
    func: "FuncCall"


@dataclass(frozen=True, slots=True)
class IsNull(Expr):
    operand: Expr
    negated: bool


@dataclass(frozen=True, slots=True)
class FuncCall(Expr):
    name: str                    # lower-cased
    args: tuple[Expr, ...]

    @property
    def is_star_count(self) -> bool:
        return (self.name == "count" and len(self.args) == 1
                and isinstance(self.args[0], Star))


@dataclass(frozen=True, slots=True)
class Aliased(Expr):
    expr: Expr
    alias: str


# -- statements -----------------------------------------------------------------

class Statement:
    """Base class of statement nodes."""

    __slots__ = ()


@dataclass
class JoinClause:
    """One JOIN ... ON <left column> = <right column> clause."""

    source: "TableSource | SubquerySource"
    left_column: str
    right_column: str
    how: str = "inner"          # "inner" or "left"


@dataclass
class SelectStmt(Statement):
    projections: list[Expr]
    source: "TableSource | SubquerySource | None"
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False
    joins: "list[JoinClause]" = field(default_factory=list)


@dataclass
class TableSource:
    name: str
    alias: str | None = None


@dataclass
class SubquerySource:
    select: SelectStmt
    alias: str | None = None


@dataclass
class CreateTableStmt(Statement):
    name: str
    columns: list[tuple[str, str]]      # (name, raw type spec)
    plugin: str | None = None           # CREATE TABLE x AS trajectory
    userdata: dict = field(default_factory=dict)


@dataclass
class CreateViewStmt(Statement):
    name: str
    select: SelectStmt


@dataclass
class StoreViewStmt(Statement):
    view: str
    table: str


@dataclass
class DropStmt(Statement):
    kind: str       # "table" or "view"
    name: str


@dataclass
class ShowStmt(Statement):
    kind: str       # "tables" or "views"


@dataclass
class DescStmt(Statement):
    name: str


@dataclass
class InsertStmt(Statement):
    table: str
    columns: list[str]
    rows: list[list[Expr]]


@dataclass
class LoadStmt(Statement):
    source: str                     # e.g. "hive:db.table" or "file:x.csv"
    table: str                      # target table (after "geomesa:")
    config: dict
    filter_text: str | None = None


@dataclass
class AnalyzeStmt(Statement):
    """ANALYZE TABLE <name> — snapshot row counts, extents, index sizes
    and per-region key distribution into ``table.stats`` for the
    cost-based planner."""

    table: str


@dataclass
class ExplainStmt(Statement):
    """EXPLAIN [ANALYZE] SELECT ...

    Plain EXPLAIN returns the optimized logical plan as text; EXPLAIN
    ANALYZE executes the plan and annotates every physical operator with
    rows, blocks read, cache hits, and simulated milliseconds.
    """

    select: SelectStmt
    analyze: bool = False
