"""The JustQL SQL engine (Section VI).

The pipeline mirrors the paper: a hand-written lexer + recursive-descent
parser (the ANTLR substitute) produces an AST; the analyzer resolves it
against the catalog into a logical plan; the rule-based optimizer folds
constants and pushes selections/projections down; the executor maps
spatio-temporal predicates onto index scans and everything else onto the
DataFrame engine.

Entry point: :func:`repro.sql.executor.execute_statement`, usually reached
through ``JustEngine.sql``.
"""

from repro.sql.result import ResultSet

__all__ = ["ResultSet"]
