"""The rule-based logical optimizer (Section VI, "SQL Optimize").

Three rewrite rules, exactly the paper's:

1. **Constant folding** — expressions over literals (including
   ``st_makeMBR``/``st_makePoint`` calls) are evaluated once and replaced
   by their values, so ``fid = 52 * 9`` becomes ``fid = 468`` and the MBR
   is computed before the scan.
2. **Selection pushdown** — filter predicates move through projections
   down to the scan node, where spatio-temporal conjuncts become index
   ranges.
3. **Projection pushdown** — only the columns needed by filtering,
   grouping, ordering, and the final projection are read from storage.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.sql.ast import (
    Aliased,
    Between,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    InFunc,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.sql.expressions import (
    eval_expr,
    join_conjuncts,
    referenced_columns,
    split_conjuncts,
)
from repro.sql.functions import SCALAR_FUNCTIONS
from repro.sql.logical import (
    AggregateNode,
    JoinNode,
    DistinctNode,
    FilterNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
    SortNode,
    SystemScanNode,
    ViewScanNode,
)

#: Functions safe to evaluate at plan time when all arguments are literal.
_FOLDABLE = frozenset(SCALAR_FUNCTIONS) - {"st_trajnoisefilter"}


def optimize(plan: LogicalNode) -> LogicalNode:
    """Apply all rules until a fixed point (one pass each suffices here)."""
    plan = _fold_node(plan)
    plan = _push_filters(plan)
    plan = _push_projections(plan)
    return plan


# -- rule 1: constant folding ---------------------------------------------------

def fold_expr(expr: Expr) -> Expr:
    """Recursively replace constant sub-expressions with literals."""
    if isinstance(expr, Literal) or isinstance(expr, Column):
        return expr
    if isinstance(expr, Aliased):
        return Aliased(fold_expr(expr.expr), expr.alias)
    if isinstance(expr, UnaryOp):
        operand = fold_expr(expr.operand)
        folded = UnaryOp(expr.op, operand)
        if isinstance(operand, Literal):
            return _try_literal(folded)
        return folded
    if isinstance(expr, Between):
        folded = Between(fold_expr(expr.operand), fold_expr(expr.low),
                         fold_expr(expr.high))
        if all(isinstance(e, Literal)
               for e in (folded.operand, folded.low, folded.high)):
            return _try_literal(folded)
        return folded
    if isinstance(expr, IsNull):
        operand = fold_expr(expr.operand)
        folded = IsNull(operand, expr.negated)
        if isinstance(operand, Literal):
            return _try_literal(folded)
        return folded
    if isinstance(expr, BinaryOp):
        left, right = fold_expr(expr.left), fold_expr(expr.right)
        folded = BinaryOp(expr.op, left, right)
        if expr.op not in ("and", "or") and isinstance(left, Literal) \
                and isinstance(right, Literal):
            return _try_literal(folded)
        return folded
    if isinstance(expr, FuncCall):
        args = tuple(fold_expr(a) for a in expr.args)
        folded = FuncCall(expr.name, args)
        if expr.name in _FOLDABLE and args and \
                all(isinstance(a, Literal) for a in args):
            return _try_literal(folded)
        return folded
    if isinstance(expr, InFunc):
        return InFunc(fold_expr(expr.operand),
                      FuncCall(expr.func.name,
                               tuple(fold_expr(a) for a in expr.func.args)))
    return expr


def _try_literal(expr: Expr) -> Expr:
    try:
        return Literal(eval_expr(expr, {}))
    except (ExecutionError, ArithmeticError, TypeError, ValueError):
        return expr


def _fold_node(plan: LogicalNode) -> LogicalNode:
    if isinstance(plan, FilterNode):
        return FilterNode(_fold_node(plan.child), fold_expr(plan.predicate))
    if isinstance(plan, ProjectNode):
        return ProjectNode(_fold_node(plan.child),
                           [(fold_expr(e), n) for e, n in plan.projections])
    if isinstance(plan, AggregateNode):
        return AggregateNode(_fold_node(plan.child),
                             [(fold_expr(e), n)
                              for e, n in plan.group_exprs],
                             plan.agg_calls)
    if isinstance(plan, SortNode):
        return SortNode(_fold_node(plan.child),
                        [(fold_expr(e), asc) for e, asc in plan.keys])
    if isinstance(plan, LimitNode):
        return LimitNode(_fold_node(plan.child), plan.limit)
    if isinstance(plan, DistinctNode):
        return DistinctNode(_fold_node(plan.child))
    if isinstance(plan, JoinNode):
        return JoinNode(_fold_node(plan.left), _fold_node(plan.right),
                        plan.left_column, plan.right_column, plan.how)
    return plan


# -- rule 2: selection pushdown --------------------------------------------------

def _push_filters(plan: LogicalNode) -> LogicalNode:
    if isinstance(plan, FilterNode):
        child = _push_filters(plan.child)
        return _push_filter_into(child, plan.predicate)
    if isinstance(plan, ProjectNode):
        return ProjectNode(_push_filters(plan.child), plan.projections)
    if isinstance(plan, AggregateNode):
        return AggregateNode(_push_filters(plan.child), plan.group_exprs,
                             plan.agg_calls)
    if isinstance(plan, SortNode):
        return SortNode(_push_filters(plan.child), plan.keys)
    if isinstance(plan, LimitNode):
        return LimitNode(_push_filters(plan.child), plan.limit)
    if isinstance(plan, DistinctNode):
        return DistinctNode(_push_filters(plan.child))
    if isinstance(plan, JoinNode):
        return JoinNode(_push_filters(plan.left),
                        _push_filters(plan.right),
                        plan.left_column, plan.right_column, plan.how)
    return plan


def _push_filter_into(child: LogicalNode, predicate: Expr) -> LogicalNode:
    """Push a predicate as deep as legal into ``child``."""
    if isinstance(child, ScanNode):
        merged = join_conjuncts(
            split_conjuncts(child.pushed_filter)
            + split_conjuncts(predicate))
        return ScanNode(child.table_name, child.columns, merged,
                        child.pushed_projection)
    if isinstance(child, ViewScanNode):
        merged = join_conjuncts(
            split_conjuncts(child.pushed_filter)
            + split_conjuncts(predicate))
        return ViewScanNode(child.view_name, child.columns, merged)
    if isinstance(child, SystemScanNode):
        merged = join_conjuncts(
            split_conjuncts(child.pushed_filter)
            + split_conjuncts(predicate))
        return SystemScanNode(child.table_name, child.columns, merged)
    if isinstance(child, ProjectNode):
        mapping = _passthrough_mapping(child)
        conjuncts = split_conjuncts(predicate)
        pushable, blocked = [], []
        for conjunct in conjuncts:
            refs = referenced_columns(conjunct)
            if refs <= set(mapping):
                pushable.append(_rename_columns(conjunct, mapping))
            else:
                blocked.append(conjunct)
        node = child
        if pushable:
            node = ProjectNode(
                _push_filter_into(child.child, join_conjuncts(pushable)),
                child.projections)
        if blocked:
            return FilterNode(node, join_conjuncts(blocked))
        return node
    if isinstance(child, JoinNode):
        # Push one-sided conjuncts into the matching join input.
        conjuncts = split_conjuncts(predicate)
        left_cols = set(child.left.columns)
        right_cols = set(child.right.columns)
        to_left, to_right, blocked = [], [], []
        for conjunct in conjuncts:
            refs = referenced_columns(conjunct)
            if refs <= left_cols:
                to_left.append(conjunct)
            elif refs <= right_cols and child.how == "inner":
                to_right.append(conjunct)
            else:
                blocked.append(conjunct)
        left = child.left
        right = child.right
        if to_left:
            left = _push_filter_into(left, join_conjuncts(to_left))
        if to_right:
            right = _push_filter_into(right, join_conjuncts(to_right))
        node = JoinNode(left, right, child.left_column,
                        child.right_column, child.how)
        if blocked:
            return FilterNode(node, join_conjuncts(blocked))
        return node
    if isinstance(child, (SortNode, LimitNode, DistinctNode)):
        # Filtering below a LIMIT changes results; keep the filter here.
        if isinstance(child, LimitNode):
            return FilterNode(child, predicate)
        if isinstance(child, SortNode):
            return SortNode(_push_filter_into(child.child, predicate),
                            child.keys)
        return DistinctNode(_push_filter_into(child.child, predicate))
    return FilterNode(child, predicate)


def _passthrough_mapping(project: ProjectNode) -> dict[str, str]:
    """output name -> input column, for pure column projections."""
    mapping = {}
    for expr, name in project.projections:
        inner = expr.expr if isinstance(expr, Aliased) else expr
        if isinstance(inner, Column):
            mapping[name] = inner.name
    return mapping


def _rename_columns(expr: Expr, mapping: dict[str, str]) -> Expr:
    if isinstance(expr, Column):
        return Column(mapping.get(expr.name, expr.name))
    if isinstance(expr, Aliased):
        return Aliased(_rename_columns(expr.expr, mapping), expr.alias)
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rename_columns(expr.operand, mapping))
    if isinstance(expr, Between):
        return Between(_rename_columns(expr.operand, mapping),
                       _rename_columns(expr.low, mapping),
                       _rename_columns(expr.high, mapping))
    if isinstance(expr, IsNull):
        return IsNull(_rename_columns(expr.operand, mapping), expr.negated)
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, _rename_columns(expr.left, mapping),
                        _rename_columns(expr.right, mapping))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(_rename_columns(a, mapping)
                                         for a in expr.args))
    if isinstance(expr, InFunc):
        return InFunc(_rename_columns(expr.operand, mapping),
                      _rename_columns(expr.func, mapping))
    return expr


# -- rule 3: projection pushdown ---------------------------------------------------

def _push_projections(plan: LogicalNode,
                      needed: set[str] | None = None) -> LogicalNode:
    """Record at each scan the columns actually needed above it."""
    if isinstance(plan, ScanNode):
        if needed is None:
            return plan
        required = set(needed)
        if plan.pushed_filter is not None:
            required |= referenced_columns(plan.pushed_filter)
        pruned = [c for c in plan.columns if c in required]
        if not pruned:
            pruned = plan.columns[:1]
        return ScanNode(plan.table_name, plan.columns, plan.pushed_filter,
                        pruned)
    if isinstance(plan, ViewScanNode):
        return plan
    if isinstance(plan, ProjectNode):
        required: set[str] = set()
        for expr, _name in plan.projections:
            required |= referenced_columns(expr)
        return ProjectNode(_push_projections(plan.child, required),
                           plan.projections)
    if isinstance(plan, FilterNode):
        required = set(needed) if needed is not None else set(
            plan.child.columns)
        required |= referenced_columns(plan.predicate)
        return FilterNode(_push_projections(plan.child, required),
                          plan.predicate)
    if isinstance(plan, AggregateNode):
        required = set()
        for expr, _name in plan.group_exprs:
            required |= referenced_columns(expr)
        for call, _name in plan.agg_calls:
            required |= referenced_columns(call)
        return AggregateNode(_push_projections(plan.child, required),
                             plan.group_exprs, plan.agg_calls)
    if isinstance(plan, SortNode):
        required = set(needed) if needed is not None else set(
            plan.child.columns)
        for expr, _asc in plan.keys:
            required |= referenced_columns(expr)
        return SortNode(_push_projections(plan.child, required), plan.keys)
    if isinstance(plan, LimitNode):
        return LimitNode(_push_projections(plan.child, needed), plan.limit)
    if isinstance(plan, DistinctNode):
        return DistinctNode(_push_projections(plan.child, needed))
    if isinstance(plan, JoinNode):
        left_needed = None
        right_needed = None
        if needed is not None:
            left_needed = ({c for c in needed if c in plan.left.columns}
                           | {plan.left_column})
            right_needed = ({c for c in needed
                             if c in plan.right.columns}
                            | {plan.right_column})
        return JoinNode(_push_projections(plan.left, left_needed),
                        _push_projections(plan.right, right_needed),
                        plan.left_column, plan.right_column, plan.how)
    return plan
