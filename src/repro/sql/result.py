"""Result sets with cursor semantics and chunked transport.

The paper's data flow (Figure 2) returns small results directly but spills
large ones to HDFS in parts, which the SDK then streams so the driver
never materializes everything at once; users iterate "like a database
cursor".  :class:`ResultSet` reproduces that interface: results are held
as chunks, each chunk's transfer charges the simulated network, and
``has_next``/``next`` walk rows across chunk boundaries.
"""

from __future__ import annotations

from repro.cluster.simclock import SimJob
from repro.dataframe import DataFrame

#: Results with at most this many rows return in one transmission.
DEFAULT_DIRECT_ROWS = 10_000
#: Chunk size for the multi-transmission (HDFS-spill) path.
DEFAULT_CHUNK_ROWS = 2_000
#: Simulated cost of one extra fetch round trip (driver -> HDFS).
CHUNK_FETCH_MS = 15.0


class ResultSet:
    """Iterable query result with ``has_next()``/``next()`` cursor API."""

    def __init__(self, columns: list[str], chunks: list[list[dict]],
                 job: SimJob | None = None, message: str | None = None):
        self.columns = list(columns)
        self._chunks = chunks
        self.job = job
        self.message = message
        self._chunk_index = 0
        self._row_index = 0
        #: Regions a partial-results scan skipped (list of dicts with
        #: table/region_id/server/reason); empty for complete results.
        self.skipped_regions: list[dict] = []

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_dataframe(cls, df: DataFrame, job: SimJob,
                       direct_rows: int = DEFAULT_DIRECT_ROWS,
                       chunk_rows: int = DEFAULT_CHUNK_ROWS) -> "ResultSet":
        rows = df.collect()
        if len(rows) <= direct_rows:
            chunks = [rows]
        else:
            chunks = [rows[i:i + chunk_rows]
                      for i in range(0, len(rows), chunk_rows)]
            # First chunk ships with the reply; later fetches pay a round
            # trip each (the HDFS spill path of Figure 2).
            job.charge_fixed("chunk_fetch",
                             CHUNK_FETCH_MS * (len(chunks) - 1))
        return cls(df.columns, chunks, job)

    @classmethod
    def from_rows(cls, rows: list[dict], columns: list[str] | None = None,
                  job: SimJob | None = None) -> "ResultSet":
        if columns is None:
            columns = list(rows[0].keys()) if rows else []
        return cls(columns, [rows], job)

    @classmethod
    def status(cls, message: str, job: SimJob | None = None) -> "ResultSet":
        return cls(["status"], [[{"status": message}]], job,
                   message=message)

    # -- cursor API -------------------------------------------------------------
    def has_next(self) -> bool:
        """True while rows remain (may advance to the next chunk)."""
        while self._chunk_index < len(self._chunks):
            if self._row_index < len(self._chunks[self._chunk_index]):
                return True
            self._chunk_index += 1
            self._row_index = 0
        return False

    def next(self) -> dict:
        """The next row; call :meth:`has_next` first."""
        if not self.has_next():
            raise StopIteration("result set exhausted")
        row = self._chunks[self._chunk_index][self._row_index]
        self._row_index += 1
        return row

    def __iter__(self):
        # Iteration drives the cursor: mixing ``next()`` with ``for row
        # in rs`` must not re-read consumed rows (a cursor, like the
        # paper's SDK, has one position — it used to restart from row 0
        # and hand duplicates to code that had already called next()).
        while self.has_next():
            yield self.next()

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)

    # -- convenience ----------------------------------------------------------------
    @property
    def rows(self) -> list[dict]:
        """All rows materialized (test/benchmark convenience)."""
        return [row for chunk in self._chunks for row in chunk]

    @property
    def sim_ms(self) -> float:
        return self.job.elapsed_ms if self.job is not None else 0.0

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    @property
    def is_partial(self) -> bool:
        """True when a partial-results scan skipped unavailable regions."""
        return bool(self.skipped_regions)

    def __repr__(self) -> str:
        return (f"ResultSet({len(self)} rows, {self.num_chunks} chunks, "
                f"columns={self.columns})")
