"""Expression evaluation and manipulation utilities."""

from __future__ import annotations

import re

from repro.errors import ExecutionError
from repro.sql.ast import (
    Aliased,
    Between,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    InFunc,
    IsNull,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.functions import (
    SCALAR_FUNCTIONS,
    SET_FUNCTIONS,
    lookup_scalar,
)


def eval_expr(expr: Expr, row: dict,
              extra_functions: dict | None = None):
    """Evaluate an expression against one row (dict of column values)."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Column):
        if expr.name not in row:
            raise ExecutionError(f"unknown column {expr.name!r}")
        return row[expr.name]
    if isinstance(expr, Aliased):
        return eval_expr(expr.expr, row, extra_functions)
    if isinstance(expr, UnaryOp):
        value = eval_expr(expr.operand, row, extra_functions)
        if expr.op == "-":
            return None if value is None else -value
        if expr.op == "not":
            return None if value is None else not _truthy(value)
        raise ExecutionError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Between):
        value = eval_expr(expr.operand, row, extra_functions)
        low = eval_expr(expr.low, row, extra_functions)
        high = eval_expr(expr.high, row, extra_functions)
        if value is None or low is None or high is None:
            return None
        return low <= value <= high
    if isinstance(expr, IsNull):
        value = eval_expr(expr.operand, row, extra_functions)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, row, extra_functions)
    if isinstance(expr, FuncCall):
        if extra_functions and expr.name in extra_functions:
            fn = extra_functions[expr.name]
        elif expr.name in SET_FUNCTIONS:
            raise ExecutionError(
                f"{expr.name} produces multiple rows; use it as the "
                f"projection of a SELECT")
        else:
            fn = lookup_scalar(expr.name)
        args = [eval_expr(a, row, extra_functions) for a in expr.args]
        return fn(*args)
    if isinstance(expr, InFunc):
        raise ExecutionError(
            f"{expr.func.name} membership must be served by the planner")
    if isinstance(expr, Star):
        raise ExecutionError("'*' is not a value expression")
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


def _truthy(value) -> bool:
    return bool(value)


def _eval_binary(expr: BinaryOp, row: dict, extra_functions):
    op = expr.op
    if op == "and":
        left = eval_expr(expr.left, row, extra_functions)
        if left is not None and not _truthy(left):
            return False
        right = eval_expr(expr.right, row, extra_functions)
        if right is not None and not _truthy(right):
            return False
        if left is None or right is None:
            return None
        return True
    if op == "or":
        left = eval_expr(expr.left, row, extra_functions)
        if left is not None and _truthy(left):
            return True
        right = eval_expr(expr.right, row, extra_functions)
        if right is not None and _truthy(right):
            return True
        if left is None or right is None:
            return None
        return False
    left = eval_expr(expr.left, row, extra_functions)
    right = eval_expr(expr.right, row, extra_functions)
    if op == "within":
        return SCALAR_FUNCTIONS["st_within"](left, right)
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None
        quotient = left / right
        return quotient
    if op == "%":
        if right == 0:
            return None
        return left % right
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "like":
        return _like(str(left), str(right))
    raise ExecutionError(f"unknown operator {op!r}")


def _like(value: str, pattern: str) -> bool:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value) is not None


# -- structural helpers -------------------------------------------------------

def referenced_columns(expr: Expr) -> set[str]:
    """All column names mentioned anywhere in an expression."""
    out: set[str] = set()

    def walk(node: Expr) -> None:
        if isinstance(node, Column):
            out.add(node.name)
        elif isinstance(node, Aliased):
            walk(node.expr)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, IsNull):
            walk(node.operand)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, InFunc):
            walk(node.operand)
            walk(node.func)

    walk(expr)
    return out


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def join_conjuncts(conjuncts: list[Expr]) -> Expr | None:
    """Rebuild a predicate from conjuncts (inverse of split)."""
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = BinaryOp("and", combined, conjunct)
    return combined


def expr_name(expr: Expr, index: int) -> str:
    """Output column name for an unaliased projection expression."""
    if isinstance(expr, Aliased):
        return expr.alias
    if isinstance(expr, Column):
        return expr.name
    if isinstance(expr, FuncCall):
        if expr.is_star_count:
            return "count"
        if len(expr.args) == 1 and isinstance(expr.args[0], Column):
            return f"{expr.name}_{expr.args[0].name}"
        return expr.name
    return f"_col{index}"


def contains_aggregate(expr: Expr) -> bool:
    """True when the expression involves an aggregate function call."""
    from repro.sql.functions import AGGREGATE_FUNCTIONS

    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, Aliased):
        return contains_aggregate(expr.expr)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or \
            contains_aggregate(expr.right)
    if isinstance(expr, Between):
        return any(contains_aggregate(e)
                   for e in (expr.operand, expr.low, expr.high))
    return False
