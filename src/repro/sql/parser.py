"""Recursive-descent parser for JustQL (the ANTLR substitute)."""

from __future__ import annotations

import ast as _pyast

from repro.errors import ParseError
from repro.sql.ast import (
    Aliased,
    AnalyzeStmt,
    ExplainStmt,
    JoinClause,
    Between,
    BinaryOp,
    Column,
    CreateTableStmt,
    CreateViewStmt,
    DescStmt,
    DropStmt,
    Expr,
    FuncCall,
    InFunc,
    InsertStmt,
    IsNull,
    Literal,
    LoadStmt,
    SelectStmt,
    ShowStmt,
    Star,
    Statement,
    StoreViewStmt,
    SubquerySource,
    TableSource,
    UnaryOp,
)
from repro.sql.lexer import Token, tokenize

_COMPARISONS = {"=", "!=", "<>", "<", "<=", ">", ">="}


def parse_statement(statement: str) -> Statement:
    """Parse one JustQL statement into an AST node."""
    return _Parser(statement).parse()


class _Parser:
    def __init__(self, statement: str):
        self.statement = statement
        self.tokens = tokenize(statement)
        self.index = 0

    # -- token helpers ------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.peek().position, self.statement)

    def accept_keyword(self, *words: str) -> bool:
        token = self.peek()
        if token.kind == "keyword" and token.lowered in words:
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word.upper()}, "
                             f"got {self.peek().text!r}")

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token.kind == "symbol" and token.text == symbol:
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise self.error(f"expected {symbol!r}, got {self.peek().text!r}")

    def expect_name(self) -> str:
        token = self.peek()
        if token.kind in ("ident", "keyword"):
            self.advance()
            return token.text
        raise self.error(f"expected a name, got {token.text!r}")

    # -- statement dispatch ------------------------------------------------------
    def parse(self) -> Statement:
        token = self.peek()
        if token.kind != "keyword":
            raise self.error(f"statement must start with a keyword, "
                             f"got {token.text!r}")
        word = token.lowered
        handlers = {
            "select": self._parse_select_statement,
            "explain": self._parse_explain,
            "create": self._parse_create,
            "drop": self._parse_drop,
            "show": self._parse_show,
            "desc": self._parse_desc,
            "describe": self._parse_desc,
            "insert": self._parse_insert,
            "load": self._parse_load,
            "store": self._parse_store,
            "analyze": self._parse_analyze,
        }
        handler = handlers.get(word)
        if handler is None:
            raise self.error(f"unsupported statement {word.upper()!r}")
        result = handler()
        self.accept_symbol(";")
        if self.peek().kind != "end":
            raise self.error(f"trailing input: {self.peek().text!r}")
        return result

    # -- SELECT --------------------------------------------------------------------
    def _parse_select_statement(self) -> SelectStmt:
        return self._parse_select()

    def _parse_select(self) -> SelectStmt:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        projections = [self._parse_projection()]
        while self.accept_symbol(","):
            projections.append(self._parse_projection())
        source = None
        joins: list[JoinClause] = []
        if self.accept_keyword("from"):
            source = self._parse_source()
            joins = self._parse_joins()
        where = None
        if self.accept_keyword("where"):
            where = self._parse_expr()
        group_by: list[Expr] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self._parse_expr())
            while self.accept_symbol(","):
                group_by.append(self._parse_expr())
        having = None
        if self.accept_keyword("having"):
            having = self._parse_expr()
        order_by: list[tuple[Expr, bool]] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self.accept_symbol(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.kind != "number":
                raise self.error("LIMIT expects a number")
            limit = int(float(token.text))
        return SelectStmt(projections, source, where, group_by, having,
                          order_by, limit, distinct, joins)

    def _parse_joins(self) -> "list[JoinClause]":
        joins: list[JoinClause] = []
        while True:
            how = "inner"
            if self.accept_keyword("left"):
                how = "left"
                self.expect_keyword("join")
            elif self.accept_keyword("inner"):
                self.expect_keyword("join")
            elif self.accept_keyword("join"):
                pass
            else:
                return joins
            source = self._parse_source()
            self.expect_keyword("on")
            left = self.expect_name()
            self.expect_symbol("=")
            right = self.expect_name()
            joins.append(JoinClause(source, left, right, how))

    def _parse_explain(self) -> ExplainStmt:
        self.expect_keyword("explain")
        analyze = self.accept_keyword("analyze")
        return ExplainStmt(self._parse_select(), analyze=analyze)

    def _parse_analyze(self) -> AnalyzeStmt:
        self.expect_keyword("analyze")
        self.expect_keyword("table")
        return AnalyzeStmt(self._parse_dotted_name())

    def _parse_order_item(self) -> tuple[Expr, bool]:
        expr = self._parse_expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return expr, ascending

    def _parse_projection(self) -> Expr:
        if self.accept_symbol("*"):
            return Star()
        expr = self._parse_expr()
        if self.accept_keyword("as"):
            return Aliased(expr, self.expect_name())
        token = self.peek()
        if token.kind == "ident":
            self.advance()
            return Aliased(expr, token.text)
        return expr

    def _parse_source(self):
        if self.accept_symbol("("):
            select = self._parse_select()
            self.expect_symbol(")")
            alias = None
            if self.peek().kind == "ident":
                alias = self.advance().text
            return SubquerySource(select, alias)
        name = self._parse_dotted_name()
        alias = None
        if self.peek().kind == "ident":
            alias = self.advance().text
        return TableSource(name, alias)

    def _parse_dotted_name(self) -> str:
        """A possibly-dotted table name such as ``sys.regions``."""
        name = self.expect_name()
        while self.accept_symbol("."):
            name += "." + self.expect_name()
        return name

    # -- expressions -------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        token = self.peek()
        if token.kind == "symbol" and token.text in _COMPARISONS:
            self.advance()
            op = "!=" if token.text == "<>" else token.text
            return BinaryOp(op, left, self._parse_additive())
        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high)
        if self.accept_keyword("within"):
            return BinaryOp("within", left, self._parse_additive())
        if self.accept_keyword("like"):
            pattern = self._parse_additive()
            return BinaryOp("like", left, pattern)
        if self.accept_keyword("in"):
            func = self._parse_additive()
            if not isinstance(func, FuncCall):
                raise self.error("IN expects a set function such as st_KNN")
            return InFunc(left, func)
        if self.accept_keyword("is"):
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNull(left, negated)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            if self.accept_symbol("+"):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self.accept_symbol("-"):
                left = BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self.accept_symbol("*"):
                left = BinaryOp("*", left, self._parse_unary())
            elif self.accept_symbol("/"):
                left = BinaryOp("/", left, self._parse_unary())
            elif self.accept_symbol("%"):
                left = BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self.accept_symbol("-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            text = token.text
            value = float(text) if ("." in text or "e" in text.lower()) \
                else int(text)
            return Literal(value)
        if token.kind == "string":
            self.advance()
            return Literal(token.text)
        if self.accept_keyword("true"):
            return Literal(True)
        if self.accept_keyword("false"):
            return Literal(False)
        if self.accept_keyword("null"):
            return Literal(None)
        if self.accept_symbol("("):
            expr = self._parse_expr()
            self.expect_symbol(")")
            return expr
        if token.kind in ("ident", "keyword"):
            name = self.expect_name()
            if self.accept_symbol("("):
                args: list[Expr] = []
                if not self.accept_symbol(")"):
                    while True:
                        if self.accept_symbol("*"):
                            args.append(Star())
                        else:
                            args.append(self._parse_expr())
                        if self.accept_symbol(")"):
                            break
                        self.expect_symbol(",")
                return FuncCall(name.lower(), tuple(args))
            return Column(name)
        raise self.error(f"unexpected token {token.text!r} in expression")

    # -- CREATE / DROP / SHOW / DESC -----------------------------------------------------
    def _parse_create(self) -> Statement:
        self.expect_keyword("create")
        if self.accept_keyword("view"):
            name = self.expect_name()
            self.expect_keyword("as")
            return CreateViewStmt(name, self._parse_select())
        self.expect_keyword("table")
        name = self.expect_name()
        if self.accept_keyword("as"):
            plugin = self.expect_name()
            userdata = self._parse_optional_with()
            userdata.update(self._parse_optional_userdata())
            return CreateTableStmt(name, [], plugin, userdata)
        self.expect_symbol("(")
        columns = []
        while True:
            columns.append(self._parse_column_definition())
            if self.accept_symbol(")"):
                break
            self.expect_symbol(",")
        userdata = self._parse_optional_with()
        userdata.update(self._parse_optional_userdata())
        return CreateTableStmt(name, columns, None, userdata)

    def _parse_column_definition(self) -> tuple[str, str]:
        """Column name plus the raw type spec text (``point:srid=4326``)."""
        name = self.expect_name()
        start = self.peek().position
        depth = 0
        while True:
            token = self.peek()
            if token.kind == "end":
                raise self.error("unterminated column definition")
            if token.kind == "symbol":
                if token.text == "(":
                    depth += 1
                elif token.text == ")":
                    if depth == 0:
                        break
                    depth -= 1
                elif token.text == "," and depth == 0:
                    break
            self.advance()
        type_spec = self.statement[start:self.peek().position].strip()
        if not type_spec:
            raise self.error(f"column {name!r} is missing a type")
        return name, type_spec

    def _parse_optional_userdata(self) -> dict:
        if not self.accept_keyword("userdata"):
            return {}
        return self._parse_braced_dict()

    def _parse_optional_with(self) -> dict:
        """``WITH (key = value, ...)`` table options, folded into userdata.

        Bare option names get the ``just.`` prefix — ``WITH
        (presplit=8, salt_buckets=4)`` is sugar for ``USERDATA
        {'just.presplit': 8, 'just.salt_buckets': 4}`` — while dotted
        names pass through verbatim.  An explicit USERDATA clause after
        the WITH clause wins on conflicting keys.
        """
        if not self.accept_keyword("with"):
            return {}
        self.expect_symbol("(")
        options: dict = {}
        while True:
            key = self.expect_name()
            while self.accept_symbol("."):
                key = f"{key}.{self.expect_name()}"
            self.expect_symbol("=")
            if "." not in key:
                key = f"just.{key}"
            options[key] = self._parse_with_value()
            if self.accept_symbol(")"):
                break
            self.expect_symbol(",")
        return options

    def _parse_with_value(self):
        """One WITH option value: number, string, boolean, or bare word."""
        token = self.peek()
        if token.kind == "number":
            self.advance()
            text = token.text
            return float(text) if ("." in text or "e" in text.lower()) \
                else int(text)
        if token.kind == "string":
            self.advance()
            return token.text
        if self.accept_keyword("true"):
            return True
        if self.accept_keyword("false"):
            return False
        if token.kind in ("ident", "keyword"):
            self.advance()
            return token.text
        raise self.error(f"expected a WITH option value, "
                         f"got {token.text!r}")

    def _parse_braced_dict(self) -> dict:
        """Parse a ``{...}`` JSON-ish literal from the raw statement text."""
        token = self.peek()
        if not (token.kind == "symbol" and token.text == "{"):
            raise self.error("expected a '{...}' literal")
        start = token.position
        text = self.statement
        depth = 0
        i = start
        in_string: str | None = None
        while i < len(text):
            ch = text[i]
            if in_string:
                if ch == in_string:
                    in_string = None
            elif ch in "'\"":
                in_string = ch
            elif ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        else:
            raise self.error("unterminated '{...}' literal")
        raw = text[start:i + 1]
        try:
            value = _pyast.literal_eval(raw)
        except (ValueError, SyntaxError) as exc:
            raise ParseError(f"malformed JSON literal: {exc}", start,
                             text) from None
        if not isinstance(value, dict):
            raise ParseError("expected a JSON object", start, text)
        # Skip past the consumed literal.
        while self.peek().kind != "end" and self.peek().position <= i:
            self.advance()
        return value

    def _parse_drop(self) -> DropStmt:
        self.expect_keyword("drop")
        if self.accept_keyword("table"):
            kind = "table"
        elif self.accept_keyword("view"):
            kind = "view"
        else:
            raise self.error("DROP expects TABLE or VIEW")
        return DropStmt(kind, self.expect_name())

    def _parse_show(self) -> ShowStmt:
        self.expect_keyword("show")
        if self.accept_keyword("tables"):
            return ShowStmt("tables")
        if self.accept_keyword("views"):
            return ShowStmt("views")
        raise self.error("SHOW expects TABLES or VIEWS")

    def _parse_desc(self) -> DescStmt:
        self.advance()  # DESC or DESCRIBE
        self.accept_keyword("table") or self.accept_keyword("view")
        return DescStmt(self._parse_dotted_name())

    # -- INSERT ---------------------------------------------------------------------------
    def _parse_insert(self) -> InsertStmt:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_name()
        columns: list[str] = []
        if self.accept_symbol("("):
            while True:
                columns.append(self.expect_name())
                if self.accept_symbol(")"):
                    break
                self.expect_symbol(",")
        self.expect_keyword("values")
        rows: list[list[Expr]] = []
        while True:
            self.expect_symbol("(")
            row: list[Expr] = []
            while True:
                row.append(self._parse_expr())
                if self.accept_symbol(")"):
                    break
                self.expect_symbol(",")
            rows.append(row)
            if not self.accept_symbol(","):
                break
        return InsertStmt(table, columns, rows)

    # -- LOAD / STORE ------------------------------------------------------------------------
    def _parse_load(self) -> LoadStmt:
        self.expect_keyword("load")
        source = self._raw_until_keyword("to")
        self.expect_keyword("to")
        target = self._raw_until_keyword("config")
        self.expect_keyword("config")
        config = self._parse_braced_dict()
        filter_text = None
        if self.accept_keyword("filter"):
            token = self.advance()
            if token.kind != "string":
                raise self.error("FILTER expects a quoted string")
            filter_text = token.text
        _, _, table = target.partition(":")
        return LoadStmt(source.strip(), (table or target).strip(), config,
                        filter_text)

    def _raw_until_keyword(self, word: str) -> str:
        start = self.peek().position
        while True:
            token = self.peek()
            if token.kind == "end":
                raise self.error(f"expected {word.upper()} clause")
            if token.kind == "keyword" and token.lowered == word:
                return self.statement[start:token.position].strip()
            self.advance()

    def _parse_store(self) -> StoreViewStmt:
        self.expect_keyword("store")
        self.expect_keyword("view")
        view = self.expect_name()
        self.expect_keyword("to")
        self.expect_keyword("table")
        table = self.expect_name()
        return StoreViewStmt(view, table)
