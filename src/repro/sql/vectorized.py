"""Batch-at-a-time expression evaluation over :class:`RowBatch`es.

``eval_expr_batch`` mirrors :func:`repro.sql.expressions.eval_expr`
value-for-value — SQL three-valued logic, ``NULL`` propagation, division
by zero yielding ``NULL`` — but walks the expression tree once per batch
and loops over column lists at the leaves, instead of re-dispatching the
tree for every row.

One deliberate difference: ``AND``/``OR`` evaluate both sides for the
whole batch (no per-row short-circuit), so a side that would raise only
on short-circuited rows raises here.  Callers treat any raise as "this
batch is not vectorizable" and fall back to the row-at-a-time
evaluator, which preserves exact row-path semantics.
"""

from __future__ import annotations

from repro.dataframe.batch import RowBatch
from repro.errors import ExecutionError
from repro.sql.ast import (
    Aliased,
    Between,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    InFunc,
    IsNull,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.expressions import _like
from repro.sql.functions import (
    SCALAR_FUNCTIONS,
    SET_FUNCTIONS,
    lookup_scalar,
)


def eval_expr_batch(expr: Expr, batch: RowBatch,
                    extra_functions: dict | None = None) -> list:
    """Evaluate ``expr`` over every row of ``batch``; returns one list
    of results, index-aligned with the batch's rows."""
    n = len(batch)
    if isinstance(expr, Literal):
        return [expr.value] * n
    if isinstance(expr, Column):
        if expr.name not in batch:
            raise ExecutionError(f"unknown column {expr.name!r}")
        return batch.column(expr.name)
    if isinstance(expr, Aliased):
        return eval_expr_batch(expr.expr, batch, extra_functions)
    if isinstance(expr, UnaryOp):
        values = eval_expr_batch(expr.operand, batch, extra_functions)
        if expr.op == "-":
            return [None if v is None else -v for v in values]
        if expr.op == "not":
            return [None if v is None else not bool(v) for v in values]
        raise ExecutionError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Between):
        values = eval_expr_batch(expr.operand, batch, extra_functions)
        lows = eval_expr_batch(expr.low, batch, extra_functions)
        highs = eval_expr_batch(expr.high, batch, extra_functions)
        return [None if v is None or lo is None or hi is None
                else lo <= v <= hi
                for v, lo, hi in zip(values, lows, highs)]
    if isinstance(expr, IsNull):
        values = eval_expr_batch(expr.operand, batch, extra_functions)
        if expr.negated:
            return [v is not None for v in values]
        return [v is None for v in values]
    if isinstance(expr, BinaryOp):
        return _eval_binary_batch(expr, batch, extra_functions)
    if isinstance(expr, FuncCall):
        if extra_functions and expr.name in extra_functions:
            fn = extra_functions[expr.name]
        elif expr.name in SET_FUNCTIONS:
            raise ExecutionError(
                f"{expr.name} produces multiple rows; use it as the "
                f"projection of a SELECT")
        else:
            fn = lookup_scalar(expr.name)
        arg_lists = [eval_expr_batch(a, batch, extra_functions)
                     for a in expr.args]
        return [fn(*args) for args in zip(*arg_lists)] if arg_lists \
            else [fn() for _ in range(n)]
    if isinstance(expr, InFunc):
        raise ExecutionError(
            f"{expr.func.name} membership must be served by the planner")
    if isinstance(expr, Star):
        raise ExecutionError("'*' is not a value expression")
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


def _eval_binary_batch(expr: BinaryOp, batch: RowBatch,
                       extra_functions) -> list:
    op = expr.op
    lefts = eval_expr_batch(expr.left, batch, extra_functions)
    rights = eval_expr_batch(expr.right, batch, extra_functions)
    if op == "and":
        out = []
        for left, right in zip(lefts, rights):
            if (left is not None and not bool(left)) or \
                    (right is not None and not bool(right)):
                out.append(False)
            elif left is None or right is None:
                out.append(None)
            else:
                out.append(True)
        return out
    if op == "or":
        out = []
        for left, right in zip(lefts, rights):
            if (left is not None and bool(left)) or \
                    (right is not None and bool(right)):
                out.append(True)
            elif left is None or right is None:
                out.append(None)
            else:
                out.append(False)
        return out
    if op == "within":
        within = SCALAR_FUNCTIONS["st_within"]
        return [within(left, right)
                for left, right in zip(lefts, rights)]
    fn = _BINARY_OPS.get(op)
    if fn is None:
        raise ExecutionError(f"unknown operator {op!r}")
    return [None if left is None or right is None else fn(left, right)
            for left, right in zip(lefts, rights)]


_BINARY_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: None if b == 0 else a / b,
    "%": lambda a, b: None if b == 0 else a % b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "like": lambda a, b: _like(str(a), str(b)),
}
