"""The JustQL function registry: scalar, set (1-N), and aggregate.

The preset ``st_*`` operations of Section V are registered here so the SQL
executor can dispatch them.  Scalar functions map one row to one value;
set functions map one row to many rows (the engine's own 1-N executors,
since the Spark UDF mechanism cannot do this); N-M functions run over the
whole input (DBSCAN); aggregates fold groups.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.dataframe.functions import (
    agg_avg,
    agg_collect,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
)
from repro.errors import ExecutionError
from repro.geometry.distance import euclidean_distance, haversine_distance_m
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.geometry.wkt import from_wkt, to_wkt
from repro.ops.analysis.noise_filter import traj_noise_filter
from repro.ops.analysis.segmentation import traj_segment
from repro.ops.analysis.staypoint import traj_stay_points
from repro.ops.analysis.transforms import (
    st_bd09_to_gcj02,
    st_gcj02_to_bd09,
    st_gcj02_to_wgs84,
    st_wgs84_to_gcj02,
)


def _as_point(*args) -> Point:
    """Accept either one Point or an (lng, lat) pair."""
    if len(args) == 1 and isinstance(args[0], Point):
        return args[0]
    if len(args) == 2:
        return Point(float(args[0]), float(args[1]))
    raise ExecutionError(
        "expected a point or an (lng, lat) pair of coordinates")


def _st_distance(a, b) -> float:
    pa, pb = _as_point(a), _as_point(b)
    return euclidean_distance(pa.lng, pa.lat, pb.lng, pb.lat)


def _st_distance_m(a, b) -> float:
    pa, pb = _as_point(a), _as_point(b)
    return haversine_distance_m(pa.lng, pa.lat, pb.lng, pb.lat)


def _st_within(geometry, envelope) -> bool:
    if geometry is None or envelope is None:
        return False
    if not isinstance(envelope, Envelope):
        raise ExecutionError("WITHIN expects an MBR (st_makeMBR)")
    if isinstance(geometry, Point):
        return envelope.contains_point(geometry.lng, geometry.lat)
    return envelope.contains(geometry.envelope)


def _st_intersects(geometry, envelope) -> bool:
    if geometry is None or envelope is None:
        return False
    if not isinstance(envelope, Envelope):
        raise ExecutionError("st_intersects expects an MBR")
    return geometry.intersects_envelope(envelope)


#: Scalar functions: name -> callable(values...) -> value.
SCALAR_FUNCTIONS: dict[str, Callable] = {
    "st_makembr": lambda a, b, c, d: Envelope(float(a), float(b),
                                              float(c), float(d)),
    "st_makepoint": lambda lng, lat: Point(float(lng), float(lat)),
    "st_point": lambda lng, lat: Point(float(lng), float(lat)),
    "st_x": lambda p: p.lng if p is not None else None,
    "st_y": lambda p: p.lat if p is not None else None,
    "st_within": _st_within,
    "st_intersects": _st_intersects,
    "st_distance": _st_distance,
    "st_distance_m": _st_distance_m,
    "st_geomfromtext": lambda text: from_wkt(text),
    "st_astext": lambda g: to_wkt(g) if g is not None else None,
    "st_wgs84togcj02": lambda *a: st_wgs84_to_gcj02(_as_point(*a)),
    "st_gcj02towgs84": lambda *a: st_gcj02_to_wgs84(_as_point(*a)),
    "st_gcj02tobd09": lambda *a: st_gcj02_to_bd09(_as_point(*a)),
    "st_bd09togcj02": lambda *a: st_bd09_to_gcj02(_as_point(*a)),
    "st_trajnoisefilter": lambda item, *p: traj_noise_filter(item, *p),
    "st_trajlength_m": lambda item: item.length_m(),
    "st_trajduration_s": lambda item: item.duration_s(),
    # generic SQL scalars
    "upper": lambda s: s.upper() if s is not None else None,
    "lower": lambda s: s.lower() if s is not None else None,
    "length": lambda s: len(s) if s is not None else None,
    "abs": lambda v: abs(v) if v is not None else None,
    "round": lambda v, nd=0: round(v, int(nd)) if v is not None else None,
    "floor": lambda v: math.floor(v) if v is not None else None,
    "ceil": lambda v: math.ceil(v) if v is not None else None,
    "concat": lambda *parts: "".join(str(p) for p in parts
                                     if p is not None),
    "coalesce": lambda *vals: next((v for v in vals if v is not None),
                                   None),
}

#: Set (1-N) functions: one input row expands to len(result) output rows.
SET_FUNCTIONS: dict[str, Callable] = {
    "st_trajsegmentation": lambda item, *p: traj_segment(item, *p),
    "st_trajstaypoint": lambda item, *p: traj_stay_points(item, *p),
    # st_trajMapMatching needs the engine's road network; the executor
    # injects it via make_map_matching_function().
}

#: N-M functions, handled specially by the physical executor.
NM_FUNCTIONS = frozenset({"st_dbscan"})

#: Aggregate functions: name -> factory(column_name) -> AggregateSpec.
AGGREGATE_FUNCTIONS: dict[str, Callable] = {
    "count": agg_count,
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "collect_list": agg_collect,
}

#: Functions the scan planner consumes; calling them as scalars is an error.
PLANNER_FUNCTIONS = frozenset({"st_knn"})


def make_map_matching_function(network):
    """Bind st_trajMapMatching to a road network instance."""
    from repro.ops.analysis.mapmatching import map_match

    def matcher(item, *params):
        return map_match(item, network)

    return matcher


def is_aggregate_call(name: str) -> bool:
    return name in AGGREGATE_FUNCTIONS


def lookup_scalar(name: str) -> Callable:
    try:
        return SCALAR_FUNCTIONS[name]
    except KeyError:
        if name in PLANNER_FUNCTIONS:
            raise ExecutionError(
                f"{name} is only valid in WHERE ... IN {name}(...)"
            ) from None
        raise ExecutionError(f"unknown function {name!r}") from None
