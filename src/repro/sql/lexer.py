"""Tokenizer for JustQL."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "create", "table", "view", "views", "tables", "drop", "show", "desc",
    "describe", "as", "select", "from", "where", "group", "order", "by",
    "asc", "desc", "limit", "and", "or", "not", "between", "in", "within",
    "insert", "into", "values", "load", "to", "config", "filter",
    "userdata", "with", "store", "distinct", "having", "join", "on", "null",
    "true", "false", "is", "like", "explain", "inner", "left", "analyze",
}

_SYMBOLS = ("<=", ">=", "!=", "<>", "::", "(", ")", ",", ".", ";", "=",
            "<", ">", "*", "+", "-", "/", "%", "{", "}", ":", "[", "]", "|")


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token: kind is ``ident``, ``keyword``, ``number``,
    ``string``, ``symbol``, or ``end``."""

    kind: str
    text: str
    position: int

    @property
    def lowered(self) -> str:
        return self.text.lower()


def tokenize(statement: str) -> list[Token]:
    """Tokenize a JustQL statement; raises ParseError on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(statement)
    while i < n:
        ch = statement[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and statement.startswith("--", i):
            end = statement.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            buf = []
            while j < n:
                if statement[j] == quote:
                    if j + 1 < n and statement[j + 1] == quote:
                        buf.append(quote)  # doubled quote escape
                        j += 2
                        continue
                    break
                buf.append(statement[j])
                j += 1
            else:
                raise ParseError("unterminated string literal", i, statement)
            tokens.append(Token("string", "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n
                            and statement[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = statement[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and statement[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("number", statement[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (statement[j].isalnum() or statement[j] == "_"):
                j += 1
            text = statement[i:j]
            kind = "keyword" if text.lower() in KEYWORDS else "ident"
            tokens.append(Token(kind, text, i))
            i = j
            continue
        for symbol in _SYMBOLS:
            if statement.startswith(symbol, i):
                tokens.append(Token("symbol", symbol, i))
                i += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i, statement)
    tokens.append(Token("end", "", n))
    return tokens
