"""Top-level statement execution (parse -> analyze -> optimize -> run)."""

from __future__ import annotations

from repro.core.schema import Field, Schema
from repro.errors import AnalysisError, ExecutionError
from repro.sql.analyzer import analyze_select
from repro.sql.ast import (
    AnalyzeStmt,
    CreateTableStmt,
    ExplainStmt,
    CreateViewStmt,
    DescStmt,
    DropStmt,
    InsertStmt,
    LoadStmt,
    SelectStmt,
    ShowStmt,
    StoreViewStmt,
)
from repro.sql.expressions import eval_expr
from repro.sql.optimizer import optimize
from repro.sql.parser import parse_statement
from repro.sql.physical import execute_plan
from repro.sql.result import ResultSet


def execute_statement(engine, statement: str,
                      namespace: str = "", ctx=None) -> ResultSet:
    """Parse and execute one JustQL statement against an engine.

    ``namespace`` is the per-user prefix the service layer adds to table
    and view names; it is invisible in the statement text and stripped
    from listings.  ``ctx`` (a :class:`repro.resilience.RequestContext`)
    carries the statement deadline and partial-results flag down into
    physical execution and the store's region iteration.
    """
    stmt = parse_statement(statement)
    if isinstance(stmt, SelectStmt):
        return _run_select(engine, stmt, namespace, ctx)
    if isinstance(stmt, ExplainStmt):
        if stmt.analyze:
            return _run_explain_analyze(engine, stmt, namespace, ctx)
        plan = optimize(analyze_select(engine, stmt.select, namespace))
        rows = [{"plan": line} for line in plan.pretty().splitlines()]
        return ResultSet.from_rows(rows, ["plan"])
    if isinstance(stmt, CreateTableStmt):
        return _run_create_table(engine, stmt, namespace)
    if isinstance(stmt, CreateViewStmt):
        return _run_create_view(engine, stmt, namespace, ctx)
    if isinstance(stmt, StoreViewStmt):
        engine.store_view_to_table(namespace + stmt.view,
                                   namespace + stmt.table)
        return ResultSet.status(f"view {stmt.view} stored to table "
                                f"{stmt.table}")
    if isinstance(stmt, DropStmt):
        if stmt.kind == "table":
            engine.drop_table(namespace + stmt.name)
        else:
            engine.drop_view(namespace + stmt.name)
        return ResultSet.status(f"{stmt.kind} {stmt.name} dropped")
    if isinstance(stmt, ShowStmt):
        return _run_show(engine, stmt, namespace)
    if isinstance(stmt, DescStmt):
        return _run_desc(engine, stmt, namespace)
    if isinstance(stmt, InsertStmt):
        return _run_insert(engine, stmt, namespace, ctx)
    if isinstance(stmt, LoadStmt):
        return _run_load(engine, stmt, namespace, ctx)
    if isinstance(stmt, AnalyzeStmt):
        return _run_analyze(engine, stmt, namespace, ctx)
    raise ExecutionError(f"unhandled statement {type(stmt).__name__}")


# -- SELECT -----------------------------------------------------------------------

def _run_select(engine, stmt: SelectStmt, namespace: str,
                ctx=None) -> ResultSet:
    plan = analyze_select(engine, stmt, namespace)
    plan = optimize(plan)
    job = engine.cluster.job()
    if ctx is not None:
        ctx.bind(job)
    job.charge_fixed("driver", engine.cluster.model.query_overhead_ms)
    df = execute_plan(plan, engine, job, ctx)
    result = ResultSet.from_dataframe(df, job)
    if ctx is not None:
        if ctx.profile is not None:
            ctx.profile.finish(job.elapsed_ms, rows=len(result))
        if ctx.skipped:
            result.skipped_regions = ctx.skipped_report
    return result


def _run_explain_analyze(engine, stmt: ExplainStmt, namespace: str,
                         ctx=None) -> ResultSet:
    """Execute the SELECT under a trace profile, return annotated plan.

    The statement really runs (charging the job and honouring any
    deadline on ``ctx``), but the result rows are discarded in favour of
    the per-operator span annotations — exactly PostgreSQL's
    ``EXPLAIN ANALYZE`` contract.
    """
    from repro.observability.profile import QueryProfile, analyze_rows
    from repro.resilience import RequestContext

    if ctx is None:
        ctx = RequestContext()
    owned_profile = ctx.profile is None
    if owned_profile:
        ctx.profile = QueryProfile(statement="EXPLAIN ANALYZE")
    profile = ctx.profile
    plan = optimize(analyze_select(engine, stmt.select, namespace))
    job = engine.cluster.job()
    ctx.bind(job)
    job.charge_fixed("driver", engine.cluster.model.query_overhead_ms)
    df = execute_plan(plan, engine, job, ctx)
    profile.finish(job.elapsed_ms, rows=df.count())
    result = ResultSet.from_rows(
        analyze_rows(profile),
        ["operator", "rows", "batches", "blocks_read", "cache_hits",
         "cache_hit_rate", "sim_ms"], job)
    if ctx.skipped:
        result.skipped_regions = ctx.skipped_report
    return result


def explain(engine, statement: str, namespace: str = "") -> str:
    """The optimized logical plan as text (debugging/tests)."""
    stmt = parse_statement(statement)
    if not isinstance(stmt, SelectStmt):
        raise ExecutionError("EXPLAIN supports SELECT statements only")
    return optimize(analyze_select(engine, stmt, namespace)).pretty()


# -- DDL ----------------------------------------------------------------------------

def _run_create_table(engine, stmt: CreateTableStmt,
                      namespace: str) -> ResultSet:
    name = namespace + stmt.name
    if stmt.plugin is not None:
        engine.create_plugin_table(name, stmt.plugin,
                                   stmt.userdata or None)
        return ResultSet.status(
            f"plugin table {stmt.name} created as {stmt.plugin}")
    fields = [Field.parse(cname, spec) for cname, spec in stmt.columns]
    schema = Schema(fields)
    engine.create_table(name, schema, stmt.userdata or None)
    return ResultSet.status(f"table {stmt.name} created")


def _run_create_view(engine, stmt: CreateViewStmt,
                     namespace: str, ctx=None) -> ResultSet:
    plan = optimize(analyze_select(engine, stmt.select, namespace))
    job = engine.cluster.job()
    if ctx is not None:
        ctx.bind(job)
    job.charge_fixed("driver", engine.cluster.model.query_overhead_ms)
    df = execute_plan(plan, engine, job, ctx)
    engine.create_view(namespace + stmt.name, df,
                       owner=namespace or None)
    return ResultSet.status(f"view {stmt.name} created "
                            f"({df.count()} rows cached)", job)


def _run_show(engine, stmt: ShowStmt, namespace: str) -> ResultSet:
    if stmt.kind == "tables":
        names = engine.table_names(namespace)
        column = "table"
    else:
        names = engine.view_names(namespace)
        column = "view"
    rows = [{column: n[len(namespace):]} for n in names]
    return ResultSet.from_rows(rows, [column])


def _run_desc(engine, stmt: DescStmt, namespace: str) -> ResultSet:
    if stmt.name.startswith("sys.") and \
            engine.has_system_table(stmt.name):
        rows = engine.system_table(stmt.name).schema().describe()
        return ResultSet.from_rows(rows, ["field", "type", "flags"])
    name = namespace + stmt.name
    if engine.has_view(name):
        rows = engine.view(name).describe()
    else:
        rows = engine.catalog.describe(name)
    return ResultSet.from_rows(rows, ["field", "type", "flags"])


def _run_analyze(engine, stmt: AnalyzeStmt, namespace: str,
                 ctx=None) -> ResultSet:
    if stmt.table.startswith("sys."):
        raise ExecutionError(
            f"cannot ANALYZE the virtual system table {stmt.table!r}")
    stats, job = engine.analyze_table(namespace + stmt.table)
    if ctx is not None:
        ctx.bind(job)
        ctx.charge(0.0, label="driver")
    return ResultSet.status(
        f"table {stmt.table} analyzed: {stats.row_count} rows, "
        f"{len(stats.distribution)} regions", job)


# -- DML ------------------------------------------------------------------------------

def _run_insert(engine, stmt: InsertStmt, namespace: str,
                ctx=None) -> ResultSet:
    name = namespace + stmt.table
    table = engine.table(name)
    columns = stmt.columns or table.schema.names
    rows = []
    for value_exprs in stmt.rows:
        if len(value_exprs) != len(columns):
            raise AnalysisError(
                f"INSERT row has {len(value_exprs)} values for "
                f"{len(columns)} columns")
        row = {}
        for column, expr in zip(columns, value_exprs):
            row[column] = eval_expr(expr, {})
        rows.append(row)
    result = engine.insert(name, rows)
    if ctx is not None:
        # Writes consume deadline budget too (a slow ingest times out);
        # binding after the fact charges the job's accumulated cost once.
        ctx.bind(result.job)
        ctx.charge(0.0, label="driver")
    return ResultSet.status(f"{len(rows)} rows inserted", result.job)


def _run_load(engine, stmt: LoadStmt, namespace: str,
              ctx=None) -> ResultSet:
    row_filter, limit = _parse_load_filter(stmt.filter_text)
    result = engine.load(stmt.source, namespace + stmt.table, stmt.config,
                         row_filter, limit)
    if ctx is not None:
        ctx.bind(result.job)
        ctx.charge(0.0, label="driver")
    return ResultSet.status(
        f"{result.extra['loaded']} rows loaded into {stmt.table}",
        result.job)


def _parse_load_filter(filter_text: str | None):
    """Parse a LOAD FILTER string such as ``'trajId="1068" limit 10'``.

    The predicate part is a JustQL expression evaluated against source
    rows; equality comparisons are string-tolerant because file sources
    yield strings.
    """
    if not filter_text:
        return None, None
    text = filter_text.strip()
    limit = None
    lowered = text.lower()
    if " limit " in f" {lowered} ":
        index = lowered.rfind("limit ")
        limit = int(text[index + len("limit "):].strip())
        text = text[:index].strip()
    if not text:
        return None, limit

    expr = _parse_filter_expr(text)

    def row_filter(source_row: dict) -> bool:
        try:
            if eval_expr(expr, source_row) is True:
                return True
        except (TypeError, ExecutionError):
            pass
        coerced = {k: _coerce_scalar(v) for k, v in source_row.items()}
        try:
            return eval_expr(expr, coerced) is True
        except (TypeError, ExecutionError):
            return False

    return row_filter, limit


def _parse_filter_expr(text: str):
    from repro.sql.lexer import tokenize
    from repro.sql.parser import _Parser

    parser = _Parser(text)
    parser.tokens = tokenize(text)
    expr = parser._parse_expr()  # noqa: SLF001 — reuse expression grammar
    if parser.peek().kind != "end":
        raise AnalysisError(f"trailing input in FILTER: "
                            f"{parser.peek().text!r}")
    return expr


def _coerce_scalar(value):
    """Make file-source strings comparable against numeric literals."""
    if isinstance(value, str):
        try:
            return float(value) if "." in value else int(value)
        except ValueError:
            return value
    return value
