"""Physical execution: logical plan -> DataFrame.

The scan node is where JUST differs from vanilla Spark SQL: pushed-down
spatio-temporal conjuncts are translated into index key ranges served by
the key-value store; only residual predicates are evaluated row by row.
k-NN membership (``geom IN st_KNN(...)``) and primary-key equality also
short-circuit to their dedicated access paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.knn import knn_query
from repro.curves.strategies import STQuery
from repro.dataframe import DataFrame, RowBatch
from repro.errors import ExecutionError
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.sql.ast import (
    Aliased,
    Between,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    InFunc,
    Literal,
)
from repro.sql.expressions import eval_expr, split_conjuncts
from repro.sql.vectorized import eval_expr_batch
from repro.sql.functions import (
    AGGREGATE_FUNCTIONS,
    NM_FUNCTIONS,
    SET_FUNCTIONS,
    make_map_matching_function,
)
from repro.sql.logical import (
    AggregateNode,
    JoinNode,
    DistinctNode,
    FilterNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
    SortNode,
    SystemScanNode,
    ViewScanNode,
)
from repro.dataframe.functions import AggregateSpec


@dataclass
class _ScanPredicates:
    """Conjuncts recognized by the scan planner."""

    envelope: Envelope | None = None
    spatial_mode: str = "intersects"
    t_min: float | None = None
    t_max: float | None = None
    knn: tuple[Point, int] | None = None
    fid: object | None = None
    attr: tuple[str, object] | None = None
    residual: list[Expr] | None = None


def execute_plan(plan: LogicalNode, engine, job, ctx=None) -> DataFrame:
    """Evaluate a logical plan to a DataFrame, charging ``job``.

    ``ctx`` (a :class:`repro.resilience.RequestContext`) is checked at
    node boundaries — a statement past its deadline cancels between
    operators rather than running to completion — and reaches the store
    through the scan node.  When the context carries a
    :class:`~repro.observability.profile.QueryProfile`, every operator
    executes inside a trace span annotated with rows out, blocks read,
    cache hits, and inclusive simulated milliseconds (the data EXPLAIN
    ANALYZE renders); per-operator latency histograms go to the
    engine's metrics registry either way.
    """
    if ctx is not None:
        ctx.check(f"{type(plan).__name__} boundary")
    profile = getattr(ctx, "profile", None) if ctx is not None else None
    op_name = type(plan).__name__
    start_ms = job.elapsed_ms
    if profile is None:
        df = _execute_node(plan, engine, job, ctx)
    else:
        before = engine.store.stats.snapshot()
        with profile.span(plan.describe(), kind="operator",
                          op=op_name) as span:
            try:
                df = _execute_node(plan, engine, job, ctx)
            finally:
                delta = engine.store.stats.snapshot().delta(before)
                span.sim_ms = job.elapsed_ms - start_ms
                span.attrs.update(
                    blocks_read=delta.blocks_read,
                    cache_hits=delta.cache_hits,
                    disk_bytes_read=delta.disk_bytes_read)
            span.attrs["rows_out"] = df.count()
            # The scan node records its source batch count (plus batch
            # timings) itself; every other operator reports the batches
            # backing its output frame (0 on the row-at-a-time path).
            span.attrs.setdefault("batches", df.num_batches)
    metrics = getattr(engine, "metrics", None)
    if metrics is not None:
        metrics.histogram("sql.operator_ms", op=op_name).observe(
            job.elapsed_ms - start_ms)
        metrics.counter("sql.operators_executed").inc()
    return df


def _execute_node(plan: LogicalNode, engine, job, ctx=None) -> DataFrame:
    if isinstance(plan, ScanNode):
        return _execute_scan(plan, engine, job, ctx)
    if isinstance(plan, ViewScanNode):
        return _execute_view_scan(plan, engine, job)
    if isinstance(plan, SystemScanNode):
        return _execute_system_scan(plan, engine, job)
    if isinstance(plan, FilterNode):
        child = execute_plan(plan.child, engine, job, ctx)
        extra = _extra_functions(engine)
        if getattr(engine, "vectorized", False) and child.num_batches:
            batches = child.to_batches()
            metrics = getattr(engine, "metrics", None)
            out = [_filter_batch(b, [plan.predicate], extra, metrics)
                   for b in batches]
            job.charge_cpu_batch(child.count(), len(batches))
            return DataFrame.from_batches([b for b in out if len(b)],
                                          child.columns)
        job.charge_cpu_records(child.count())
        return child.where(
            lambda row: eval_expr(plan.predicate, row, extra) is True)
    if isinstance(plan, ProjectNode):
        return _execute_project(plan, engine, job, ctx)
    if isinstance(plan, AggregateNode):
        return _execute_aggregate(plan, engine, job, ctx)
    if isinstance(plan, SortNode):
        return _execute_sort(plan, engine, job, ctx)
    if isinstance(plan, LimitNode):
        child = execute_plan(plan.child, engine, job, ctx)
        return child.limit(plan.limit)
    if isinstance(plan, DistinctNode):
        child = execute_plan(plan.child, engine, job, ctx)
        job.charge_cpu_records(child.count())
        return child.distinct()
    if isinstance(plan, JoinNode):
        return _execute_join(plan, engine, job, ctx)
    raise ExecutionError(f"cannot execute plan node {type(plan).__name__}")


def _execute_join(plan: JoinNode, engine, job, ctx=None) -> DataFrame:
    """Hash equi-join (a shuffle + build/probe in Spark terms)."""
    left = execute_plan(plan.left, engine, job, ctx)
    right = execute_plan(plan.right, engine, job, ctx)
    job.charge_cpu_records(left.count() + right.count(),
                           us_per_record=3.0)
    if plan.right_column != plan.left_column:
        right = right.map_rows(
            lambda row: {**{k: v for k, v in row.items()
                            if k != plan.right_column},
                         plan.left_column: row.get(plan.right_column)},
            [plan.left_column if c == plan.right_column else c
             for c in right.columns])
    return left.join(right, [plan.left_column], how=plan.how)


def _extra_functions(engine) -> dict:
    network = getattr(engine, "road_network", None)
    if network is None:
        return {}
    return {"st_trajmapmatching": make_map_matching_function(network)}


# -- scans ---------------------------------------------------------------------

def _execute_view_scan(plan: ViewScanNode, engine, job) -> DataFrame:
    view = engine.view(plan.view_name)
    df = view.dataframe
    job.charge_fixed("spark_stage", engine.cluster.model.spark_stage_ms)
    job.charge_memory_scan(df.estimated_bytes())
    if plan.pushed_filter is not None:
        extra = _extra_functions(engine)
        df = df.where(lambda row: eval_expr(plan.pushed_filter, row,
                                            extra) is True)
    return df


def _execute_system_scan(plan: SystemScanNode, engine, job) -> DataFrame:
    """Materialize a virtual ``sys.*`` table as an in-memory scan."""
    st = engine.system_table(plan.table_name)
    rows = st.rows()
    df = DataFrame.from_rows(rows, list(st.columns))
    job.charge_fixed("spark_stage", engine.cluster.model.spark_stage_ms)
    job.charge_memory_scan(df.estimated_bytes())
    if plan.pushed_filter is not None:
        extra = _extra_functions(engine)
        df = df.where(lambda row: eval_expr(plan.pushed_filter, row,
                                            extra) is True)
    return df


def _st_query(preds: _ScanPredicates) -> STQuery:
    """The spatio-temporal predicate the planner pushed into the scan.

    Only a two-sided time window is pushable: the curve strategies
    enumerate finite period bins, so an open-ended bound (``time > x``
    alone) cannot become an index range — it stays residual-only (the
    classifier already keeps single-sided comparisons in the residual
    list).
    """
    t_min, t_max = preds.t_min, preds.t_max
    if t_min is None or t_max is None:
        t_min = t_max = None
    return STQuery(preds.envelope, t_min, t_max)


def _has_pushed_st(preds: _ScanPredicates) -> bool:
    """Does the scan carry an index-servable spatio-temporal window?"""
    return preds.envelope is not None or \
        (preds.t_min is not None and preds.t_max is not None)


def _apply_pushed_st_filter(table, preds: _ScanPredicates,
                            rows: list[dict]) -> list[dict]:
    """Enforce envelope/time conjuncts on the point/kNN access paths.

    The classifier consumes spatial conjuncts (and BETWEEN temporal
    conjuncts) into ``preds`` expecting a range scan to serve them; when
    primary-key or kNN access wins instead, those conjuncts must still
    be applied per row or the scan silently returns rows outside the
    requested window.
    """
    if not _has_pushed_st(preds):
        return rows
    query = _st_query(preds)
    return [row for row in rows
            if table._matches(row, query, preds.spatial_mode)]


def _execute_scan(plan: ScanNode, engine, job, ctx=None) -> DataFrame:
    table = engine.table(plan.table_name)
    preds = _classify_conjuncts(plan.pushed_filter, table)
    extra = _extra_functions(engine)
    columns = plan.pushed_projection or table.columns()

    if preds.knn is not None:
        point, k = preds.knn
        result = knn_query(table, point.lng, point.lat, k, job)
        rows = _apply_pushed_st_filter(table, preds, result.rows)
    elif preds.fid is not None:
        row = table.get(str(preds.fid), ctx, job=job)
        job.charge_cpu_records(1)
        rows = [row] if row is not None else []
        rows = _apply_pushed_st_filter(table, preds, rows)
    elif preds.attr is not None and preds.envelope is None \
            and preds.t_min is None:
        field_name, value = preds.attr
        rows = table.attribute_query(field_name, value, job, ctx)
    elif getattr(engine, "vectorized", False):
        return _execute_scan_batched(plan, table, preds, engine, job,
                                     ctx, columns, extra)
    elif _has_pushed_st(preds):
        rows = table.query(_st_query(preds), preds.spatial_mode, job,
                           ctx=ctx)
    else:
        rows = table.full_scan(job, ctx)

    if preds.residual:
        job.charge_cpu_records(len(rows))
        rows = [row for row in rows
                if all(eval_expr(c, row, extra) is True
                       for c in preds.residual)]
    if plan.pushed_projection is not None:
        rows = [{c: row.get(c) for c in columns} for row in rows]
    return DataFrame.from_rows(rows, columns,
                               engine.cluster.num_servers)


def _execute_scan_batched(plan: ScanNode, table, preds: _ScanPredicates,
                          engine, job, ctx, columns: list[str],
                          extra: dict) -> DataFrame:
    """Range/full scan served batch-at-a-time.

    Rows stream out of SSTable block decode as column-major
    :class:`RowBatch`es; the residual filter evaluates one mask per
    batch and the pushed projection narrows batches by sharing column
    lists — no per-row dict ever crosses this function.
    """
    if _has_pushed_st(preds):
        source = table.query_batches(_st_query(preds),
                                     preds.spatial_mode, job, ctx=ctx)
    else:
        source = table.full_scan_batches(job, ctx)

    batches: list[RowBatch] = []
    rows_in = 0
    num_source = 0
    batch_ms: list[float] = []
    last_ms = job.elapsed_ms
    metrics = getattr(engine, "metrics", None)
    for batch in source:
        num_source += 1
        rows_in += len(batch)
        if preds.residual:
            batch = _filter_batch(batch, preds.residual, extra, metrics)
        elif metrics is not None:
            metrics.counter("sql.batches").inc()
        if plan.pushed_projection is not None:
            batch = batch.select(columns)
        if len(batch):
            batches.append(batch)
        now = job.elapsed_ms
        batch_ms.append(now - last_ms)
        last_ms = now
    if preds.residual:
        job.charge_cpu_batch(rows_in, num_source)

    profile = getattr(ctx, "profile", None) if ctx is not None else None
    if profile is not None:
        span = profile.current
        span.attrs["batches"] = num_source
        if batch_ms:
            span.attrs["batch_ms_max"] = round(max(batch_ms), 3)
            span.attrs["batch_ms_avg"] = round(
                sum(batch_ms) / len(batch_ms), 3)
    return DataFrame.from_batches(batches, columns)


def _count_batch(metrics, fallback: bool) -> None:
    """Vectorized-exec accounting: batches seen and row-path fallbacks."""
    if metrics is None:
        return
    metrics.counter("sql.batches").inc()
    if fallback:
        metrics.counter("sql.batch_fallbacks").inc()


def _filter_batch(batch: RowBatch, conjuncts: list[Expr],
                  extra: dict, metrics=None) -> RowBatch:
    """Keep the batch's rows where every conjunct evaluates to TRUE.

    Falls back to the row-at-a-time evaluator for the whole batch when
    vectorized evaluation raises — either a genuinely bad expression
    (the fallback re-raises it from the offending row, preserving row
    semantics) or a side that only short-circuiting would have skipped.
    """
    try:
        masks = [eval_expr_batch(c, batch, extra) for c in conjuncts]
    except (ExecutionError, TypeError):
        _count_batch(metrics, fallback=True)
        rows = [row for row in batch.iter_rows()
                if all(eval_expr(c, row, extra) is True
                       for c in conjuncts)]
        return RowBatch.from_rows(rows, batch.columns)
    _count_batch(metrics, fallback=False)
    if len(masks) == 1:
        return batch.filter(masks[0])
    return batch.filter([all(m is True for m in ms)
                         for ms in zip(*masks)])


def _classify_conjuncts(predicate: Expr | None, table) -> _ScanPredicates:
    preds = _ScanPredicates(residual=[])
    geometry_field = table.schema.geometry_field
    geometry_name = geometry_field.name if geometry_field else None
    time_field = table.schema.time_field
    time_name = time_field.name if time_field else None
    pk = table.schema.primary_key
    pk_name = pk.name if pk else None
    # Plugin tables index the derived geometry/time extent; map the
    # conventional column names onto them too.
    time_names = {time_name, "time", "start_time"} - {None}
    geom_names = {geometry_name, "geom", "geometry", "gps_list"} - {None}

    for conjunct in split_conjuncts(predicate):
        if _is_spatial(conjunct, geom_names, preds):
            continue
        if _is_temporal(conjunct, time_names, preds):
            continue
        if _is_knn(conjunct, geom_names, preds):
            continue
        if _is_fid(conjunct, pk_name, preds):
            continue
        if _is_attribute(conjunct, table, preds):
            continue
        preds.residual.append(conjunct)
    return preds


def _is_spatial(conjunct: Expr, geom_names: set[str],
                preds: _ScanPredicates) -> bool:
    envelope = None
    mode = None
    if isinstance(conjunct, BinaryOp) and conjunct.op == "within" and \
            isinstance(conjunct.left, Column) and \
            conjunct.left.name in geom_names and \
            isinstance(conjunct.right, Literal) and \
            isinstance(conjunct.right.value, Envelope):
        envelope, mode = conjunct.right.value, "within"
    elif isinstance(conjunct, FuncCall) and \
            conjunct.name in ("st_within", "st_intersects") and \
            len(conjunct.args) == 2 and \
            isinstance(conjunct.args[0], Column) and \
            conjunct.args[0].name in geom_names and \
            isinstance(conjunct.args[1], Literal) and \
            isinstance(conjunct.args[1].value, Envelope):
        envelope = conjunct.args[1].value
        mode = "within" if conjunct.name == "st_within" else "intersects"
    if envelope is None:
        return False
    preds.envelope = envelope if preds.envelope is None else \
        (preds.envelope.intersection(envelope)
         or Envelope.of_point(envelope.min_lng, envelope.min_lat))
    preds.spatial_mode = mode
    return True


def _is_temporal(conjunct: Expr, time_names: set[str],
                 preds: _ScanPredicates) -> bool:
    if isinstance(conjunct, Between) and \
            isinstance(conjunct.operand, Column) and \
            conjunct.operand.name in time_names and \
            isinstance(conjunct.low, Literal) and \
            isinstance(conjunct.high, Literal):
        low = float(conjunct.low.value)
        high = float(conjunct.high.value)
        preds.t_min = low if preds.t_min is None else max(preds.t_min, low)
        preds.t_max = high if preds.t_max is None else min(preds.t_max,
                                                           high)
        return True
    if isinstance(conjunct, BinaryOp) and \
            conjunct.op in ("<", "<=", ">", ">=") and \
            isinstance(conjunct.left, Column) and \
            conjunct.left.name in time_names and \
            isinstance(conjunct.right, Literal):
        value = float(conjunct.right.value)
        if conjunct.op in (">", ">="):
            preds.t_min = value if preds.t_min is None else \
                max(preds.t_min, value)
        else:
            preds.t_max = value if preds.t_max is None else \
                min(preds.t_max, value)
        # Keep as residual too: the index range is closed while the
        # original predicate may be strict.
        preds.residual.append(conjunct)
        return True
    return False


def _is_knn(conjunct: Expr, geom_names: set[str],
            preds: _ScanPredicates) -> bool:
    if not (isinstance(conjunct, InFunc)
            and isinstance(conjunct.operand, Column)
            and conjunct.operand.name in geom_names
            and conjunct.func.name == "st_knn"
            and len(conjunct.func.args) == 2):
        return False
    point_arg, k_arg = conjunct.func.args
    if not (isinstance(point_arg, Literal)
            and isinstance(point_arg.value, Point)
            and isinstance(k_arg, Literal)):
        raise ExecutionError("st_KNN expects (st_makePoint(lng, lat), k) "
                             "with literal arguments")
    preds.knn = (point_arg.value, int(k_arg.value))
    return True


def _is_attribute(conjunct: Expr, table,
                  preds: _ScanPredicates) -> bool:
    """Equality on a field with a secondary attribute index.

    The conjunct also stays in the residual list: when a stronger access
    path (spatio-temporal ranges) serves the scan, the equality is
    enforced per row instead.
    """
    indexed = getattr(table, "attribute_indexes", {})
    if not indexed or preds.attr is not None:
        return False
    if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
        left, right = conjunct.left, conjunct.right
        if isinstance(right, Column) and isinstance(left, Literal):
            left, right = right, left
        if isinstance(left, Column) and left.name in indexed and \
                isinstance(right, Literal) and right.value is not None:
            preds.attr = (left.name, right.value)
            preds.residual.append(conjunct)
            return True
    return False


def _is_fid(conjunct: Expr, pk_name: str | None,
            preds: _ScanPredicates) -> bool:
    if pk_name is None:
        return False
    if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
        left, right = conjunct.left, conjunct.right
        if isinstance(right, Column) and isinstance(left, Literal):
            left, right = right, left
        if isinstance(left, Column) and left.name == pk_name and \
                isinstance(right, Literal):
            preds.fid = right.value
            return True
    return False


# -- projections (including 1-N and N-M operations) ------------------------------

def _execute_project(plan: ProjectNode, engine, job, ctx=None) -> DataFrame:
    child = execute_plan(plan.child, engine, job, ctx)
    extra = _extra_functions(engine)

    set_items = [(expr, name) for expr, name in plan.projections
                 if _projection_kind(expr, extra) == "set"]
    nm_items = [(expr, name) for expr, name in plan.projections
                if _projection_kind(expr, extra) == "nm"]
    if len(set_items) + len(nm_items) > 1:
        raise ExecutionError(
            "at most one 1-N or N-M operation per SELECT")

    if nm_items:
        job.charge_cpu_records(child.count())
        return _execute_dbscan(plan, child, nm_items[0], extra)
    if set_items:
        job.charge_cpu_records(child.count())
        return _execute_set_projection(plan, child, set_items[0], extra,
                                       engine, job)

    names = [n for _e, n in plan.projections]
    if getattr(engine, "vectorized", False) and child.num_batches:
        metrics = getattr(engine, "metrics", None)
        out = [_project_batch(b, plan.projections, extra, metrics)
               for b in child.to_batches()]
        job.charge_cpu_batch(child.count(), child.num_batches)
        return DataFrame.from_batches(out, names)
    job.charge_cpu_records(child.count())

    def project(row: dict) -> dict:
        return {name: eval_expr(expr, row, extra)
                for expr, name in plan.projections}

    return child.map_rows(project, names)


def _project_batch(batch: RowBatch, projections, extra: dict,
                   metrics=None) -> RowBatch:
    """Evaluate scalar projections column-at-a-time over one batch."""
    names = [n for _e, n in projections]
    try:
        data = {name: eval_expr_batch(expr, batch, extra)
                for expr, name in projections}
    except (ExecutionError, TypeError):
        _count_batch(metrics, fallback=True)
        rows = [{name: eval_expr(expr, row, extra)
                 for expr, name in projections}
                for row in batch.iter_rows()]
        return RowBatch.from_rows(rows, names)
    _count_batch(metrics, fallback=False)
    return RowBatch(data, names, len(batch))


def _projection_kind(expr: Expr, extra: dict) -> str:
    inner = expr.expr if isinstance(expr, Aliased) else expr
    if isinstance(inner, FuncCall):
        if inner.name in NM_FUNCTIONS:
            return "nm"
        if inner.name in SET_FUNCTIONS or inner.name in extra:
            return "set"
    return "scalar"


def _execute_set_projection(plan: ProjectNode, child: DataFrame, set_item,
                            extra: dict, engine, job) -> DataFrame:
    """1-N operation: the set function's results each become one row."""
    set_expr, set_name = set_item
    inner = set_expr.expr if isinstance(set_expr, Aliased) else set_expr
    fn = extra.get(inner.name) or SET_FUNCTIONS[inner.name]
    scalar_items = [(e, n) for e, n in plan.projections
                    if n != set_name]
    columns = [n for _e, n in plan.projections]

    def expand(row: dict):
        args = [eval_expr(a, row, extra) for a in inner.args]
        results = fn(*args)
        base = {name: eval_expr(expr, row, extra)
                for expr, name in scalar_items}
        for element in results:
            yield {**base, set_name: element}

    out = child.flat_map(expand, columns)
    job.charge_cpu_records(out.count(), us_per_record=20.0)
    return out


def _execute_dbscan(plan: ProjectNode, child: DataFrame, nm_item,
                    extra: dict) -> DataFrame:
    """N-M operation: DBSCAN over the whole input."""
    from repro.ops.analysis.dbscan import dbscan

    nm_expr, _name = nm_item
    inner = nm_expr.expr if isinstance(nm_expr, Aliased) else nm_expr
    if len(inner.args) != 3:
        raise ExecutionError("st_DBSCAN expects (geom, minPts, radius)")
    geom_arg, min_pts_arg, radius_arg = inner.args
    rows = child.collect()
    points = []
    for row in rows:
        geometry = eval_expr(geom_arg, row, extra)
        if not isinstance(geometry, Point):
            raise ExecutionError("st_DBSCAN clusters point geometries")
        points.append((geometry.lng, geometry.lat))
    min_pts = int(eval_expr(min_pts_arg, rows[0] if rows else {}, extra))
    radius = float(eval_expr(radius_arg, rows[0] if rows else {}, extra))
    labels = dbscan(points, min_pts, radius)
    out_rows = [{**row, "cluster": label}
                for row, label in zip(rows, labels)]
    columns = child.columns + ["cluster"]
    return DataFrame.from_rows(out_rows, columns, child.num_partitions)


# -- aggregation / sorting ----------------------------------------------------------

def _execute_aggregate(plan: AggregateNode, engine, job,
                       ctx=None) -> DataFrame:
    child = execute_plan(plan.child, engine, job, ctx)
    extra = _extra_functions(engine)
    if getattr(engine, "vectorized", False) and child.num_batches:
        return _execute_aggregate_batched(
            plan, child, extra, job,
            metrics=getattr(engine, "metrics", None))
    job.charge_cpu_records(child.count(), us_per_record=4.0)

    group_names = [name for _e, name in plan.group_exprs]
    prepared = child
    for expr, name in plan.group_exprs:
        prepared = prepared.with_column(
            name, lambda row, e=expr: eval_expr(e, row, extra))

    specs: list[AggregateSpec] = []
    for call, output in plan.agg_calls:
        factory = AGGREGATE_FUNCTIONS[call.name]
        if call.is_star_count or not call.args:
            specs.append(factory(output))
            continue
        arg = call.args[0]
        temp = f"__agg_in_{output}"
        prepared = prepared.with_column(
            temp, lambda row, e=arg: eval_expr(e, row, extra))
        specs.append(factory(temp, output))
    if not group_names:
        # Global aggregate: group by a constant key.
        prepared = prepared.with_column("__global", lambda _row: 0)
        result = prepared.group_by(["__global"], specs)
        return result.select([s.output for s in specs])
    return prepared.group_by(group_names, specs)


def _eval_column(expr: Expr, batch: RowBatch, extra: dict,
                 metrics=None) -> list:
    """One expression over one batch, with row-at-a-time fallback."""
    try:
        return eval_expr_batch(expr, batch, extra)
    except (ExecutionError, TypeError):
        if metrics is not None:
            metrics.counter("sql.batch_fallbacks").inc()
        return [eval_expr(expr, row, extra) for row in batch.iter_rows()]


def _execute_aggregate_batched(plan: AggregateNode, child: DataFrame,
                               extra: dict, job,
                               metrics=None) -> DataFrame:
    """Hash aggregation folding column-major batches directly.

    Group keys and aggregate inputs are evaluated once per batch as
    whole columns; the fold then indexes into those lists instead of
    materializing widened per-row dicts the way the row path's
    ``with_column`` chain does.
    """
    specs: list[AggregateSpec] = []
    agg_exprs: list[Expr | None] = []
    for call, output in plan.agg_calls:
        factory = AGGREGATE_FUNCTIONS[call.name]
        if call.is_star_count or not call.args:
            specs.append(factory(output))
            agg_exprs.append(None)  # COUNT(*): step ignores the value
        else:
            specs.append(factory(f"__agg_in_{output}", output))
            agg_exprs.append(call.args[0])

    group_names = [name for _e, name in plan.group_exprs]
    batches = child.to_batches()
    groups: dict[tuple, list[object]] = {}
    total = 0
    for batch in batches:
        total += len(batch)
        if metrics is not None:
            metrics.counter("sql.batches").inc()
        key_cols = [_eval_column(expr, batch, extra, metrics)
                    for expr, _name in plan.group_exprs]
        in_cols = [None if e is None
                   else _eval_column(e, batch, extra, metrics)
                   for e in agg_exprs]
        for i in range(len(batch)):
            key = tuple(col[i] for col in key_cols)
            accs = groups.get(key)
            if accs is None:
                accs = [spec.seed() for spec in specs]
                groups[key] = accs
            for j, spec in enumerate(specs):
                col = in_cols[j]
                accs[j] = spec.step(accs[j],
                                    None if col is None else col[i])
    job.charge_cpu_batch(total, len(batches), us_per_record=0.8)

    columns = group_names + [spec.output for spec in specs]
    out = []
    for key, accs in groups.items():
        row = dict(zip(group_names, key))
        for spec, acc in zip(specs, accs):
            row[spec.output] = spec.final(acc)
        out.append(row)
    return DataFrame.from_rows(out, columns, child.num_partitions)


def _execute_sort(plan: SortNode, engine, job, ctx=None) -> DataFrame:
    child = execute_plan(plan.child, engine, job, ctx)
    extra = _extra_functions(engine)
    job.charge_cpu_records(child.count(), us_per_record=3.0)
    key_names = []
    ascending = []
    temp_columns = []
    df = child
    for i, (expr, asc) in enumerate(plan.keys):
        if isinstance(expr, Column):
            key_names.append(expr.name)
        else:
            temp = f"__sort_{i}"
            df = df.with_column(
                temp, lambda row, e=expr: eval_expr(e, row, extra))
            key_names.append(temp)
            temp_columns.append(temp)
        ascending.append(asc)
    df = df.order_by(key_names, ascending)
    if temp_columns:
        df = df.select([c for c in df.columns if c not in temp_columns])
    return df
