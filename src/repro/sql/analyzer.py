"""Semantic analysis: AST -> logical plan.

Resolves table/view names against the catalog, expands ``SELECT *``,
verifies column references, classifies aggregate queries, and arranges the
operator tree Scan -> Filter -> Aggregate -> Sort -> Project -> Distinct ->
Limit.  Sorting happens *before* the final projection when its keys are
not projection outputs (the paper's running example sorts by ``time``
while projecting only ``name, geom``).
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.sql.ast import (
    Aliased,
    Column,
    Expr,
    FuncCall,
    SelectStmt,
    Star,
    SubquerySource,
    TableSource,
)
from repro.sql.expressions import (
    contains_aggregate,
    expr_name,
    referenced_columns,
)
from repro.sql.functions import AGGREGATE_FUNCTIONS
from repro.sql.logical import (
    AggregateNode,
    JoinNode,
    DistinctNode,
    FilterNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
    SortNode,
    SystemScanNode,
    ViewScanNode,
)


def analyze_select(engine, stmt: SelectStmt,
                   namespace: str = "") -> LogicalNode:
    """Build the analyzed logical plan for a SELECT statement."""
    plan = _analyze_source(engine, stmt, namespace)
    for join in stmt.joins:
        right = _analyze_one_source(engine, join.source, namespace)
        if join.left_column not in plan.columns:
            raise AnalysisError(
                f"JOIN column {join.left_column!r} not in the left side "
                f"(available: {sorted(plan.columns)})")
        if join.right_column not in right.columns:
            raise AnalysisError(
                f"JOIN column {join.right_column!r} not in the right "
                f"side (available: {sorted(right.columns)})")
        plan = JoinNode(plan, right, join.left_column,
                        join.right_column, join.how)
    available = set(plan.columns)

    if stmt.where is not None:
        _check_columns(stmt.where, available, "WHERE")
        plan = FilterNode(plan, stmt.where)

    projections = _expand_star(stmt.projections, plan.columns)
    named = [(expr, expr_name(expr, i))
             for i, expr in enumerate(projections)]

    is_aggregate = bool(stmt.group_by) or any(
        contains_aggregate(e) for e, _n in named)

    if is_aggregate:
        plan = _plan_aggregate(plan, stmt, named, available)
        if stmt.having is not None:
            _check_columns(stmt.having, set(plan.columns), "HAVING")
            plan = FilterNode(plan, stmt.having)
        output_names = plan.columns
        if stmt.order_by:
            _check_columns_list([e for e, _a in stmt.order_by],
                                set(output_names), "ORDER BY")
            plan = SortNode(plan, list(stmt.order_by))
    else:
        for expr, _name in named:
            _check_columns(expr, available, "SELECT")
        sort_first = _order_keys_need_input(stmt, named, available)
        if stmt.order_by and sort_first:
            _check_columns_list([e for e, _a in stmt.order_by], available,
                                "ORDER BY")
            plan = SortNode(plan, list(stmt.order_by))
        plan = ProjectNode(plan, named)
        if stmt.order_by and not sort_first:
            _check_columns_list([e for e, _a in stmt.order_by],
                                set(plan.columns), "ORDER BY")
            plan = SortNode(plan, list(stmt.order_by))

    if stmt.distinct:
        plan = DistinctNode(plan)
    if stmt.limit is not None:
        plan = LimitNode(plan, stmt.limit)
    return plan


def _analyze_source(engine, stmt: SelectStmt,
                    namespace: str) -> LogicalNode:
    if stmt.source is None:
        raise AnalysisError("SELECT without FROM is not supported")
    return _analyze_one_source(engine, stmt.source, namespace)


def _analyze_one_source(engine, source, namespace: str) -> LogicalNode:
    if isinstance(source, SubquerySource):
        return analyze_select(engine, source.select, namespace)
    if isinstance(source, TableSource):
        if source.name.startswith("sys.") and \
                engine.has_system_table(source.name):
            # System tables live outside user namespaces.
            st = engine.system_table(source.name)
            return SystemScanNode(source.name, list(st.columns))
        name = namespace + source.name
        if engine.has_view(name):
            view = engine.view(name)
            return ViewScanNode(name, view.columns())
        if engine.has_table(name):
            table = engine.table(name)
            return ScanNode(name, table.columns())
        raise AnalysisError(f"unknown table or view {source.name!r}")
    raise AnalysisError(f"unsupported FROM source {source!r}")


def _expand_star(projections: list[Expr],
                 columns: list[str]) -> list[Expr]:
    out: list[Expr] = []
    for expr in projections:
        if isinstance(expr, Star):
            out.extend(Column(c) for c in columns)
        else:
            out.append(expr)
    if not out:
        raise AnalysisError("SELECT list is empty")
    return out


def _check_columns(expr: Expr, available: set[str], clause: str) -> None:
    missing = referenced_columns(expr) - available
    if missing:
        raise AnalysisError(
            f"{clause} references unknown columns: {sorted(missing)} "
            f"(available: {sorted(available)})")


def _check_columns_list(exprs, available: set[str], clause: str) -> None:
    for expr in exprs:
        _check_columns(expr, available, clause)


def _order_keys_need_input(stmt: SelectStmt, named, available) -> bool:
    """True when ORDER BY keys reference pre-projection columns."""
    if not stmt.order_by:
        return False
    output_names = {name for _e, name in named}
    for expr, _asc in stmt.order_by:
        refs = referenced_columns(expr)
        if not refs <= output_names:
            return True
    return False


def _plan_aggregate(plan: LogicalNode, stmt: SelectStmt, named,
                    available: set[str]) -> LogicalNode:
    group_exprs: list[tuple[Expr, str]] = []
    for i, expr in enumerate(stmt.group_by):
        _check_columns(expr, available, "GROUP BY")
        group_exprs.append((expr, expr_name(expr, i)))
    group_names = {name for _e, name in group_exprs}

    agg_calls: list[tuple[FuncCall, str]] = []
    outputs: list[tuple[Expr, str]] = []
    for expr, name in named:
        inner = expr.expr if isinstance(expr, Aliased) else expr
        if isinstance(inner, FuncCall) and inner.name in AGGREGATE_FUNCTIONS:
            agg_calls.append((inner, name))
            outputs.append((Column(name), name))
        elif isinstance(inner, Column):
            if inner.name not in group_names and \
                    not _matches_group(inner, group_exprs):
                raise AnalysisError(
                    f"column {inner.name!r} must appear in GROUP BY or an "
                    f"aggregate function")
            outputs.append((Column(_group_output(inner, group_exprs)), name))
        else:
            if not contains_aggregate(inner):
                raise AnalysisError(
                    "non-aggregate expressions in an aggregate SELECT must "
                    "be GROUP BY keys")
            raise AnalysisError(
                "expressions over aggregates are not supported; alias the "
                "aggregate and wrap in an outer SELECT")
    node = AggregateNode(plan, group_exprs, agg_calls)
    return ProjectNode(node, outputs)


def _matches_group(column: Column, group_exprs) -> bool:
    return any(isinstance(e, Column) and e.name == column.name
               for e, _n in group_exprs)


def _group_output(column: Column, group_exprs) -> str:
    for expr, name in group_exprs:
        if isinstance(expr, Column) and expr.name == column.name:
            return name
    return column.name
