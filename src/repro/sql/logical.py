"""Logical plan nodes (the output of analysis, input of optimization)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast import Expr, FuncCall


class LogicalNode:
    """Base class; ``columns`` is every node's output schema."""

    columns: list[str]

    def children(self) -> list["LogicalNode"]:
        return []

    def pretty(self, indent: int = 0) -> str:
        """Readable plan tree (used in tests and EXPLAIN-style output)."""
        line = " " * indent + self.describe()
        return "\n".join([line] + [c.pretty(indent + 2)
                                   for c in self.children()])

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class ScanNode(LogicalNode):
    """Scan of a stored (common or plugin) table.

    ``pushed_filter`` holds the conjuncts the optimizer pushed down; the
    physical planner turns spatio-temporal conjuncts into index ranges and
    evaluates the rest per row.  ``pushed_projection`` prunes columns as
    early as possible.
    """

    table_name: str
    columns: list[str]
    pushed_filter: Expr | None = None
    pushed_projection: list[str] | None = None

    def describe(self) -> str:
        parts = [f"Scan[{self.table_name}]"]
        if self.pushed_filter is not None:
            parts.append("filter=pushed")
        if self.pushed_projection is not None:
            parts.append(f"project={self.pushed_projection}")
        return " ".join(parts)


@dataclass
class ViewScanNode(LogicalNode):
    """Scan of an in-memory view (a cached DataFrame)."""

    view_name: str
    columns: list[str]
    pushed_filter: Expr | None = None

    def describe(self) -> str:
        return f"ViewScan[{self.view_name}]"


@dataclass
class SystemScanNode(LogicalNode):
    """Scan of a virtual ``sys.*`` system table (live engine state)."""

    table_name: str
    columns: list[str]
    pushed_filter: Expr | None = None

    def describe(self) -> str:
        return f"SystemScan[{self.table_name}]"


@dataclass
class FilterNode(LogicalNode):
    child: LogicalNode
    predicate: Expr
    columns: list[str] = field(default_factory=list)

    def __post_init__(self):
        self.columns = list(self.child.columns)

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return "Filter"


@dataclass
class ProjectNode(LogicalNode):
    child: LogicalNode
    projections: list[tuple[Expr, str]]   # (expression, output name)
    columns: list[str] = field(default_factory=list)

    def __post_init__(self):
        self.columns = [name for _e, name in self.projections]

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return f"Project[{', '.join(self.columns)}]"


@dataclass
class AggregateNode(LogicalNode):
    child: LogicalNode
    group_exprs: list[tuple[Expr, str]]
    agg_calls: list[tuple[FuncCall, str]]
    columns: list[str] = field(default_factory=list)

    def __post_init__(self):
        self.columns = ([name for _e, name in self.group_exprs]
                        + [name for _c, name in self.agg_calls])

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return f"Aggregate[{', '.join(self.columns)}]"


@dataclass
class SortNode(LogicalNode):
    child: LogicalNode
    keys: list[tuple[Expr, bool]]   # (expression, ascending)
    columns: list[str] = field(default_factory=list)

    def __post_init__(self):
        self.columns = list(self.child.columns)

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return f"Sort[{len(self.keys)} keys]"


@dataclass
class LimitNode(LogicalNode):
    child: LogicalNode
    limit: int
    columns: list[str] = field(default_factory=list)

    def __post_init__(self):
        self.columns = list(self.child.columns)

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return f"Limit[{self.limit}]"


@dataclass
class DistinctNode(LogicalNode):
    child: LogicalNode
    columns: list[str] = field(default_factory=list)

    def __post_init__(self):
        self.columns = list(self.child.columns)

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return "Distinct"


@dataclass
class JoinNode(LogicalNode):
    """Equi-join of two plans on one column pair.

    Output columns are the left side's followed by the right side's
    non-colliding columns (left values win on collision, as the
    DataFrame join does).
    """

    left: LogicalNode
    right: LogicalNode
    left_column: str
    right_column: str
    how: str = "inner"
    columns: list[str] = field(default_factory=list)

    def __post_init__(self):
        extra = [c for c in self.right.columns
                 if c not in self.left.columns]
        self.columns = list(self.left.columns) + extra

    def children(self):
        return [self.left, self.right]

    def describe(self) -> str:
        return (f"Join[{self.how} on {self.left_column} = "
                f"{self.right_column}]")
