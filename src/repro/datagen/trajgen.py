"""Lorry trajectory generator (the ``Traj`` dataset).

Trajectories follow a random-waypoint model inside a Beijing-sized
bounding box: a lorry picks a destination, drives toward it at a noisy
urban speed, and samples its GPS every ~30 seconds.  Depot hotspots make
the spatial distribution skewed, as real logistics traces are.  The time
span matches Table II: 2014-03-01 .. 2014-03-31.
"""

from __future__ import annotations

import math
import random

from repro.geometry.distance import METERS_PER_DEGREE
from repro.trajectory.model import STSeries, Trajectory

#: Beijing-ish bounding box used by all generated datasets.
AREA = (116.0, 39.6, 116.8, 40.2)

#: Table II time span for Traj: 2014-03-01T00:00Z .. 2014-03-31T00:00Z.
TRAJ_TIME_START = 1393632000.0
TRAJ_TIME_END = 1396224000.0


class TrajectoryGenerator:
    """Deterministic generator of lorry-style trajectories."""

    def __init__(self, seed: int = 20140301,
                 area: tuple[float, float, float, float] = AREA,
                 time_start: float = TRAJ_TIME_START,
                 time_end: float = TRAJ_TIME_END,
                 sample_interval_s: float = 30.0,
                 num_depots: int = 12,
                 service_radius_m: float = 3000.0):
        self.rng = random.Random(seed)
        self.area = area
        self.time_start = time_start
        self.time_end = time_end
        self.sample_interval_s = sample_interval_s
        self.service_radius_m = service_radius_m
        self.depots = [(self.rng.uniform(area[0], area[2]),
                        self.rng.uniform(area[1], area[3]))
                       for _ in range(num_depots)]

    def _waypoint(self, center: tuple[float, float]) -> tuple[float, float]:
        """A destination inside the route's service district.

        Real delivery lorries serve a neighbourhood, not the whole city;
        keeping waypoints local keeps trajectory MBRs small, which is what
        makes XZ-indexes (and the paper's range-query selectivities)
        meaningful.
        """
        spread = self.service_radius_m / METERS_PER_DEGREE
        lng = center[0] + self.rng.gauss(0.0, spread)
        lat = center[1] + self.rng.gauss(0.0, spread)
        return (min(max(lng, self.area[0]), self.area[2]),
                min(max(lat, self.area[1]), self.area[3]))

    def _service_center(self) -> tuple[float, float]:
        # 70% of routes are anchored near a depot, 30% anywhere.
        if self.rng.random() < 0.7:
            depot = self.rng.choice(self.depots)
            spread = 2000.0 / METERS_PER_DEGREE
            return (min(max(depot[0] + self.rng.gauss(0.0, spread),
                            self.area[0]), self.area[2]),
                    min(max(depot[1] + self.rng.gauss(0.0, spread),
                            self.area[1]), self.area[3]))
        return (self.rng.uniform(self.area[0], self.area[2]),
                self.rng.uniform(self.area[1], self.area[3]))

    def generate_one(self, tid: str, oid: str,
                     num_points: int) -> Trajectory:
        """One trajectory with ``num_points`` samples."""
        rng = self.rng
        center = self._service_center()
        lng, lat = self._waypoint(center)
        start = rng.uniform(self.time_start,
                            self.time_end
                            - num_points * self.sample_interval_s)
        target = self._waypoint(center)
        speed_mps = rng.uniform(4.0, 16.0)
        points = []
        t = start
        dwell_remaining = 0
        for _ in range(num_points):
            points.append((lng, lat, t))
            if dwell_remaining > 0:
                # Delivering: stand still (small GPS wobble only).
                dwell_remaining -= 1
                jitter = 5.0 / METERS_PER_DEGREE
                lng = min(max(lng + rng.gauss(0.0, jitter),
                              self.area[0]), self.area[2])
                lat = min(max(lat + rng.gauss(0.0, jitter),
                              self.area[1]), self.area[3])
                t += self.sample_interval_s * rng.uniform(0.8, 1.2)
                continue
            dx = target[0] - lng
            dy = target[1] - lat
            distance_deg = math.hypot(dx, dy)
            if distance_deg * METERS_PER_DEGREE < 100.0:
                # Arrived: half the stops are deliveries with a dwell.
                if rng.random() < 0.5:
                    dwell_remaining = rng.randint(
                        6, 50)  # ~3..25 min at 30 s sampling
                target = self._waypoint(center)
                speed_mps = rng.uniform(4.0, 16.0)
                dx = target[0] - lng
                dy = target[1] - lat
                distance_deg = math.hypot(dx, dy) or 1e-9
            step_deg = (speed_mps * self.sample_interval_s
                        / METERS_PER_DEGREE)
            ratio = min(1.0, step_deg / max(distance_deg, 1e-12))
            jitter = 15.0 / METERS_PER_DEGREE
            lng = min(max(lng + dx * ratio + rng.gauss(0.0, jitter),
                          self.area[0]), self.area[2])
            lat = min(max(lat + dy * ratio + rng.gauss(0.0, jitter),
                          self.area[1]), self.area[3])
            t += self.sample_interval_s * rng.uniform(0.8, 1.2)
        return Trajectory(tid, oid, STSeries(points))

    def generate(self, num_trajectories: int,
                 mean_points: int = 280) -> list[Trajectory]:
        """A full dataset; point counts vary around ``mean_points``."""
        out = []
        for i in range(num_trajectories):
            num_points = max(10, int(self.rng.gauss(mean_points,
                                                    mean_points * 0.3)))
            out.append(self.generate_one(f"traj{i}", f"lorry{i % 997}",
                                         num_points))
        return out


def generate_traj_dataset(num_trajectories: int = 800,
                          mean_points: int = 250,
                          seed: int = 20140301) -> list[Trajectory]:
    """The default laptop-scale Traj dataset."""
    return TrajectoryGenerator(seed).generate(num_trajectories,
                                              mean_points)
