"""The Synthetic dataset: copy & sample scale-up of Traj (Section VIII-A).

The paper builds Synthetic by copying and sampling Traj up to 1 TB to test
scalability.  This generator does the same at laptop scale: each copy of a
base trajectory gets a fresh id, a small spatial jitter, and a time shift
spreading the copies over the extended span 2014-03-01 .. 2014-12-31
(Table II's Synthetic time span).
"""

from __future__ import annotations

import random

from repro.geometry.distance import METERS_PER_DEGREE
from repro.trajectory.model import GPSPoint, STSeries, Trajectory

#: Table II Synthetic time span end: 2014-12-31T00:00Z.
SYNTHETIC_TIME_END = 1419984000.0


def generate_synthetic_dataset(base: list[Trajectory], multiplier: int,
                               seed: int = 20141231,
                               jitter_m: float = 120.0
                               ) -> list[Trajectory]:
    """``multiplier`` jittered, time-shifted copies of the base dataset.

    ``multiplier=1`` returns re-identified copies of the base (same size),
    matching the paper's "copying & sampling ... up to 1T" construction.
    """
    if multiplier < 1:
        raise ValueError("multiplier must be >= 1")
    rng = random.Random(seed)
    jitter = jitter_m / METERS_PER_DEGREE
    out: list[Trajectory] = []
    base_end = max(t.end_time for t in base) if base else 0.0
    shift_room = max(0.0, SYNTHETIC_TIME_END - base_end)
    for copy_index in range(multiplier):
        for trajectory in base:
            shift = rng.uniform(0.0, shift_room) if copy_index else 0.0
            dlng = rng.gauss(0.0, jitter) if copy_index else 0.0
            dlat = rng.gauss(0.0, jitter) if copy_index else 0.0
            points = [GPSPoint(
                min(max(p.lng + dlng, -180.0), 180.0),
                min(max(p.lat + dlat, -90.0), 90.0),
                p.time + shift) for p in trajectory.points]
            out.append(Trajectory(f"{trajectory.tid}_c{copy_index}",
                                  trajectory.oid, STSeries(points)))
    return out
