"""The Synthetic dataset: copy & sample scale-up of Traj (Section VIII-A).

The paper builds Synthetic by copying and sampling Traj up to 1 TB to test
scalability.  This generator does the same at laptop scale: each copy of a
base trajectory gets a fresh id, a small spatial jitter, and a time shift
spreading the copies over the extended span 2014-03-01 .. 2014-12-31
(Table II's Synthetic time span).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate

from repro.geometry.distance import METERS_PER_DEGREE
from repro.trajectory.model import GPSPoint, STSeries, Trajectory

#: Table II Synthetic time span end: 2014-12-31T00:00Z.
SYNTHETIC_TIME_END = 1419984000.0


def zipfian_weights(n: int, s: float = 1.2) -> list[float]:
    """Normalized Zipf(s) probabilities for ranks ``0..n-1``.

    Rank 0 is the most popular item; ``s`` is the skew exponent
    (``s=0`` is uniform, urban access patterns are typically 0.9-1.5).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if s < 0:
        raise ValueError("s must be >= 0")
    raw = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def zipfian_sampler(n: int, s: float, rng: random.Random):
    """A zero-arg callable drawing ranks ``0..n-1`` with Zipf(s) skew.

    Inverse-CDF sampling over the precomputed cumulative weights:
    O(log n) per draw, deterministic given ``rng``.  This is the key
    skew used by the multi-tenant balancer workload (hot tenants get
    most of the traffic) and by :func:`generate_synthetic_dataset`'s
    ``skew_s`` option (hot base trajectories get most of the copies).
    """
    cumulative = list(accumulate(zipfian_weights(n, s)))
    cumulative[-1] = 1.0  # guard the float-sum tail

    def draw() -> int:
        return bisect_right(cumulative, rng.random())

    return draw


def generate_synthetic_dataset(base: list[Trajectory], multiplier: int,
                               seed: int = 20141231,
                               jitter_m: float = 120.0,
                               skew_s: float | None = None
                               ) -> list[Trajectory]:
    """``multiplier`` jittered, time-shifted copies of the base dataset.

    ``multiplier=1`` returns re-identified copies of the base (same size),
    matching the paper's "copying & sampling ... up to 1T" construction.

    ``skew_s`` skews which base trajectory each copy samples: instead of
    one copy of everything per round, every generated trajectory draws
    its base with Zipf(``skew_s``) popularity, so a few hot objects
    dominate the output — the key distribution that hotspots an
    SFC-ordered store and gives the balancer something to fix.
    """
    if multiplier < 1:
        raise ValueError("multiplier must be >= 1")
    rng = random.Random(seed)
    jitter = jitter_m / METERS_PER_DEGREE
    out: list[Trajectory] = []
    base_end = max(t.end_time for t in base) if base else 0.0
    shift_room = max(0.0, SYNTHETIC_TIME_END - base_end)
    draw = zipfian_sampler(len(base), skew_s, rng) \
        if skew_s is not None and base else None
    for copy_index in range(multiplier):
        for slot in range(len(base)):
            trajectory = base[draw()] if draw is not None \
                else base[slot]
            shift = rng.uniform(0.0, shift_room) if copy_index else 0.0
            dlng = rng.gauss(0.0, jitter) if copy_index else 0.0
            dlat = rng.gauss(0.0, jitter) if copy_index else 0.0
            points = [GPSPoint(
                min(max(p.lng + dlng, -180.0), 180.0),
                min(max(p.lat + dlat, -90.0), 90.0),
                p.time + shift) for p in trajectory.points]
            # Skewed draws can repeat a base within one round, so the
            # slot keeps generated ids unique.
            tid = f"{trajectory.tid}_c{copy_index}" if draw is None \
                else f"{trajectory.tid}_c{copy_index}_{slot}"
            out.append(Trajectory(tid, trajectory.oid,
                                  STSeries(points)))
    return out
