"""Seeded dataset generators standing in for the paper's JD datasets.

``Traj`` (lorry trajectories, 2014-03), ``Order`` (purchase orders with
privacy-biased delivery points, 2018-10..11) and ``Synthetic`` (copy &
sample scale-up of Traj) are generated with the same schema, spatial skew
and time spans as Table II, at a configurable fraction of the paper's row
counts so the benchmark harness runs on one machine.
"""

from repro.datagen.trajgen import TrajectoryGenerator, generate_traj_dataset
from repro.datagen.ordergen import OrderGenerator, generate_order_dataset
from repro.datagen.synthetic import generate_synthetic_dataset
from repro.datagen.datasets import DatasetStats, dataset_statistics
from repro.datagen.transitgen import (
    TRANSIT_RT_CONFIG,
    TRANSIT_RT_SCHEMA,
    TransitGenerator,
    generate_transit_feed,
)

__all__ = [
    "TrajectoryGenerator",
    "generate_traj_dataset",
    "OrderGenerator",
    "generate_order_dataset",
    "generate_synthetic_dataset",
    "DatasetStats",
    "dataset_statistics",
    "TransitGenerator",
    "generate_transit_feed",
    "TRANSIT_RT_SCHEMA",
    "TRANSIT_RT_CONFIG",
]
