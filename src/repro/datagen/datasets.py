"""Dataset statistics (Table II) and raw-size accounting.

"Raw size" is the size the data would occupy as CSV text (the form the
paper's datasets arrive in), computed from the actual generated records so
compression ratios and storage-cost figures are grounded in real bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trajectory.model import Trajectory


@dataclass(frozen=True)
class DatasetStats:
    """One row of Table II."""

    name: str
    num_points: int
    num_records: int
    raw_size_bytes: int
    time_start: float
    time_end: float

    @property
    def raw_size_mb(self) -> float:
        return self.raw_size_bytes / (1024.0 * 1024.0)

    def as_row(self) -> dict:
        return {
            "dataset": self.name,
            "points": self.num_points,
            "records": self.num_records,
            "raw_mb": round(self.raw_size_mb, 2),
            "time_start": self.time_start,
            "time_end": self.time_end,
        }


def _csv_bytes_per_gps_point() -> int:
    # "traj123,lorry45,116.123456,39.123456,1393632000.123\n"
    return len("traj12345,lorry123,116.123456,39.123456,1393632000.123\n")


def _csv_bytes_per_order() -> int:
    # "12345678,116.123456,39.123456,1538352000.123,123.45,electronics\n"
    return len("12345678,116.123456,39.123456,1538352000.123,"
               "123.45,electronics\n")


def traj_statistics(trajectories: list[Trajectory],
                    name: str = "Traj") -> DatasetStats:
    """Table II row for a trajectory dataset."""
    num_points = sum(len(t.points) for t in trajectories)
    return DatasetStats(
        name=name,
        num_points=num_points,
        num_records=len(trajectories),
        raw_size_bytes=num_points * _csv_bytes_per_gps_point(),
        time_start=min(t.start_time for t in trajectories),
        time_end=max(t.end_time for t in trajectories),
    )


def order_statistics(rows: list[dict], name: str = "Order") -> DatasetStats:
    """Table II row for an order dataset."""
    return DatasetStats(
        name=name,
        num_points=len(rows),
        num_records=len(rows),
        raw_size_bytes=len(rows) * _csv_bytes_per_order(),
        time_start=min(r["time"] for r in rows),
        time_end=max(r["time"] for r in rows),
    )


def dataset_statistics(trajectories: list[Trajectory] | None = None,
                       orders: list[dict] | None = None,
                       synthetic: list[Trajectory] | None = None
                       ) -> list[DatasetStats]:
    """Table II for whichever datasets are provided."""
    out = []
    if trajectories is not None:
        out.append(traj_statistics(trajectories, "Traj"))
    if orders is not None:
        out.append(order_statistics(orders, "Order"))
    if synthetic is not None:
        out.append(traj_statistics(synthetic, "Synthetic"))
    return out
