"""Purchase-order generator (the ``Order`` dataset).

Each order is a point record: order id, order time, a delivery address
point *biased* by a small random offset (the paper's privacy protection),
plus amount/category attributes.  The spatial distribution is a mixture of
urban hotspots and background noise; the time span matches Table II:
2018-10-01 .. 2018-11-30.
"""

from __future__ import annotations

import random

from repro.datagen.trajgen import AREA
from repro.geometry.distance import METERS_PER_DEGREE
from repro.geometry.point import Point

#: Table II time span for Order.
ORDER_TIME_START = 1538352000.0   # 2018-10-01T00:00Z
ORDER_TIME_END = 1543536000.0     # 2018-11-30T00:00Z

CATEGORIES = ("electronics", "grocery", "apparel", "books", "home",
              "beauty", "sports", "toys")


class OrderGenerator:
    """Deterministic generator of order rows."""

    def __init__(self, seed: int = 20181001,
                 area: tuple[float, float, float, float] = AREA,
                 time_start: float = ORDER_TIME_START,
                 time_end: float = ORDER_TIME_END,
                 num_hotspots: int = 20,
                 privacy_bias_m: float = 150.0):
        self.rng = random.Random(seed)
        self.area = area
        self.time_start = time_start
        self.time_end = time_end
        self.privacy_bias_m = privacy_bias_m
        self.hotspots = [(self.rng.uniform(area[0], area[2]),
                          self.rng.uniform(area[1], area[3]),
                          self.rng.uniform(500.0, 4000.0))
                         for _ in range(num_hotspots)]

    def _address(self) -> tuple[float, float]:
        rng = self.rng
        if rng.random() < 0.8:
            lng, lat, spread_m = rng.choice(self.hotspots)
            spread = spread_m / METERS_PER_DEGREE
            lng += rng.gauss(0.0, spread)
            lat += rng.gauss(0.0, spread)
        else:
            lng = rng.uniform(self.area[0], self.area[2])
            lat = rng.uniform(self.area[1], self.area[3])
        # Privacy bias: shift the true address by a bounded random offset.
        bias = self.privacy_bias_m / METERS_PER_DEGREE
        lng += rng.uniform(-bias, bias)
        lat += rng.uniform(-bias, bias)
        lng = min(max(lng, self.area[0]), self.area[2])
        lat = min(max(lat, self.area[1]), self.area[3])
        return lng, lat

    def generate(self, num_orders: int) -> list[dict]:
        """Order rows ready for a common table with (fid, time, geom)."""
        rng = self.rng
        rows = []
        for i in range(num_orders):
            lng, lat = self._address()
            rows.append({
                "fid": i,
                "time": rng.uniform(self.time_start, self.time_end),
                "geom": Point(lng, lat),
                "amount": round(rng.lognormvariate(3.5, 1.0), 2),
                "category": rng.choice(CATEGORIES),
            })
        return rows


def generate_order_dataset(num_orders: int = 30_000,
                           seed: int = 20181001) -> list[dict]:
    """The default laptop-scale Order dataset."""
    return OrderGenerator(seed).generate(num_orders)
